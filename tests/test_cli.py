"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestGenerate:
    def test_jsonl(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        rc = main(["generate", "--workload", "tiny", "--seed", "3",
                   "-o", str(out)])
        assert rc == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_csv(self, tmp_path):
        out = tmp_path / "trace.csv"
        assert main(["generate", "--workload", "tiny", "-o", str(out)]) == 0
        assert out.exists()

    def test_bad_extension(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "-o", str(tmp_path / "trace.parquet")])


class TestAnalyze:
    def test_analyze_round_trip(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        main(["generate", "--workload", "tiny", "--seed", "3", "-o", str(out)])
        capsys.readouterr()
        assert main(["analyze", str(out)]) == 0
        text = capsys.readouterr().out
        assert "join_failure" in text
        assert "Critical clusters" in text

    def test_unsupported_extension(self):
        with pytest.raises(SystemExit):
            main(["analyze", "trace.parquet"])


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        text = capsys.readouterr().out
        for experiment_id in ("fig1", "tab1", "fig11", "tab5", "validation"):
            assert experiment_id in text


class TestExperiment:
    def test_single_experiment(self, capsys):
        assert main(["experiment", "tab1", "--workload", "tiny",
                     "--seed", "5"]) == 0
        text = capsys.readouterr().out
        assert "Table 1" in text

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["experiment", "fig99", "--workload", "tiny"])


class TestValidate:
    def test_validate(self, capsys):
        assert main(["validate", "--workload", "tiny", "--seed", "5"]) == 0
        assert "Ground-truth validation" in capsys.readouterr().out


class TestParser:
    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_workload_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--workload", "galaxy",
                  "-o", str(tmp_path / "x.jsonl")])


class TestWorkersFlag:
    def test_analyze_parallel_with_timings(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        main(["generate", "--workload", "tiny", "--seed", "3", "-o", str(out)])
        capsys.readouterr()
        assert main(["analyze", str(out), "--workers", "2",
                     "--timings"]) == 0
        text = capsys.readouterr().out
        assert "Pipeline timings" in text

    def test_analyze_serial_timings(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        main(["generate", "--workload", "tiny", "--seed", "3", "-o", str(out)])
        capsys.readouterr()
        assert main(["analyze", str(out), "--timings"]) == 0
        assert "Pipeline timings" in capsys.readouterr().out

    def test_bad_workers_value_exits(self, tmp_path):
        out = tmp_path / "t.jsonl"
        main(["generate", "--workload", "tiny", "--seed", "3", "-o", str(out)])
        with pytest.raises(SystemExit):
            main(["analyze", str(out), "--workers", "lots"])

    def test_auto_workers_accepted(self, tmp_path):
        out = tmp_path / "t.jsonl"
        main(["generate", "--workload", "tiny", "--seed", "3", "-o", str(out)])
        assert main(["analyze", str(out), "--workers", "auto"]) == 0


class TestSubstrateCache:
    def test_analyze_builds_then_loads_cache(self, tmp_path, capsys):
        trace = tmp_path / "trace.npz"
        cache = tmp_path / "trace.sub"
        main(["generate", "--workload", "tiny", "--seed", "3",
              "-o", str(trace)])
        capsys.readouterr()

        assert main(["analyze", str(trace),
                     "--substrate-cache", str(cache)]) == 0
        first = capsys.readouterr().out
        assert "built and saved" in first
        assert cache.exists()

        assert main(["analyze", str(trace),
                     "--substrate-cache", str(cache)]) == 0
        second = capsys.readouterr().out
        assert "loaded" in second
        # identical analysis either way (strip the one-line cache note)
        strip = lambda text: "\n".join(
            line for line in text.splitlines()
            if not line.startswith("substrate cache:")
        )
        assert strip(first) == strip(second)

    def test_sweep_uses_cache(self, tmp_path, capsys):
        trace = tmp_path / "trace.npz"
        cache = tmp_path / "trace.sub"
        main(["generate", "--workload", "tiny", "--seed", "3",
              "-o", str(trace)])
        main(["analyze", str(trace), "--substrate-cache", str(cache)])
        capsys.readouterr()
        assert main(["sweep", str(trace), "--threshold-scales", "0.5,1.0",
                     "--substrate-cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "loaded" in out
        assert "Config sweep" in out

    def test_report_rebuilds_stale_cache(self, tmp_path, capsys):
        cache = tmp_path / "trace.sub"
        report = tmp_path / "report.md"
        assert main(["report", "--workload", "tiny", "--seed", "3",
                     "-o", str(report), "--substrate-cache", str(cache)]) == 0
        capsys.readouterr()
        # different seed -> different trace -> cached substrate must not
        # be silently reused
        assert main(["report", "--workload", "tiny", "--seed", "4",
                     "-o", str(report), "--substrate-cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "does not match" in out
        assert "built and saved" in out
