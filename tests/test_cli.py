"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestGenerate:
    def test_jsonl(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        rc = main(["generate", "--workload", "tiny", "--seed", "3",
                   "-o", str(out)])
        assert rc == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_csv(self, tmp_path):
        out = tmp_path / "trace.csv"
        assert main(["generate", "--workload", "tiny", "-o", str(out)]) == 0
        assert out.exists()

    def test_bad_extension(self, tmp_path, capsys):
        assert main(["generate", "-o", str(tmp_path / "trace.parquet")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1


class TestAnalyze:
    def test_analyze_round_trip(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        main(["generate", "--workload", "tiny", "--seed", "3", "-o", str(out)])
        capsys.readouterr()
        assert main(["analyze", str(out)]) == 0
        text = capsys.readouterr().out
        assert "join_failure" in text
        assert "Critical clusters" in text

    def test_unsupported_extension(self, capsys):
        assert main(["analyze", "trace.parquet"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "unsupported trace extension" in err

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        text = capsys.readouterr().out
        for experiment_id in ("fig1", "tab1", "fig11", "tab5", "validation"):
            assert experiment_id in text


class TestExperiment:
    def test_single_experiment(self, capsys):
        assert main(["experiment", "tab1", "--workload", "tiny",
                     "--seed", "5"]) == 0
        text = capsys.readouterr().out
        assert "Table 1" in text

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["experiment", "fig99", "--workload", "tiny"])


class TestValidate:
    def test_validate(self, capsys):
        assert main(["validate", "--workload", "tiny", "--seed", "5"]) == 0
        assert "Ground-truth validation" in capsys.readouterr().out


class TestParser:
    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_workload_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--workload", "galaxy",
                  "-o", str(tmp_path / "x.jsonl")])


class TestWorkersFlag:
    def test_analyze_parallel_with_timings(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        main(["generate", "--workload", "tiny", "--seed", "3", "-o", str(out)])
        capsys.readouterr()
        assert main(["analyze", str(out), "--workers", "2",
                     "--timings"]) == 0
        text = capsys.readouterr().out
        assert "Pipeline timings" in text

    def test_analyze_serial_timings(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        main(["generate", "--workload", "tiny", "--seed", "3", "-o", str(out)])
        capsys.readouterr()
        assert main(["analyze", str(out), "--timings"]) == 0
        assert "Pipeline timings" in capsys.readouterr().out

    def test_bad_workers_value_exits(self, tmp_path):
        out = tmp_path / "t.jsonl"
        main(["generate", "--workload", "tiny", "--seed", "3", "-o", str(out)])
        with pytest.raises(SystemExit):
            main(["analyze", str(out), "--workers", "lots"])

    def test_auto_workers_accepted(self, tmp_path):
        out = tmp_path / "t.jsonl"
        main(["generate", "--workload", "tiny", "--seed", "3", "-o", str(out)])
        assert main(["analyze", str(out), "--workers", "auto"]) == 0


class TestSubstrateCache:
    def test_analyze_builds_then_loads_cache(self, tmp_path, capsys):
        trace = tmp_path / "trace.npz"
        cache = tmp_path / "trace.sub"
        main(["generate", "--workload", "tiny", "--seed", "3",
              "-o", str(trace)])
        capsys.readouterr()

        assert main(["analyze", str(trace),
                     "--substrate-cache", str(cache)]) == 0
        first = capsys.readouterr().out
        assert "built and saved" in first
        assert cache.exists()

        assert main(["analyze", str(trace),
                     "--substrate-cache", str(cache)]) == 0
        second = capsys.readouterr().out
        assert "loaded" in second
        # identical analysis either way (strip the one-line cache note)
        strip = lambda text: "\n".join(
            line for line in text.splitlines()
            if not line.startswith("substrate cache:")
        )
        assert strip(first) == strip(second)

    def test_sweep_uses_cache(self, tmp_path, capsys):
        trace = tmp_path / "trace.npz"
        cache = tmp_path / "trace.sub"
        main(["generate", "--workload", "tiny", "--seed", "3",
              "-o", str(trace)])
        main(["analyze", str(trace), "--substrate-cache", str(cache)])
        capsys.readouterr()
        assert main(["sweep", str(trace), "--threshold-scales", "0.5,1.0",
                     "--substrate-cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "loaded" in out
        assert "Config sweep" in out

    def test_report_rebuilds_stale_cache(self, tmp_path, capsys):
        cache = tmp_path / "trace.sub"
        report = tmp_path / "report.md"
        assert main(["report", "--workload", "tiny", "--seed", "3",
                     "-o", str(report), "--substrate-cache", str(cache)]) == 0
        capsys.readouterr()
        # different seed -> different trace -> cached substrate must not
        # be silently reused
        assert main(["report", "--workload", "tiny", "--seed", "4",
                     "-o", str(report), "--substrate-cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "does not match" in out
        assert "built and saved" in out

    def test_corrupt_cache_is_rebuilt_not_fatal(self, tmp_path, capsys):
        trace = tmp_path / "trace.npz"
        cache = tmp_path / "trace.sub"
        main(["generate", "--workload", "tiny", "--seed", "3",
              "-o", str(trace)])
        assert main(["analyze", str(trace),
                     "--substrate-cache", str(cache)]) == 0
        capsys.readouterr()
        # Corrupt the data section (manifest still parses) and pin the
        # trace mtime so only corruption — not staleness — triggers.
        raw = bytearray(cache.read_bytes())
        cache.write_bytes(bytes(raw[: len(raw) // 2]))
        assert main(["analyze", str(trace),
                     "--substrate-cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "rebuilding" in out
        assert "built and saved" in out
        # The overwritten snapshot is healthy again.
        assert main(["analyze", str(trace),
                     "--substrate-cache", str(cache)]) == 0
        assert "loaded" in capsys.readouterr().out

    def test_source_mtime_drift_rebuilds_cache(self, tmp_path, capsys):
        import os

        trace = tmp_path / "trace.npz"
        cache = tmp_path / "trace.sub"
        main(["generate", "--workload", "tiny", "--seed", "3",
              "-o", str(trace)])
        assert main(["analyze", str(trace),
                     "--substrate-cache", str(cache)]) == 0
        capsys.readouterr()
        os.utime(trace, ns=(1, 1))
        assert main(["analyze", str(trace),
                     "--substrate-cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "does not match" in out
        assert "built and saved" in out


class TestTraceOut:
    def _span_names(self, node, names=None):
        names = set() if names is None else names
        names.add(node["name"])
        for child in node.get("children", ()):
            self._span_names(child, names)
        return names

    def test_analyze_writes_trace_and_manifest(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        out = tmp_path / "run.json"
        main(["generate", "--workload", "tiny", "--seed", "3",
              "-o", str(trace)])
        assert main(["analyze", str(trace), "--workers", "2",
                     "--trace-out", str(out)]) == 0
        capsys.readouterr()

        data = json.loads(out.read_text())
        names = self._span_names(data["trace"])
        for expected in ("ingest", "analyze_trace", "index_build",
                         "worker_payload", "fanout", "worker", "aggregate",
                         "shm.pack"):
            assert expected in names, f"span {expected!r} missing"
        counters = data["metrics"]["counters"]
        assert counters["pipeline.runs"] == 1
        assert counters["shm.segments_created"] == \
            counters["shm.segments_released"]
        assert counters["ingest.rows"] > 0

        manifest = json.loads(
            (tmp_path / "run.manifest.json").read_text()
        )
        assert manifest["command"] == "analyze"
        assert manifest["exit_code"] == 0
        assert manifest["degradations"] == []
        assert "analyze_trace" in manifest["span_names"]

    def test_worker_spans_carry_pids_and_bytes(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        out = tmp_path / "run.json"
        main(["generate", "--workload", "tiny", "--seed", "3",
              "-o", str(trace)])
        assert main(["analyze", str(trace), "--workers", "2",
                     "--trace-out", str(out)]) == 0
        capsys.readouterr()

        data = json.loads(out.read_text())

        def find(node, name, hits):
            if node["name"] == name:
                hits.append(node)
            for child in node.get("children", ()):
                find(child, name, hits)
            return hits

        workers = find(data["trace"], "worker", [])
        assert workers
        assert all(w["attrs"]["pid"] > 0 for w in workers)
        packs = find(data["trace"], "shm.pack", [])
        assert packs and packs[0]["attrs"]["bytes"] > 0

    def test_sweep_trace_out(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        out = tmp_path / "run.json"
        main(["generate", "--workload", "tiny", "--seed", "3",
              "-o", str(trace)])
        assert main(["sweep", str(trace), "--threshold-scales", "0.5,1.0",
                     "--trace-out", str(out)]) == 0
        capsys.readouterr()
        names = self._span_names(json.loads(out.read_text())["trace"])
        assert "analyze_sweep" in names
        assert "substrate.build" in names

    def test_trace_out_written_even_on_failure(self, tmp_path, capsys):
        import json

        out = tmp_path / "run.json"
        assert main(["analyze", str(tmp_path / "missing.jsonl"),
                     "--trace-out", str(out)]) == 2
        capsys.readouterr()
        manifest = json.loads((tmp_path / "run.manifest.json").read_text())
        assert manifest["exit_code"] == 2


class TestShardCLI:
    def _trace(self, tmp_path):
        out = tmp_path / "trace.npz"
        main(["generate", "--workload", "tiny", "--seed", "3",
              "-o", str(out)])
        return out

    def test_build_info_analyze_round_trip(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        store = tmp_path / "trace.shards"
        assert main(["shard", "build", str(trace), "-o", str(store),
                     "--epochs-per-shard", "7"]) == 0
        assert (store / "manifest.json").is_file()
        assert main(["shard", "info", str(store)]) == 0
        capsys.readouterr()

        assert main(["analyze", "--shard-dir", str(store),
                     "--timings"]) == 0
        sharded = capsys.readouterr().out
        assert "shard snapshot load" in sharded
        assert "peak RSS" in sharded
        assert main(["analyze", str(trace)]) == 0
        monolithic = capsys.readouterr().out
        # identical metric tables (headers differ only in the source name)
        strip = lambda text: [
            line for line in text.splitlines()
            if line and not line.startswith(("Analysis of", "Pipeline",
                                            "  ", "shard"))
        ]
        assert strip(sharded)[:6] == strip(monolithic)[:6]

    def test_build_n_shards_flag(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        store = tmp_path / "s"
        assert main(["shard", "build", str(trace), "-o", str(store),
                     "--shards", "3"]) == 0
        assert "3 shards" in capsys.readouterr().out

    def test_build_rejects_both_split_flags(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        assert main(["shard", "build", str(trace), "-o", str(tmp_path / "s"),
                     "--shards", "3", "--epochs-per-shard", "4"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_sweep_shard_dir(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        store = tmp_path / "s"
        main(["shard", "build", str(trace), "-o", str(store)])
        assert main(["sweep", "--shard-dir", str(store),
                     "--ratio-multipliers", "1,1.5"]) == 0
        assert "2 variants" in capsys.readouterr().out

    def test_analyze_requires_trace_or_shard_dir(self, capsys):
        assert main(["analyze"]) == 2
        assert "trace path or --shard-dir" in capsys.readouterr().err

    def test_analyze_rejects_trace_plus_shard_dir(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        store = tmp_path / "s"
        main(["shard", "build", str(trace), "-o", str(store)])
        assert main(["analyze", str(trace), "--shard-dir", str(store)]) == 2
        assert "not both" in capsys.readouterr().err

    def test_shard_dir_rejects_substrate_cache(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        store = tmp_path / "s"
        main(["shard", "build", str(trace), "-o", str(store)])
        assert main(["analyze", "--shard-dir", str(store),
                     "--substrate-cache", str(tmp_path / "c.sub")]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_analyze_rejects_non_store_dir(self, tmp_path, capsys):
        assert main(["analyze", "--shard-dir", str(tmp_path)]) == 2
        assert "not a shard store" in capsys.readouterr().err

    def test_report_shard_dir_builds_then_reuses(self, tmp_path, capsys):
        store = tmp_path / "s"
        assert main(["report", "--workload", "tiny", "--seed", "3",
                     "-o", str(tmp_path / "r.md"),
                     "--shard-dir", str(store)]) == 0
        assert "built" in capsys.readouterr().out
        assert main(["report", "--workload", "tiny", "--seed", "3",
                     "-o", str(tmp_path / "r2.md"),
                     "--shard-dir", str(store)]) == 0
        assert "built" not in capsys.readouterr().out

    def test_analyze_shard_dir_trace_out(self, tmp_path, capsys):
        import json

        trace = self._trace(tmp_path)
        store = tmp_path / "s"
        out = tmp_path / "run.json"
        main(["shard", "build", str(trace), "-o", str(store),
              "--epochs-per-shard", "7"])
        assert main(["analyze", "--shard-dir", str(store), "--workers", "2",
                     "--trace-out", str(out)]) == 0
        capsys.readouterr()
        data = json.loads(out.read_text())

        def names(span, acc):
            acc.add(span["name"])
            for child in span.get("children", []):
                names(child, acc)
            return acc

        assert {"analyze_shards", "fanout", "shard"} <= names(
            data["trace"], set()
        )
        manifest = json.loads((tmp_path / "run.manifest.json").read_text())
        assert manifest["peak_rss_bytes"] > 0


class TestResultCacheCLI:
    def _store(self, tmp_path):
        trace = tmp_path / "trace.npz"
        main(["generate", "--workload", "tiny", "--seed", "3",
              "-o", str(trace)])
        store = tmp_path / "trace.shards"
        main(["shard", "build", str(trace), "-o", str(store),
              "--epochs-per-shard", "8"])
        return store

    def test_cold_then_warm_analyze(self, tmp_path, capsys):
        import json

        store = self._store(tmp_path)
        cache = tmp_path / "rc"
        capsys.readouterr()

        assert main(["analyze", "--shard-dir", str(store),
                     "--result-cache", str(cache),
                     "--trace-out", str(tmp_path / "cold.json")]) == 0
        cold_out = capsys.readouterr().out
        assert main(["analyze", "--shard-dir", str(store),
                     "--result-cache", str(cache),
                     "--trace-out", str(tmp_path / "warm.json")]) == 0
        warm_out = capsys.readouterr().out

        # identical analysis tables (only the trace-out line differs)
        table = lambda text: [l for l in text.splitlines()
                              if "wrote trace" not in l]
        assert table(cold_out) == table(warm_out)

        cold = json.loads((tmp_path / "cold.manifest.json").read_text())
        warm = json.loads((tmp_path / "warm.manifest.json").read_text())
        assert cold["metrics"]["counters"]["cache.miss"] == 3
        assert "cache.hit" not in cold["metrics"]["counters"]
        assert warm["metrics"]["counters"]["cache.hit"] == 3
        assert "cache.miss" not in warm["metrics"]["counters"]

    def test_result_cache_requires_shard_dir(self, tmp_path, capsys):
        trace = tmp_path / "trace.npz"
        main(["generate", "--workload", "tiny", "--seed", "3",
              "-o", str(trace)])
        assert main(["analyze", str(trace),
                     "--result-cache", str(tmp_path / "rc")]) == 2
        assert "requires --shard-dir" in capsys.readouterr().err
        assert main(["sweep", str(trace),
                     "--result-cache", str(tmp_path / "rc")]) == 2
        assert "requires --shard-dir" in capsys.readouterr().err
        assert main(["report", "--workload", "tiny", "--seed", "3",
                     "-o", str(tmp_path / "r.md"),
                     "--result-cache", str(tmp_path / "rc")]) == 2
        assert "requires --shard-dir" in capsys.readouterr().err

    def test_cache_info_and_prune(self, tmp_path, capsys):
        store = self._store(tmp_path)
        cache = tmp_path / "rc"
        main(["analyze", "--shard-dir", str(store),
              "--result-cache", str(cache)])
        capsys.readouterr()

        assert main(["cache", "info", str(cache)]) == 0
        info = capsys.readouterr().out
        assert "3 entries" in info

        assert main(["cache", "prune", str(cache), "--max-bytes", "0"]) == 0
        pruned = capsys.readouterr().out
        assert "evicted 3 entries" in pruned
        assert main(["cache", "info", str(cache)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_cache_prune_accepts_size_suffixes(self, tmp_path, capsys):
        cache = tmp_path / "rc"
        cache.mkdir()
        assert main(["cache", "prune", str(cache),
                     "--max-bytes", "1M"]) == 0
        assert "cap 1.0 MiB" in capsys.readouterr().out

    def test_cache_prune_rejects_bad_size(self, tmp_path):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            main(["cache", "prune", str(tmp_path), "--max-bytes", "lots"])

    def test_shard_info_shows_bytes(self, tmp_path, capsys):
        store = self._store(tmp_path)
        capsys.readouterr()
        assert main(["shard", "info", str(store)]) == 0
        out = capsys.readouterr().out
        assert "Bytes" in out
        assert "on disk" in out
        assert "MiB" in out or "KiB" in out

    def test_sweep_shares_cache_across_runs(self, tmp_path, capsys):
        import json

        store = self._store(tmp_path)
        cache = tmp_path / "rc"
        main(["sweep", "--shard-dir", str(store),
              "--result-cache", str(cache),
              "--threshold-scales", "1.0"])
        capsys.readouterr()
        assert main(["sweep", "--shard-dir", str(store),
                     "--result-cache", str(cache),
                     "--threshold-scales", "1.0,2.0",
                     "--trace-out", str(tmp_path / "run.json")]) == 0
        capsys.readouterr()
        manifest = json.loads((tmp_path / "run.manifest.json").read_text())
        counters = manifest["metrics"]["counters"]
        assert counters["cache.hit"] == 3   # x1.0 entries reused
        assert counters["cache.miss"] == 3  # x2.0 computed fresh


class TestObsCli:
    """The obs command family and the --journal / --profile flags."""

    def _analyze(self, tmp_path, name="run.json", journal=None,
                 extra=()):
        trace = tmp_path / "trace.jsonl"
        if not trace.exists():
            main(["generate", "--workload", "tiny", "--seed", "3",
                  "-o", str(trace)])
        argv = ["analyze", str(trace), "--trace-out",
                str(tmp_path / name)]
        if journal is not None:
            argv += ["--journal", str(journal)]
        argv += list(extra)
        assert main(argv) == 0
        return tmp_path / name

    def test_journal_records_run(self, tmp_path, capsys):
        journal = tmp_path / "j"
        self._analyze(tmp_path, journal=journal)
        out = capsys.readouterr().out
        assert "journal: recorded r00001-" in out
        assert (journal / "journal.jsonl").exists()

    def test_obs_view(self, tmp_path, capsys):
        run = self._analyze(tmp_path)
        capsys.readouterr()
        assert main(["obs", "view", str(run)]) == 0
        out = capsys.readouterr().out
        assert "analyze_trace" in out
        assert "Critical path" in out or "critical path" in out

    def test_obs_view_bad_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["obs", "view", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_obs_diff_identical_runs_all_neutral(self, tmp_path, capsys):
        a = self._analyze(tmp_path, "a.json")
        b = self._analyze(tmp_path, "b.json")
        capsys.readouterr()
        assert main(["obs", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "0 regressed" in out

    def test_obs_diff_fail_on_regression(self, tmp_path, capsys):
        import json

        slow = {"trace": {"name": "analyze", "duration_s": 9.0,
                          "attrs": {},
                          "children": [{"name": "epochs",
                                        "duration_s": 8.0, "attrs": {},
                                        "children": []}]}}
        fast = json.loads(json.dumps(slow))
        fast["trace"]["duration_s"] = 1.0
        fast["trace"]["children"][0]["duration_s"] = 0.5
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(fast))
        b.write_text(json.dumps(slow))
        assert main(["obs", "diff", str(a), str(b)]) == 0
        assert main(["obs", "diff", str(a), str(b),
                     "--fail-on-regression"]) == 3
        out = capsys.readouterr().out
        assert "regressed" in out

    def test_obs_diff_against_baseline(self, tmp_path, capsys):
        journal = tmp_path / "j"
        self._analyze(tmp_path, "a.json", journal=journal)
        self._analyze(tmp_path, "b.json", journal=journal)
        capsys.readouterr()
        assert main(["obs", "diff", "latest", "--baseline", "1",
                     "--journal", str(journal)]) == 0
        assert "baseline[1]" in capsys.readouterr().out

    def test_obs_journal_list_show_trend(self, tmp_path, capsys):
        journal = tmp_path / "j"
        self._analyze(tmp_path, "a.json", journal=journal)
        self._analyze(tmp_path, "b.json", journal=journal)
        capsys.readouterr()

        assert main(["obs", "journal", "list",
                     "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "r00001-" in out and "r00002-" in out

        assert main(["obs", "journal", "show", "latest",
                     "--journal", str(journal)]) == 0
        import json

        record = json.loads(capsys.readouterr().out)
        assert record["run_id"].startswith("r00002-")

        assert main(["obs", "journal", "trend", "--command", "analyze",
                     "--journal", str(journal)]) == 0
        assert "r00002-" in capsys.readouterr().out

    def test_obs_journal_unknown_run_exits_2(self, tmp_path, capsys):
        journal = tmp_path / "j"
        self._analyze(tmp_path, journal=journal)
        assert main(["obs", "journal", "show", "r99999",
                     "--journal", str(journal)]) == 2
        assert "error" in capsys.readouterr().err

    def test_profile_writes_flamegraph(self, tmp_path, capsys):
        from repro.obs.profile import profiler_available, read_collapsed

        if not profiler_available():
            pytest.skip("no SIGPROF on this platform")
        run = self._analyze(tmp_path, extra=["--profile", "400"])
        out = capsys.readouterr().out
        flame = tmp_path / "run.flame.txt"
        assert flame.exists()
        assert "wrote profile to" in out
        read_collapsed(flame)  # parses cleanly (may be empty on tiny)

        capsys.readouterr()
        assert main(["obs", "flame", str(flame)]) == 0

    def test_profile_requires_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        main(["generate", "--workload", "tiny", "-o", str(trace)])
        capsys.readouterr()
        assert main(["analyze", str(trace), "--profile"]) == 2
        assert "--trace-out" in capsys.readouterr().err
        assert main(["analyze", str(trace), "--profile", "0",
                     "--trace-out", str(tmp_path / "r.json")]) == 2

    def test_obs_export_prom(self, tmp_path, capsys):
        run = self._analyze(tmp_path)
        capsys.readouterr()
        assert main(["obs", "export-prom", str(run)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_pipeline_runs counter" in out
        assert "repro_ingest_rows" in out

    def test_cache_prune_trace_out(self, tmp_path, capsys):
        import json

        cache = tmp_path / "rc"
        cache.mkdir()
        out = tmp_path / "prune.json"
        assert main(["cache", "prune", str(cache), "--max-bytes", "1",
                     "--trace-out", str(out)]) == 0
        capsys.readouterr()
        data = json.loads(out.read_text())
        assert data["trace"]["name"] == "cache"
        manifest = json.loads(
            (tmp_path / "prune.manifest.json").read_text()
        )
        assert manifest["command"] == "cache"

    def test_shard_build_timings(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        main(["generate", "--workload", "tiny", "--seed", "3",
              "-o", str(trace)])
        capsys.readouterr()
        assert main(["shard", "build", str(trace),
                     "-o", str(tmp_path / "store"), "--timings"]) == 0
        assert "shard" in capsys.readouterr().out
