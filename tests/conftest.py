"""Shared fixtures for the test suite.

Heavy artifacts (generated traces, full pipeline analyses) are
session-scoped; tests must treat them as immutable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Session, SessionTable, analyze_trace
from repro.experiments.context import ExperimentContext
from repro.trace import StandardWorkloads, generate_trace

#: Attribute template used by hand-built sessions.
BASE_ATTRS = {
    "asn": "AS1",
    "cdn": "cdn_a",
    "site": "site_a",
    "content_type": "vod",
    "player": "flash",
    "browser": "chrome",
    "connection_type": "dsl",
}


def make_session(
    start_time: float = 0.0,
    duration_s: float = 600.0,
    buffering_s: float = 0.0,
    join_time_s: float = 2.0,
    bitrate_kbps: float = 2000.0,
    join_failed: bool = False,
    **attrs: str,
) -> Session:
    """Hand-build one session with attribute overrides."""
    merged = dict(BASE_ATTRS)
    merged.update(attrs)
    if join_failed:
        join_time_s = float("nan")
        bitrate_kbps = float("nan")
        duration_s = 0.0
        buffering_s = 0.0
    return Session(
        attrs=merged,
        start_time=start_time,
        duration_s=duration_s,
        buffering_s=buffering_s,
        join_time_s=join_time_s,
        bitrate_kbps=bitrate_kbps,
        join_failed=join_failed,
    )


def planted_failure_table(
    n: int = 4000,
    bad_cdn: str = "cdn_bad",
    bad_fail_p: float = 0.6,
    base_fail_p: float = 0.05,
    seed: int = 0,
) -> SessionTable:
    """One-epoch table with a planted high-failure CDN."""
    rng = np.random.default_rng(seed)
    sessions = []
    for _ in range(n):
        cdn = f"cdn_{rng.integers(0, 3)}"
        if rng.random() < 0.25:
            cdn = bad_cdn
        fail_p = bad_fail_p if cdn == bad_cdn else base_fail_p
        sessions.append(
            make_session(
                start_time=float(rng.uniform(0, 3600)),
                join_failed=bool(rng.random() < fail_p),
                cdn=cdn,
                asn=f"AS{rng.integers(0, 5)}",
                site=f"site_{rng.integers(0, 4)}",
            )
        )
    return SessionTable.from_sessions(sessions)


@pytest.fixture(scope="session")
def failure_table() -> SessionTable:
    return planted_failure_table()


@pytest.fixture(scope="session")
def tiny_trace():
    return generate_trace(StandardWorkloads.tiny(seed=7))


@pytest.fixture(scope="session")
def tiny_analysis(tiny_trace):
    return analyze_trace(tiny_trace.table, grid=tiny_trace.grid)


@pytest.fixture(scope="session")
def tiny_ctx(tiny_trace, tiny_analysis) -> ExperimentContext:
    return ExperimentContext(trace=tiny_trace, analysis=tiny_analysis)
