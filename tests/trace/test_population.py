"""Tests for attribute sampling."""

import numpy as np
import pytest

from repro.trace.entities import (
    BROWSERS,
    CONNECTION_TYPES,
    PLAYER_TYPES,
    WorldConfig,
    build_world,
)
from repro.trace.population import AttributeSampler, constraint_codes


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(n_asns=40, n_cdns=6, n_sites=15),
                       np.random.default_rng(6))


@pytest.fixture(scope="module")
def sampler(world):
    return AttributeSampler(world)


@pytest.fixture(scope="module")
def codes(sampler):
    return sampler.sample(20_000, np.random.default_rng(7))


class TestSampling:
    def test_shape_and_dtype(self, codes):
        assert codes.shape == (20_000, 7)
        assert codes.dtype == np.int32

    def test_codes_within_vocab(self, world, codes):
        limits = [
            len(world.asns), len(world.cdns), len(world.sites),
            2, len(PLAYER_TYPES), len(BROWSERS), len(CONNECTION_TYPES),
        ]
        for col, limit in enumerate(limits):
            assert codes[:, col].min() >= 0
            assert codes[:, col].max() < limit

    def test_popularity_skew(self, world, codes):
        """Zipf weights: the most popular site dominates the tail."""
        counts = np.bincount(codes[:, 2], minlength=len(world.sites))
        assert counts[0] > counts[len(world.sites) // 2] * 2

    def test_cdn_respects_site_policy(self, world, codes):
        for site_idx, site in enumerate(world.sites):
            rows = codes[:, 2] == site_idx
            if rows.any():
                used = set(np.unique(codes[rows, 1]))
                assert used <= set(site.cdn_indices), site.name

    def test_connection_type_follows_asn_mix(self, world, codes):
        mobile_idx = CONNECTION_TYPES.index("mobile_wireless")
        for asn_idx, asn in enumerate(world.asns):
            rows = codes[:, 0] == asn_idx
            if asn.wireless and rows.sum() > 100:
                frac_mobile = (codes[rows, 6] == mobile_idx).mean()
                assert frac_mobile > 0.6, asn.name

    def test_live_fraction_respected(self, world, codes):
        for site_idx, site in enumerate(world.sites):
            rows = codes[:, 2] == site_idx
            if rows.sum() > 300:
                live_frac = codes[rows, 3].mean()
                assert live_frac == pytest.approx(site.live_fraction, abs=0.1)

    def test_deterministic(self, sampler):
        c1 = sampler.sample(100, np.random.default_rng(11))
        c2 = sampler.sample(100, np.random.default_rng(11))
        assert np.array_equal(c1, c2)

    def test_label_codes(self, world, sampler):
        vocabs = sampler.label_codes()
        assert set(vocabs) == {
            "asn", "cdn", "site", "content_type", "player", "browser",
            "connection_type",
        }
        assert vocabs["asn"] == [a.name for a in world.asns]


class TestConstraintCodes:
    def test_translation(self, world):
        pairs = constraint_codes(
            world,
            [("cdn", world.cdns[2].name), ("connection_type", "dsl")],
        )
        assert pairs == [(1, 2), (6, CONNECTION_TYPES.index("dsl"))]

    def test_unknown_label_raises(self, world):
        with pytest.raises(KeyError, match="unknown"):
            constraint_codes(world, [("cdn", "cdn_nonexistent")])
