"""Tests for the synthetic world model."""

import numpy as np
import pytest

from repro.trace.entities import (
    ASNProfile,
    CDNProfile,
    CONNECTION_TYPES,
    REGIONS,
    SiteProfile,
    WorldConfig,
    build_world,
)


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(n_asns=50, n_cdns=8, n_sites=20),
                       np.random.default_rng(1))


class TestWorldConfig:
    def test_defaults(self):
        config = WorldConfig()
        assert config.n_asns == 200
        assert config.n_cdns == 12
        assert config.n_sites == 60

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            WorldConfig(n_asns=1)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            WorldConfig(single_bitrate_site_fraction=1.5)
        with pytest.raises(ValueError):
            WorldConfig(wireless_asn_fraction=-0.1)


class TestBuildWorld:
    def test_entity_counts(self, world):
        assert len(world.asns) == 50
        assert len(world.cdns) == 8
        assert len(world.sites) == 20

    def test_deterministic_given_seed(self):
        config = WorldConfig(n_asns=10, n_cdns=4, n_sites=6)
        w1 = build_world(config, np.random.default_rng(7))
        w2 = build_world(config, np.random.default_rng(7))
        assert [a.name for a in w1.asns] == [a.name for a in w2.asns]
        assert [a.quality for a in w1.asns] == [a.quality for a in w2.asns]
        assert [s.ladder for s in w1.sites] == [s.ladder for s in w2.sites]

    def test_asn_regions_valid(self, world):
        for asn in world.asns:
            assert asn.region in REGIONS

    def test_asn_access_mix_normalized(self, world):
        for asn in world.asns:
            assert sum(asn.access_mix) == pytest.approx(1.0)

    def test_wireless_asns_mostly_mobile(self, world):
        mobile_idx = CONNECTION_TYPES.index("mobile_wireless")
        for asn in world.asns:
            if asn.wireless:
                assert asn.access_mix[mobile_idx] > 0.5

    def test_some_single_bitrate_sites(self, world):
        single = [s for s in world.sites if s.single_bitrate]
        assert len(single) >= 1

    def test_site_ladders_ascending(self, world):
        for site in world.sites:
            assert list(site.ladder) == sorted(site.ladder)

    def test_site_cdn_policy_valid(self, world):
        for site in world.sites:
            assert all(0 <= i < len(world.cdns) for i in site.cdn_indices)
            assert sum(site.cdn_weights) == pytest.approx(1.0)

    def test_cdn_kinds(self, world):
        kinds = {c.kind for c in world.cdns}
        assert kinds <= {"global", "in_house", "isp", "datacenter"}
        assert any(c.kind in ("in_house", "isp") for c in world.cdns)

    def test_vocabularies_schema_order(self, world):
        vocabs = world.vocabularies()
        assert len(vocabs) == 7
        assert vocabs[0] == [a.name for a in world.asns]
        assert vocabs[3] == ["vod", "live"]

    def test_entity_index_lookups(self, world):
        assert world.asn_index(world.asns[3].name) == 3
        assert world.cdn_index(world.cdns[0].name) == 0
        assert world.site_index(world.sites[5].name) == 5
        with pytest.raises(KeyError):
            world.asn_index("ASnope")

    def test_region_of_asn_matches_profiles(self, world):
        for i, asn in enumerate(world.asns):
            assert REGIONS[world.region_of_asn[i]] == asn.region


class TestProfileValidation:
    def test_asn_rejects_bad_region(self):
        with pytest.raises(ValueError, match="unknown region"):
            ASNProfile(
                name="AS1", region="mars", wireless=False, quality=1.0,
                access_mix=(0.2, 0.2, 0.2, 0.2, 0.2), weight=1.0,
            )

    def test_asn_rejects_unnormalized_mix(self):
        with pytest.raises(ValueError, match="sums to"):
            ASNProfile(
                name="AS1", region="us", wireless=False, quality=1.0,
                access_mix=(0.5, 0.5, 0.5, 0.2, 0.2), weight=1.0,
            )

    def test_cdn_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="unknown CDN kind"):
            CDNProfile(
                name="c", kind="quantum", base_rtt_ms=50, failure_prob=0.01,
                throughput_quality=1.0, region_coverage=(1,) * len(REGIONS),
            )

    def test_cdn_rejects_bad_failure_prob(self):
        with pytest.raises(ValueError):
            CDNProfile(
                name="c", kind="global", base_rtt_ms=50, failure_prob=1.0,
                throughput_quality=1.0, region_coverage=(1,) * len(REGIONS),
            )

    def test_site_rejects_unsorted_ladder(self):
        with pytest.raises(ValueError, match="ascending"):
            SiteProfile(
                name="s", genre="ugc", ladder=(2000.0, 1000.0),
                cdn_indices=(0,), cdn_weights=(1.0,), live_fraction=0.1,
                player_mix=(0.4, 0.3, 0.3), weight=1.0,
            )

    def test_site_rejects_empty_cdns(self):
        with pytest.raises(ValueError):
            SiteProfile(
                name="s", genre="ugc", ladder=(1000.0,),
                cdn_indices=(), cdn_weights=(), live_fraction=0.1,
                player_mix=(0.4, 0.3, 0.3), weight=1.0,
            )
