"""Tests for the end-to-end trace generator."""

import dataclasses

import numpy as np
import pytest

from repro.core.epoching import split_into_epochs
from repro.core.metrics import JOIN_FAILURE
from repro.trace.entities import WorldConfig, build_world
from repro.trace.events import EventCatalog, EventConfig, EventEffects, GroundTruthEvent
from repro.trace.generator import apply_events, generate_trace
from repro.trace.population import constraint_codes
from repro.trace.workloads import StandardWorkloads, WorkloadSpec
from repro.trace.arrivals import ArrivalModel


def micro_spec(seed=0, n_epochs=4, per_epoch=400) -> WorkloadSpec:
    return WorkloadSpec(
        name="micro",
        seed=seed,
        n_epochs=n_epochs,
        world=WorldConfig(n_asns=12, n_cdns=4, n_sites=8),
        events=EventConfig(
            chronic_per_metric=0,
            major_per_week=0,
            minor_per_week=0,
            transient_per_week=0,
            include_themed_chronics=False,
        ),
        arrivals=ArrivalModel(base_sessions_per_epoch=per_epoch, noise_sigma=0.0),
    )


class TestGenerateTrace:
    def test_session_count_matches_arrivals(self):
        trace = generate_trace(micro_spec())
        assert trace.n_sessions > 0
        _, per_epoch = split_into_epochs(trace.table, trace.grid)
        assert len(per_epoch) == 4
        assert all(len(rows) >= 50 for rows in per_epoch)

    def test_deterministic(self):
        t1 = generate_trace(micro_spec(seed=3))
        t2 = generate_trace(micro_spec(seed=3))
        assert np.array_equal(t1.table.codes, t2.table.codes)
        assert np.array_equal(t1.table.join_failed, t2.table.join_failed)
        assert np.allclose(t1.table.start_time, t2.table.start_time)

    def test_different_seeds_differ(self):
        t1 = generate_trace(micro_spec(seed=3))
        t2 = generate_trace(micro_spec(seed=4))
        assert not np.array_equal(t1.table.join_failed, t2.table.join_failed)

    def test_timestamps_within_epochs(self):
        trace = generate_trace(micro_spec())
        assert trace.table.start_time.min() >= 0.0
        assert trace.table.start_time.max() < 4 * 3600.0

    def test_vocabs_match_world(self):
        trace = generate_trace(micro_spec())
        assert trace.table.vocabs == trace.world.vocabularies()

    def test_planted_event_raises_cluster_failure_rate(self):
        spec = micro_spec(per_epoch=1500)
        world = build_world(spec.world, np.random.default_rng(99))
        bad_cdn = world.cdns[0].name
        catalog = EventCatalog([
            GroundTruthEvent(
                event_id="planted",
                tag="test-outage",
                category="major",
                primary_metric="join_failure",
                constraints=(("cdn", bad_cdn),),
                start_epoch=1,
                duration_epochs=2,
                effects=EventEffects(join_failure_odds=40.0),
            )
        ])
        trace = generate_trace(spec, world=world, catalog=catalog)
        table = trace.table
        cdn_col = table.schema.index("cdn")
        bad_code = table.attr_labels("cdn").index(bad_cdn)
        in_cluster = table.codes[:, cdn_col] == bad_code
        epoch = trace.grid.epoch_of(table.start_time)
        active = (epoch == 1) | (epoch == 2)
        rate_active = table.join_failed[in_cluster & active].mean()
        rate_inactive = table.join_failed[in_cluster & ~active].mean()
        assert rate_active > 5 * max(rate_inactive, 0.005)

    def test_mechanistic_engine_path(self):
        spec = dataclasses.replace(
            micro_spec(per_epoch=60, n_epochs=2), engine="mechanistic"
        )
        trace = generate_trace(spec)
        assert trace.n_sessions > 0
        ok = ~trace.table.join_failed
        assert (trace.table.bitrate_kbps[ok] > 0).all()

    def test_tiny_workload_has_problem_structure(self, tiny_trace):
        table = tiny_trace.table
        assert len(tiny_trace.catalog) > 0
        problems = JOIN_FAILURE.problem_mask(table)
        assert 0.005 < problems.mean() < 0.2


class TestApplyEvents:
    def test_effects_restricted_to_matching_rows(self):
        world = build_world(WorldConfig(n_asns=8, n_cdns=3, n_sites=4),
                            np.random.default_rng(0))
        event = GroundTruthEvent(
            event_id="e", tag="t", category="major",
            primary_metric="buffering_ratio",
            constraints=(("cdn", world.cdns[1].name),),
            start_epoch=0, duration_epochs=1,
            effects=EventEffects(buffering_factor=5.0),
        )
        codes = np.zeros((10, 7), dtype=np.int32)
        codes[:5, 1] = 1  # first five sessions on the affected CDN
        effects = apply_events(
            codes, [event],
            {"e": constraint_codes(world, event.constraints)}, 10,
        )
        assert (effects.buffering_factor[:5] == 5.0).all()
        assert (effects.buffering_factor[5:] == 1.0).all()

    def test_overlapping_events_compose(self):
        world = build_world(WorldConfig(n_asns=8, n_cdns=3, n_sites=4),
                            np.random.default_rng(0))
        make = lambda eid, factor: GroundTruthEvent(
            event_id=eid, tag="t", category="major",
            primary_metric="buffering_ratio",
            constraints=(("cdn", world.cdns[0].name),),
            start_epoch=0, duration_epochs=1,
            effects=EventEffects(buffering_factor=factor),
        )
        codes = np.zeros((4, 7), dtype=np.int32)
        events = [make("a", 2.0), make("b", 3.0)]
        lookup = {
            e.event_id: constraint_codes(world, e.constraints) for e in events
        }
        effects = apply_events(codes, events, lookup, 4)
        assert (effects.buffering_factor == 6.0).all()

    def test_bitrate_caps_take_minimum(self):
        world = build_world(WorldConfig(n_asns=8, n_cdns=3, n_sites=4),
                            np.random.default_rng(0))
        make = lambda eid, cap: GroundTruthEvent(
            event_id=eid, tag="t", category="major", primary_metric="bitrate",
            constraints=(("cdn", world.cdns[0].name),),
            start_epoch=0, duration_epochs=1,
            effects=EventEffects(bitrate_cap_kbps=cap),
        )
        codes = np.zeros((2, 7), dtype=np.int32)
        events = [make("a", 600.0), make("b", 400.0)]
        lookup = {
            e.event_id: constraint_codes(world, e.constraints) for e in events
        }
        effects = apply_events(codes, events, lookup, 2)
        assert (effects.bitrate_cap_kbps == 400.0).all()


class TestStandardWorkloads:
    def test_presets_resolve(self):
        for name in ("tiny", "small", "week", "two_weeks", "mechanistic_tiny"):
            spec = StandardWorkloads.by_name(name, seed=1)
            assert spec.seed == 1

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown workload"):
            StandardWorkloads.by_name("galactic")

    def test_two_weeks_doubles_epochs(self):
        assert StandardWorkloads.two_weeks().n_epochs == 2 * StandardWorkloads.week().n_epochs

    def test_with_seed(self):
        assert StandardWorkloads.tiny().with_seed(9).seed == 9

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", seed=0, n_epochs=0)
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", seed=0, n_epochs=1, engine="quantum")
