"""Tests for the diurnal arrival model."""

import numpy as np
import pytest

from repro.trace.arrivals import ArrivalModel


class TestValidation:
    def test_defaults_ok(self):
        ArrivalModel()

    def test_bad_values(self):
        with pytest.raises(ValueError):
            ArrivalModel(base_sessions_per_epoch=0)
        with pytest.raises(ValueError):
            ArrivalModel(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            ArrivalModel(weekend_factor=0.0)
        with pytest.raises(ValueError):
            ArrivalModel(noise_sigma=-0.1)


class TestExpected:
    def test_peak_at_peak_hour(self):
        model = ArrivalModel(base_sessions_per_epoch=1000, peak_hour=20.0,
                             weekend_factor=1.0)
        expected = model.expected(np.arange(24))
        assert int(np.argmax(expected)) == 20

    def test_trough_opposite_peak(self):
        model = ArrivalModel(base_sessions_per_epoch=1000, peak_hour=20.0,
                             weekend_factor=1.0)
        expected = model.expected(np.arange(24))
        assert int(np.argmin(expected)) == 8

    def test_weekend_lift(self):
        model = ArrivalModel(base_sessions_per_epoch=1000, weekend_factor=1.2)
        expected = model.expected(np.arange(168))
        weekday_mean = expected[:120].mean()
        weekend_mean = expected[120:].mean()
        assert weekend_mean > weekday_mean

    def test_amplitude_zero_is_flat(self):
        model = ArrivalModel(base_sessions_per_epoch=1000, diurnal_amplitude=0.0,
                             weekend_factor=1.0)
        expected = model.expected(np.arange(24))
        assert np.allclose(expected, 1000.0)


class TestSample:
    def test_counts_positive_ints(self):
        model = ArrivalModel(base_sessions_per_epoch=500)
        counts = model.sample(48, np.random.default_rng(0))
        assert counts.shape == (48,)
        assert counts.dtype == np.int64
        assert (counts >= model.min_sessions).all()

    def test_deterministic(self):
        model = ArrivalModel()
        c1 = model.sample(24, np.random.default_rng(5))
        c2 = model.sample(24, np.random.default_rng(5))
        assert np.array_equal(c1, c2)

    def test_tracks_expected_profile(self):
        model = ArrivalModel(base_sessions_per_epoch=5000, noise_sigma=0.01)
        counts = model.sample(24, np.random.default_rng(1))
        expected = model.expected(np.arange(24))
        assert np.allclose(counts, expected, rtol=0.1)

    def test_min_sessions_floor(self):
        model = ArrivalModel(base_sessions_per_epoch=1, min_sessions=50)
        counts = model.sample(5, np.random.default_rng(2))
        assert (counts == 50).all()
