"""Tests for the statistical QoE engine."""

import numpy as np
import pytest

from repro.trace.entities import CONNECTION_TYPES, WorldConfig, build_world
from repro.trace.events import EventEffects
from repro.trace.population import AttributeSampler
from repro.trace.qoe import (
    EffectArrays,
    QoEModelParams,
    StatisticalQoEEngine,
)


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(n_asns=30, n_cdns=6, n_sites=12),
                       np.random.default_rng(4))


@pytest.fixture(scope="module")
def engine(world):
    return StatisticalQoEEngine(world)


@pytest.fixture(scope="module")
def codes(world):
    return AttributeSampler(world).sample(5000, np.random.default_rng(5))


def neutral(n):
    return EffectArrays.neutral(n)


class TestEffectArrays:
    def test_neutral(self):
        eff = neutral(4)
        assert len(eff) == 4
        assert (eff.bandwidth_factor == 1.0).all()
        assert np.isinf(eff.bitrate_cap_kbps).all()


class TestBatchGeneration:
    def test_shapes(self, engine, codes):
        batch = engine.generate(codes, neutral(len(codes)), np.random.default_rng(0))
        n = codes.shape[0]
        for col in ("duration_s", "buffering_s", "join_time_s",
                    "bitrate_kbps", "join_failed"):
            assert getattr(batch, col).shape == (n,)

    def test_invariants(self, engine, codes):
        batch = engine.generate(codes, neutral(len(codes)), np.random.default_rng(0))
        ok = ~batch.join_failed
        assert (batch.duration_s[ok] > 0).all()
        assert (batch.buffering_s[ok] >= 0).all()
        assert (batch.buffering_s[ok] <= batch.duration_s[ok] + 1e-9).all()
        assert (batch.join_time_s[ok] > 0).all()
        assert (batch.bitrate_kbps[ok] > 0).all()
        # Failed sessions carry no playback measurements.
        assert np.isnan(batch.join_time_s[~ok]).all()
        assert np.isnan(batch.bitrate_kbps[~ok]).all()
        assert (batch.duration_s[~ok] == 0).all()

    def test_baseline_calibration(self, engine, codes):
        """Event-free problem rates are low but non-zero.

        Structural pathologies live in the planted event catalogue, so
        the bare engine produces only the diffuse background; the
        Figure 1 shape emerges at trace level (see integration tests).
        """
        batch = engine.generate(codes, neutral(len(codes)), np.random.default_rng(1))
        ok = ~batch.join_failed
        buf_ratio = batch.buffering_s[ok] / batch.duration_s[ok]
        assert 0.0005 < batch.join_failed.mean() < 0.10
        assert 0.002 < (buf_ratio > 0.05).mean() < 0.20
        assert 0.002 < (batch.join_time_s[ok] > 10).mean() < 0.20
        assert (batch.bitrate_kbps[ok] < 2000).mean() > 0.3

    def test_bitrates_come_from_site_ladders(self, world, engine, codes):
        batch = engine.generate(codes, neutral(len(codes)), np.random.default_rng(2))
        ok = ~batch.join_failed
        for site_idx, site in enumerate(world.sites):
            rows = (codes[:, 2] == site_idx) & ok
            if rows.any():
                assert set(np.unique(batch.bitrate_kbps[rows])) <= set(site.ladder)

    def test_deterministic_given_rng(self, engine, codes):
        b1 = engine.generate(codes, neutral(len(codes)), np.random.default_rng(9))
        b2 = engine.generate(codes, neutral(len(codes)), np.random.default_rng(9))
        assert np.array_equal(b1.join_failed, b2.join_failed)
        assert np.allclose(b1.buffering_s, b2.buffering_s)


class TestEventEffectsApplied:
    def test_failure_odds_raise_failures(self, engine, codes):
        eff = neutral(len(codes))
        eff.join_failure_odds[:] = 25.0
        rng = np.random.default_rng(3)
        degraded = engine.generate(codes, eff, rng)
        baseline = engine.generate(
            codes, neutral(len(codes)), np.random.default_rng(3)
        )
        assert degraded.join_failed.mean() > 3 * baseline.join_failed.mean()

    def test_bitrate_cap_is_absolute(self, engine, codes):
        eff = neutral(len(codes))
        eff.bitrate_cap_kbps[:] = 650.0
        batch = engine.generate(codes, eff, np.random.default_rng(4))
        ok = ~batch.join_failed
        assert (batch.bitrate_kbps[ok] <= 650.0).all()

    def test_bitrate_cap_does_not_increase_buffering(self, engine, codes):
        capped = neutral(len(codes))
        capped.bitrate_cap_kbps[:] = 650.0
        b_capped = engine.generate(codes, capped, np.random.default_rng(5))
        b_base = engine.generate(
            codes, neutral(len(codes)), np.random.default_rng(5)
        )
        ok = ~b_capped.join_failed & ~b_base.join_failed
        ratio_capped = (b_capped.buffering_s[ok] / b_capped.duration_s[ok] > 0.05).mean()
        ratio_base = (b_base.buffering_s[ok] / b_base.duration_s[ok] > 0.05).mean()
        assert ratio_capped <= ratio_base + 0.02

    def test_buffering_factor_uniformly_degrades(self, engine, codes):
        eff = neutral(len(codes))
        eff.buffering_factor[:] = 6.0
        batch = engine.generate(codes, eff, np.random.default_rng(6))
        ok = ~batch.join_failed
        ratio = batch.buffering_s[ok] / batch.duration_s[ok]
        # With a +5 additive stall term most sessions cross the 5% bar
        # regardless of their connection type.
        for conn_idx in range(len(CONNECTION_TYPES)):
            rows = codes[ok.nonzero()[0], 6] == conn_idx
            if rows.sum() > 50:
                assert (ratio[rows] > 0.05).mean() > 0.4, CONNECTION_TYPES[conn_idx]

    def test_join_time_factor(self, engine, codes):
        eff = neutral(len(codes))
        eff.join_time_factor[:] = 6.0
        slow = engine.generate(codes, eff, np.random.default_rng(7))
        base = engine.generate(codes, neutral(len(codes)), np.random.default_rng(7))
        assert np.nanmedian(slow.join_time_s) > 4 * np.nanmedian(base.join_time_s)

    def test_bandwidth_factor_lowers_bitrate(self, engine, codes):
        eff = neutral(len(codes))
        eff.bandwidth_factor[:] = 0.2
        slow = engine.generate(codes, eff, np.random.default_rng(8))
        base = engine.generate(codes, neutral(len(codes)), np.random.default_rng(8))
        assert np.nanmean(slow.bitrate_kbps) < np.nanmean(base.bitrate_kbps)


class TestParams:
    def test_custom_params(self, world, codes):
        params = QoEModelParams(base_failure_prob=0.2)
        engine = StatisticalQoEEngine(world, params)
        batch = engine.generate(codes, neutral(len(codes)), np.random.default_rng(0))
        assert batch.join_failed.mean() > 0.1
