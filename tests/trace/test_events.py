"""Tests for the ground-truth event catalogue."""

import numpy as np
import pytest

from repro.core.clusters import ClusterKey
from repro.trace.entities import WorldConfig, build_world
from repro.trace.events import (
    EventCatalog,
    EventConfig,
    EventEffects,
    GroundTruthEvent,
    NEUTRAL_EFFECTS,
    generate_catalog,
)


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(n_asns=60, n_cdns=8, n_sites=24),
                       np.random.default_rng(2))


def simple_event(**overrides) -> GroundTruthEvent:
    kwargs = dict(
        event_id="e0",
        tag="test",
        category="major",
        primary_metric="join_failure",
        constraints=(("cdn", "cdn_x"),),
        start_epoch=2,
        duration_epochs=3,
        effects=EventEffects(join_failure_odds=10.0),
    )
    kwargs.update(overrides)
    return GroundTruthEvent(**kwargs)


class TestEventEffects:
    def test_neutral(self):
        assert NEUTRAL_EFFECTS.is_neutral
        assert not EventEffects(buffering_factor=2.0).is_neutral

    def test_combine_multiplies(self):
        a = EventEffects(bandwidth_factor=0.5, join_failure_odds=2.0)
        b = EventEffects(bandwidth_factor=0.5, join_time_factor=3.0)
        c = a.combine(b)
        assert c.bandwidth_factor == pytest.approx(0.25)
        assert c.join_failure_odds == pytest.approx(2.0)
        assert c.join_time_factor == pytest.approx(3.0)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            EventEffects(buffering_factor=0.0)
        with pytest.raises(ValueError):
            EventEffects(bitrate_cap_kbps=-1.0)


class TestGroundTruthEvent:
    def test_activity_window(self):
        event = simple_event()
        assert not event.is_active(1)
        assert event.is_active(2)
        assert event.is_active(4)
        assert not event.is_active(5)
        assert event.end_epoch == 5

    def test_active_epochs_vector(self):
        event = simple_event()
        active = event.active_epochs(8)
        assert active.tolist() == [False, False, True, True, True, False, False, False]

    def test_recurrence(self):
        event = simple_event(
            start_epoch=0, duration_epochs=48,
            recurrence_period=24, recurrence_active=6,
        )
        assert event.is_active(0)
        assert event.is_active(5)
        assert not event.is_active(6)
        assert event.is_active(24)
        assert not event.is_active(30)

    def test_prevalence(self):
        event = simple_event(start_epoch=0, duration_epochs=12)
        assert event.prevalence(24) == pytest.approx(0.5)

    def test_cluster_key(self):
        event = simple_event(constraints=(("asn", "AS1"), ("cdn", "c2")))
        assert event.cluster_key == ClusterKey.from_mapping(
            {"asn": "AS1", "cdn": "c2"}
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown metric"):
            simple_event(primary_metric="latency")
        with pytest.raises(ValueError, match="unknown category"):
            simple_event(category="catastrophic")
        with pytest.raises(ValueError, match="constrain"):
            simple_event(constraints=())
        with pytest.raises(ValueError, match="invalid event window"):
            simple_event(duration_epochs=0)
        with pytest.raises(ValueError, match="go together"):
            simple_event(recurrence_period=24)
        with pytest.raises(ValueError, match="invalid recurrence"):
            simple_event(recurrence_period=24, recurrence_active=30)


class TestEventCatalog:
    def test_active_at(self):
        catalog = EventCatalog([
            simple_event(event_id="a", start_epoch=0, duration_epochs=2),
            simple_event(event_id="b", start_epoch=1, duration_epochs=2),
        ])
        assert [e.event_id for e in catalog.active_at(1)] == ["a", "b"]
        assert [e.event_id for e in catalog.active_at(2)] == ["b"]

    def test_filters(self):
        catalog = EventCatalog([
            simple_event(event_id="a", category="chronic"),
            simple_event(event_id="b", primary_metric="bitrate"),
        ])
        assert len(catalog.by_category("chronic")) == 1
        assert len(catalog.by_metric("bitrate")) == 1
        assert len(catalog.keys()) == 1  # same constraints


class TestGenerateCatalog:
    @pytest.fixture(scope="class")
    def catalog(self, world):
        return generate_catalog(
            world, n_epochs=168, config=EventConfig(),
            rng=np.random.default_rng(3),
        )

    def test_deterministic(self, world):
        c1 = generate_catalog(world, 72, rng=np.random.default_rng(5))
        c2 = generate_catalog(world, 72, rng=np.random.default_rng(5))
        assert [e.event_id for e in c1] == [e.event_id for e in c2]
        assert [e.constraints for e in c1] == [e.constraints for e in c2]

    def test_all_categories_present(self, catalog):
        for category in ("chronic", "major", "minor", "transient"):
            assert catalog.by_category(category), category

    def test_all_metrics_targeted(self, catalog):
        for metric in ("buffering_ratio", "bitrate", "join_time", "join_failure"):
            assert catalog.by_metric(metric), metric

    def test_chronic_prevalence_above_bar(self, catalog):
        # Table 3 needs chronics with >60% prevalence.
        for event in catalog.by_category("chronic"):
            assert event.prevalence(168) > 0.6, event.tag

    def test_transients_last_one_epoch(self, catalog):
        for event in catalog.by_category("transient"):
            assert event.duration_epochs == 1

    def test_event_windows_within_trace(self, catalog):
        for event in catalog:
            assert 0 <= event.start_epoch < 168

    def test_constraints_reference_real_entities(self, world, catalog):
        vocab = {
            "asn": {a.name for a in world.asns},
            "cdn": {c.name for c in world.cdns},
            "site": {s.name for s in world.sites},
            "connection_type": set(
                __import__("repro.trace.entities", fromlist=["CONNECTION_TYPES"]).CONNECTION_TYPES
            ),
        }
        for event in catalog:
            for attr, label in event.constraints:
                assert label in vocab[attr], (event.event_id, attr, label)

    def test_counts_scale_with_weeks(self, world):
        one = generate_catalog(world, 168, rng=np.random.default_rng(6))
        two = generate_catalog(world, 336, rng=np.random.default_rng(6))
        assert len(two.by_category("major")) >= len(one.by_category("major"))

    def test_effects_match_primary_metric(self, catalog):
        for event in catalog.by_category("major"):
            eff = event.effects
            if event.primary_metric == "buffering_ratio":
                assert eff.buffering_factor > 1.0
            elif event.primary_metric == "bitrate":
                assert np.isfinite(eff.bitrate_cap_kbps)
            elif event.primary_metric == "join_time":
                assert eff.join_time_factor > 1.0
            elif event.primary_metric == "join_failure":
                assert eff.join_failure_odds > 1.0

    def test_themed_chronics_can_be_disabled(self, world):
        catalog = generate_catalog(
            world, 72,
            config=EventConfig(include_themed_chronics=False),
            rng=np.random.default_rng(8),
        )
        assert not catalog.by_category("chronic")
