"""Tests for timeseries computations (Figures 2, 9, 13 inputs)."""

import numpy as np

from repro.analysis.timeseries import (
    cluster_count_timeseries,
    cross_metric_correlation,
    problem_ratio_timeseries,
    problem_session_counts,
    unattributed_problem_counts,
)


class TestProblemRatioSeries:
    def test_all_metrics_present(self, tiny_analysis):
        series = problem_ratio_timeseries(tiny_analysis)
        assert set(series) == set(tiny_analysis.metric_names)

    def test_series_lengths(self, tiny_analysis):
        n = tiny_analysis.grid.n_epochs
        for s in problem_ratio_timeseries(tiny_analysis).values():
            assert s.hours.shape == (n,)
            assert s.ratio.shape == (n,)

    def test_ratios_in_unit_interval(self, tiny_analysis):
        for s in problem_ratio_timeseries(tiny_analysis).values():
            assert (s.ratio >= 0).all()
            assert (s.ratio <= 1).all()

    def test_mean_std(self, tiny_analysis):
        for s in problem_ratio_timeseries(tiny_analysis).values():
            assert s.mean == np.mean(s.ratio)
            assert s.std == np.std(s.ratio)

    def test_problem_ratio_consistently_positive(self, tiny_analysis):
        """Figure 2's observation: problems exist in every epoch."""
        for name, s in problem_ratio_timeseries(tiny_analysis).items():
            assert (s.ratio > 0).mean() > 0.9, name


class TestCorrelation:
    def test_pairs_and_range(self, tiny_analysis):
        corr = cross_metric_correlation(tiny_analysis)
        n = len(tiny_analysis.metrics)
        assert len(corr) == n * (n - 1) // 2
        for value in corr.values():
            assert -1.0 <= value <= 1.0

    def test_metrics_not_perfectly_correlated(self, tiny_analysis):
        """The paper observes only weak temporal correlation.

        At the 24-epoch tiny scale the chronic events cannot be
        phase-staggered (a single day), so correlations stay high; the
        week-scale runs recorded in EXPERIMENTS.md show the weak
        correlations. Here we only assert the series are not
        degenerate copies of each other.
        """
        for pair, value in cross_metric_correlation(tiny_analysis).items():
            assert value < 0.995, pair


class TestClusterCounts:
    def test_series(self, tiny_analysis):
        series = cluster_count_timeseries(tiny_analysis["join_time"])
        n = tiny_analysis.grid.n_epochs
        assert series.problem_clusters.shape == (n,)
        assert series.critical_clusters.shape == (n,)
        assert (series.critical_clusters <= series.problem_clusters).all()

    def test_reduction_factor(self, tiny_analysis):
        series = cluster_count_timeseries(tiny_analysis["join_time"])
        assert series.mean_reduction_factor >= 1.0


class TestSessionCounts:
    def test_problem_counts(self, tiny_analysis):
        ma = tiny_analysis["join_failure"]
        counts = problem_session_counts(ma)
        assert counts.sum() == ma.total_problem_sessions

    def test_unattributed_bounded(self, tiny_analysis):
        ma = tiny_analysis["join_failure"]
        unattributed = unattributed_problem_counts(ma)
        original = problem_session_counts(ma)
        assert (unattributed >= -1e-6).all()
        assert (unattributed <= original + 1e-6).all()
