"""Tests for the critical-cluster drill-down diagnosis (paper §6)."""

import numpy as np
import pytest

from repro.analysis.drilldown import drill_down
from repro.core.clusters import ClusterKey
from repro.core.epoching import EpochGrid
from repro.core.metrics import JOIN_FAILURE
from repro.core.sessions import SessionTable
from tests.conftest import make_session


def key(**pairs):
    return ClusterKey.from_mapping(pairs)


@pytest.fixture(scope="module")
def path_problem_table() -> SessionTable:
    """cdn_bad fails only toward AS_x; everything else is healthy."""
    rng = np.random.default_rng(5)
    sessions = []
    for _ in range(6000):
        asn = f"AS_{'x' if rng.random() < 0.3 else rng.integers(0, 3)}"
        cdn = "cdn_bad" if rng.random() < 0.4 else "cdn_ok"
        fail_p = 0.5 if (cdn == "cdn_bad" and asn == "AS_x") else 0.02
        sessions.append(
            make_session(
                start_time=float(rng.uniform(0, 4 * 3600)),
                join_failed=bool(rng.random() < fail_p),
                asn=asn,
                cdn=cdn,
            )
        )
    return SessionTable.from_sessions(sessions)


class TestDrillDown:
    def test_cluster_stats(self, path_problem_table):
        report = drill_down(path_problem_table, key(cdn="cdn_bad"), JOIN_FAILURE)
        assert report.cluster_sessions > 0
        assert report.cluster_ratio > report.global_ratio

    def test_refining_attribute_found(self, path_problem_table):
        """Within the bad CDN, the drill-down must point at AS_x."""
        report = drill_down(path_problem_table, key(cdn="cdn_bad"), JOIN_FAILURE)
        worst = report.worst_slices(top=1)[0]
        assert worst.attribute == "asn"
        assert worst.value == "AS_x"
        assert "asn" in report.concentrated_attributes(factor=1.5)

    def test_constrained_attribute_not_sliced(self, path_problem_table):
        report = drill_down(path_problem_table, key(cdn="cdn_bad"), JOIN_FAILURE)
        assert "cdn" not in report.slices

    def test_hourly_profile(self, path_problem_table):
        grid = EpochGrid(n_epochs=4)
        report = drill_down(
            path_problem_table, key(cdn="cdn_bad"), JOIN_FAILURE, grid=grid
        )
        assert report.hourly_ratio.shape == (4,)
        assert (report.hourly_ratio >= 0).all()

    def test_unknown_value_yields_empty_cluster(self, path_problem_table):
        report = drill_down(path_problem_table, key(cdn="cdn_mars"), JOIN_FAILURE)
        assert report.cluster_sessions == 0
        assert report.cluster_ratio == 0.0

    def test_min_slice_sessions_filters(self, path_problem_table):
        coarse = drill_down(
            path_problem_table, key(cdn="cdn_bad"), JOIN_FAILURE,
            min_slice_sessions=10_000,
        )
        assert not coarse.slices

    def test_render_produces_report(self, path_problem_table):
        grid = EpochGrid(n_epochs=4)
        report = drill_down(
            path_problem_table, key(cdn="cdn_bad"), JOIN_FAILURE, grid=grid
        )
        text = report.render()
        assert "Drill-down" in text
        assert "By asn" in text
        assert "by hour" in text

    def test_on_generated_trace(self, tiny_ctx):
        """Drilling into the top planted critical cluster works end to end."""
        from repro.analysis.whatif import rank_critical_clusters

        ma = tiny_ctx.analysis["join_failure"]
        top = rank_critical_clusters(ma, by="coverage")[0]
        report = drill_down(
            tiny_ctx.trace.table, top, JOIN_FAILURE, grid=tiny_ctx.analysis.grid
        )
        assert report.cluster_sessions > 0
        assert report.render()
