"""Tests for attribute-association analysis (§3.2 corner case)."""

import numpy as np
import pytest

from repro.analysis.associations import (
    attribute_associations,
    cramers_v,
    explain_split_attribution,
    value_concentration,
)
from repro.core.clusters import ClusterKey
from repro.core.sessions import SessionTable
from tests.conftest import make_session


class TestCramersV:
    def test_perfect_association(self):
        a = np.array([0, 0, 1, 1, 2, 2] * 50)
        assert cramers_v(a, a) > 0.95

    def test_independent_columns(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=5000)
        b = rng.integers(0, 4, size=5000)
        assert cramers_v(a, b) < 0.1

    def test_constant_column_is_zero(self):
        a = np.zeros(100, dtype=int)
        b = np.arange(100) % 3
        assert cramers_v(a, b) == 0.0

    def test_empty(self):
        assert cramers_v(np.array([], dtype=int), np.array([], dtype=int)) == 0.0

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, size=1000)
        b = (a + rng.integers(0, 2, size=1000)) % 3
        assert cramers_v(a, b) == pytest.approx(cramers_v(b, a))

    def test_bounded(self):
        rng = np.random.default_rng(2)
        for _ in range(5):
            a = rng.integers(0, 5, size=300)
            b = rng.integers(0, 4, size=300)
            assert 0.0 <= cramers_v(a, b) <= 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            cramers_v(np.zeros(3, dtype=int), np.zeros(4, dtype=int))


@pytest.fixture(scope="module")
def correlated_table() -> SessionTable:
    """site_locked always uses cdn_only; other sites spread out."""
    rng = np.random.default_rng(3)
    sessions = []
    for _ in range(3000):
        if rng.random() < 0.3:
            site, cdn = "site_locked", "cdn_only"
        else:
            site = f"site_{rng.integers(0, 3)}"
            cdn = f"cdn_{rng.integers(0, 3)}"
        sessions.append(make_session(site=site, cdn=cdn,
                                     asn=f"AS{rng.integers(0, 5)}"))
    return SessionTable.from_sessions(sessions)


class TestAttributeAssociations:
    def test_correlated_pair_tops_ranking(self, correlated_table):
        results = attribute_associations(correlated_table)
        top = results[0]
        assert {top.attribute_a, top.attribute_b} == {"site", "cdn"}
        assert top.cramers_v > 0.4

    def test_threshold_filters(self, correlated_table):
        strong = attribute_associations(correlated_table, threshold=0.4)
        assert all(r.cramers_v >= 0.4 for r in strong)
        assert len(strong) < len(attribute_associations(correlated_table))

    def test_invalid_threshold(self, correlated_table):
        with pytest.raises(ValueError):
            attribute_associations(correlated_table, threshold=1.5)

    def test_generated_trace_has_wireless_correlation(self, tiny_trace):
        """Wireless ASNs concentrate on mobile connections by
        construction — the association analysis must see it."""
        results = attribute_associations(tiny_trace.table)
        pair = next(
            r for r in results
            if {r.attribute_a, r.attribute_b} == {"asn", "connection_type"}
        )
        assert pair.cramers_v > 0.15


class TestValueConcentration:
    def test_locked_site_single_cdn(self, correlated_table):
        dist = value_concentration(correlated_table, "site", "site_locked", "cdn")
        assert dist["cdn_only"] == pytest.approx(1.0)

    def test_spread_site(self, correlated_table):
        dist = value_concentration(correlated_table, "site", "site_0", "cdn")
        assert max(dist.values()) < 0.6

    def test_distribution_sums_to_one(self, correlated_table):
        dist = value_concentration(correlated_table, "site", "site_1", "cdn")
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_unknown_value(self, correlated_table):
        with pytest.raises(KeyError):
            value_concentration(correlated_table, "site", "site_mars", "cdn")


class TestExplainSplit:
    def test_cross_pairs_ranked(self, correlated_table):
        results = explain_split_attribution(
            correlated_table,
            ClusterKey.from_mapping({"site": "site_locked"}),
            ClusterKey.from_mapping({"cdn": "cdn_only"}),
        )
        assert len(results) == 1
        assert results[0].cramers_v > 0.4

    def test_shared_attribute_skipped(self, correlated_table):
        results = explain_split_attribution(
            correlated_table,
            ClusterKey.from_mapping({"site": "s", "cdn": "c"}),
            ClusterKey.from_mapping({"cdn": "c2"}),
        )
        # only (site, cdn) cross pair; (cdn, cdn) skipped
        assert len(results) == 1
