"""Tests for ground-truth validation scoring."""

import numpy as np
import pytest

from repro.analysis.validation import (
    EventRecovery,
    keys_related,
    validate_all,
    validate_metric,
)
from repro.core.clusters import ClusterKey
from repro.trace.events import EventCatalog, EventEffects, GroundTruthEvent


def key(**pairs):
    return ClusterKey.from_mapping(pairs)


class TestKeysRelated:
    def test_exact(self):
        assert keys_related(key(cdn="c"), key(cdn="c"))

    def test_ancestor_descendant(self):
        assert keys_related(key(cdn="c"), key(cdn="c", asn="a"))
        assert keys_related(key(cdn="c", asn="a"), key(cdn="c"))

    def test_unrelated(self):
        assert not keys_related(key(cdn="c"), key(cdn="d"))
        assert not keys_related(key(cdn="c"), key(asn="a"))


class TestEventRecovery:
    def make(self, **kwargs):
        event = GroundTruthEvent(
            event_id="e", tag="t", category="major",
            primary_metric="join_failure",
            constraints=(("cdn", "c"),),
            start_epoch=0, duration_epochs=10,
            effects=EventEffects(join_failure_odds=10.0),
        )
        defaults = dict(event=event, active_epochs=10,
                        exact_detected_epochs=5, relaxed_detected_epochs=7)
        defaults.update(kwargs)
        return EventRecovery(**defaults)

    def test_recalls(self):
        r = self.make()
        assert r.exact_recall == pytest.approx(0.5)
        assert r.relaxed_recall == pytest.approx(0.7)
        assert r.detected

    def test_detectable_recall(self):
        r = self.make(detectable_epochs=4, exact_detected_detectable=3)
        assert r.detectable_recall == pytest.approx(0.75)

    def test_no_detectable_info(self):
        assert self.make().detectable_recall is None
        assert self.make().detectable  # unknown counts as detectable

    def test_zero_active(self):
        r = self.make(active_epochs=0, exact_detected_epochs=0,
                      relaxed_detected_epochs=0)
        assert r.exact_recall == 0.0


class TestValidateMetric:
    def test_tiny_trace_scores(self, tiny_ctx):
        reports = validate_all(
            tiny_ctx.analysis, tiny_ctx.trace.catalog,
            table=tiny_ctx.trace.table,
        )
        assert set(reports) == set(tiny_ctx.analysis.metric_names)
        for name, report in reports.items():
            assert report.n_events >= 0
            assert 0 <= report.event_recall <= 1
            assert 0 <= report.top_k_precision <= report.top_k_relaxed_precision <= 1

    def test_detectable_events_mostly_found(self, tiny_ctx):
        """The detector's core guarantee: events whose clusters pass
        the significance floor are recovered."""
        reports = validate_all(
            tiny_ctx.analysis, tiny_ctx.trace.catalog,
            table=tiny_ctx.trace.table,
        )
        recalls = [r.detectable_event_recall for r in reports.values()
                   if any(rec.detectable_epochs for rec in r.recoveries)]
        assert recalls
        assert np.mean(recalls) > 0.5

    def test_empty_catalog(self, tiny_analysis):
        report = validate_metric(
            tiny_analysis["join_failure"], EventCatalog([])
        )
        assert report.n_events == 0
        assert report.event_recall == 0.0
        # precision still computed over top-k (all organic => 0 matches)
        assert report.top_k_precision == 0.0
