"""Tests for the cost-benefit what-if extension (paper §6)."""

import numpy as np
import pytest

from repro.analysis.costbenefit import (
    CostModel,
    cost_benefit_analysis,
)
from repro.core.clusters import ClusterKey


def key(**pairs):
    return ClusterKey.from_mapping(pairs)


class TestCostModel:
    def test_single_attribute_costs(self):
        model = CostModel()
        assert model.cost_of(key(site="s"), 0.0) < model.cost_of(key(asn="a"), 0.0)

    def test_combination_uses_other_cost(self):
        model = CostModel()
        assert model.cost_of(key(site="s", cdn="c"), 0.0) == model.other_base_cost

    def test_session_cost_scales(self):
        model = CostModel(session_cost=0.01)
        cheap = model.cost_of(key(site="s"), 100.0)
        pricey = model.cost_of(key(site="s"), 10_000.0)
        assert pricey > cheap


class TestCostBenefitAnalysis:
    def test_curves_monotone_in_budget(self, tiny_analysis):
        result = cost_benefit_analysis(tiny_analysis["join_failure"])
        for points in (result.cost_aware, result.cost_blind):
            improvements = [p.improvement for p in points]
            assert all(
                b >= a - 1e-12 for a, b in zip(improvements, improvements[1:])
            )

    def test_spend_within_budget(self, tiny_analysis):
        result = cost_benefit_analysis(tiny_analysis["buffering_ratio"])
        for points in (result.cost_aware, result.cost_blind):
            for p in points:
                assert p.spent <= p.budget + 1e-9

    def test_full_budget_equalises_strategies(self, tiny_analysis):
        """With budget for everything, ordering stops mattering."""
        ma = tiny_analysis["join_failure"]
        result = cost_benefit_analysis(ma)
        assert result.cost_aware[-1].improvement == pytest.approx(
            result.cost_blind[-1].improvement
        )

    def test_cost_aware_never_worse_at_tight_budgets(self, tiny_analysis):
        """Greedy value-per-cost dominates value-only under a budget
        (both use the same greedy filler, so this holds per budget)."""
        ma = tiny_analysis["buffering_ratio"]
        result = cost_benefit_analysis(ma)
        # Compare at the tightest non-zero budgets.
        gaps = [result.advantage_at(i) for i in range(1, len(result.budgets) // 2)]
        assert all(g >= -0.05 for g in gaps)  # allow small greedy slack

    def test_custom_budgets(self, tiny_analysis):
        result = cost_benefit_analysis(
            tiny_analysis["join_failure"], budgets=np.array([0.0, 5.0, 50.0])
        )
        assert result.budgets.tolist() == [0.0, 5.0, 50.0]
        assert result.cost_aware[0].n_fixed == 0
        assert result.cost_aware[0].improvement == 0.0
