"""Tests for the what-if improvement engine (Section 5)."""

import numpy as np
import pytest

from repro.analysis.whatif import (
    attribute_restricted_curves,
    cluster_alleviation,
    oracle_improvement,
    proactive_simulation,
    rank_critical_clusters,
    reactive_simulation,
    topk_improvement_curve,
)
from repro.core.aggregation import ClusterStats
from repro.core.clusters import ClusterKey
from repro.core.critical import CriticalAttribution
from repro.core.epoching import EpochGrid
from repro.core.metrics import JOIN_FAILURE
from repro.core.pipeline import EpochAnalysis, MetricAnalysis


def key(**pairs):
    return ClusterKey.from_mapping(pairs)


def epoch(i, total_sessions=10_000, total_problems=1000, criticals=None):
    """Hand-built epoch summary. criticals: {key: (attr_problems, attr_sessions)}."""
    criticals = criticals or {}
    return EpochAnalysis(
        epoch=i,
        total_sessions=total_sessions,
        total_problems=total_problems,
        min_sessions=50,
        problem_cluster_coverage=0.9,
        problem_clusters={k: ClusterStats(int(s), int(p))
                          for k, (p, s) in criticals.items()},
        critical_clusters={
            k: CriticalAttribution(
                attributed_problems=p,
                attributed_sessions=s,
                own_stats=ClusterStats(int(s), int(p)),
            )
            for k, (p, s) in criticals.items()
        },
    )


def metric_analysis(epochs):
    return MetricAnalysis(
        metric=JOIN_FAILURE,
        grid=EpochGrid(n_epochs=len(epochs)),
        epochs=epochs,
    )


@pytest.fixture()
def simple_ma():
    """Cluster A critical in epochs 0-3 (streak), B only in epoch 1."""
    a, b = key(cdn="A"), key(site="B")
    return metric_analysis([
        epoch(0, criticals={a: (400.0, 1000.0)}),
        epoch(1, criticals={a: (400.0, 1000.0), b: (200.0, 600.0)}),
        epoch(2, criticals={a: (400.0, 1000.0)}),
        epoch(3, criticals={a: (400.0, 1000.0)}),
        epoch(4),
    ])


class TestClusterAlleviation:
    def test_reduces_to_global_average(self, simple_ma):
        e = simple_ma.epochs[0]
        # global ratio 0.1; attributed 400 problems over 1000 sessions
        # -> baseline 100 -> alleviate 300.
        assert cluster_alleviation(e, key(cdn="A")) == pytest.approx(300.0)

    def test_absent_cluster_zero(self, simple_ma):
        assert cluster_alleviation(simple_ma.epochs[0], key(site="B")) == 0.0

    def test_never_negative(self):
        e = epoch(0, total_problems=5000, criticals={key(cdn="A"): (10.0, 1000.0)})
        # attributed ratio 1% < global 50%: no negative alleviation
        assert cluster_alleviation(e, key(cdn="A")) == 0.0


class TestRanking:
    def test_coverage_ranking(self, simple_ma):
        ranked = rank_critical_clusters(simple_ma, by="coverage")
        assert ranked[0] == key(cdn="A")  # 1600 attributed vs 200

    def test_prevalence_ranking(self, simple_ma):
        ranked = rank_critical_clusters(simple_ma, by="prevalence")
        assert ranked[0] == key(cdn="A")  # 4/5 epochs vs 1/5

    def test_persistence_ranking(self, simple_ma):
        ranked = rank_critical_clusters(simple_ma, by="persistence")
        assert ranked[0] == key(cdn="A")  # streak of 4 vs 1

    def test_unknown_ranking(self, simple_ma):
        with pytest.raises(ValueError, match="unknown ranking"):
            rank_critical_clusters(simple_ma, by="alphabetical")

    def test_deterministic(self, simple_ma):
        assert rank_critical_clusters(simple_ma) == rank_critical_clusters(simple_ma)


class TestOracleImprovement:
    def test_fix_everything(self, simple_ma):
        improvement = oracle_improvement(
            simple_ma, [key(cdn="A"), key(site="B")]
        )
        # A alleviates 300 in each of 4 epochs; B alleviates 140 once.
        assert improvement == pytest.approx((4 * 300 + 140) / 5000)

    def test_fix_nothing(self, simple_ma):
        assert oracle_improvement(simple_ma, []) == 0.0

    def test_fix_subset(self, simple_ma):
        assert oracle_improvement(simple_ma, [key(site="B")]) == pytest.approx(
            140 / 5000
        )


class TestTopkCurve:
    def test_monotone_nondecreasing(self, simple_ma):
        curve = topk_improvement_curve(simple_ma, by="coverage")
        assert (np.diff(curve.improvement) >= -1e-12).all()

    def test_full_fraction_matches_oracle_all(self, simple_ma):
        curve = topk_improvement_curve(simple_ma, by="coverage")
        assert curve.improvement[-1] == pytest.approx(
            oracle_improvement(simple_ma, [key(cdn="A"), key(site="B")])
        )

    def test_at_fraction(self, simple_ma):
        curve = topk_improvement_curve(simple_ma, by="coverage")
        assert curve.at_fraction(1.0) == pytest.approx(curve.improvement[-1])

    def test_at_fraction_above_tabulated_grid(self, simple_ma):
        """Fractions beyond the grid clamp to the last tabulated point."""
        curve = topk_improvement_curve(
            simple_ma, by="coverage", fractions=[0.25, 0.5, 0.75]
        )
        for fraction in (0.8, 1.0, 2.5):
            assert curve.at_fraction(fraction) == pytest.approx(
                curve.improvement[-1]
            )

    def test_custom_fractions(self, simple_ma):
        curve = topk_improvement_curve(
            simple_ma, by="coverage", fractions=[0.5, 1.0]
        )
        assert curve.fractions.tolist() == [0.5, 1.0]
        # k = round(0.5 * 2) = 1 -> only cluster A fixed.
        assert curve.improvement[0] == pytest.approx(1200 / 5000)

    def test_tiny_trace_curves(self, tiny_analysis):
        for by in ("coverage", "prevalence", "persistence"):
            curve = topk_improvement_curve(tiny_analysis["join_failure"], by=by)
            assert (curve.improvement >= 0).all()
            assert (curve.improvement <= 1).all()
            assert (np.diff(curve.improvement) >= -1e-12).all()

    def test_coverage_ranking_dominates_at_full_fraction(self, tiny_analysis):
        ma = tiny_analysis["join_failure"]
        cov = topk_improvement_curve(ma, by="coverage")
        prev = topk_improvement_curve(ma, by="prevalence")
        # Fixing everything is ranking-independent.
        assert cov.improvement[-1] == pytest.approx(prev.improvement[-1])


class TestAttributeRestriction:
    def test_families_present(self, tiny_analysis):
        curves = attribute_restricted_curves(tiny_analysis["join_failure"])
        assert set(curves) == {
            "Any", "{Site, CDN, ASN, ConnType}", "Site", "ASN", "ConnType", "CDN",
        }

    def test_any_dominates_families(self, tiny_analysis):
        curves = attribute_restricted_curves(tiny_analysis["join_failure"])
        any_curve = curves["Any"].improvement
        for label, curve in curves.items():
            assert (curve.improvement <= any_curve + 1e-9).all(), label

    def test_union_dominates_singletons(self, tiny_analysis):
        curves = attribute_restricted_curves(tiny_analysis["join_failure"])
        union = curves["{Site, CDN, ASN, ConnType}"].improvement
        for label in ("Site", "ASN", "ConnType", "CDN"):
            assert (curves[label].improvement <= union + 1e-9).all(), label


class TestProactive:
    def test_identical_train_test_reaches_potential(self, simple_ma):
        result = proactive_simulation(simple_ma, simple_ma, top_fraction=1.0)
        assert result.improvement == pytest.approx(result.potential)
        assert result.fraction_of_potential == pytest.approx(1.0)

    def test_disjoint_train_gives_zero(self, simple_ma):
        c = key(asn="C")
        train = metric_analysis([epoch(0, criticals={c: (300.0, 800.0)})])
        result = proactive_simulation(train, simple_ma, top_fraction=1.0)
        assert result.improvement == 0.0
        assert result.potential > 0.0

    def test_top_fraction_validated(self, simple_ma):
        with pytest.raises(ValueError):
            proactive_simulation(simple_ma, simple_ma, top_fraction=0.0)

    def test_tiny_trace_proactive_below_potential(self, tiny_analysis):
        from repro.core.pipeline import restrict_epochs

        ma = tiny_analysis["join_failure"]
        n = len(ma.epochs)
        train = restrict_epochs(ma, range(0, n // 2))
        test = restrict_epochs(ma, range(n // 2, n))
        result = proactive_simulation(train, test, top_fraction=0.5)
        assert 0.0 <= result.improvement <= result.potential + 1e-9


class TestReactive:
    def test_streak_fixing_skips_first_epoch(self, simple_ma):
        result = reactive_simulation(simple_ma, detection_delay_epochs=1)
        # A's streak 0..3: fixed in 1,2,3 (3 * 300); B's single epoch
        # never gets fixed.
        assert result.improvement == pytest.approx(900 / 5000)

    def test_zero_delay_is_potential(self, simple_ma):
        result = reactive_simulation(simple_ma, detection_delay_epochs=0)
        assert result.improvement == pytest.approx(result.potential)

    def test_series_shapes(self, simple_ma):
        result = reactive_simulation(simple_ma)
        assert result.original_series.shape == (5,)
        assert result.after_series.shape == (5,)
        assert (result.after_series <= result.original_series + 1e-9).all()
        assert (result.unattributed_series >= -1e-9).all()

    def test_negative_delay_rejected(self, simple_ma):
        with pytest.raises(ValueError):
            reactive_simulation(simple_ma, detection_delay_epochs=-1)

    def test_longer_delay_never_helps_more(self, tiny_analysis):
        ma = tiny_analysis["buffering_ratio"]
        fast = reactive_simulation(ma, detection_delay_epochs=1)
        slow = reactive_simulation(ma, detection_delay_epochs=3)
        assert slow.improvement <= fast.improvement + 1e-9
