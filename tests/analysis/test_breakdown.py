"""Tests for the Figure 10 breakdown."""

import pytest

from repro.analysis.breakdown import (
    NOT_ATTRIBUTED,
    NOT_IN_PROBLEM_CLUSTER,
    critical_type_breakdown,
    signature_label,
    single_attribute_share,
)
from repro.core.attributes import DEFAULT_SCHEMA


class TestSignatureLabel:
    def test_paper_style(self):
        assert signature_label(("site",), DEFAULT_SCHEMA) == (
            "[*, *, site, *, *, *, *]"
        )
        assert signature_label(("asn", "cdn"), DEFAULT_SCHEMA) == (
            "[asn, cdn, *, *, *, *, *]"
        )

    def test_empty_signature(self):
        assert signature_label((), DEFAULT_SCHEMA) == "[*, *, *, *, *, *, *]"


class TestBreakdown:
    def test_fractions_sum_to_one(self, tiny_analysis):
        for name, ma in tiny_analysis.metrics.items():
            sectors = critical_type_breakdown(ma)
            total = sum(s.fraction for s in sectors)
            assert total == pytest.approx(1.0, abs=1e-6), name

    def test_residual_sectors_present(self, tiny_analysis):
        sectors = critical_type_breakdown(tiny_analysis["join_failure"])
        labels = [s.signature for s in sectors]
        assert NOT_ATTRIBUTED in labels
        assert NOT_IN_PROBLEM_CLUSTER in labels

    def test_max_sectors_folds_tail(self, tiny_analysis):
        sectors = critical_type_breakdown(tiny_analysis["join_failure"],
                                          max_sectors=2)
        named = [
            s for s in sectors
            if s.signature not in (NOT_ATTRIBUTED, NOT_IN_PROBLEM_CLUSTER,
                                   "Other combinations")
        ]
        assert len(named) <= 2

    def test_sectors_ordered_by_mass(self, tiny_analysis):
        sectors = critical_type_breakdown(tiny_analysis["buffering_ratio"])
        named = [
            s for s in sectors
            if s.signature not in (NOT_ATTRIBUTED, NOT_IN_PROBLEM_CLUSTER,
                                   "Other combinations")
        ]
        masses = [s.problem_sessions for s in named]
        assert masses == sorted(masses, reverse=True)

    def test_nonnegative(self, tiny_analysis):
        for ma in tiny_analysis.metrics.values():
            for s in critical_type_breakdown(ma):
                assert s.fraction >= 0
                assert s.problem_sessions >= 0

    def test_empty_analysis(self):
        from repro.core.epoching import EpochGrid
        from repro.core.metrics import JOIN_FAILURE
        from repro.core.pipeline import MetricAnalysis

        ma = MetricAnalysis(metric=JOIN_FAILURE, grid=EpochGrid(n_epochs=0),
                            epochs=[])
        assert critical_type_breakdown(ma) == []


class TestSingleAttributeShare:
    def test_shares_bounded(self, tiny_analysis):
        for ma in tiny_analysis.metrics.values():
            shares = single_attribute_share(ma)
            assert set(shares) == {"site", "cdn", "asn", "connection_type"}
            assert all(0 <= v <= 1 for v in shares.values())
            assert sum(shares.values()) <= 1.0 + 1e-9

    def test_dominant_types(self, tiny_analysis):
        """Paper Section 4.3: Site/CDN/ASN/ConnType dominate the
        critical clusters — most attributed mass sits on them."""
        total_single = 0.0
        for ma in tiny_analysis.metrics.values():
            total_single += sum(single_attribute_share(ma).values())
        assert total_single / len(tiny_analysis.metrics) > 0.5
