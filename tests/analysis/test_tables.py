"""Tests for Tables 1-3 computations."""

import pytest

from repro.analysis.tables import (
    coverage_table,
    jaccard_table,
    prevalent_critical_clusters,
    reduction_summary,
)


class TestCoverageTable:
    def test_one_row_per_metric(self, tiny_analysis):
        rows = coverage_table(tiny_analysis)
        assert {r.metric for r in rows} == set(tiny_analysis.metric_names)

    def test_fractions_consistent(self, tiny_analysis):
        for row in coverage_table(tiny_analysis):
            assert 0 < row.critical_fraction <= 1.0
            assert row.mean_critical_clusters <= row.mean_problem_clusters
            assert row.mean_critical_cluster_coverage <= (
                row.mean_problem_cluster_coverage + 1e-9
            )
            if row.mean_problem_cluster_coverage:
                assert row.coverage_fraction == pytest.approx(
                    row.mean_critical_cluster_coverage
                    / row.mean_problem_cluster_coverage
                )

    def test_coverage_meaningful(self, tiny_analysis):
        """The paper's core claim: critical clusters cover a large
        share of problem sessions."""
        for row in coverage_table(tiny_analysis):
            assert row.mean_critical_cluster_coverage > 0.15, row.metric


class TestJaccardTable:
    def test_pairs(self, tiny_analysis):
        table = jaccard_table(tiny_analysis, k=50)
        assert len(table) == 6  # 4 choose 2

    def test_low_overlap(self, tiny_analysis):
        """Paper Table 2: the critical sets are largely disjoint."""
        for pair, value in jaccard_table(tiny_analysis, k=100).items():
            assert value < 0.75, pair


class TestPrevalentClusters:
    def test_threshold_respected(self, tiny_ctx):
        table = prevalent_critical_clusters(
            tiny_ctx.analysis, prevalence_threshold=0.6,
            catalog=tiny_ctx.trace.catalog,
        )
        for metric_cells in table.cells.values():
            for clusters in metric_cells.values():
                for c in clusters:
                    assert c.prevalence >= 0.6
                    assert c.key.depth == 1

    def test_chronic_events_explain_prevalent_clusters(self, tiny_ctx):
        """Table 3: the highly prevalent critical clusters map to the
        planted chronic conditions (at least partially)."""
        table = prevalent_critical_clusters(
            tiny_ctx.analysis, catalog=tiny_ctx.trace.catalog
        )
        tagged = 0
        total = 0
        for metric_cells in table.cells.values():
            for clusters in metric_cells.values():
                for c in clusters:
                    total += 1
                    if c.ground_truth_tag is not None:
                        tagged += 1
        assert total > 0
        assert tagged / total > 0.5

    def test_without_catalog_tags_are_none(self, tiny_analysis):
        table = prevalent_critical_clusters(tiny_analysis, catalog=None)
        for metric_cells in table.cells.values():
            for clusters in metric_cells.values():
                for c in clusters:
                    assert c.ground_truth_tag is None

    def test_invalid_threshold(self, tiny_analysis):
        with pytest.raises(ValueError):
            prevalent_critical_clusters(tiny_analysis, prevalence_threshold=0.0)

    def test_cell_accessor(self, tiny_analysis):
        table = prevalent_critical_clusters(tiny_analysis)
        assert table.cell("nonexistent_metric", "asn") == []


class TestReductionSummary:
    def test_fields(self, tiny_analysis):
        summary = reduction_summary(tiny_analysis["join_time"])
        assert summary["reduction_factor"] >= 1.0
        assert summary["mean_problem_clusters"] >= summary["mean_critical_clusters"]
