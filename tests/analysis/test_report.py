"""Tests for the markdown report generator."""

from repro.analysis.report import build_report, write_report


class TestBuildReport:
    def test_contains_all_sections(self, tiny_ctx):
        text = build_report(
            tiny_ctx.trace.table, tiny_ctx.analysis,
            catalog=tiny_ctx.trace.catalog,
        )
        for heading in (
            "# Video quality problem-structure report",
            "## Dataset quality overview",
            "## Problem structure",
            "## Recurrence and persistence",
            "## Cross-metric structure",
            "## Top critical clusters",
            "## Engagement impact",
            "## Improvement potential",
        ):
            assert heading in text, heading

    def test_mentions_every_metric(self, tiny_ctx):
        text = build_report(tiny_ctx.trace.table, tiny_ctx.analysis)
        for metric in tiny_ctx.analysis.metric_names:
            assert f"### {metric}" in text

    def test_ground_truth_tags_present_with_catalog(self, tiny_ctx):
        text = build_report(
            tiny_ctx.trace.table, tiny_ctx.analysis,
            catalog=tiny_ctx.trace.catalog,
        )
        tags = {e.tag for e in tiny_ctx.trace.catalog}
        assert any(tag in text for tag in tags)

    def test_without_catalog_marks_unknown(self, tiny_ctx):
        text = build_report(tiny_ctx.trace.table, tiny_ctx.analysis)
        assert "(organic/unknown)" in text

    def test_custom_title(self, tiny_ctx):
        text = build_report(
            tiny_ctx.trace.table, tiny_ctx.analysis, title="My incident report"
        )
        assert text.startswith("# My incident report")


class TestWriteReport:
    def test_writes_file(self, tiny_ctx, tmp_path):
        path = write_report(
            tmp_path / "report.md", tiny_ctx.trace.table, tiny_ctx.analysis
        )
        assert path.exists()
        assert path.read_text().startswith("#")

    def test_cli_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(["report", "--workload", "tiny", "--seed", "5",
                     "-o", str(out)]) == 0
        assert out.exists()
        assert "Improvement potential" in out.read_text()


class TestCliRemedies:
    def test_suggest_only(self, capsys):
        from repro.cli import main

        assert main(["remedies", "--workload", "tiny", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Suggested remedies" in out or "no remedies" in out

    def test_with_evaluation(self, capsys):
        from repro.cli import main

        assert main(["remedies", "--workload", "tiny", "--seed", "5",
                     "--evaluate"]) == 0
        out = capsys.readouterr().out
        if "Suggested remedies" in out:
            assert "Remedy evaluation" in out
