"""Tests for the plain-text renderers."""

import numpy as np
import pytest

from repro.analysis.render import fmt, render_kv, render_series, render_table


class TestFmt:
    def test_float_precision(self):
        assert fmt(0.123456, 3) == "0.123"
        assert fmt(0.123456, 1) == "0.1"

    def test_int(self):
        assert fmt(42) == "42"
        assert fmt(np.int64(7)) == "7"

    def test_bool_not_rendered_as_float(self):
        assert fmt(True) == "True"
        assert fmt(np.bool_(False)) == "False"

    def test_nan(self):
        assert fmt(float("nan")) == "nan"

    def test_string_passthrough(self):
        assert fmt("site_01") == "site_01"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["A", "Blong"], [["x", 1.0], ["yy", 22.5]])
        lines = text.splitlines()
        assert lines[0].startswith("A ")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["A"], [["x"]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["A", "B"], [["x"]])

    def test_empty_rows(self):
        text = render_table(["A"], [])
        assert "A" in text


class TestRenderSeries:
    def test_aligned_columns(self):
        text = render_series([1, 2, 3], {"y": [0.1, 0.2, 0.3]}, x_label="t")
        lines = text.splitlines()
        assert lines[0].split()[0] == "t"
        assert len(lines) == 5

    def test_multiple_series(self):
        text = render_series([1, 2], {"a": [1, 2], "b": [3, 4]})
        assert "a" in text and "b" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="points"):
            render_series([1, 2], {"y": [1.0]})

    def test_max_rows_subsamples(self):
        text = render_series(
            list(range(100)), {"y": list(range(100))}, max_rows=10
        )
        assert len(text.splitlines()) <= 14


class TestRenderKv:
    def test_basic(self):
        text = render_kv({"alpha": 1.0, "beta": "x"}, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("alpha")

    def test_empty(self):
        assert render_kv({}) == ""
