"""Tests for the engagement-impact model."""

import numpy as np
import pytest

from repro.analysis.engagement import (
    EngagementModel,
    cluster_engagement_impact,
    engagement_weighted_ranking,
)
from repro.core.clusters import ClusterKey
from repro.core.sessions import SessionTable
from tests.conftest import make_session


def key(**pairs):
    return ClusterKey.from_mapping(pairs)


@pytest.fixture(scope="module")
def model():
    return EngagementModel()


class TestModelValidation:
    def test_defaults_valid(self):
        EngagementModel()

    def test_bad_values(self):
        with pytest.raises(ValueError):
            EngagementModel(minutes_lost_per_buffering_point=-1.0)
        with pytest.raises(ValueError):
            EngagementModel(expected_session_minutes=0.0)
        with pytest.raises(ValueError):
            EngagementModel(join_patience_s=0.0)
        with pytest.raises(ValueError):
            EngagementModel(bitrate_discount_per_halving=1.0)


class TestPerSessionLosses:
    def test_buffering_loss_matches_paper_quote(self, model):
        # 1% buffering ratio -> 3.5 minutes lost (paper: 3-4 minutes).
        table = SessionTable.from_sessions(
            [make_session(duration_s=600, buffering_s=6.0)]
        )
        loss = model.buffering_minutes_lost(table)
        assert loss[0] == pytest.approx(3.5, rel=0.01)

    def test_healthy_session_loses_little(self, model):
        table = SessionTable.from_sessions(
            [make_session(duration_s=600, buffering_s=0.0, join_time_s=0.5,
                          bitrate_kbps=3000)]
        )
        assert model.total_minutes_lost(table)[0] < 0.6

    def test_join_failure_costs_full_session(self, model):
        table = SessionTable.from_sessions([make_session(join_failed=True)])
        assert model.join_failure_minutes_lost(table)[0] == pytest.approx(
            model.expected_session_minutes
        )
        # ... and nothing else (no double counting).
        assert model.buffering_minutes_lost(table)[0] == 0.0
        assert model.join_time_minutes_lost(table)[0] == 0.0

    def test_join_time_loss_monotone(self, model):
        table = SessionTable.from_sessions(
            [make_session(join_time_s=j) for j in (1.0, 5.0, 20.0, 60.0)]
        )
        losses = model.join_time_minutes_lost(table)
        assert (np.diff(losses) > 0).all()
        assert losses[-1] < model.expected_session_minutes

    def test_bitrate_loss_grows_with_degradation(self, model):
        table = SessionTable.from_sessions(
            [make_session(bitrate_kbps=b, duration_s=1200)
             for b in (2000, 1000, 250)]
        )
        losses = model.bitrate_minutes_lost(table)
        assert losses[0] == 0.0
        assert losses[1] < losses[2]

    def test_total_is_sum_of_components(self, model):
        table = SessionTable.from_sessions(
            [make_session(duration_s=600, buffering_s=30, join_time_s=12,
                          bitrate_kbps=500)]
        )
        total = model.total_minutes_lost(table)[0]
        parts = (
            model.buffering_minutes_lost(table)[0]
            + model.join_failure_minutes_lost(table)[0]
            + model.join_time_minutes_lost(table)[0]
            + model.bitrate_minutes_lost(table)[0]
        )
        assert total == pytest.approx(parts)


class TestClusterImpact:
    def test_bad_cluster_dominates(self, model):
        sessions = []
        for i in range(200):
            sessions.append(make_session(cdn="bad", join_failed=i % 2 == 0))
        for i in range(200):
            sessions.append(make_session(cdn="ok"))
        table = SessionTable.from_sessions(sessions)
        impacts = cluster_engagement_impact(
            table, [key(cdn="bad"), key(cdn="ok")], model=model
        )
        by_key = {i.key: i for i in impacts}
        assert by_key[key(cdn="bad")].minutes_lost > (
            3 * by_key[key(cdn="ok")].minutes_lost
        )
        assert by_key[key(cdn="bad")].minutes_lost_share > 0.5

    def test_unknown_value_zero_impact(self, model):
        table = SessionTable.from_sessions([make_session()])
        impacts = cluster_engagement_impact(table, [key(cdn="mars")], model)
        assert impacts[0].sessions == 0
        assert impacts[0].minutes_lost == 0.0


class TestEngagementRanking:
    def test_ranking_on_generated_trace(self, tiny_ctx, model):
        impacts = engagement_weighted_ranking(
            tiny_ctx.trace.table,
            tiny_ctx.analysis["buffering_ratio"],
            model=model,
            top_k=5,
        )
        assert impacts
        losses = [i.minutes_lost for i in impacts]
        assert losses == sorted(losses, reverse=True)
        assert all(i.minutes_lost >= 0 for i in impacts)

    def test_ranking_can_differ_from_session_ranking(self, tiny_ctx, model):
        """Weighting by minutes is a different lens than counting
        sessions; at minimum both lenses agree the clusters matter."""
        from repro.analysis.whatif import rank_critical_clusters

        ma = tiny_ctx.analysis["buffering_ratio"]
        by_minutes = [
            i.key for i in engagement_weighted_ranking(
                tiny_ctx.trace.table, ma, model=model, top_k=10
            )
        ]
        by_sessions = rank_critical_clusters(ma, by="coverage")[:10]
        assert set(by_minutes) & set(by_sessions)
