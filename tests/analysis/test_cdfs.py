"""Tests for metric ECDFs (Figure 1 machinery)."""

import numpy as np
import pytest

from repro.analysis.cdfs import (
    ECDF,
    default_grid,
    headline_statistics,
    metric_ecdf,
    quality_cdfs,
)
from repro.core.metrics import BITRATE, BUFFERING_RATIO, JOIN_TIME
from repro.core.sessions import SessionTable
from tests.conftest import make_session


class TestECDF:
    def test_at(self):
        ecdf = ECDF(np.array([1.0, 2.0, 3.0, 4.0]))
        assert ecdf.at(0.5) == 0.0
        assert ecdf.at(2.0) == pytest.approx(0.5)
        assert ecdf.at(10.0) == 1.0

    def test_exceed(self):
        ecdf = ECDF(np.array([1.0, 2.0, 3.0, 4.0]))
        assert ecdf.exceed(2.0) == pytest.approx(0.5)

    def test_nan_and_inf_dropped(self):
        ecdf = ECDF(np.array([1.0, np.nan, np.inf, 2.0]))
        assert ecdf.n == 2

    def test_quantile(self):
        ecdf = ECDF(np.arange(101, dtype=float))
        assert ecdf.quantile(0.5) == pytest.approx(50.0)

    def test_curve(self):
        ecdf = ECDF(np.array([1.0, 2.0]))
        x, y = ecdf.curve(np.array([0.0, 1.5, 3.0]))
        assert y.tolist() == [0.0, 0.5, 1.0]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ECDF(np.array([])).at(1.0)

    def test_vector_at(self):
        ecdf = ECDF(np.array([1.0, 2.0]))
        assert np.allclose(ecdf.at(np.array([1.0, 2.0])), [0.5, 1.0])


class TestMetricCdfs:
    @pytest.fixture(scope="class")
    def table(self):
        return SessionTable.from_sessions(
            [
                make_session(duration_s=100, buffering_s=b, join_time_s=j,
                             bitrate_kbps=r)
                for b, j, r in [(1, 1, 3000), (8, 12, 500), (20, 3, 1500)]
            ]
            + [make_session(join_failed=True)]
        )

    def test_quality_cdfs_cover_figure1_metrics(self, table):
        cdfs = quality_cdfs(table)
        assert set(cdfs) == {"buffering_ratio", "bitrate", "join_time"}
        # failed session excluded everywhere
        for ecdf in cdfs.values():
            assert ecdf.n == 3

    def test_metric_ecdf_values(self, table):
        ecdf = metric_ecdf(table, BUFFERING_RATIO)
        assert ecdf.values.tolist() == pytest.approx([0.01, 0.08, 0.20])

    def test_headline_statistics(self, table):
        stats = headline_statistics(table)
        assert stats["frac_buffering_ratio_gt_5pct"] == pytest.approx(2 / 3)
        assert stats["frac_join_time_gt_10s"] == pytest.approx(1 / 3)
        assert stats["frac_bitrate_lt_700kbps"] == pytest.approx(1 / 3)
        assert stats["frac_bitrate_lt_2mbps"] == pytest.approx(2 / 3)

    def test_default_grids(self):
        assert default_grid(BUFFERING_RATIO).min() == pytest.approx(1e-5)
        assert default_grid(BITRATE).max() == pytest.approx(10_000.0)
        assert default_grid(JOIN_TIME).max() == pytest.approx(1000.0)

    def test_default_grid_unknown_metric(self):
        from repro.core.metrics import JOIN_FAILURE

        with pytest.raises(ValueError):
            default_grid(JOIN_FAILURE)

    def test_tiny_trace_shape(self, tiny_trace):
        """Figure 1's qualitative statements hold on a generated trace."""
        stats = headline_statistics(tiny_trace.table)
        assert 0.01 < stats["frac_buffering_ratio_gt_5pct"] < 0.35
        assert 0.01 < stats["frac_join_time_gt_10s"] < 0.35
        assert stats["frac_bitrate_lt_2mbps"] > 0.3
