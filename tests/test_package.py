"""Tests of the top-level package surface."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__

    def test_core_reexports(self):
        assert repro.BUFFERING_RATIO.name == "buffering_ratio"
        assert callable(repro.analyze_trace)
        assert repro.DEFAULT_SCHEMA.names[0] == "asn"

    def test_lazy_trace_exports(self):
        assert callable(repro.generate_trace)
        assert repro.StandardWorkloads.tiny().name == "tiny"

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.no_such_thing

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name


class TestSubpackageImports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.trace",
            "repro.sim",
            "repro.analysis",
            "repro.experiments",
            "repro.io",
            "repro.cli",
        ],
    )
    def test_importable(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize(
        "module",
        ["repro.core", "repro.trace", "repro.sim", "repro.analysis"],
    )
    def test_all_lists_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name) is not None, f"{module}.{name}"


class TestPublicDocstrings:
    @pytest.mark.parametrize(
        "module",
        [
            "repro",
            "repro.core.critical",
            "repro.core.problems",
            "repro.trace.events",
            "repro.sim.playback",
            "repro.analysis.whatif",
        ],
    )
    def test_module_docstrings(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__) > 40

    def test_public_callables_documented(self):
        import repro.analysis.whatif as whatif
        import repro.core.critical as critical

        for mod in (whatif, critical):
            for name in dir(mod):
                if name.startswith("_"):
                    continue
                obj = getattr(mod, name)
                if callable(obj) and getattr(obj, "__module__", "").startswith(
                    "repro."
                ):
                    assert obj.__doc__, f"{mod.__name__}.{name} undocumented"
