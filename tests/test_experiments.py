"""Tests for the experiment registry and runners.

Every registered experiment must run on the tiny context and produce
printable text plus structurally sane data. Shape assertions against
the paper's findings run at this scale only loosely; the week-scale
numbers live in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.runners import METRIC_ORDER

PAPER_IDS = (
    "fig1", "fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13", "tab1", "tab2", "tab3", "tab4", "tab5",
)


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        for experiment_id in PAPER_IDS:
            assert experiment_id in EXPERIMENTS

    def test_ablations_registered(self):
        for experiment_id in ("abl-threshold", "abl-hhh", "abl-engine",
                              "abl-scale", "abl-parallel", "validation"):
            assert experiment_id in EXPERIMENTS

    def test_get_unknown(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_metadata(self):
        experiment = get_experiment("tab1")
        assert experiment.paper_ref == "Table 1"
        assert experiment.workload == "week"


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_runs(tiny_ctx, experiment_id):
    result = run_experiment(experiment_id, tiny_ctx)
    assert result.experiment_id == experiment_id
    assert result.text.strip()
    assert isinstance(result.data, dict)


class TestFig1:
    def test_cdf_monotone(self, tiny_ctx):
        data = run_experiment("fig1", tiny_ctx).data
        for metric in ("buffering_ratio", "bitrate", "join_time"):
            cdf = data[metric]["cdf"]
            assert all(b >= a for a, b in zip(cdf, cdf[1:]))
            assert 0 <= cdf[0] and cdf[-1] <= 1


class TestFig2:
    def test_ratio_series_full_length(self, tiny_ctx):
        data = run_experiment("fig2", tiny_ctx).data
        n = tiny_ctx.n_epochs
        for ratios in data["ratios"].values():
            assert len(ratios) == n


class TestFig7And8:
    def test_inverse_cdfs_decreasing(self, tiny_ctx):
        data = run_experiment("fig7", tiny_ctx).data
        for curve in data["curves"].values():
            assert all(b <= a + 1e-12 for a, b in zip(curve, curve[1:]))
        data8 = run_experiment("fig8", tiny_ctx).data
        for which in ("median", "max"):
            for curve in data8[which].values():
                assert all(b <= a + 1e-12 for a, b in zip(curve, curve[1:]))

    def test_persistence_structure(self, tiny_ctx):
        """Problem clusters persist: a visible share lasts >= 2h."""
        data = run_experiment("fig8", tiny_ctx).data
        some_persistent = [
            stats["frac_median_ge_2h"] for stats in data["stats"].values()
        ]
        assert max(some_persistent) > 0.1


class TestTab1:
    def test_paper_shape(self, tiny_ctx):
        data = run_experiment("tab1", tiny_ctx).data
        for metric in METRIC_ORDER:
            row = data[metric]
            assert row["mean_critical_clusters"] <= row["mean_problem_clusters"]
            assert row["critical_fraction"] < 1.0
            assert row["critical_cluster_coverage"] > 0.1


class TestFig11:
    def test_more_clusters_more_improvement(self, tiny_ctx):
        data = run_experiment("fig11", tiny_ctx).data
        for ranking in ("prevalence", "persistence", "coverage"):
            for metric in METRIC_ORDER:
                imp = data[ranking][metric]["improvement"]
                assert all(b >= a - 1e-12 for a, b in zip(imp, imp[1:]))


class TestTab4:
    def test_proactive_tracks_potential(self, tiny_ctx):
        # "Potential" ranks the test window's clusters by *attributed*
        # problem sessions (the paper's coverage ranking), which is not
        # exactly the optimal *alleviation* set — so the history-based
        # choice can nose ahead by a small margin. It must still be in
        # the same ballpark, never wildly above.
        data = run_experiment("tab4", tiny_ctx).data
        for split in data.values():
            for row in split.values():
                assert 0.0 <= row["new"] <= row["potential"] + 0.05


class TestTab5:
    def test_reactive_below_potential(self, tiny_ctx):
        data = run_experiment("tab5", tiny_ctx).data
        for row in data.values():
            assert 0 <= row["new"] <= row["potential"] + 1e-9


class TestFig13:
    def test_series_consistency(self, tiny_ctx):
        data = run_experiment("fig13", tiny_ctx).data
        original = np.array(data["original"])
        after = np.array(data["after"])
        unattributed = np.array(data["unattributed"])
        assert (after <= original + 1e-9).all()
        assert (unattributed <= original + 1e-9).all()
        # Reactive repair cannot beat the unattributed floor.
        assert (after >= unattributed - 1e-6).all()


class TestValidationExperiment:
    def test_detector_finds_detectable_events(self, tiny_ctx):
        data = run_experiment("validation", tiny_ctx).data
        recalls = [row["detectable_event_recall"] for row in data.values()]
        assert np.mean(recalls) > 0.4


class TestAblations:
    def test_threshold_ablation_monotonicity(self, tiny_ctx):
        data = run_experiment("abl-threshold", tiny_ctx).data
        # A stricter ratio multiplier yields fewer problem clusters.
        for metric in ("buffering_ratio", "join_failure"):
            loose = data["ratio x1.25"][metric]["problem_clusters"]
            strict = data["ratio x2.0"][metric]["problem_clusters"]
            assert strict <= loose + 1e-9

    def test_hhh_ablation_counts(self, tiny_ctx):
        data = run_experiment("abl-hhh", tiny_ctx).data
        for metric_data in data.values():
            assert metric_data["critical"]["mean_reported"] >= 0
            assert metric_data["hhh"]["mean_reported"] >= 0

    def test_engine_ablation_same_ballpark(self, tiny_ctx):
        data = run_experiment("abl-engine", tiny_ctx).data
        mech = data["mechanistic"]
        stat = data["statistical"]
        assert abs(
            mech["frac_buffering_ratio_gt_5pct"]
            - stat["frac_buffering_ratio_gt_5pct"]
        ) < 0.30

    def test_scale_ablation_reports_throughput(self, tiny_ctx):
        data = run_experiment("abl-scale", tiny_ctx).data
        for row in data.values():
            assert row["sessions_per_second"] > 0
