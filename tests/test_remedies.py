"""Tests for the automated remediation subsystem (paper §6)."""

import numpy as np
import pytest

from repro.core.metrics import JOIN_FAILURE, BUFFERING_RATIO
from repro.remedies import (
    add_bitrate_rungs,
    attenuated_effects,
    contract_additional_cdns,
    evaluate_remedies,
    peer_with_isp,
    suggest_remedies,
    upgrade_cdn,
)
from repro.trace.entities import WorldConfig, build_world
from repro.trace.events import EventCatalog, EventEffects, GroundTruthEvent
from repro.trace.generator import generate_trace
from repro.trace.workloads import StandardWorkloads


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(n_asns=20, n_cdns=6, n_sites=10),
                       np.random.default_rng(3))


def single_cdn_site(world):
    for site in world.sites:
        if len(site.cdn_indices) == 1:
            return site
    pytest.skip("no single-CDN site in this world")


class TestAttenuation:
    def test_identity_at_zero(self):
        effects = EventEffects(join_failure_odds=20.0, buffering_factor=4.0)
        assert attenuated_effects(effects, 0.0) == effects

    def test_full_cure_is_neutral(self):
        effects = EventEffects(
            join_failure_odds=20.0, buffering_factor=4.0,
            bitrate_cap_kbps=500.0,
        )
        cured = attenuated_effects(effects, 1.0)
        assert cured.is_neutral

    def test_partial_cure_moves_toward_neutral(self):
        effects = EventEffects(join_failure_odds=16.0)
        half = attenuated_effects(effects, 0.5)
        assert 1.0 < half.join_failure_odds < 16.0
        assert half.join_failure_odds == pytest.approx(4.0)  # 16^0.5

    def test_cap_relaxes(self):
        effects = EventEffects(bitrate_cap_kbps=500.0)
        half = attenuated_effects(effects, 0.5)
        assert half.bitrate_cap_kbps == pytest.approx(1000.0)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            attenuated_effects(EventEffects(), 1.5)


class TestRemedyConstruction:
    def test_contract_cdns_world_change(self, world):
        site = single_cdn_site(world)
        new_cdn = next(
            c.name for i, c in enumerate(world.cdns)
            if i not in site.cdn_indices
        )
        remedy = contract_additional_cdns(world, site.name, [new_cdn],
                                          traffic_share=0.5)
        new_world = remedy.apply_world(world)
        new_site = new_world.sites[world.site_index(site.name)]
        assert len(new_site.cdn_indices) == len(site.cdn_indices) + 1
        assert sum(new_site.cdn_weights) == pytest.approx(1.0)
        # Original world untouched.
        assert len(site.cdn_indices) == 1

    def test_contract_rejects_duplicate_cdn(self, world):
        site = single_cdn_site(world)
        existing = world.cdns[site.cdn_indices[0]].name
        with pytest.raises(ValueError, match="already uses"):
            contract_additional_cdns(world, site.name, [existing])

    def test_contract_attenuates_matching_failure_events(self, world):
        site = single_cdn_site(world)
        new_cdn = next(
            c.name for i, c in enumerate(world.cdns)
            if i not in site.cdn_indices
        )
        remedy = contract_additional_cdns(world, site.name, [new_cdn],
                                          traffic_share=0.6)
        event = GroundTruthEvent(
            event_id="e", tag="t", category="chronic",
            primary_metric="join_failure",
            constraints=(("site", site.name),),
            start_epoch=0, duration_epochs=10,
            effects=EventEffects(join_failure_odds=20.0),
        )
        fixed = remedy.apply_event(event)
        assert fixed.effects.join_failure_odds < 20.0
        other = GroundTruthEvent(
            event_id="o", tag="t", category="chronic",
            primary_metric="join_failure",
            constraints=(("site", "someone_else"),),
            start_epoch=0, duration_epochs=10,
            effects=EventEffects(join_failure_odds=20.0),
        )
        assert remedy.apply_event(other) == other

    def test_add_rungs(self, world):
        site = world.sites[0]
        ladder = tuple(sorted(set(site.ladder) | {200.0, 450.0, 6_500.0}))
        remedy = add_bitrate_rungs(world, site.name, ladder)
        new_world = remedy.apply_world(world)
        assert new_world.sites[0].ladder == ladder

    def test_add_rungs_requires_growth(self, world):
        site = world.sites[0]
        with pytest.raises(ValueError, match="add rungs"):
            add_bitrate_rungs(world, site.name, site.ladder)

    def test_upgrade_cdn_validates_name(self, world):
        with pytest.raises(KeyError):
            upgrade_cdn(world, "cdn_mars")

    def test_peering_attenuates_asn_events(self, world):
        asn = world.asns[0].name
        remedy = peer_with_isp(world, asn, fraction=1.0)
        event = GroundTruthEvent(
            event_id="e", tag="t", category="chronic",
            primary_metric="buffering_ratio",
            constraints=(("asn", asn),),
            start_epoch=0, duration_epochs=5,
            effects=EventEffects(buffering_factor=6.0),
        )
        assert remedy.apply_event(event).effects.is_neutral


class TestEvaluate:
    @pytest.fixture(scope="class")
    def scenario(self):
        """Trace dominated by one planted failing single-CDN site."""
        spec = StandardWorkloads.tiny(seed=33)
        world = build_world(spec.world, np.random.default_rng(spec.seed))
        # Force a single-CDN site deterministically.
        from dataclasses import replace as dreplace

        sites = list(world.sites)
        sites[0] = dreplace(sites[0], cdn_indices=(0,), cdn_weights=(1.0,))
        from repro.trace.entities import World

        world = World(config=world.config, asns=world.asns, cdns=world.cdns,
                      sites=sites)
        event = GroundTruthEvent(
            event_id="bad-site", tag="low-priority-site",
            category="chronic", primary_metric="join_failure",
            constraints=(("site", sites[0].name),),
            start_epoch=0, duration_epochs=spec.n_epochs,
            effects=EventEffects(join_failure_odds=30.0),
        )
        baseline = generate_trace(spec, world=world,
                                  catalog=EventCatalog([event]))
        return spec, world, sites[0], baseline

    def test_multi_cdn_remedy_reduces_failures(self, scenario):
        spec, world, site, baseline = scenario
        new_cdns = [world.cdns[1].name, world.cdns[2].name]
        remedy = contract_additional_cdns(world, site.name, new_cdns,
                                          traffic_share=0.7)
        evaluation = evaluate_remedies(
            spec, [remedy], metrics=(JOIN_FAILURE,), baseline=baseline
        )
        delta = evaluation.deltas["join_failure"]
        assert delta.remedied_ratio < delta.baseline_ratio
        assert delta.relative_reduction > 0.1

    def test_render(self, scenario):
        spec, world, site, baseline = scenario
        remedy = upgrade_cdn(world, world.cdns[0].name)
        evaluation = evaluate_remedies(
            spec, [remedy], metrics=(JOIN_FAILURE,), baseline=baseline
        )
        assert "Remedy evaluation" in evaluation.render()

    def test_requires_remedies(self, scenario):
        spec, _, _, baseline = scenario
        with pytest.raises(ValueError, match="at least one"):
            evaluate_remedies(spec, [], baseline=baseline)

    def test_baseline_spec_mismatch_rejected(self, scenario):
        spec, world, _, baseline = scenario
        other_spec = StandardWorkloads.tiny(seed=99)
        remedy = upgrade_cdn(world, world.cdns[0].name)
        with pytest.raises(ValueError, match="different spec"):
            evaluate_remedies(other_spec, [remedy], baseline=baseline)


class TestSuggest:
    def test_suggestions_on_generated_trace(self, tiny_ctx):
        suggestions = []
        for name, ma in tiny_ctx.analysis.metrics.items():
            suggestions.extend(
                suggest_remedies(tiny_ctx.trace.world, ma, top_k=4)
            )
        assert suggestions
        for s in suggestions:
            assert s.rationale
            assert s.remedy.description

    def test_suggestions_deduplicated(self, tiny_ctx):
        ma = tiny_ctx.analysis["join_failure"]
        suggestions = suggest_remedies(tiny_ctx.trace.world, ma, top_k=10)
        names = [s.remedy.name for s in suggestions]
        assert len(names) == len(set(names))

    def test_top_k_validated(self, tiny_ctx):
        with pytest.raises(ValueError):
            suggest_remedies(
                tiny_ctx.trace.world,
                tiny_ctx.analysis["join_failure"],
                top_k=0,
            )

    def test_suggested_remedies_evaluable(self, tiny_ctx):
        """The full loop: detect -> suggest -> re-generate -> improve."""
        ma = tiny_ctx.analysis["join_failure"]
        suggestions = suggest_remedies(tiny_ctx.trace.world, ma, top_k=5)
        if not suggestions:
            pytest.skip("no suggestions for this seed")
        evaluation = evaluate_remedies(
            tiny_ctx.trace.spec,
            [s.remedy for s in suggestions],
            metrics=(JOIN_FAILURE, BUFFERING_RATIO),
            baseline=tiny_ctx.trace,
        )
        delta = evaluation.deltas["join_failure"]
        # The remedies must not make the target metric worse.
        assert delta.remedied_ratio <= delta.baseline_ratio + 0.01
