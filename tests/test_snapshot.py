"""Snapshot provenance, staleness detection, and load-failure hygiene."""

import os
import warnings

import numpy as np
import pytest

from repro.core.substrate import AnalysisSubstrate
from repro.io.binary import write_sessions_npz
from repro.io.snapshot import (
    MAGIC,
    load_substrate,
    read_snapshot_manifest,
    save_substrate,
    snapshot_staleness,
    source_record,
)
from repro.trace.generator import generate_trace
from repro.trace.workloads import StandardWorkloads


@pytest.fixture(scope="module")
def trace_table():
    return generate_trace(StandardWorkloads.by_name("tiny", seed=5)).table


@pytest.fixture(scope="module")
def substrate(trace_table):
    return AnalysisSubstrate.build(trace_table)


@pytest.fixture
def source_path(tmp_path, trace_table):
    path = tmp_path / "trace.npz"
    write_sessions_npz(trace_table, path)
    return path


class TestProvenance:
    def test_manifest_records_source_and_schema(
        self, tmp_path, substrate, source_path
    ):
        path = save_substrate(substrate, tmp_path / "s.sub", source=source_path)
        manifest = read_snapshot_manifest(path)
        assert manifest["source"] == source_record(source_path)
        assert len(manifest["schema_sha256"]) == 64

    def test_fresh_snapshot_is_not_stale(self, tmp_path, substrate, source_path):
        path = save_substrate(substrate, tmp_path / "s.sub", source=source_path)
        assert snapshot_staleness(path, source_path) is None
        # Without a source to compare against, readability is the only check.
        assert snapshot_staleness(path) is None

    def test_source_mtime_drift_is_stale(self, tmp_path, substrate, source_path):
        path = save_substrate(substrate, tmp_path / "s.sub", source=source_path)
        os.utime(source_path, ns=(1, 1))
        reason = snapshot_staleness(path, source_path)
        assert reason is not None and "does not match" in reason

    def test_source_size_drift_is_stale(self, tmp_path, substrate, source_path):
        path = save_substrate(substrate, tmp_path / "s.sub", source=source_path)
        st = source_path.stat()
        with open(source_path, "ab") as f:
            f.write(b"x")
        os.utime(source_path, ns=(st.st_mtime_ns, st.st_mtime_ns))
        reason = snapshot_staleness(path, source_path)
        assert reason is not None and "does not match" in reason

    def test_snapshot_without_source_is_stale_vs_source(
        self, tmp_path, substrate, source_path
    ):
        path = save_substrate(substrate, tmp_path / "s.sub")
        reason = snapshot_staleness(path, source_path)
        assert reason is not None and "does not match" in reason

    def test_corrupt_snapshot_reports_unreadable(self, tmp_path, source_path):
        path = tmp_path / "s.sub"
        path.write_bytes(b"not a snapshot at all")
        reason = snapshot_staleness(path, source_path)
        assert reason is not None and "unreadable" in reason

    def test_truncated_manifest_reports_unreadable(
        self, tmp_path, substrate, source_path
    ):
        path = save_substrate(substrate, tmp_path / "s.sub", source=source_path)
        path.write_bytes(path.read_bytes()[:12])
        assert snapshot_staleness(path, source_path) is not None


class TestLoadHygiene:
    def test_load_without_source_still_round_trips(self, tmp_path, substrate):
        path = save_substrate(substrate, tmp_path / "s.sub")
        loaded = load_substrate(path)
        assert len(loaded.table) == len(substrate.table)
        np.testing.assert_array_equal(
            loaded.index.leaf_keys, substrate.index.leaf_keys
        )

    @pytest.mark.parametrize("mmap", [True, False])
    def test_corrupt_load_raises_without_resource_warning(
        self, tmp_path, substrate, mmap
    ):
        path = save_substrate(substrate, tmp_path / "s.sub")
        raw = bytearray(path.read_bytes())
        # Truncate the data section: manifest parses, arrays run past EOF.
        path.write_bytes(bytes(raw[: len(raw) // 2]))
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            with pytest.raises(ValueError):
                load_substrate(path, mmap=mmap)
            import gc

            gc.collect()

    def test_bad_magic_raises_value_error(self, tmp_path, substrate):
        path = save_substrate(substrate, tmp_path / "s.sub")
        raw = bytearray(path.read_bytes())
        raw[:8] = b"BADMAGIC"
        path.write_bytes(bytes(raw))
        assert MAGIC not in raw[:8]
        with pytest.raises(ValueError):
            load_substrate(path)
        with pytest.raises(ValueError):
            read_snapshot_manifest(path)


class TestContentAddress:
    """The payload content stamp: written at save time, verified at
    load time, and the key component of the result cache."""

    def test_manifest_carries_content_stamp(self, tmp_path, substrate):
        from repro.io.snapshot import snapshot_content_sha256

        path = save_substrate(substrate, tmp_path / "s.sub")
        manifest = read_snapshot_manifest(path)
        stamp = manifest["content_sha256"]
        assert len(stamp) == 64
        assert manifest["content_bytes"] > 0
        assert snapshot_content_sha256(path) == stamp

    def test_stamp_is_deterministic_across_saves(self, tmp_path, substrate):
        from repro.io.snapshot import snapshot_content_sha256

        a = save_substrate(substrate, tmp_path / "a.sub")
        b = save_substrate(substrate, tmp_path / "b.sub")
        assert snapshot_content_sha256(a) == snapshot_content_sha256(b)

    def test_flipped_payload_byte_fails_verification(
        self, tmp_path, substrate
    ):
        path = save_substrate(substrate, tmp_path / "s.sub")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # last array byte, far past the manifest
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="content"):
            load_substrate(path)

    def test_verify_opt_out_skips_the_check(self, tmp_path, substrate):
        path = save_substrate(substrate, tmp_path / "s.sub")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        loaded = load_substrate(path, verify=False)
        assert len(loaded.table) == len(substrate.table)

    def test_intact_snapshot_loads_with_verification(
        self, tmp_path, substrate
    ):
        path = save_substrate(substrate, tmp_path / "s.sub")
        loaded = load_substrate(path, verify=True)
        assert len(loaded.table) == len(substrate.table)

    def test_pre_stamp_manifest_is_accepted_unverified(self):
        from repro.io.snapshot import _verify_content

        # Snapshots written before the stamp existed carry no
        # content_sha256 — nothing to verify against, never an error.
        _verify_content(
            __import__("pathlib").Path("old.sub"), b"anything", {}, 0
        )
