"""Span-tree analytics: aggregation, critical path, hotspots."""

import json

import pytest

from repro.obs import Tracer
from repro.obs.analyze import (
    critical_path,
    load_trace_json,
    normalize_tree,
    render_critical_path,
    render_tree,
    span_stats,
    top_spans,
    walk_tree,
)


def node(name, duration, children=(), **attrs):
    return {
        "name": name,
        "start_s": 0.0,
        "duration_s": duration,
        "attrs": attrs,
        "children": list(children),
    }


@pytest.fixture
def fanout_tree():
    """A run with a parallel fan-out: worker durations sum past the
    parent's wall clock, and worker-1 is the slowest chain."""
    return node(
        "run", 10.0,
        [
            node("ingest", 2.0),
            node(
                "fanout", 7.0,
                [
                    node("worker", 6.5, [node("aggregate", 5.0)], pid=1),
                    node("worker", 6.0, [node("aggregate", 4.0)], pid=2),
                ],
            ),
        ],
    )


class TestNormalize:
    def test_accepts_dict_and_span(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        root = tracer.finish()
        assert normalize_tree(root)["name"] == root.name
        assert normalize_tree({"name": "x"}) == {"name": "x"}

    def test_rejects_other_shapes(self):
        with pytest.raises(ValueError):
            normalize_tree(["not", "a", "tree"])
        with pytest.raises(ValueError):
            normalize_tree({"no_name_key": 1})


class TestLoadTraceJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"trace": node("run", 1.0)}))
        assert load_trace_json(path)["trace"]["name"] == "run"

    def test_invalid_json_is_value_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_trace_json(path)

    def test_missing_trace_key_is_value_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"metrics": {}}))
        with pytest.raises(ValueError, match="no 'trace' key"):
            load_trace_json(path)


class TestSpanStats:
    def test_aggregates_by_name(self, fanout_tree):
        stats = span_stats(fanout_tree)
        workers = stats["worker"]
        assert workers.count == 2
        assert workers.total_s == pytest.approx(12.5)
        assert workers.max_s == pytest.approx(6.5)
        # 6.5 - 5.0 + 6.0 - 4.0
        assert workers.self_s == pytest.approx(3.5)

    def test_self_time_clamped_under_parallel_children(self):
        # Children ran in parallel: summed durations exceed the parent.
        tree = node("fanout", 1.0, [node("w", 0.9), node("w", 0.8)])
        assert span_stats(tree)["fanout"].self_s == 0.0

    def test_depth_first_order(self, fanout_tree):
        names = list(span_stats(fanout_tree))
        assert names == ["run", "ingest", "fanout", "worker", "aggregate"]

    def test_walk_yields_depths(self, fanout_tree):
        depths = {
            span["name"]: depth for span, depth in walk_tree(fanout_tree)
        }
        assert depths["run"] == 0
        assert depths["fanout"] == 1
        assert depths["aggregate"] == 3


class TestCriticalPath:
    def test_follows_longest_child(self, fanout_tree):
        path = critical_path(fanout_tree)
        assert [hop["name"] for hop in path] == [
            "run", "fanout", "worker", "aggregate",
        ]
        # The slowest worker, not the first or the last.
        assert path[2]["attrs"]["pid"] == 1
        assert path[2]["duration_s"] == pytest.approx(6.5)
        assert path[2]["self_s"] == pytest.approx(1.5)

    def test_leaf_self_is_full_duration(self, fanout_tree):
        leaf = critical_path(fanout_tree)[-1]
        assert leaf["self_s"] == leaf["duration_s"]

    def test_single_node(self):
        path = critical_path(node("only", 2.0))
        assert len(path) == 1 and path[0]["self_s"] == 2.0

    def test_render(self, fanout_tree):
        text = render_critical_path(critical_path(fanout_tree))
        assert "run" in text and "100.0% of run" in text
        assert "worker" in text


class TestTopSpans:
    def test_ranked_by_self_time(self, fanout_tree):
        ranked = top_spans(fanout_tree, n=2)
        assert [s.name for s in ranked] == ["aggregate", "worker"]

    def test_n_limits_and_zero(self, fanout_tree):
        assert len(top_spans(fanout_tree, n=1)) == 1
        assert top_spans(fanout_tree, n=0) == []


class TestRenderTree:
    def test_indentation_and_depth_limit(self, fanout_tree):
        full = render_tree(fanout_tree)
        assert "aggregate" in full
        shallow = render_tree(fanout_tree, max_depth=1)
        assert "fanout" in shallow and "aggregate" not in shallow

    def test_attrs_shown_started_unix_hidden(self):
        tree = node("run", 1.0, rows=7, started_unix=1700000000.0)
        text = render_tree(tree)
        assert "rows=7" in text
        assert "started_unix" not in text
