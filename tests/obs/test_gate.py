"""The journal-backed bench gate: flattening, verdicts, CLI."""

import json

import pytest

from repro.obs.gate import (
    BENCH_COMMAND,
    PIPELINE_GATES,
    evaluate_latest,
    evaluate_record,
    flatten_payload,
    ingest_payload,
    main as gate_main,
)
from repro.obs.journal import RunJournal


def make_bench_payload(workload="week (first 24 h)", sweep_speedup=3.0,
                       profiler_overhead=0.5):
    return {
        "workload": workload,
        "cpus": 4,
        "speedup": 1.2,
        "generated_at_unix": 1700000000.0,
        "sweep": {"sweep_speedup": sweep_speedup},
        "observability": {"overhead_pct": 0.1},
        "streaming": {"append_detect_speedup": 4.0,
                      "snapshot_load_speedup": 9.0},
        "sharding": {
            "parent_peak_rss_ratio": 0.3,
            "analyze_speedup_vs_indexed": 1.5,
            "gates_enforced": {"parent_peak_rss_ratio_max_0.5": True,
                               "analyze_speedup_min_1.3": False},
        },
        "mechanistic": {"speedup": 20.0,
                        "gates_enforced": {"batch_speedup_min_10": True}},
        "result_cache": {"warm_speedup": 12.0,
                         "gates_enforced": {"warm_speedup_min_5": True}},
        "profiling": {"overhead_pct": profiler_overhead,
                      "gates_enforced": {"overhead_max_3pct": True}},
    }


class TestFlatten:
    def test_gauges_and_enforcement_flags(self):
        gauges = flatten_payload(make_bench_payload())
        assert gauges["bench.sweep.sweep_speedup"] == 3.0
        assert gauges["bench.profiling.overhead_pct"] == 0.5
        assert gauges["bench.gate.sweep_speedup_min_2.enforced"] == 1.0
        assert gauges["bench.gate.shard_analyze_speedup_min_1.3.enforced"] \
            == 0.0
        assert gauges["bench.gate.parallel_speedup_trend.enforced"] == 0.0

    def test_tiny_workload_disarms_week_gates(self):
        gauges = flatten_payload(make_bench_payload(workload="tiny"))
        assert gauges["bench.gate.sweep_speedup_min_2.enforced"] == 0.0
        assert gauges["bench.gate.profiler_overhead_max_3pct.enforced"] \
            == 1.0  # section-local flag, not workload-derived

    def test_missing_sections_omit_gauges(self):
        gauges = flatten_payload({"workload": "week"})
        assert "bench.sweep.sweep_speedup" not in gauges
        # Flags still present so evaluation is self-contained.
        assert "bench.gate.sweep_speedup_min_2.enforced" in gauges


class TestEvaluate:
    def test_every_gate_evaluated_from_record_alone(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        record = ingest_payload(journal, make_bench_payload())
        assert record["command"] == BENCH_COMMAND
        verdicts = evaluate_record(record)
        assert len(verdicts) == len(PIPELINE_GATES)
        assert all(v.passed for v in verdicts)
        # The record round-trips through the journal file.
        assert evaluate_record(journal.latest(command=BENCH_COMMAND)) \
            == verdicts

    def test_enforced_failure(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        record = ingest_payload(
            journal, make_bench_payload(sweep_speedup=1.1)
        )
        failed = [v for v in evaluate_record(record)
                  if v.enforced and not v.passed]
        assert [v.name for v in failed] == ["sweep_speedup_min_2"]

    def test_unenforced_failure_passes(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        record = ingest_payload(
            journal, make_bench_payload(workload="tiny", sweep_speedup=1.1)
        )
        verdict = next(
            v for v in evaluate_record(record)
            if v.name == "sweep_speedup_min_2"
        )
        assert not verdict.enforced and verdict.passed

    def test_missing_gauge_fails_only_when_enforced(self):
        bare = {"metrics": {"gauges": {
            "bench.gate.sweep_speedup_min_2.enforced": 1.0,
        }}}
        by_name = {v.name: v for v in evaluate_record(bare)}
        assert not by_name["sweep_speedup_min_2"].passed
        assert by_name["cache_warm_speedup_min_5"].passed

    def test_evaluate_latest_requires_bench_records(self, tmp_path):
        with pytest.raises(ValueError, match=BENCH_COMMAND):
            evaluate_latest(RunJournal(tmp_path / "j"))


class TestCli:
    def write_results(self, tmp_path, **kwargs):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(make_bench_payload(**kwargs)))
        return path

    def test_ingest_and_pass(self, tmp_path, capsys):
        results = self.write_results(tmp_path)
        journal_dir = tmp_path / "j"
        assert gate_main([str(results), "--journal", str(journal_dir)]) == 0
        out = capsys.readouterr().out
        assert "ENFORCED" in out and "0 failed" in out
        assert RunJournal(journal_dir).latest() is not None

    def test_enforced_failure_exits_1_report_only_0(self, tmp_path, capsys):
        results = self.write_results(tmp_path, sweep_speedup=0.5)
        journal = str(tmp_path / "j")
        assert gate_main([str(results), "--journal", journal]) == 1
        assert gate_main(
            [str(results), "--journal", journal, "--report-only"]
        ) == 0
        assert "report-only mode" in capsys.readouterr().out

    def test_no_ingest_reads_journal_only(self, tmp_path, capsys):
        results = self.write_results(tmp_path)
        journal_dir = tmp_path / "j"
        gate_main([str(results), "--journal", str(journal_dir)])
        before = (RunJournal(journal_dir).file).read_text()
        assert gate_main(
            [str(results), "--journal", str(journal_dir), "--no-ingest"]
        ) == 0
        assert (RunJournal(journal_dir).file).read_text() == before

    def test_empty_journal_is_error(self, tmp_path, capsys):
        assert gate_main(["--journal", str(tmp_path / "empty")]) == 2
        assert "error" in capsys.readouterr().err
