"""Run diffs: verdict thresholds, added/removed phases, baselines."""

import pytest

from repro.obs.diff import (
    ADDED,
    IMPROVED,
    NEUTRAL,
    REGRESSED,
    REMOVED,
    DiffThresholds,
    classify,
    diff_against_baseline,
    diff_records,
    record_from_trace,
)
from repro.obs.journal import RunJournal

from .test_journal import make_manifest, make_trace


def record(run_id="r1", phases=None, duration=10.0, rss=None, counters=None):
    return {
        "run_id": run_id,
        "command": "analyze",
        "duration_s": duration,
        "peak_rss_bytes": rss,
        "phases": {
            name: {"count": 1, "total_s": total, "self_s": total,
                   "max_s": total}
            for name, total in (phases or {}).items()
        },
        "metrics": {"counters": counters or {}, "gauges": {},
                    "histograms": {}},
    }


class TestClassify:
    def test_needs_both_gates(self):
        # Big relative change, tiny absolute: a microsecond phase that
        # doubled is still noise.
        assert classify(0.001, 0.01, rel=0.25, abs_floor=0.25) == NEUTRAL
        # Big absolute change, small relative: scheduler noise on a
        # long phase.
        assert classify(100.0, 101.0, rel=0.25, abs_floor=0.25) == NEUTRAL
        # Both cleared: a real regression.
        assert classify(1.0, 2.0, rel=0.25, abs_floor=0.25) == REGRESSED

    def test_improvement(self):
        assert classify(2.0, 1.0, rel=0.25, abs_floor=0.25) == IMPROVED

    def test_exact_thresholds_stay_neutral(self):
        assert classify(1.0, 1.25, rel=0.25, abs_floor=0.1) == NEUTRAL
        assert classify(1.0, 1.25, rel=0.1, abs_floor=0.25) == NEUTRAL

    def test_zero_before_regresses_past_floor(self):
        assert classify(0.0, 1.0, rel=0.25, abs_floor=0.25) == REGRESSED
        assert classify(0.0, 0.1, rel=0.25, abs_floor=0.25) == NEUTRAL

    def test_higher_is_better_flips(self):
        assert (
            classify(1.0, 2.0, rel=0.25, abs_floor=0.25,
                     higher_is_worse=False)
            == IMPROVED
        )

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DiffThresholds(rel=-0.1)
        with pytest.raises(ValueError):
            DiffThresholds(abs_s=-1.0)


class TestDiffRecords:
    def test_identical_runs_have_no_regressions(self):
        a = record("r1", {"ingest": 1.0, "epochs": 5.0})
        b = record("r2", {"ingest": 1.0, "epochs": 5.0})
        result = diff_records(a, b)
        assert not result.has_regressions
        assert result.n_improved == 0
        assert "0 regressed" in result.summary()

    def test_phase_regression_and_improvement(self):
        a = record("r1", {"epochs": 5.0, "ingest": 2.0}, duration=10.0)
        b = record("r2", {"epochs": 8.0, "ingest": 1.0}, duration=10.0)
        result = diff_records(a, b)
        by_name = {v.name: v.verdict for v in result.verdicts
                   if v.kind == "phase"}
        assert by_name["epochs"] == REGRESSED
        assert by_name["ingest"] == IMPROVED

    def test_added_and_removed_phases(self):
        a = record("r1", {"old_phase": 1.0})
        b = record("r2", {"new_phase": 1.0})
        verdicts = {
            v.name: v.verdict
            for v in diff_records(a, b).verdicts
            if v.kind == "phase"
        }
        assert verdicts["old_phase"] == REMOVED
        assert verdicts["new_phase"] == ADDED

    def test_rss_uses_byte_floor(self):
        floor = DiffThresholds().abs_bytes
        a = record("r1", rss=100 * floor)
        b_noise = record("r2", rss=100 * floor + floor // 2)
        b_real = record("r3", rss=200 * floor)
        rss = lambda result: next(
            v for v in result.verdicts if v.name == "peak_rss_bytes"
        )
        assert rss(diff_records(a, b_noise)).verdict == NEUTRAL
        assert rss(diff_records(a, b_real)).verdict == REGRESSED

    def test_degraded_counters_regress_outright(self):
        a = record("r1", counters={"degraded.shm_to_pickle": 0})
        b = record("r2", counters={"degraded.shm_to_pickle": 1})
        result = diff_records(a, b)
        degraded = next(v for v in result.verdicts if v.kind == "counter")
        assert degraded.verdict == REGRESSED
        # And recovering is an improvement, not noise.
        assert (
            next(
                v for v in diff_records(b, a).verdicts
                if v.kind == "counter"
            ).verdict
            == IMPROVED
        )

    def test_other_counters_report_neutral_and_unchanged_skip(self):
        a = record("r1", counters={"cache.hit": 5, "same": 1})
        b = record("r2", counters={"cache.hit": 9, "same": 1})
        counters = [
            v for v in diff_records(a, b).verdicts if v.kind == "counter"
        ]
        assert [v.name for v in counters] == ["cache.hit"]
        assert counters[0].verdict == NEUTRAL

    def test_custom_thresholds(self):
        a = record("r1", {"epochs": 1.0})
        b = record("r2", {"epochs": 1.1})
        strict = DiffThresholds(rel=0.05, abs_s=0.01)
        assert diff_records(a, b, strict).has_regressions
        assert not diff_records(a, b).has_regressions

    def test_render_mentions_runs_and_verdicts(self):
        a = record("r1", {"epochs": 1.0})
        b = record("r2", {"epochs": 9.0})
        text = diff_records(a, b).render()
        assert "r1" in text and "r2" in text
        assert "regressed" in text


class TestRecordFromTrace:
    def test_phases_from_tree_manifest_optional(self, tmp_path):
        import json

        path = tmp_path / "run.json"
        path.write_text(json.dumps({"trace": make_trace()}))
        rec = record_from_trace(path)
        assert rec["command"] == "analyze"
        assert "epochs" in rec["phases"]
        assert rec["peak_rss_bytes"] is None

    def test_manifest_enriches(self, tmp_path):
        import json

        path = tmp_path / "run.json"
        path.write_text(json.dumps({"trace": make_trace()}))
        (tmp_path / "run.manifest.json").write_text(
            json.dumps(
                {"command": "analyze", "peak_rss_bytes": 123,
                 "duration_s": 4.5}
            )
        )
        rec = record_from_trace(path)
        assert rec["peak_rss_bytes"] == 123
        assert rec["duration_s"] == 4.5


class TestBaselineDiff:
    def test_none_without_history(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        only = journal.ingest(make_manifest())
        assert diff_against_baseline(journal, only) is None

    def test_steady_history_diffs_neutral(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        for _ in range(3):
            journal.ingest(make_manifest(duration=1.0), trace=make_trace())
        newest = journal.latest()
        result = diff_against_baseline(journal, newest, k=2)
        assert result is not None
        assert not result.has_regressions
        assert result.before_id == "baseline[2]"
