"""The append-only run journal: ingest, tolerance, baselines."""

import json
import logging

import pytest

from repro.obs import Tracer, build_run_manifest
from repro.obs.journal import (
    JOURNAL_VERSION,
    RunJournal,
    config_digest,
    git_sha,
)


def make_manifest(command="analyze", args=None, duration=1.0, exit_code=0):
    return {
        "command": command,
        "argv": [command, "t.jsonl"],
        "args": args or {"workers": 2, "trace": "t.jsonl"},
        "started_unix": 1700000000.0,
        "duration_s": duration,
        "exit_code": exit_code,
        "host": "box",
        "python": "3.x",
        "peak_rss_bytes": 50_000_000,
        "degradations": [],
        "metrics": {"counters": {"c": 1}, "gauges": {}, "histograms": {}},
    }


def make_trace(epoch_s=0.5):
    return {
        "name": "analyze",
        "duration_s": 1.0,
        "attrs": {},
        "children": [
            {"name": "ingest", "duration_s": 0.2, "attrs": {},
             "children": []},
            {"name": "epochs", "duration_s": epoch_s, "attrs": {},
             "children": []},
        ],
    }


class TestConfigDigest:
    def test_observability_args_excluded(self):
        base = {"workers": 2, "trace": "t.jsonl"}
        noisy = dict(
            base, trace_out="a.json", journal=".j", timings=True,
            profile=97.0, output="x",
        )
        assert config_digest("analyze", base) == config_digest(
            "analyze", noisy
        )

    def test_computation_args_matter(self):
        assert config_digest("analyze", {"workers": 2}) != config_digest(
            "analyze", {"workers": 4}
        )
        assert config_digest("analyze", {}) != config_digest("sweep", {})

    def test_git_sha_in_this_repo(self):
        sha = git_sha()
        # We test from inside a git checkout; outside one, None is fine.
        if sha is not None:
            assert len(sha) == 40

    def test_git_sha_outside_repo(self, tmp_path):
        assert git_sha(cwd=tmp_path) is None


class TestIngest:
    def test_manifest_round_trip(self, tmp_path):
        tracer = Tracer(name="analyze")
        with tracer.span("ingest"):
            pass
        with tracer.span("epochs"):
            pass
        manifest = build_run_manifest(
            "analyze", ["analyze", "t.jsonl"], tracer,
            args={"workers": 2}, exit_code=0,
        )
        journal = RunJournal(tmp_path / "j")
        record = journal.ingest(manifest, trace=tracer.as_dict())

        assert record["run_id"].startswith("r00001-")
        loaded = journal.get(record["run_id"])
        assert loaded is not None
        assert loaded["command"] == "analyze"
        assert loaded["config_digest"] == config_digest(
            "analyze", {"workers": 2}
        )
        assert set(loaded["phases"]) >= {"analyze", "ingest", "epochs"}
        assert loaded["critical_path"][0]["name"] == "analyze"
        assert loaded["exit_code"] == 0
        assert loaded["peak_rss_bytes"] == manifest["peak_rss_bytes"]

    def test_failed_runs_are_journaled_too(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        record = journal.ingest(make_manifest(exit_code=2))
        assert journal.get(record["run_id"])["exit_code"] == 2

    def test_manifest_without_command_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="command"):
            RunJournal(tmp_path / "j").ingest({"args": {}})

    def test_run_ids_are_sequential_and_unique(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        ids = [
            journal.ingest(make_manifest())["run_id"] for _ in range(3)
        ]
        assert len(set(ids)) == 3
        assert [i.split("-")[0] for i in ids] == ["r00001", "r00002",
                                                 "r00003"]


class TestReadTolerance:
    def test_corrupt_line_skipped_with_warning(self, tmp_path, caplog):
        journal = RunJournal(tmp_path / "j")
        first = journal.ingest(make_manifest())
        with open(journal.file, "a", encoding="utf-8") as fh:
            fh.write("{truncated garbage\n")
            fh.write("[1, 2, 3]\n")  # valid JSON, not a record
        second = journal.ingest(make_manifest())

        with caplog.at_level(logging.WARNING, logger="repro.obs.journal"):
            records = journal.records()
        assert [r["run_id"] for r in records] == [
            first["run_id"], second["run_id"],
        ]
        assert caplog.text.count("corrupt record skipped") == 2

    def test_version_mismatch_rejected_with_warning(self, tmp_path, caplog):
        journal = RunJournal(tmp_path / "j")
        kept = journal.ingest(make_manifest())
        alien = dict(make_manifest(), journal_version=JOURNAL_VERSION + 1,
                     run_id="r-alien")
        with open(journal.file, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(alien) + "\n")

        with caplog.at_level(logging.WARNING, logger="repro.obs.journal"):
            records = journal.records()
        assert [r["run_id"] for r in records] == [kept["run_id"]]
        assert "version" in caplog.text and "rejected" in caplog.text

    def test_missing_file_is_empty(self, tmp_path):
        journal = RunJournal(tmp_path / "never-written")
        assert journal.records() == []
        assert journal.latest() is None
        assert journal.get("r00001") is None


class TestQueries:
    def test_filters_and_last(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        journal.ingest(make_manifest("analyze"))
        journal.ingest(make_manifest("sweep"))
        journal.ingest(make_manifest("analyze"))
        assert len(journal.records(command="analyze")) == 2
        assert len(journal.records(last=1)) == 1
        assert journal.latest(command="sweep")["command"] == "sweep"

    def test_get_by_unique_prefix(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        record = journal.ingest(make_manifest())
        assert journal.get(record["run_id"][:9]) == record
        # 'r0000' prefixes every run id once there are two records.
        journal.ingest(make_manifest())
        assert journal.get("r0000") is None


class TestBaseline:
    def test_mean_of_last_k_matching(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        for duration in (1.0, 2.0, 3.0):
            journal.ingest(
                make_manifest(duration=duration),
                trace=make_trace(epoch_s=duration / 2),
            )
        newest = journal.latest()
        baseline = journal.baseline(newest, k=2)
        assert baseline is not None
        # Excludes the record itself: mean of the first two runs.
        assert baseline["duration_s"] == pytest.approx(1.5)
        assert baseline["phases"]["epochs"]["total_s"] == pytest.approx(0.75)
        assert baseline["run_id"] == "baseline[2]"
        assert len(baseline["baseline_of"]) == 2

    def test_none_without_matching_history(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        only = journal.ingest(make_manifest())
        assert journal.baseline(only) is None
        # A different config digest never matches.
        other = journal.ingest(
            make_manifest(args={"workers": 99, "trace": "t.jsonl"})
        )
        assert journal.baseline(other) is None
