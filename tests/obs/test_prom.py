"""Prometheus exposition rendering of the metrics registry."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.prom import render_prometheus, sanitize_name


class TestSanitize:
    def test_dotted_names(self):
        assert sanitize_name("cache.hit") == "repro_cache_hit"
        assert sanitize_name("a-b c") == "repro_a_b_c"

    def test_leading_digit_gets_underscore(self):
        assert sanitize_name("5xx.count") == "repro__5xx_count"

    def test_custom_prefix(self):
        assert sanitize_name("x", prefix="") == "x"


class TestRender:
    def test_counters_and_gauges(self):
        metrics = MetricsRegistry()
        metrics.inc("cache.hit", 3)
        metrics.gauge("peak.rss", 1.5)
        text = render_prometheus(metrics)
        assert "# TYPE repro_cache_hit counter" in text
        assert "repro_cache_hit 3" in text
        assert "# TYPE repro_peak_rss gauge" in text
        assert "repro_peak_rss 1.5" in text
        assert text.endswith("\n")

    def test_histograms_become_summaries(self):
        metrics = MetricsRegistry()
        for v in range(1, 101):
            metrics.observe("epoch.seconds", float(v))
        text = render_prometheus(metrics)
        assert "# TYPE repro_epoch_seconds summary" in text
        assert 'repro_epoch_seconds{quantile="0.5"}' in text
        assert 'repro_epoch_seconds{quantile="0.95"}' in text
        assert 'repro_epoch_seconds{quantile="0.99"}' in text
        assert "repro_epoch_seconds_count 100" in text
        assert "repro_epoch_seconds_sum 5050" in text
        assert "repro_epoch_seconds_min 1" in text
        assert "repro_epoch_seconds_max 100" in text

    def test_dict_snapshot_accepted(self):
        metrics = MetricsRegistry()
        metrics.inc("c")
        metrics.observe("h", 2.0)
        assert render_prometheus(metrics.as_dict()) == render_prometheus(
            metrics
        )

    def test_online_detector_gauges_render(self):
        # The long-running detector path: its _export_metrics gauges
        # must be scrapable without translation.
        metrics = MetricsRegistry()
        metrics.gauge("online.epochs_processed", 42)
        metrics.gauge("online.problem_clusters", 3)
        text = render_prometheus(metrics)
        assert "repro_online_epochs_processed 42" in text
        assert "repro_online_problem_clusters 3" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="snapshot"):
            render_prometheus(["nope"])
        with pytest.raises(ValueError, match="snapshot"):
            render_prometheus(None)
