"""The SIGPROF sampling profiler: attribution, lifecycle, export."""

import signal

import pytest

from repro.obs import Tracer
from repro.obs.profile import (
    NO_SPAN,
    SamplingProfiler,
    flame_path_for,
    profiler_available,
    read_collapsed,
)

needs_sigprof = pytest.mark.skipif(
    not profiler_available(), reason="no SIGPROF/setitimer on this platform"
)


def burn_cpu(seconds=0.05):
    """Consume CPU time (ITIMER_PROF counts CPU, not wall clock)."""
    import time

    deadline = time.process_time() + seconds
    x = 0
    while time.process_time() < deadline:
        x += 1
    return x


class TestConstruction:
    def test_rejects_bad_hz_and_tracer(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="positive"):
            SamplingProfiler(tracer, hz=0)
        with pytest.raises(ValueError, match="positive"):
            SamplingProfiler(tracer, hz=-5)
        with pytest.raises(ValueError, match="Tracer"):
            SamplingProfiler("not a tracer")


@needs_sigprof
class TestSampling:
    def test_samples_attribute_to_innermost_span(self, tmp_path):
        tracer = Tracer(name="run")
        profiler = SamplingProfiler(tracer, hz=500)
        with profiler:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    burn_cpu(0.1)
        assert profiler.n_samples > 0
        top = profiler.top_stack()
        assert top is not None
        path, count = top
        assert path == ("run", "outer", "inner")
        assert count == max(profiler.samples.values())

    def test_stop_restores_handler_and_is_idempotent(self):
        before = signal.getsignal(signal.SIGPROF)
        profiler = SamplingProfiler(Tracer(), hz=50)
        profiler.start()
        assert signal.getsignal(signal.SIGPROF) == profiler._handle
        profiler.stop()
        profiler.stop()  # second stop is a no-op
        assert signal.getsignal(signal.SIGPROF) == before
        # Timer disarmed: no residual interval.
        assert signal.getitimer(signal.ITIMER_PROF) == (0.0, 0.0)

    def test_double_start_rejected(self):
        profiler = SamplingProfiler(Tracer(), hz=50)
        profiler.start()
        try:
            with pytest.raises(RuntimeError, match="already running"):
                profiler.start()
        finally:
            profiler.stop()


class TestHandler:
    """Drive _handle directly — no timers, so no platform dependence."""

    def test_empty_stack_charges_no_span(self):
        tracer = Tracer()
        tracer._stack.clear()  # simulate a sample landing outside any span
        profiler = SamplingProfiler(tracer, hz=50)
        profiler._handle(0, None)
        assert profiler.samples == {(NO_SPAN,): 1}

    def test_handler_never_raises(self):
        profiler = SamplingProfiler(Tracer(), hz=50)
        profiler.tracer = None  # sabotage: stack access will explode
        profiler._handle(0, None)  # must swallow, not raise
        assert profiler.n_samples == 0


class TestExport:
    def make_profiler(self):
        profiler = SamplingProfiler(Tracer(), hz=50)
        profiler.samples = {
            ("run", "epochs"): 30,
            ("run", "ingest"): 10,
            ("run",): 5,
        }
        profiler.n_samples = 45
        return profiler

    def test_collapsed_format_most_sampled_first(self):
        lines = self.make_profiler().collapsed()
        assert lines == ["run;epochs 30", "run;ingest 10", "run 5"]

    def test_write_read_round_trip(self, tmp_path):
        profiler = self.make_profiler()
        path = profiler.write_collapsed(tmp_path / "out.flame.txt")
        assert read_collapsed(path) == [
            (("run", "epochs"), 30),
            (("run", "ingest"), 10),
            (("run",), 5),
        ]

    def test_read_tolerates_blanks_rejects_garbage(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("a;b 3\n\n")
        assert read_collapsed(path) == [(("a", "b"), 3)]
        path.write_text("a;b 3\nnot a stack line\n")
        with pytest.raises(ValueError, match="line 2"):
            read_collapsed(path)

    def test_flame_path_for(self):
        assert (
            flame_path_for("out/trace.json").name == "trace.flame.txt"
        )
        assert flame_path_for("out/trace.json").parent.name == "out"

    def test_top_stack_none_when_empty(self):
        assert SamplingProfiler(Tracer(), hz=50).top_stack() is None
