"""Sweep-equivalence properties of the analysis substrate.

``analyze_sweep`` must be a pure amortization: for any list of configs
its per-config results are bit-identical to independent
``analyze_trace`` calls — same problem-cluster dicts, same critical
attribution, same grid — regardless of how configs share or differ in
thresholds, problem knobs, epoch lengths, metrics, worker counts, or
transport. These tests pin that invariant on randomized config lists
and on the executor edge cases (empty trace, single epoch, duplicate
configs).
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.metrics import ALL_METRICS, MetricThresholds
from repro.core.pipeline import AnalysisConfig, analyze_trace
from repro.core.problems import ProblemClusterConfig
from repro.core.sessions import SessionTable
from repro.core.substrate import AnalysisSubstrate, analyze_sweep
from tests.property.test_parallel_equivalence import (
    SMALL_CONFIG,
    assert_equal_analyses,
    build_table,
    session_rows,
)

#: All four metrics with the permissive knobs of SMALL_CONFIG.
ALL_METRICS_SMALL = dataclasses.replace(SMALL_CONFIG, metrics=ALL_METRICS)


def config_variant(
    base: AnalysisConfig,
    threshold_scale: float,
    ratio_multiplier: float,
    epoch_seconds: float,
) -> AnalysisConfig:
    return dataclasses.replace(
        base,
        thresholds=MetricThresholds().scaled(threshold_scale),
        problem_config=ProblemClusterConfig(
            ratio_multiplier=ratio_multiplier,
            min_sessions=5,
            min_problems=2,
            significance_sigmas=0.0,
        ),
        epoch_seconds=epoch_seconds,
    )


# Randomized config lists: every config varies thresholds, the ratio
# multiplier and the epoch length independently, so sweeps mix configs
# that share aggregates with configs that need their own grid.
config_lists = st.lists(
    st.builds(
        config_variant,
        st.just(ALL_METRICS_SMALL),
        st.sampled_from([0.5, 1.0, 2.0]),
        st.sampled_from([1.25, 1.5, 2.0]),
        st.sampled_from([1800.0, 3600.0]),
    ),
    min_size=1,
    max_size=4,
)


def assert_sweep_matches_independent_runs(table: SessionTable, configs):
    sweep = analyze_sweep(table, configs)
    assert len(sweep) == len(configs)
    for config, got in zip(configs, sweep):
        assert_equal_analyses(analyze_trace(table, config=config), got)


@settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(session_rows, config_lists)
def test_sweep_equals_independent_runs_on_random_traces(rows, configs):
    assert_sweep_matches_independent_runs(build_table(rows), configs)


def test_sweep_all_four_metrics_on_generated_trace(tiny_trace):
    """Every metric's validity pattern survives aggregate sharing."""
    configs = [
        ALL_METRICS_SMALL,
        dataclasses.replace(
            ALL_METRICS_SMALL, thresholds=MetricThresholds().scaled(0.5)
        ),
        dataclasses.replace(
            ALL_METRICS_SMALL,
            problem_config=ProblemClusterConfig(
                ratio_multiplier=2.0,
                min_sessions=5,
                min_problems=2,
                significance_sigmas=0.0,
            ),
        ),
    ]
    sweep = analyze_sweep(tiny_trace.table, configs, grid=tiny_trace.grid)
    for config, got in zip(configs, sweep):
        ref = analyze_trace(tiny_trace.table, config=config, grid=tiny_trace.grid)
        assert_equal_analyses(ref, got)
    # the planted structure exists, so equality is not vacuous
    assert any(
        e.n_critical_clusters
        for analysis in sweep
        for ma in analysis.metrics.values()
        for e in ma.epochs
    )


def test_empty_trace_sweep():
    table = SessionTable.empty()
    configs = [SMALL_CONFIG, dataclasses.replace(SMALL_CONFIG, epoch_seconds=1800.0)]
    assert_sweep_matches_independent_runs(table, configs)


def test_single_epoch_sweep():
    table = build_table([(0, a % 3, a % 2, a % 4 == 0) for a in range(40)])
    configs = [
        SMALL_CONFIG,
        dataclasses.replace(SMALL_CONFIG, thresholds=MetricThresholds().scaled(2.0)),
    ]
    assert_sweep_matches_independent_runs(table, configs)


def test_duplicate_configs_share_everything():
    table = build_table(
        [(e, a % 3, a % 2, (a + e) % 4 == 0) for e in range(3) for a in range(40)]
    )
    sweep = analyze_sweep(table, [SMALL_CONFIG, SMALL_CONFIG, SMALL_CONFIG])
    ref = analyze_trace(table, config=SMALL_CONFIG)
    for got in sweep:
        assert_equal_analyses(ref, got)


def test_empty_config_list():
    assert analyze_sweep(build_table([(0, 0, 0, True)]), []) == []


def test_sweep_timings_attributed_per_config():
    """Shared costs divide across configs; per-config phases measured."""
    table = build_table(
        [(e, a % 3, a % 2, (a + e) % 4 == 0) for e in range(3) for a in range(40)]
    )
    configs = [SMALL_CONFIG, dataclasses.replace(SMALL_CONFIG, epoch_seconds=1800.0)]
    sweep = analyze_sweep(table, configs)
    for analysis in sweep:
        t = analysis.timings
        assert t.n_epochs == analysis.grid.n_epochs
        assert t.n_units == analysis.grid.n_epochs * len(analysis.metric_names)
        assert t.wall_s > 0


class TestSubstrateReuse:
    def test_prebuilt_substrate_matches(self):
        table = build_table(
            [(e, a % 3, a % 2, a % 3 == 0) for e in range(3) for a in range(40)]
        )
        substrate = AnalysisSubstrate.build(table)
        direct = analyze_sweep(table, [SMALL_CONFIG])
        via_substrate = substrate.sweep([SMALL_CONFIG])
        assert_equal_analyses(direct[0], via_substrate[0])

    def test_substrate_analyze_single_config(self):
        table = build_table(
            [(e, a % 3, a % 2, a % 3 == 0) for e in range(3) for a in range(40)]
        )
        substrate = AnalysisSubstrate.build(table)
        assert_equal_analyses(
            analyze_trace(table, config=SMALL_CONFIG),
            substrate.analyze(config=SMALL_CONFIG),
        )

    def test_epoch_split_cache_reused(self):
        table = build_table(
            [(e, a % 3, a % 2, a % 3 == 0) for e in range(2) for a in range(30)]
        )
        substrate = AnalysisSubstrate.build(table)
        grid = substrate.grid_covering(3600.0)
        first = substrate.epoch_rows(grid)
        assert substrate.epoch_rows(grid) is first


class TestParallelSweep:
    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    def test_workers_and_transport_do_not_change_results(self, transport):
        table = build_table(
            [(e, a % 3, a % 2, (a * 7 + e) % 5 == 0) for e in range(3)
             for a in range(35)]
        )
        configs = [
            ALL_METRICS_SMALL,
            dataclasses.replace(
                ALL_METRICS_SMALL, thresholds=MetricThresholds().scaled(0.5)
            ),
            dataclasses.replace(ALL_METRICS_SMALL, epoch_seconds=1800.0),
        ]
        serial = analyze_sweep(table, configs)
        parallel = analyze_sweep(table, configs, workers=2, transport=transport)
        for a, b in zip(serial, parallel):
            assert_equal_analyses(a, b)

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(session_rows)
    def test_parallel_sweep_on_random_traces(self, rows):
        table = build_table(rows)
        configs = [
            SMALL_CONFIG,
            dataclasses.replace(
                SMALL_CONFIG, thresholds=MetricThresholds().scaled(2.0)
            ),
        ]
        serial = analyze_sweep(table, configs)
        parallel = analyze_sweep(table, configs, workers=2)
        for a, b in zip(serial, parallel):
            assert_equal_analyses(a, b)
