"""Property-based tests of the trace generator across its config space."""

import dataclasses

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.metrics import ALL_METRICS
from repro.trace.arrivals import ArrivalModel
from repro.trace.entities import WorldConfig, build_world
from repro.trace.events import EventConfig
from repro.trace.generator import generate_trace
from repro.trace.workloads import WorkloadSpec

specs = st.builds(
    WorkloadSpec,
    name=st.just("prop"),
    seed=st.integers(0, 2**31 - 1),
    n_epochs=st.integers(1, 4),
    world=st.builds(
        WorldConfig,
        n_asns=st.integers(4, 20),
        n_cdns=st.integers(2, 6),
        n_sites=st.integers(2, 10),
        zipf_exponent=st.floats(0.5, 1.5),
        single_bitrate_site_fraction=st.floats(0.0, 0.4),
        wireless_asn_fraction=st.floats(0.0, 0.5),
    ),
    events=st.builds(
        EventConfig,
        chronic_per_metric=st.integers(0, 2),
        major_per_week=st.integers(0, 6),
        minor_per_week=st.integers(0, 6),
        transient_per_week=st.integers(0, 6),
        include_themed_chronics=st.booleans(),
    ),
    arrivals=st.builds(
        ArrivalModel,
        base_sessions_per_epoch=st.integers(60, 400),
        diurnal_amplitude=st.floats(0.0, 0.6),
        noise_sigma=st.floats(0.0, 0.2),
    ),
    include_region=st.booleans(),
)


@settings(max_examples=25, deadline=None)
@given(specs)
def test_generated_trace_invariants(spec):
    trace = generate_trace(spec)
    table = trace.table

    # Timestamps within the grid.
    assert table.start_time.min() >= 0.0
    assert table.start_time.max() < spec.n_epochs * spec.epoch_seconds

    # Attribute codes within vocabularies.
    for col, vocab in enumerate(table.vocabs):
        assert table.codes[:, col].min() >= 0
        assert table.codes[:, col].max() < len(vocab)

    # Session-level quality invariants.
    ok = ~table.join_failed
    assert (table.duration_s[ok] > 0).all()
    assert (table.buffering_s <= table.duration_s + 1e-9).all()
    assert np.isnan(table.join_time_s[~ok]).all()
    assert (np.nan_to_num(table.bitrate_kbps[ok], nan=1.0) > 0).all()

    # Region column consistent with ASN regions when enabled.
    if spec.include_region:
        assert table.schema.names[-1] == "region"
        region = table.codes[:, -1]
        expected = trace.world.region_of_asn[table.codes[:, 0]]
        assert np.array_equal(region, expected)

    # Metric masks are well-formed for every metric.
    for metric in ALL_METRICS:
        problems = metric.problem_mask(table)
        valid = metric.valid_mask(table)
        assert not np.any(problems & ~valid)


@settings(max_examples=15, deadline=None)
@given(specs)
def test_generation_deterministic(spec):
    t1 = generate_trace(spec)
    t2 = generate_trace(spec)
    assert np.array_equal(t1.table.codes, t2.table.codes)
    assert np.array_equal(t1.table.join_failed, t2.table.join_failed)
    assert [e.event_id for e in t1.catalog] == [e.event_id for e in t2.catalog]


@settings(max_examples=15, deadline=None)
@given(
    st.integers(2, 12),
    st.integers(2, 5),
    st.integers(2, 8),
    st.integers(0, 2**31 - 1),
)
def test_world_build_never_crashes(n_asns, n_cdns, n_sites, seed):
    world = build_world(
        WorldConfig(n_asns=n_asns, n_cdns=n_cdns, n_sites=n_sites),
        np.random.default_rng(seed),
    )
    assert len(world.vocabularies()) == 7
    for site in world.sites:
        assert all(0 <= i < n_cdns for i in site.cdn_indices)
