"""Serial/parallel equivalence of the epoch-parallel analysis engine.

``analyze_trace(workers=N)`` must be indistinguishable from the serial
path: identical per-epoch problem-cluster dicts (same
:class:`ClusterKey` -> same stats) and identical critical-cluster
attribution, for every metric. These tests pin that invariant on
generated traces and on the edge cases the executor special-cases
(empty epochs, single epoch, empty trace).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.metrics import JOIN_FAILURE
from repro.core.pipeline import (
    AnalysisConfig,
    analyze_trace,
    resolve_worker_count,
)
from repro.core.problems import ProblemClusterConfig
from repro.core.sessions import SessionTable
from tests.conftest import make_session

#: Permissive significance knobs so tiny random traces produce clusters.
SMALL_CONFIG = AnalysisConfig(
    metrics=(JOIN_FAILURE,),
    problem_config=ProblemClusterConfig(
        min_sessions=5, min_problems=2, significance_sigmas=0.0
    ),
)


def assert_equal_analyses(a, b):
    """Exact structural equality of two TraceAnalysis results."""
    assert a.metric_names == b.metric_names
    assert a.grid == b.grid
    for name in a.metric_names:
        epochs_a = a[name].epochs
        epochs_b = b[name].epochs
        assert len(epochs_a) == len(epochs_b)
        for ea, eb in zip(epochs_a, epochs_b):
            assert ea.epoch == eb.epoch
            assert ea.problem_clusters == eb.problem_clusters
            assert ea.critical_clusters == eb.critical_clusters
            assert ea == eb  # all remaining counters/coverages


# Random small traces over three epochs; attribute values collide enough
# for clusters to form, and epochs may be empty.
session_rows = st.lists(
    st.tuples(
        st.integers(0, 2),  # epoch
        st.integers(0, 2),  # asn
        st.integers(0, 1),  # cdn
        st.booleans(),  # join failed
    ),
    min_size=1,
    max_size=80,
)


def build_table(rows) -> SessionTable:
    return SessionTable.from_sessions(
        make_session(
            start_time=epoch * 3600.0 + 60.0 * (i % 50),
            asn=f"AS{a}",
            cdn=f"c{c}",
            join_failed=failed,
        )
        for i, (epoch, a, c, failed) in enumerate(rows)
    )


@settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(session_rows)
def test_parallel_equals_serial_on_random_traces(rows):
    table = build_table(rows)
    serial = analyze_trace(table, config=SMALL_CONFIG, workers=0)
    parallel = analyze_trace(table, config=SMALL_CONFIG, workers=2)
    assert_equal_analyses(serial, parallel)


def test_parallel_equals_serial_on_generated_trace(tiny_trace, tiny_analysis):
    """Full four-metric equality on a generated trace with planted events."""
    parallel = analyze_trace(
        tiny_trace.table, grid=tiny_trace.grid, workers=2
    )
    assert_equal_analyses(tiny_analysis, parallel)
    # the planted structure actually exists, so equality is not vacuous
    assert any(
        e.n_critical_clusters
        for ma in parallel.metrics.values()
        for e in ma.epochs
    )


def test_empty_middle_epoch():
    rows = [(0, 0, 0, True)] * 20 + [(2, 1, 1, False)] * 20
    table = build_table(rows)
    serial = analyze_trace(table, config=SMALL_CONFIG, workers=0)
    parallel = analyze_trace(table, config=SMALL_CONFIG, workers=2)
    assert serial.grid.n_epochs == 3
    assert serial["join_failure"].epochs[1].total_sessions == 0
    assert_equal_analyses(serial, parallel)


def test_single_epoch_trace():
    table = build_table([(0, a % 3, a % 2, a % 4 == 0) for a in range(40)])
    serial = analyze_trace(table, config=SMALL_CONFIG, workers=0)
    parallel = analyze_trace(table, config=SMALL_CONFIG, workers=4)
    assert serial.grid.n_epochs == 1
    assert_equal_analyses(serial, parallel)


def test_empty_trace():
    table = SessionTable.empty()
    serial = analyze_trace(table, config=SMALL_CONFIG, workers=0)
    parallel = analyze_trace(table, config=SMALL_CONFIG, workers=2)
    assert serial.grid.n_epochs == 0
    assert_equal_analyses(serial, parallel)


def test_config_workers_used_when_argument_omitted():
    table = build_table([(e, a % 3, a % 2, a % 3 == 0) for e in range(2)
                         for a in range(30)])
    import dataclasses

    parallel_config = dataclasses.replace(SMALL_CONFIG, workers=2)
    serial = analyze_trace(table, config=SMALL_CONFIG)
    parallel = analyze_trace(table, config=parallel_config)
    assert_equal_analyses(serial, parallel)


class TestResolveWorkerCount:
    def test_serial_values(self):
        assert resolve_worker_count(None) == 0
        assert resolve_worker_count(0) == 0
        assert resolve_worker_count(1) == 1

    def test_auto_uses_cpus(self):
        import os

        assert resolve_worker_count("auto") == (os.cpu_count() or 1)

    def test_explicit(self):
        assert resolve_worker_count(7) == 7

    @pytest.mark.parametrize("bad", [-1, True, False, "many", 2.5])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_worker_count(bad)

    def test_config_validates_workers(self):
        with pytest.raises(ValueError):
            AnalysisConfig(workers="bogus")
        with pytest.raises(ValueError):
            AnalysisConfig(workers=-3)
