"""Engine-equivalence properties of the analysis pipeline.

``analyze_trace`` must return indistinguishable results across every
execution strategy: serial vs epoch-parallel (``workers``) and legacy
per-epoch vs trace-indexed reduction (``engine``) — identical per-epoch
problem-cluster dicts (same :class:`ClusterKey` -> same stats) and
identical critical-cluster attribution, for every metric. These tests
pin that invariant on generated traces and on the edge cases the
executors special-case (empty epochs, single epoch, empty trace).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.metrics import ALL_METRICS, JOIN_FAILURE
from repro.core.pipeline import (
    AnalysisConfig,
    analyze_trace,
    resolve_engine,
    resolve_worker_count,
)
from repro.core.problems import ProblemClusterConfig
from repro.core.sessions import SessionTable
from tests.conftest import make_session

#: Permissive significance knobs so tiny random traces produce clusters.
SMALL_CONFIG = AnalysisConfig(
    metrics=(JOIN_FAILURE,),
    problem_config=ProblemClusterConfig(
        min_sessions=5, min_problems=2, significance_sigmas=0.0
    ),
)

#: Same knobs over all four paper metrics (indexed-engine equivalence
#: must hold for every metric's validity pattern, not just join failure).
ALL_METRICS_CONFIG = dataclasses.replace(SMALL_CONFIG, metrics=ALL_METRICS)


def assert_equal_analyses(a, b):
    """Exact structural equality of two TraceAnalysis results."""
    assert a.metric_names == b.metric_names
    assert a.grid == b.grid
    for name in a.metric_names:
        epochs_a = a[name].epochs
        epochs_b = b[name].epochs
        assert len(epochs_a) == len(epochs_b)
        for ea, eb in zip(epochs_a, epochs_b):
            assert ea.epoch == eb.epoch
            assert ea.problem_clusters == eb.problem_clusters
            assert ea.critical_clusters == eb.critical_clusters
            assert ea == eb  # all remaining counters/coverages


# Random small traces over three epochs; attribute values collide enough
# for clusters to form, and epochs may be empty.
session_rows = st.lists(
    st.tuples(
        st.integers(0, 2),  # epoch
        st.integers(0, 2),  # asn
        st.integers(0, 1),  # cdn
        st.booleans(),  # join failed
    ),
    min_size=1,
    max_size=80,
)


def build_table(rows) -> SessionTable:
    return SessionTable.from_sessions(
        make_session(
            start_time=epoch * 3600.0 + 60.0 * (i % 50),
            asn=f"AS{a}",
            cdn=f"c{c}",
            join_failed=failed,
        )
        for i, (epoch, a, c, failed) in enumerate(rows)
    )


@settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(session_rows)
def test_parallel_equals_serial_on_random_traces(rows):
    table = build_table(rows)
    serial = analyze_trace(table, config=SMALL_CONFIG, workers=0)
    parallel = analyze_trace(table, config=SMALL_CONFIG, workers=2)
    assert_equal_analyses(serial, parallel)


def test_parallel_equals_serial_on_generated_trace(tiny_trace, tiny_analysis):
    """Full four-metric equality on a generated trace with planted events."""
    parallel = analyze_trace(
        tiny_trace.table, grid=tiny_trace.grid, workers=2
    )
    assert_equal_analyses(tiny_analysis, parallel)
    # the planted structure actually exists, so equality is not vacuous
    assert any(
        e.n_critical_clusters
        for ma in parallel.metrics.values()
        for e in ma.epochs
    )


def test_empty_middle_epoch():
    rows = [(0, 0, 0, True)] * 20 + [(2, 1, 1, False)] * 20
    table = build_table(rows)
    serial = analyze_trace(table, config=SMALL_CONFIG, workers=0)
    parallel = analyze_trace(table, config=SMALL_CONFIG, workers=2)
    assert serial.grid.n_epochs == 3
    assert serial["join_failure"].epochs[1].total_sessions == 0
    assert_equal_analyses(serial, parallel)


def test_single_epoch_trace():
    table = build_table([(0, a % 3, a % 2, a % 4 == 0) for a in range(40)])
    serial = analyze_trace(table, config=SMALL_CONFIG, workers=0)
    parallel = analyze_trace(table, config=SMALL_CONFIG, workers=4)
    assert serial.grid.n_epochs == 1
    assert_equal_analyses(serial, parallel)


def test_empty_trace():
    table = SessionTable.empty()
    serial = analyze_trace(table, config=SMALL_CONFIG, workers=0)
    parallel = analyze_trace(table, config=SMALL_CONFIG, workers=2)
    assert serial.grid.n_epochs == 0
    assert_equal_analyses(serial, parallel)


def test_config_workers_used_when_argument_omitted():
    table = build_table([(e, a % 3, a % 2, a % 3 == 0) for e in range(2)
                         for a in range(30)])
    parallel_config = dataclasses.replace(SMALL_CONFIG, workers=2)
    serial = analyze_trace(table, config=SMALL_CONFIG)
    parallel = analyze_trace(table, config=parallel_config)
    assert_equal_analyses(serial, parallel)


class TestIndexedEngineEquivalence:
    """The trace-indexed engine must be output-identical to the legacy
    per-epoch engine — bit-identical problem and critical clusters."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(session_rows)
    def test_indexed_equals_legacy_on_random_traces(self, rows):
        table = build_table(rows)
        legacy = analyze_trace(table, config=SMALL_CONFIG, engine="epoch")
        indexed = analyze_trace(table, config=SMALL_CONFIG, engine="indexed")
        assert_equal_analyses(legacy, indexed)

    def test_indexed_equals_legacy_on_generated_trace(self, tiny_trace):
        """Full four-metric equality on a trace with planted events."""
        legacy = analyze_trace(
            tiny_trace.table, grid=tiny_trace.grid, engine="epoch"
        )
        indexed = analyze_trace(
            tiny_trace.table, grid=tiny_trace.grid, engine="indexed"
        )
        assert_equal_analyses(legacy, indexed)
        assert any(
            e.n_critical_clusters
            for ma in indexed.metrics.values()
            for e in ma.epochs
        )

    def test_all_metrics_validity_patterns(self):
        """Every metric's valid-session subset reduces identically —
        the indexed engine keeps zero-valid leaves the legacy engine
        drops, which must never show in the output."""
        rows = [
            (e, a % 3, a % 2, (a + e) % 4 == 0)
            for e in range(3)
            for a in range(40)
        ]
        table = build_table(rows)
        legacy = analyze_trace(table, config=ALL_METRICS_CONFIG, engine="epoch")
        indexed = analyze_trace(
            table, config=ALL_METRICS_CONFIG, engine="indexed"
        )
        assert legacy.metric_names == [m.name for m in ALL_METRICS]
        assert_equal_analyses(legacy, indexed)

    def test_empty_middle_epoch(self):
        rows = [(0, 0, 0, True)] * 20 + [(2, 1, 1, False)] * 20
        table = build_table(rows)
        legacy = analyze_trace(table, config=SMALL_CONFIG, engine="epoch")
        indexed = analyze_trace(table, config=SMALL_CONFIG, engine="indexed")
        assert indexed["join_failure"].epochs[1].total_sessions == 0
        assert_equal_analyses(legacy, indexed)

    def test_single_epoch_trace(self):
        table = build_table([(0, a % 3, a % 2, a % 4 == 0) for a in range(40)])
        legacy = analyze_trace(table, config=SMALL_CONFIG, engine="epoch")
        indexed = analyze_trace(table, config=SMALL_CONFIG, engine="indexed")
        assert legacy.grid.n_epochs == 1
        assert_equal_analyses(legacy, indexed)

    def test_empty_trace(self):
        table = SessionTable.empty()
        legacy = analyze_trace(table, config=SMALL_CONFIG, engine="epoch")
        indexed = analyze_trace(table, config=SMALL_CONFIG, engine="indexed")
        assert legacy.grid.n_epochs == 0
        assert_equal_analyses(legacy, indexed)

    def test_indexed_parallel_equals_legacy_serial(self):
        """Both knobs at once: indexed engine over a process pool."""
        rows = [
            (e, a % 3, a % 2, (a * 7 + e) % 5 == 0)
            for e in range(3)
            for a in range(35)
        ]
        table = build_table(rows)
        legacy = analyze_trace(
            table, config=ALL_METRICS_CONFIG, engine="epoch", workers=0
        )
        indexed = analyze_trace(
            table, config=ALL_METRICS_CONFIG, engine="indexed", workers=2
        )
        assert_equal_analyses(legacy, indexed)

    def test_config_engine_used_when_argument_omitted(self):
        table = build_table([(e, a % 3, a % 2, a % 3 == 0) for e in range(2)
                             for a in range(30)])
        legacy_config = dataclasses.replace(SMALL_CONFIG, engine="epoch")
        indexed_config = dataclasses.replace(SMALL_CONFIG, engine="indexed")
        assert_equal_analyses(
            analyze_trace(table, config=legacy_config),
            analyze_trace(table, config=indexed_config),
        )


class TestResolveEngine:
    def test_auto_resolves_to_indexed(self):
        assert resolve_engine(None) == "indexed"
        assert resolve_engine("auto") == "indexed"

    def test_explicit_values(self):
        assert resolve_engine("epoch") == "epoch"
        assert resolve_engine("indexed") == "indexed"

    @pytest.mark.parametrize("bad", ["fast", "", "EPOCH", 3])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_engine(bad)

    def test_config_validates_engine(self):
        with pytest.raises(ValueError):
            AnalysisConfig(engine="bogus")


class TestResolveWorkerCount:
    def test_serial_values(self):
        assert resolve_worker_count(None) == 0
        assert resolve_worker_count(0) == 0
        assert resolve_worker_count(1) == 1

    def test_auto_uses_cpus(self):
        import os

        assert resolve_worker_count("auto") == (os.cpu_count() or 1)

    def test_explicit(self):
        assert resolve_worker_count(7) == 7

    @pytest.mark.parametrize("bad", [-1, True, False, "many", 2.5])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_worker_count(bad)

    def test_config_validates_workers(self):
        with pytest.raises(ValueError):
            AnalysisConfig(workers="bogus")
        with pytest.raises(ValueError):
            AnalysisConfig(workers=-3)
