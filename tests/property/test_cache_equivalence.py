"""Cached-vs-uncached equivalence of the sharded analysis pipeline.

The result cache must be invisible in the output: for any trace, shard
count and config, ``analyze_shards``/``sweep_shards`` with a
``ResultCache`` — cold, warm, partially evicted, serial or parallel —
return results structurally identical to the uncached run. These tests
pin that invariant, plus the incremental-invalidation contract: after
appending a day of sessions via :class:`ShardStoreBuilder`, a warm run
misses only on the genuinely new shards.
"""

import dataclasses
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.metrics import MetricThresholds
from repro.core.resultcache import ENTRY_SUFFIX, ResultCache
from repro.core.sessions import SessionTable
from repro.core.shards import (
    ShardStoreBuilder,
    analyze_shards,
    build_shard_store,
    sweep_shards,
)
from repro.obs import MetricsRegistry, use_metrics
from tests.conftest import make_session
from tests.property.test_parallel_equivalence import (
    ALL_METRICS_CONFIG,
    SMALL_CONFIG,
    assert_equal_analyses,
    build_table,
    session_rows,
)

#: A second sweep variant that changes results (and hence cache keys).
SCALED_CONFIG = dataclasses.replace(
    SMALL_CONFIG, thresholds=MetricThresholds().scaled(2.0)
)


def cached_run(store, configs, cache, workers=None):
    """Sweep under ``cache``, returning (analyses, cache counters)."""
    metrics = MetricsRegistry()
    with use_metrics(metrics):
        analyses = sweep_shards(
            store, configs, workers=workers, result_cache=cache
        )
    return analyses, metrics


@settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(session_rows, st.integers(1, 3))
def test_cold_and_warm_cached_equal_uncached(rows, n_shards):
    table = build_table(rows)
    with tempfile.TemporaryDirectory() as tmp:
        store = build_shard_store(table, Path(tmp) / "s", n_shards=n_shards)
        cache = ResultCache(Path(tmp) / "rc")
        uncached = sweep_shards(store, [SMALL_CONFIG])

        (cold,), m_cold = cached_run(store, [SMALL_CONFIG], cache)
        (warm,), m_warm = cached_run(store, [SMALL_CONFIG], cache)

        assert_equal_analyses(cold, uncached[0])
        assert_equal_analyses(warm, uncached[0])
        assert m_cold.get("cache.miss") == len(store.shards)
        assert m_cold.get("cache.hit") == 0
        assert m_warm.get("cache.hit") == len(store.shards)
        assert m_warm.get("cache.miss") == 0


def test_all_metrics_cached_equals_uncached(tiny_trace, tmp_path):
    """Four-metric equality on a generated trace with planted events."""
    store = build_shard_store(
        tiny_trace.table, tmp_path / "s", epochs_per_shard=7,
        grid=tiny_trace.grid,
    )
    cache = ResultCache(tmp_path / "rc")
    uncached = analyze_shards(store, ALL_METRICS_CONFIG)
    cold = analyze_shards(store, ALL_METRICS_CONFIG, result_cache=cache)
    warm = analyze_shards(store, ALL_METRICS_CONFIG, result_cache=cache)
    assert_equal_analyses(cold, uncached)
    assert_equal_analyses(warm, uncached)
    # equality is not vacuous: the planted structure exists
    assert any(
        e.n_critical_clusters
        for ma in warm.metrics.values()
        for e in ma.epochs
    )


def test_sweep_shares_entries_across_overlapping_configs(tmp_path):
    table = build_table(
        [(e, a % 3, a % 2, (a + e) % 4 == 0) for e in range(3) for a in range(40)]
    )
    store = build_shard_store(table, tmp_path / "s", n_shards=3)
    cache = ResultCache(tmp_path / "rc")
    ref = sweep_shards(store, [SMALL_CONFIG, SCALED_CONFIG])

    # Cold sweep populates one entry per (shard, config).
    _, m_cold = cached_run(store, [SMALL_CONFIG, SCALED_CONFIG], cache)
    assert m_cold.get("cache.miss") == 2 * len(store.shards)

    # A different sweep overlapping on SMALL_CONFIG hits its entries.
    third = dataclasses.replace(
        SMALL_CONFIG, thresholds=MetricThresholds().scaled(0.5)
    )
    analyses, m_overlap = cached_run(store, [SMALL_CONFIG, third], cache)
    assert m_overlap.get("cache.hit") == len(store.shards)
    assert m_overlap.get("cache.miss") == len(store.shards)
    assert_equal_analyses(analyses[0], ref[0])
    assert_equal_analyses(analyses[1], sweep_shards(store, [third])[0])


@settings(
    max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(session_rows, st.integers(0, 5))
def test_eviction_induced_partial_hits(rows, n_evict):
    table = build_table(rows)
    with tempfile.TemporaryDirectory() as tmp:
        store = build_shard_store(table, Path(tmp) / "s", n_shards=3)
        cache = ResultCache(Path(tmp) / "rc")
        uncached = analyze_shards(store, SMALL_CONFIG)
        analyze_shards(store, SMALL_CONFIG, result_cache=cache)

        entries = sorted((Path(tmp) / "rc").glob(f"*{ENTRY_SUFFIX}"))
        evicted = entries[: min(n_evict, len(entries))]
        for path in evicted:
            path.unlink()

        metrics = MetricsRegistry()
        with use_metrics(metrics):
            partial = analyze_shards(store, SMALL_CONFIG, result_cache=cache)
        assert_equal_analyses(partial, uncached)
        assert metrics.get("cache.miss") == len(evicted)
        assert metrics.get("cache.hit") == len(store.shards) - len(evicted)


def test_parallel_workers_with_partial_hits(tmp_path):
    table = build_table(
        [(e, a % 4, a % 2, (a + e) % 3 == 0) for e in range(3) for a in range(50)]
    )
    store = build_shard_store(table, tmp_path / "s", n_shards=3)
    cache = ResultCache(tmp_path / "rc")
    ref = sweep_shards(store, [SMALL_CONFIG, SCALED_CONFIG])
    cached_run(store, [SMALL_CONFIG], cache)  # prime one config only

    analyses, metrics = cached_run(
        store, [SMALL_CONFIG, SCALED_CONFIG], cache, workers=2
    )
    assert metrics.get("cache.hit") == len(store.shards)
    assert metrics.get("cache.miss") == len(store.shards)
    assert_equal_analyses(analyses[0], ref[0])
    assert_equal_analyses(analyses[1], ref[1])


# ---------------------------------------------------------------------------
# Incremental invalidation: append a day, recompute only the new shards
# ---------------------------------------------------------------------------
def day_chunk(day: int) -> SessionTable:
    """One deterministic day of sessions spanning all 24 hours."""
    return SessionTable.from_sessions(
        make_session(
            start_time=day * 86_400.0 + hour * 3_600.0 + 90.0 * (i % 3),
            asn=f"AS{(hour + i) % 4}",
            cdn=f"c{i % 2}",
            join_failed=(hour + i + day) % 5 == 0,
        )
        for hour in range(24)
        for i in range(6)
    )


def build_days(path, n_days: int):
    builder = ShardStoreBuilder(path, epochs_per_shard=24)
    for day in range(n_days):
        builder.append(day_chunk(day))
    return builder.finalize()


def test_append_day_recomputes_only_new_shards(tmp_path):
    cache = ResultCache(tmp_path / "rc")

    store_a = build_days(tmp_path / "a", 2)
    assert len(store_a.shards) == 2
    _, m_a = cached_run(store_a, [SMALL_CONFIG], cache)
    assert m_a.get("cache.miss") == 2

    # Same two days plus a fresh one, built into a new store: the
    # day-0/day-1 shard bytes are identical (same chunks, same order),
    # so only the day-2 shard misses.
    store_b = build_days(tmp_path / "b", 3)
    assert len(store_b.shards) == 3
    (analysis,), m_b = cached_run(store_b, [SMALL_CONFIG], cache)
    assert m_b.get("cache.hit") == 2
    assert m_b.get("cache.miss") == 1

    assert_equal_analyses(analysis, analyze_shards(store_b, SMALL_CONFIG))


def test_changed_day_invalidates_its_shard(tmp_path):
    cache = ResultCache(tmp_path / "rc")
    store_a = build_days(tmp_path / "a", 2)
    cached_run(store_a, [SMALL_CONFIG], cache)

    # Rebuild with day 1's sessions altered: day 0 hits, day 1 misses.
    builder = ShardStoreBuilder(tmp_path / "b", epochs_per_shard=24)
    builder.append(day_chunk(0))
    altered = SessionTable.from_sessions(
        make_session(
            start_time=86_400.0 + hour * 3_600.0,
            asn="AS9",
            join_failed=True,
        )
        for hour in range(24)
    )
    builder.append(altered)
    store_b = builder.finalize()

    (analysis,), metrics = cached_run(store_b, [SMALL_CONFIG], cache)
    assert metrics.get("cache.hit") == 1
    assert metrics.get("cache.miss") == 1
    assert_equal_analyses(analysis, analyze_shards(store_b, SMALL_CONFIG))
