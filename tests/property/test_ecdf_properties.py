"""Property-based tests of the ECDF and render helpers."""

import numpy as np
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.cdfs import ECDF
from repro.analysis.render import render_series, render_table
from repro.core.overlap import jaccard_similarity

finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 200),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


@given(finite_arrays)
def test_ecdf_monotone(values):
    ecdf = ECDF(values)
    grid = np.linspace(values.min() - 1, values.max() + 1, 23)
    cdf = np.asarray(ecdf.at(grid))
    assert (np.diff(cdf) >= 0).all()
    assert cdf[0] >= 0 and cdf[-1] == 1.0


@given(finite_arrays, st.floats(-1e6, 1e6, allow_nan=False))
def test_ecdf_complementarity(values, x):
    ecdf = ECDF(values)
    assert ecdf.at(x) + ecdf.exceed(x) == 1.0


@given(finite_arrays)
def test_ecdf_quantile_inverse(values):
    ecdf = ECDF(values)
    for q in (0.0, 0.25, 0.5, 0.75, 1.0):
        v = ecdf.quantile(q)
        assert values.min() <= v <= values.max()


@given(st.sets(st.integers(0, 30)), st.sets(st.integers(0, 30)))
def test_jaccard_symmetry_and_bounds(a, b):
    j = jaccard_similarity(a, b)
    assert j == jaccard_similarity(b, a)
    assert 0.0 <= j <= 1.0
    if a == b and a:
        assert j == 1.0
    if not (a & b):
        assert j == 0.0


@given(
    st.lists(st.floats(-1e9, 1e9, allow_nan=False), min_size=1, max_size=30),
)
def test_render_series_row_count(xs):
    text = render_series(xs, {"y": xs})
    assert len(text.splitlines()) == len(xs) + 2


@given(
    st.lists(
        st.tuples(
            st.text(
                alphabet=st.characters(
                    codec="ascii", min_codepoint=32, max_codepoint=126
                ),
                max_size=8,
            ),
            st.floats(-1e6, 1e6, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_render_table_never_crashes(rows):
    text = render_table(["name", "value"], rows)
    assert len(text.splitlines()) == len(rows) + 2
