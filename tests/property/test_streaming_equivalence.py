"""Streaming-equivalence properties of the append engine.

The streaming path must be a pure re-ordering of work, never a
different computation:

* ``SessionTable.extend`` over any chunking is bit-identical to
  building the table from all rows at once (same vocabularies in
  first-appearance order, same codes, same metric columns);
* ``TraceClusterIndex.append`` leaves every index structure — leaf
  universe, per-mask cluster tables and inverses, cached lattice
  projections, fold tables, warmed metric masks — bit-identical to a
  from-scratch ``build`` over the concatenated table, including across
  vocabulary growth that changes the packed key widths;
* ``StreamingSubstrate`` fed epoch-sized (or arbitrary) chunks yields
  the same analysis as batch ``analyze_trace``;
* substrate snapshots round-trip exactly, and corrupted or
  version-mismatched files are rejected with ``ValueError``.
"""

import json
import struct

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.index import TraceClusterIndex
from repro.core.metrics import ALL_METRICS, JOIN_FAILURE, MetricThresholds
from repro.core.pipeline import analyze_trace
from repro.core.sessions import METRIC_COLUMNS, SessionTable
from repro.core.substrate import AnalysisSubstrate, StreamingSubstrate
from repro.io.snapshot import MAGIC, load_substrate, save_substrate
from tests.property.test_parallel_equivalence import (
    ALL_METRICS_CONFIG,
    SMALL_CONFIG,
    assert_equal_analyses,
    build_table,
    session_rows,
)


def assert_equal_tables(a: SessionTable, b: SessionTable) -> None:
    """Bit-identical columnar content (NaN-aware float compares)."""
    assert a.schema.names == b.schema.names
    assert a.vocabs == b.vocabs
    assert np.array_equal(a.codes, b.codes)
    for name in METRIC_COLUMNS:
        ca, cb = getattr(a, name), getattr(b, name)
        assert ca.dtype == cb.dtype
        assert np.array_equal(ca, cb, equal_nan=ca.dtype.kind == "f"), name


def assert_equal_indexes(a: TraceClusterIndex, b: TraceClusterIndex) -> None:
    """Bit-identical index structures (tables, codec, lattice caches)."""
    assert_equal_tables(a.table, b.table)
    assert np.array_equal(a.codec.widths, b.codec.widths)
    assert np.array_equal(a.codec.offsets, b.codec.offsets)
    assert np.array_equal(a.leaf_keys, b.leaf_keys)
    assert np.array_equal(a.row_to_leaf, b.row_to_leaf)
    assert set(a.mask_keys) == set(b.mask_keys)
    for m in a.mask_keys:
        assert np.array_equal(a.mask_keys[m], b.mask_keys[m]), f"mask {m}"
        assert np.array_equal(
            a.leaf_to_cluster[m], b.leaf_to_cluster[m]
        ), f"inverse {m}"
    assert a.fold_source == b.fold_source
    assert a.fold_order == b.fold_order
    # every projection cached on either side must agree with the other
    # side's (possibly freshly computed) projection
    for fine, coarse in set(a._project_index) | set(b._project_index):
        assert np.array_equal(
            a.project_index(fine, coarse), b.project_index(fine, coarse)
        ), f"projection {fine}->{coarse}"


def chunked_tables(rows, n_chunks: int) -> list[SessionTable]:
    """The trace as ``n_chunks`` contiguous sub-tables (some may be empty)."""
    full = build_table(rows)
    bounds = np.linspace(0, len(full), n_chunks + 1).astype(int)
    return [
        full.select(np.arange(lo, hi)) for lo, hi in zip(bounds, bounds[1:])
    ]


chunk_counts = st.integers(1, 5)


# ---------------------------------------------------------------------------
# SessionTable.extend == from_sessions over everything
# ---------------------------------------------------------------------------
@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(session_rows, chunk_counts)
def test_extend_equals_batch_build(rows, n_chunks):
    batch = build_table(rows)
    streamed = SessionTable.empty(batch.schema)
    for chunk in chunked_tables(rows, n_chunks):
        added = streamed.extend(chunk)
        assert added.size == len(chunk)
    assert_equal_tables(batch, streamed)


def test_extend_accepts_session_iterables(tiny_trace):
    sessions = list(tiny_trace.table.rows())[:64]
    batch = SessionTable.from_sessions(sessions)
    streamed = SessionTable.empty(batch.schema)
    streamed.extend(sessions[:20])
    streamed.extend(sessions[20:])
    assert_equal_tables(batch, streamed)


# ---------------------------------------------------------------------------
# TraceClusterIndex.append == build over the concatenated table
# ---------------------------------------------------------------------------
@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(session_rows, chunk_counts)
def test_index_append_equals_fresh_build(rows, n_chunks):
    incremental = TraceClusterIndex.build(SessionTable.empty())
    incremental.warm_metric_masks([JOIN_FAILURE], MetricThresholds())
    for chunk in chunked_tables(rows, n_chunks):
        incremental.append(chunk)
    batch = TraceClusterIndex.build(build_table(rows))
    assert_equal_indexes(incremental, batch)
    # warmed masks were maintained chunk-wise; they must equal a cold
    # recomputation on the batch index
    thresholds = MetricThresholds()
    assert np.array_equal(
        incremental.valid_mask(JOIN_FAILURE), batch.valid_mask(JOIN_FAILURE)
    )
    assert np.array_equal(
        incremental.problem_mask(JOIN_FAILURE, thresholds),
        batch.problem_mask(JOIN_FAILURE, thresholds),
    )


def test_index_append_across_width_growth():
    """Appends that push a vocabulary past a power of two change the
    packed key widths; append() must transparently re-key."""
    incremental = TraceClusterIndex.build(SessionTable.empty())
    tables = []
    from tests.conftest import make_session

    for wave in range(6):
        # 4 new ASNs per wave: vocab sizes 4, 8, 12, ... cross the
        # 2-bit, 3-bit and 4-bit width boundaries along the way.
        chunk = SessionTable.from_sessions(
            make_session(
                start_time=wave * 3600.0 + 60.0 * i,
                asn=f"AS{wave}-{i % 4}",
                join_failed=(i + wave) % 3 == 0,
            )
            for i in range(12)
        )
        tables.append(chunk)
        incremental.append(chunk)
        assert np.array_equal(
            incremental.codec.widths, incremental.table.bit_widths()
        )
    batch = TraceClusterIndex.build(SessionTable.concat(tables))
    assert_equal_indexes(incremental, batch)


def test_index_append_single_sessions():
    """Degenerate chunking: one session per append."""
    rows = [(e, a % 3, a % 2, (a + e) % 4 == 0) for e in range(2)
            for a in range(15)]
    full = build_table(rows)
    incremental = TraceClusterIndex.build(SessionTable.empty())
    for i in range(len(full)):
        incremental.append(full.select(np.array([i])))
    assert_equal_indexes(incremental, TraceClusterIndex.build(full))


def test_index_append_empty_chunk_is_noop():
    table = build_table([(0, 0, 0, True)] * 8)
    index = TraceClusterIndex.build(table)
    leaf_keys = index.leaf_keys.copy()
    rows = index.append(SessionTable.empty(table.schema))
    assert rows.size == 0
    assert np.array_equal(index.leaf_keys, leaf_keys)
    assert len(index.table) == 8


# ---------------------------------------------------------------------------
# StreamingSubstrate == batch analyze_trace
# ---------------------------------------------------------------------------
@settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(session_rows, chunk_counts)
def test_streamed_analysis_equals_batch(rows, n_chunks):
    chunks = chunked_tables(rows, n_chunks)
    stream = StreamingSubstrate(
        epoch_seconds=SMALL_CONFIG.epoch_seconds
    )
    for chunk in chunks:
        stream.append(chunk)
    batch_table = build_table(rows)
    assert len(stream.table) == len(batch_table)
    assert_equal_analyses(
        analyze_trace(batch_table, config=SMALL_CONFIG),
        stream.analyze(config=SMALL_CONFIG),
    )


def test_streamed_epoch_chunks_all_metrics(tiny_trace):
    """Epoch-sized chunks of a generated trace, all four metrics."""
    table, grid = tiny_trace.table, tiny_trace.grid
    stream = StreamingSubstrate(
        schema=table.schema, epoch_seconds=grid.epoch_seconds
    )
    epoch_of = np.floor(table.start_time / grid.epoch_seconds).astype(np.int64)
    for epoch in np.unique(epoch_of):
        stream.append(table.select(np.flatnonzero(epoch_of == epoch)))
    assert stream.grid == grid
    assert_equal_analyses(
        analyze_trace(table, config=ALL_METRICS_CONFIG, grid=grid),
        stream.analyze(config=ALL_METRICS_CONFIG),
    )


def test_streamed_sweep_equals_batch_sweep():
    import dataclasses

    rows = [(e, a % 3, a % 2, (a * 3 + e) % 4 == 0) for e in range(3)
            for a in range(40)]
    configs = [
        SMALL_CONFIG,
        dataclasses.replace(
            SMALL_CONFIG, thresholds=MetricThresholds().scaled(0.5)
        ),
    ]
    stream = StreamingSubstrate()
    for chunk in chunked_tables(rows, 3):
        stream.append(chunk)
    for config, got in zip(configs, stream.sweep(configs)):
        assert_equal_analyses(
            analyze_trace(build_table(rows), config=config), got
        )


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------
@pytest.fixture()
def small_substrate():
    rows = [(e, a % 3, a % 2, (a + 2 * e) % 4 == 0) for e in range(3)
            for a in range(50)]
    substrate = AnalysisSubstrate.build(build_table(rows))
    substrate.index.warm_metric_masks(ALL_METRICS, MetricThresholds())
    return substrate


@pytest.mark.parametrize("mmap", [True, False])
def test_snapshot_round_trip(tmp_path, small_substrate, mmap):
    path = save_substrate(small_substrate, tmp_path / "trace.sub")
    loaded = load_substrate(path, mmap=mmap)
    assert_equal_indexes(small_substrate.index, loaded.index)
    assert_equal_analyses(
        small_substrate.analyze(config=SMALL_CONFIG),
        loaded.analyze(config=SMALL_CONFIG),
    )


def test_snapshot_is_appendable(tmp_path, small_substrate):
    """A loaded snapshot's read-only mmap views must not block growth."""
    path = save_substrate(small_substrate, tmp_path / "trace.sub")
    loaded = load_substrate(path)
    stream = StreamingSubstrate(index=loaded.index)
    extra = build_table([(3, a % 3, a % 2, a % 5 == 0) for a in range(30)])
    stream.append(extra)
    combined = SessionTable.empty()
    combined.extend(small_substrate.table)
    combined.extend(extra)
    assert_equal_indexes(stream.index, TraceClusterIndex.build(combined))


def test_snapshot_rejects_bad_magic(tmp_path, small_substrate):
    path = save_substrate(small_substrate, tmp_path / "trace.sub")
    data = bytearray(path.read_bytes())
    data[:8] = b"NOTASNAP"
    path.write_bytes(bytes(data))
    with pytest.raises(ValueError, match="bad magic"):
        load_substrate(path)


def test_snapshot_rejects_truncation(tmp_path, small_substrate):
    path = save_substrate(small_substrate, tmp_path / "trace.sub")
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(ValueError, match="truncated"):
        load_substrate(path, mmap=False)
    path.write_bytes(data[:10])
    with pytest.raises(ValueError, match="not a substrate snapshot"):
        load_substrate(path, mmap=False)


def test_snapshot_rejects_version_mismatch(tmp_path, small_substrate):
    path = save_substrate(small_substrate, tmp_path / "trace.sub")
    data = bytearray(path.read_bytes())
    _, length = struct.unpack_from("<8sQ", data)
    manifest = json.loads(bytes(data[16 : 16 + length]))
    assert manifest["version"] == 1
    patched = bytes(data).replace(b'"version":1', b'"version":9', 1)
    path.write_bytes(patched)
    with pytest.raises(ValueError, match="version"):
        load_substrate(path)


def test_snapshot_rejects_corrupt_manifest(tmp_path, small_substrate):
    path = save_substrate(small_substrate, tmp_path / "trace.sub")
    data = bytearray(path.read_bytes())
    data[20] = 0xFF  # stomp a byte inside the JSON manifest
    path.write_bytes(bytes(data))
    with pytest.raises(ValueError, match="corrupted|truncated"):
        load_substrate(path)


def test_snapshot_magic_is_stable():
    assert MAGIC == b"RPROSUB1"
