"""Property-based tests of the attribute/cluster lattice."""

from hypothesis import given, strategies as st

from repro.core.attributes import (
    DEFAULT_SCHEMA,
    iter_submasks,
    iter_supermasks,
    popcount,
)
from repro.core.clusters import ClusterKey

FULL = DEFAULT_SCHEMA.full_mask

masks = st.integers(min_value=0, max_value=FULL)
nonempty_masks = st.integers(min_value=1, max_value=FULL)


@given(nonempty_masks)
def test_submasks_are_strict_subsets(mask):
    for sub in iter_submasks(mask):
        assert sub & mask == sub
        assert sub not in (0, mask)


@given(nonempty_masks)
def test_submask_count(mask):
    assert len(list(iter_submasks(mask))) == 2 ** popcount(mask) - 2


@given(masks)
def test_supermasks_are_strict_supersets(mask):
    for sup in iter_supermasks(mask, FULL):
        assert sup & mask == mask
        assert sup != mask


@given(nonempty_masks, nonempty_masks)
def test_submask_supermask_duality(a, b):
    """a is a strict submask of b iff b is a strict supermask of a."""
    a_sub_b = a in set(iter_submasks(b))
    b_sup_a = b in set(iter_supermasks(a, FULL))
    if a != 0 and a != b:
        assert a_sub_b == b_sup_a


@given(masks)
def test_names_of_round_trip(mask):
    names = DEFAULT_SCHEMA.names_of(mask)
    assert DEFAULT_SCHEMA.mask_of(names) == mask


# -- ClusterKey properties ---------------------------------------------------
values = st.sampled_from(["v1", "v2", "v3"])
attr_maps = st.dictionaries(
    st.sampled_from(DEFAULT_SCHEMA.names), values, min_size=0, max_size=7
)


@given(attr_maps)
def test_key_round_trips_mapping(mapping):
    key = ClusterKey.from_mapping(mapping)
    assert key.as_dict() == mapping
    assert key.depth == len(mapping)


@given(attr_maps)
def test_ancestors_are_ancestors(mapping):
    key = ClusterKey.from_mapping(mapping)
    for ancestor in key.ancestors():
        assert ancestor.is_ancestor_of(key)
        assert not key.is_ancestor_of(ancestor)


@given(attr_maps)
def test_ancestor_count(mapping):
    key = ClusterKey.from_mapping(mapping)
    n = len(mapping)
    expected = max(2**n - 2, 0)
    assert len(list(key.ancestors())) == expected


@given(attr_maps, attr_maps)
def test_ancestor_relation_antisymmetric(m1, m2):
    k1 = ClusterKey.from_mapping(m1)
    k2 = ClusterKey.from_mapping(m2)
    assert not (k1.is_ancestor_of(k2) and k2.is_ancestor_of(k1))


@given(attr_maps)
def test_parents_have_depth_minus_one(mapping):
    key = ClusterKey.from_mapping(mapping)
    for parent in key.parents():
        assert parent.depth == key.depth - 1
        if parent.depth > 0:
            assert parent.is_ancestor_of(key)


@given(attr_maps)
def test_mask_matches_depth(mapping):
    key = ClusterKey.from_mapping(mapping)
    assert popcount(key.mask()) == key.depth
