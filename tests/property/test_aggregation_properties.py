"""Property-based tests of per-epoch aggregation invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.aggregation import aggregate_epoch
from repro.core.metrics import JOIN_FAILURE
from repro.core.problems import ProblemClusterConfig, find_problem_clusters
from repro.core.critical import find_critical_clusters
from repro.core.sessions import SessionTable
from tests.conftest import make_session

# Random small traces: up to 4 values per attribute, up to 120 sessions.
session_rows = st.lists(
    st.tuples(
        st.integers(0, 3),  # asn
        st.integers(0, 2),  # cdn
        st.integers(0, 2),  # site
        st.booleans(),  # join failed
    ),
    min_size=1,
    max_size=120,
)


def build_table(rows) -> SessionTable:
    return SessionTable.from_sessions(
        make_session(
            asn=f"AS{a}", cdn=f"c{c}", site=f"s{s}", join_failed=failed
        )
        for a, c, s, failed in rows
    )


@settings(max_examples=60, deadline=None)
@given(session_rows)
def test_every_mask_conserves_totals(rows):
    table = build_table(rows)
    agg = aggregate_epoch(table, np.arange(len(table)), JOIN_FAILURE)
    for mask_agg in agg.per_mask.values():
        assert int(mask_agg.sessions.sum()) == agg.total_sessions
        assert int(mask_agg.problems.sum()) == agg.total_problems


@settings(max_examples=60, deadline=None)
@given(session_rows)
def test_cluster_problems_bounded_by_sessions(rows):
    table = build_table(rows)
    agg = aggregate_epoch(table, np.arange(len(table)), JOIN_FAILURE)
    for mask_agg in agg.per_mask.values():
        assert (mask_agg.problems <= mask_agg.sessions).all()
        assert (mask_agg.sessions > 0).all()


@settings(max_examples=60, deadline=None)
@given(session_rows)
def test_parent_counts_dominate_children(rows):
    """Projecting onto fewer attributes can only merge clusters."""
    table = build_table(rows)
    agg = aggregate_epoch(table, np.arange(len(table)), JOIN_FAILURE)
    fm = agg.codec.field_masks()
    full = agg.codec.full_mask
    leaf = agg.leaf
    for m in range(1, full):
        mask_agg = agg.per_mask[m]
        proj = leaf.keys & fm[m]
        idx = np.searchsorted(mask_agg.keys, proj)
        # every leaf's count is included in its projection's count
        assert (mask_agg.sessions[idx] >= leaf.sessions).all()
        assert (mask_agg.problems[idx] >= leaf.problems).all()


@settings(max_examples=40, deadline=None)
@given(session_rows)
def test_problem_and_critical_invariants(rows):
    table = build_table(rows)
    agg = aggregate_epoch(table, np.arange(len(table)), JOIN_FAILURE)
    problems = find_problem_clusters(
        agg,
        ProblemClusterConfig(min_sessions=5, min_problems=2,
                             significance_sigmas=0.0),
    )
    critical = find_critical_clusters(problems)
    # Critical clusters are problem clusters.
    for mask, packed, attribution in critical.iter_clusters():
        assert problems.contains(mask, packed)
        assert attribution.attributed_problems >= 0
        assert attribution.attributed_sessions >= attribution.attributed_problems - 1e-9
    # Attribution conserves problem sessions.
    total = critical.attributed_problem_sessions + critical.unattributed_problem_sessions
    assert total == np.float64(agg.total_problems)
    # Coverage ordering.
    assert critical.coverage <= problems.coverage + 1e-9


@settings(max_examples=40, deadline=None)
@given(session_rows, st.integers(0, 2**31 - 1))
def test_aggregation_independent_of_row_order(rows, seed):
    table = build_table(rows)
    order = np.random.default_rng(seed).permutation(len(table))
    agg1 = aggregate_epoch(table, np.arange(len(table)), JOIN_FAILURE)
    agg2 = aggregate_epoch(table, order, JOIN_FAILURE)
    assert agg1.total_sessions == agg2.total_sessions
    assert agg1.total_problems == agg2.total_problems
    for m in agg1.per_mask:
        assert np.array_equal(agg1.per_mask[m].keys, agg2.per_mask[m].keys)
        assert np.array_equal(agg1.per_mask[m].sessions, agg2.per_mask[m].sessions)
