"""Property-based tests of the playback simulation invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.abr import BufferBasedABR, FixedBitrateABR, RateBasedABR
from repro.sim.bandwidth import MarkovBandwidth
from repro.sim.cdn import CDNServer
from repro.sim.playback import simulate_session
from repro.sim.segments import VideoManifest

ladders = st.lists(
    st.floats(100.0, 8000.0), min_size=1, max_size=5, unique=True
).map(lambda xs: tuple(sorted(xs)))

abr_factories = st.sampled_from([
    lambda: FixedBitrateABR(rung=0),
    lambda: FixedBitrateABR(rung=2),
    lambda: RateBasedABR(),
    lambda: BufferBasedABR(),
])


@settings(max_examples=60, deadline=None)
@given(
    ladder=ladders,
    mean_bw=st.floats(200.0, 20_000.0),
    abr_factory=abr_factories,
    watch=st.floats(10.0, 400.0),
    seed=st.integers(0, 2**31 - 1),
)
def test_playback_invariants(ladder, mean_bw, abr_factory, watch, seed):
    rng = np.random.default_rng(seed)
    manifest = VideoManifest(
        ladder_kbps=ladder, segment_duration_s=4.0, total_duration_s=120.0
    )
    server = CDNServer(
        name="edge", rtt_s=0.05, failure_prob=0.01, throughput_cap_kbps=1e9
    )
    result = simulate_session(
        manifest=manifest,
        abr=abr_factory(),
        bandwidth=MarkovBandwidth(mean_bw, rng),
        server=server,
        rng=rng,
        watch_duration_s=watch,
        max_join_time_s=600.0,
    )
    if result.failed:
        assert result.played_s == 0.0
        assert np.isnan(result.join_time_s)
        return
    # Accounting invariants.
    assert result.join_time_s > 0
    assert result.played_s >= 0
    assert result.buffering_s >= 0
    assert result.duration_s == result.played_s + result.buffering_s
    assert 0.0 <= result.buffering_ratio <= 1.0
    # Bitrate comes from the ladder.
    assert ladder[0] - 1e-9 <= result.avg_bitrate_kbps <= ladder[-1] + 1e-9
    # Stall accounting is event-consistent.
    if result.buffering_s > 0:
        assert result.stall_events >= 1
    # Per-rung playtime is non-negative and covers valid rungs only.
    for rung, seconds in result.rung_playtime_s.items():
        assert 0 <= rung < manifest.n_rungs
        assert seconds >= 0


@settings(max_examples=30, deadline=None)
@given(
    mean_bw=st.floats(500.0, 20_000.0),
    seed=st.integers(0, 2**31 - 1),
)
def test_fixed_low_rung_never_buffers_more_than_high(mean_bw, seed):
    """Playing a lower fixed rung on the same link never stalls more."""
    manifest = VideoManifest(
        ladder_kbps=(300.0, 3000.0), segment_duration_s=4.0,
        total_duration_s=80.0,
    )
    server = CDNServer(name="e", rtt_s=0.03, failure_prob=0.0,
                       throughput_cap_kbps=1e9)

    def run(rung):
        rng = np.random.default_rng(seed)
        return simulate_session(
            manifest=manifest,
            abr=FixedBitrateABR(rung=rung),
            bandwidth=MarkovBandwidth(mean_bw, np.random.default_rng(seed)),
            server=server,
            rng=rng,
            max_join_time_s=1e9,
        )

    low, high = run(0), run(1)
    assert low.buffering_s <= high.buffering_s + 1e-6
