"""Shard-equivalence properties of the out-of-core analysis engine.

The shard store partitions a trace into epoch-range shards that are
analyzed independently and merged exactly; the merged
:class:`TraceAnalysis` must be bit-identical to the monolithic
``analyze_trace`` result — identical per-epoch problem/critical cluster
dicts, identical epoch series, identical cluster timelines, and streaks
that coalesce across shard boundaries. These tests pin that invariant
across shard counts 1–7, ragged last shards, streaming (chunked,
shuffled) ingestion, parallel map workers, and multi-config sweeps,
plus the pure streak-merge algebra in :mod:`repro.core.streaks`.
"""

import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.pipeline import analyze_trace
from repro.core.shards import (
    ShardStoreBuilder,
    analyze_shards,
    build_shard_store,
    shard_boundaries,
    sweep_shards,
)
from repro.core.streaks import (
    ClusterTimeline,
    Streak,
    coalesce_streaks,
    merge_timelines,
    shift_streaks,
)
from tests.conftest import make_session
from tests.property.test_parallel_equivalence import (
    ALL_METRICS_CONFIG,
    SMALL_CONFIG,
    assert_equal_analyses,
    build_table,
    session_rows,
)


def assert_equal_timelines(a, b):
    """Problem and critical timelines (and their streaks) match exactly."""
    for name in a.metric_names:
        for kind in ("problem_timelines", "critical_timelines"):
            ta = getattr(a[name], kind)()
            tb = getattr(b[name], kind)()
            assert set(ta) == set(tb)
            for key, tl in ta.items():
                assert tl.n_epochs_total == tb[key].n_epochs_total
                assert np.array_equal(tl.epochs, tb[key].epochs)
                assert tl.streaks() == tb[key].streaks()


def assert_sharded_equals_monolithic(sharded, monolithic):
    assert_equal_analyses(monolithic, sharded)
    assert_equal_timelines(monolithic, sharded)
    for name in monolithic.metric_names:
        assert np.array_equal(
            monolithic[name].problem_ratio_series,
            sharded[name].problem_ratio_series,
        )


@settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(session_rows, st.integers(1, 7))
def test_sharded_equals_monolithic_on_random_traces(rows, n_shards):
    table = build_table(rows)
    monolithic = analyze_trace(table, config=SMALL_CONFIG)
    with tempfile.TemporaryDirectory() as tmp:
        store = build_shard_store(table, tmp, n_shards=n_shards)
        sharded = analyze_shards(store, config=SMALL_CONFIG)
    assert_sharded_equals_monolithic(sharded, monolithic)


@pytest.mark.parametrize("epochs_per_shard", [5, 7, 24, 100])
def test_ragged_last_shard_on_generated_trace(
    tmp_path, tiny_trace, epochs_per_shard
):
    """Fixed-width shards with a ragged tail over all four metrics."""
    monolithic = analyze_trace(tiny_trace.table, grid=tiny_trace.grid)
    store = build_shard_store(
        tiny_trace.table,
        tmp_path / "s",
        epochs_per_shard=epochs_per_shard,
        grid=tiny_trace.grid,
    )
    widths = {s.n_epochs for s in store.shards}
    if epochs_per_shard < tiny_trace.grid.n_epochs:
        assert len(widths) > 1  # the tail really is ragged
    sharded = analyze_shards(store)
    assert_sharded_equals_monolithic(sharded, monolithic)
    # planted structure exists, so equality is not vacuous
    assert any(
        e.n_critical_clusters
        for ma in sharded.metrics.values()
        for e in ma.epochs
    )


def test_boundary_spanning_streak_coalesces(tmp_path):
    """A problem persisting across a shard boundary merges into ONE
    streak — the regression the merge algebra exists to prevent."""
    rows = []
    for epoch in range(6):
        rows += [(epoch, 0, 0, True)] * 10  # AS0 always failing
        rows += [(epoch, a, 1, False) for a in (1, 2) for _ in range(10)]
    table = build_table(rows)
    monolithic = analyze_trace(table, config=SMALL_CONFIG)
    store = build_shard_store(table, tmp_path / "s", n_shards=2)
    assert [(s.epoch_lo, s.epoch_hi) for s in store.shards] == [(0, 3), (3, 6)]
    sharded = analyze_shards(store, config=SMALL_CONFIG)
    assert_sharded_equals_monolithic(sharded, monolithic)
    timelines = sharded["join_failure"].problem_timelines()
    spanning = [
        tl for tl in timelines.values() if tl.streaks() == [Streak(0, 6)]
    ]
    assert spanning, "expected a single streak spanning the shard boundary"


def test_streaming_builder_equals_monolithic(tmp_path):
    """Out-of-order chunked ingestion builds an equivalent store."""
    rows = [
        (e, (a * 3 + e) % 4, a % 2, (a + 2 * e) % 5 == 0)
        for e in range(3)
        for a in range(40)
    ]
    table = build_table(rows)
    monolithic = analyze_trace(table, config=ALL_METRICS_CONFIG)

    builder = ShardStoreBuilder(tmp_path / "s", epochs_per_shard=2)
    order = np.random.RandomState(7).permutation(len(table))
    for i in range(0, len(order), 17):  # ragged, shuffled chunks
        builder.append(table.select(np.sort(order[i:i + 17])))
    store = builder.finalize()
    sharded = analyze_shards(store, config=ALL_METRICS_CONFIG)
    assert_sharded_equals_monolithic(sharded, monolithic)


def test_parallel_map_equals_serial(tmp_path):
    rows = [
        (e, a % 3, a % 2, (a * 7 + e) % 5 == 0)
        for e in range(4)
        for a in range(35)
    ]
    table = build_table(rows)
    store = build_shard_store(table, tmp_path / "s", n_shards=4)
    serial = analyze_shards(store, config=SMALL_CONFIG, workers=0)
    parallel = analyze_shards(store, config=SMALL_CONFIG, workers=2)
    assert_sharded_equals_monolithic(parallel, serial)
    assert_sharded_equals_monolithic(
        serial, analyze_trace(table, config=SMALL_CONFIG)
    )


def test_sweep_shards_equals_per_config_monolithic(tmp_path):
    import dataclasses

    from repro.core.problems import ProblemClusterConfig

    rows = [
        (e, a % 4, a % 2, (a + e) % 4 == 0) for e in range(3) for a in range(50)
    ]
    table = build_table(rows)
    configs = [
        SMALL_CONFIG,
        dataclasses.replace(
            SMALL_CONFIG,
            problem_config=ProblemClusterConfig(
                min_sessions=5, min_problems=2, significance_sigmas=0.0,
                ratio_multiplier=1.5,
            ),
        ),
    ]
    store = build_shard_store(table, tmp_path / "s", epochs_per_shard=2)
    sharded = sweep_shards(store, configs)
    for config, analysis in zip(configs, sharded):
        assert_sharded_equals_monolithic(
            analysis, analyze_trace(table, config=config)
        )


def test_empty_trace_store(tmp_path):
    from repro.core.sessions import SessionTable

    table = SessionTable.empty()
    store = build_shard_store(table, tmp_path / "s", n_shards=3)
    assert store.shards == ()
    sharded = analyze_shards(store, config=SMALL_CONFIG)
    assert_equal_analyses(analyze_trace(table, config=SMALL_CONFIG), sharded)


def test_single_session_single_shard(tmp_path):
    table = build_table([(0, 0, 0, True)])
    store = build_shard_store(table, tmp_path / "s", epochs_per_shard=10)
    assert len(store.shards) == 1
    assert_sharded_equals_monolithic(
        analyze_shards(store, config=SMALL_CONFIG),
        analyze_trace(table, config=SMALL_CONFIG),
    )


class TestStreakAlgebra:
    """`coalesce_streaks` / `shift_streaks` / `merge_timelines` against
    the monolithic `ClusterTimeline.streaks()` ground truth."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.sets(st.integers(0, 29), min_size=1),
        st.lists(st.integers(1, 29), min_size=1, max_size=4, unique=True),
    )
    def test_coalesce_split_streaks_equals_monolithic(self, epochs, cuts):
        n_total = 30
        whole = ClusterTimeline("k", np.array(sorted(epochs)), n_total)
        edges = [0] + sorted(cuts) + [n_total]
        parts = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            local = [e - lo for e in epochs if lo <= e < hi]
            if local:
                tl = ClusterTimeline("k", np.array(local), hi - lo)
                parts.append(shift_streaks(tl.streaks(), lo))
            else:
                parts.append([])
        assert coalesce_streaks(parts) == whole.streaks()

    @settings(max_examples=25, deadline=None)
    @given(
        st.sets(st.integers(0, 29), min_size=1),
        st.integers(1, 29),
    )
    def test_merge_timelines_equals_monolithic(self, epochs, cut):
        n_total = 30
        whole = ClusterTimeline("k", np.array(sorted(epochs)), n_total)
        parts = []
        for lo, hi in ((0, cut), (cut, n_total)):
            local = [e - lo for e in epochs if lo <= e < hi]
            parts.append(
                (lo, {"k": ClusterTimeline("k", np.array(local), hi - lo)})
                if local
                else (lo, {})
            )
        merged = merge_timelines(parts, n_total)
        assert set(merged) == {"k"}
        assert np.array_equal(merged["k"].epochs, whole.epochs)
        assert merged["k"].streaks() == whole.streaks()

    def test_coalesce_rejects_overlap(self):
        with pytest.raises(ValueError):
            coalesce_streaks([[Streak(0, 3)], [Streak(2, 2)]])

    def test_shift_streaks(self):
        assert shift_streaks([Streak(0, 2), Streak(4, 1)], 10) == [
            Streak(10, 2),
            Streak(14, 1),
        ]

    def test_abutting_runs_join(self):
        assert coalesce_streaks([[Streak(0, 3)], [Streak(3, 2)]]) == [
            Streak(0, 5)
        ]


class TestShardBoundaries:
    def test_fixed_width_ragged_tail(self):
        assert shard_boundaries(10, epochs_per_shard=4) == [
            (0, 4), (4, 8), (8, 10),
        ]

    def test_n_shards_clamped_and_covering(self):
        for n_epochs in (1, 5, 24, 100):
            for k in (1, 2, 3, 7, 200):
                bounds = shard_boundaries(n_epochs, n_shards=k)
                assert bounds[0][0] == 0 and bounds[-1][1] == n_epochs
                assert all(lo < hi for lo, hi in bounds)
                assert all(
                    a[1] == b[0] for a, b in zip(bounds, bounds[1:])
                )
                assert len(bounds) == min(k, n_epochs)

    def test_empty_grid(self):
        assert shard_boundaries(0, n_shards=3) == []

    def test_exactly_one_of(self):
        with pytest.raises(ValueError):
            shard_boundaries(10)
        with pytest.raises(ValueError):
            shard_boundaries(10, epochs_per_shard=2, n_shards=2)
