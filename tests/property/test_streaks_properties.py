"""Property-based tests of prevalence/persistence semantics."""

import numpy as np
from hypothesis import given, strategies as st

from repro.core.streaks import ClusterTimeline, build_timelines

epoch_sets = st.lists(
    st.sets(st.sampled_from("abcde"), max_size=5), min_size=1, max_size=40
)


@given(epoch_sets)
def test_streaks_partition_occurrences(per_epoch):
    timelines = build_timelines(per_epoch)
    for tl in timelines.values():
        covered = []
        for streak in tl.streaks():
            covered.extend(range(streak.start, streak.end))
        assert sorted(covered) == tl.epochs.tolist()


@given(epoch_sets)
def test_streaks_are_maximal(per_epoch):
    timelines = build_timelines(per_epoch)
    for key, tl in timelines.items():
        present = set(tl.epochs.tolist())
        for streak in tl.streaks():
            # not extendable left or right
            assert streak.start - 1 not in present
            assert streak.end not in present


@given(epoch_sets)
def test_prevalence_bounds(per_epoch):
    timelines = build_timelines(per_epoch)
    for tl in timelines.values():
        assert 0 < tl.prevalence <= 1
        assert tl.prevalence == tl.n_occurrences / len(per_epoch)


@given(epoch_sets)
def test_max_persistence_bounds_median(per_epoch):
    timelines = build_timelines(per_epoch)
    for tl in timelines.values():
        assert tl.median_persistence <= tl.max_persistence
        assert tl.max_persistence <= tl.n_occurrences


@given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
def test_timeline_idempotent_under_duplicates(epochs):
    tl1 = ClusterTimeline(key="k", epochs=np.array(epochs), n_epochs_total=101)
    tl2 = ClusterTimeline(
        key="k", epochs=np.array(epochs + epochs), n_epochs_total=101
    )
    assert tl1.epochs.tolist() == tl2.epochs.tolist()
    assert tl1.streaks() == tl2.streaks()


@given(st.sets(st.integers(0, 60), min_size=1, max_size=40), st.integers(1, 10))
def test_shifting_epochs_shifts_streaks(epoch_set, shift):
    base = ClusterTimeline(
        key="k", epochs=np.array(sorted(epoch_set)), n_epochs_total=100
    )
    shifted = ClusterTimeline(
        key="k",
        epochs=np.array([e + shift for e in sorted(epoch_set)]),
        n_epochs_total=100,
    )
    base_streaks = [(s.start + shift, s.length) for s in base.streaks()]
    got = [(s.start, s.length) for s in shifted.streaks()]
    assert base_streaks == got
