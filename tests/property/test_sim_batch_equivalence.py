"""Scalar-vs-batch equivalence of the mechanistic engine.

The lockstep batch kernel (``repro.sim.batch``) must be *bit-identical*
to the per-session reference loop (``repro.sim.playback``) — not merely
statistically close. Every test here runs the same workload (or the
same engine call) under ``sim="scalar"`` and ``sim="batch"`` and
compares the outputs with ``np.array_equal`` (NaNs equal), exercising
each exit path of the kernel: join failure, join timeout, watch-limit
truncation, and running the grid dry.
"""

import numpy as np
import pytest

from repro.sim.engine import MechanisticParams, MechanisticQoEEngine
from repro.trace.entities import WorldConfig, build_world
from repro.trace.generator import generate_trace
from repro.trace.population import AttributeSampler
from repro.trace.qoe import EffectArrays
from repro.trace.workloads import StandardWorkloads

from dataclasses import replace


FLOAT_COLUMNS = (
    "duration_s", "buffering_s", "join_time_s", "bitrate_kbps"
)


def assert_batches_identical(a, b):
    for col in FLOAT_COLUMNS:
        assert np.array_equal(
            getattr(a, col), getattr(b, col), equal_nan=True
        ), f"{col} differs"
    assert np.array_equal(a.join_failed, b.join_failed)


def make_world(seed=0, n_asns=8, n_cdns=4, n_sites=6):
    config = WorldConfig(n_asns=n_asns, n_cdns=n_cdns, n_sites=n_sites)
    return build_world(config, np.random.default_rng(seed))


def run_both(world, codes, effects, seed, params=None):
    """One engine call per sim path, identical inputs and RNG seed."""
    out = []
    for sim in ("scalar", "batch"):
        engine = MechanisticQoEEngine(world, params=params, sim=sim)
        out.append(
            engine.generate(codes, effects, np.random.default_rng(seed))
        )
    return out


def sample_codes(world, n, seed=0):
    return AttributeSampler(world).sample(n, np.random.default_rng(seed))


class TestTraceLevel:
    @pytest.mark.parametrize("seed", [1, 7, 1234])
    def test_full_trace_bit_identical(self, seed):
        spec = StandardWorkloads.mechanistic_tiny(seed=seed)
        scalar = generate_trace(replace(spec, sim="scalar")).table
        batch = generate_trace(replace(spec, sim="batch")).table
        assert np.array_equal(scalar.codes, batch.codes)
        assert np.array_equal(scalar.start_time, batch.start_time)
        for col in FLOAT_COLUMNS:
            assert np.array_equal(
                getattr(scalar, col), getattr(batch, col), equal_nan=True
            ), f"{col} differs"
        assert np.array_equal(scalar.join_failed, batch.join_failed)

    def test_auto_is_batch_identical_to_scalar(self):
        spec = StandardWorkloads.mechanistic_tiny(seed=5)
        auto = generate_trace(spec).table
        scalar = generate_trace(replace(spec, sim="scalar")).table
        assert np.array_equal(
            auto.bitrate_kbps, scalar.bitrate_kbps, equal_nan=True
        )
        assert np.array_equal(auto.join_failed, scalar.join_failed)


class TestEngineLevel:
    def test_neutral_effects(self):
        world = make_world()
        codes = sample_codes(world, 400)
        a, b = run_both(world, codes, EffectArrays.neutral(400), seed=3)
        assert_batches_identical(a, b)

    def test_effect_arrays(self):
        """Every effect channel active at once, including bitrate caps
        below the lowest ladder rung (the synthetic single-rung path)."""
        world = make_world(seed=2)
        n = 500
        codes = sample_codes(world, n, seed=2)
        rng = np.random.default_rng(99)
        effects = EffectArrays.neutral(n)
        effects.bandwidth_factor[:] = rng.uniform(0.2, 1.5, size=n)
        effects.buffering_factor[rng.random(n) < 0.3] = 4.0
        effects.join_time_factor[rng.random(n) < 0.3] = 3.0
        effects.join_failure_odds[rng.random(n) < 0.3] = 25.0
        capped = rng.random(n) < 0.4
        effects.bitrate_cap_kbps[capped] = rng.uniform(40.0, 3000.0, capped.sum())
        a, b = run_both(world, codes, effects, seed=4)
        assert_batches_identical(a, b)
        # The scenario must actually exercise caps and failures.
        assert a.join_failed.any()
        assert np.nanmin(a.bitrate_kbps) < 500.0

    def test_join_failure_exit(self):
        world = make_world(seed=1)
        n = 300
        codes = sample_codes(world, n, seed=1)
        effects = EffectArrays.neutral(n)
        effects.join_failure_odds[:] = 1e6
        a, b = run_both(world, codes, effects, seed=8)
        assert_batches_identical(a, b)
        assert a.join_failed.mean() > 0.9
        failed = a.join_failed
        assert np.all(np.isnan(a.join_time_s[failed]))
        assert np.all(a.duration_s[failed] == 0.0)

    def test_join_timeout_exit(self):
        """Starving the link makes startup exceed max_join_time_s, which
        converts the session into a join failure on both paths."""
        world = make_world(seed=3)
        n = 200
        codes = sample_codes(world, n, seed=3)
        effects = EffectArrays.neutral(n)
        effects.bandwidth_factor[:] = 1e-4
        a, b = run_both(world, codes, effects, seed=11)
        assert_batches_identical(a, b)
        assert a.join_failed.mean() > 0.9

    def test_watch_limit_truncation(self):
        """Short watch limits end sessions long before the video does."""
        world = make_world(seed=4)
        n = 300
        codes = sample_codes(world, n, seed=4)
        params = MechanisticParams(watch_median_s=20.0, watch_sigma=0.3)
        a, b = run_both(
            world, codes, EffectArrays.neutral(n), seed=13, params=params
        )
        assert_batches_identical(a, b)
        ok = ~a.join_failed
        # Durations cluster near the watch limit, far below video length.
        assert np.median(a.duration_s[ok]) < 100.0

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_single_session_batches(self, seed):
        world = make_world(seed=5)
        codes = sample_codes(world, 1, seed=seed)
        a, b = run_both(world, codes, EffectArrays.neutral(1), seed=seed)
        assert_batches_identical(a, b)

    def test_empty_batch(self):
        world = make_world(seed=6)
        codes = np.empty((0, 7), dtype=np.int64)
        a, b = run_both(world, codes, EffectArrays.neutral(0), seed=0)
        assert len(a.duration_s) == 0
        assert_batches_identical(a, b)

    def test_shared_rng_position_is_path_independent(self):
        """Both paths consume exactly one draw from the caller's stream,
        so downstream draws (e.g. arrival jitter) stay aligned."""
        world = make_world(seed=7)
        codes = sample_codes(world, 50, seed=7)
        after = []
        for sim in ("scalar", "batch"):
            rng = np.random.default_rng(21)
            engine = MechanisticQoEEngine(world, sim=sim)
            engine.generate(codes, EffectArrays.neutral(50), rng)
            after.append(rng.random(5))
        assert np.array_equal(after[0], after[1])
