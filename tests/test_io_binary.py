"""Tests for the npz binary trace format."""

import numpy as np
import pytest

from repro.io.binary import read_sessions_npz, write_sessions_npz
from repro.core.sessions import SessionTable
from tests.conftest import make_session


class TestNpzRoundTrip:
    def test_round_trip_exact(self, tmp_path):
        table = SessionTable.from_sessions(
            [
                make_session(start_time=1.25, buffering_s=3.5, cdn="cdn_q"),
                make_session(join_failed=True, asn="AS9"),
            ]
        )
        path = tmp_path / "trace.npz"
        assert write_sessions_npz(table, path) == 2
        back = read_sessions_npz(path)
        assert back.schema.names == table.schema.names
        assert back.vocabs == table.vocabs
        assert np.array_equal(back.codes, table.codes)
        assert np.array_equal(back.start_time, table.start_time)
        assert np.array_equal(back.join_failed, table.join_failed)
        # NaNs survive exactly.
        assert np.isnan(back.join_time_s[1])

    def test_generated_trace_round_trip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.npz"
        write_sessions_npz(tiny_trace.table, path)
        back = read_sessions_npz(path)
        assert len(back) == len(tiny_trace.table)
        assert np.array_equal(back.codes, tiny_trace.table.codes)
        assert np.allclose(
            back.bitrate_kbps, tiny_trace.table.bitrate_kbps, equal_nan=True
        )

    def test_custom_schema_preserved(self, tmp_path):
        import dataclasses

        from repro.trace import StandardWorkloads, generate_trace

        spec = dataclasses.replace(
            StandardWorkloads.tiny_with_region(seed=3), n_epochs=2
        )
        trace = generate_trace(spec)
        path = tmp_path / "region.npz"
        write_sessions_npz(trace.table, path)
        back = read_sessions_npz(path)
        assert back.schema.names[-1] == "region"

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, other=np.arange(3))
        with pytest.raises(ValueError, match="not a repro npz trace"):
            read_sessions_npz(path)

    def test_rejects_wrong_version(self, tmp_path):
        import json

        table = SessionTable.from_sessions([make_session()])
        path = tmp_path / "trace.npz"
        write_sessions_npz(table, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(bytes(arrays["meta"]).decode())
        meta["format_version"] = 999
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            read_sessions_npz(path)


class TestCliNpz:
    def test_generate_and_analyze_npz(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.npz"
        assert main(["generate", "--workload", "tiny", "--seed", "3",
                     "-o", str(out)]) == 0
        capsys.readouterr()
        assert main(["analyze", str(out)]) == 0
        assert "join_failure" in capsys.readouterr().out


class TestUncompressed:
    def test_uncompressed_round_trip(self, tmp_path):
        table = SessionTable.from_sessions(
            make_session(start_time=60.0 * i, asn=f"AS{i % 4}",
                         join_failed=i % 3 == 0)
            for i in range(200)
        )
        fast = tmp_path / "fast.npz"
        small = tmp_path / "small.npz"
        assert write_sessions_npz(table, fast, compress=False) == 200
        assert write_sessions_npz(table, small, compress=True) == 200
        assert fast.stat().st_size > small.stat().st_size
        restored = read_sessions_npz(fast)
        assert restored.vocabs == table.vocabs
        assert np.array_equal(restored.codes, table.codes)
        assert np.array_equal(restored.start_time, table.start_time)

    def test_cli_no_compress(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.npz"
        assert main(["generate", "--workload", "tiny", "--seed", "3",
                     "-o", str(out), "--no-compress"]) == 0
        capsys.readouterr()
        assert main(["analyze", str(out)]) == 0
        assert "join_failure" in capsys.readouterr().out
