"""Tests for player buffer dynamics."""

import pytest

from repro.sim.playerbuffer import PlayerBuffer


class TestValidation:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            PlayerBuffer(capacity_s=0.0)

    def test_initial_level_bounds(self):
        with pytest.raises(ValueError):
            PlayerBuffer(capacity_s=10.0, level_s=11.0)

    def test_negative_operations_rejected(self):
        buf = PlayerBuffer()
        with pytest.raises(ValueError):
            buf.add(-1.0)
        with pytest.raises(ValueError):
            buf.drain(-1.0)


class TestFilling:
    def test_add_accumulates(self):
        buf = PlayerBuffer(capacity_s=60.0)
        buf.add(4.0)
        buf.add(4.0)
        assert buf.level_s == pytest.approx(8.0)

    def test_add_clamps_to_capacity(self):
        buf = PlayerBuffer(capacity_s=10.0)
        buf.add(25.0)
        assert buf.level_s == 10.0
        assert buf.is_full

    def test_headroom(self):
        buf = PlayerBuffer(capacity_s=10.0, level_s=4.0)
        assert buf.headroom_s() == pytest.approx(6.0)


class TestDraining:
    def test_no_drain_before_playback(self):
        buf = PlayerBuffer(level_s=5.0)
        stall = buf.drain(3.0)
        assert stall == 0.0
        assert buf.level_s == 5.0

    def test_drain_during_playback(self):
        buf = PlayerBuffer(level_s=5.0)
        buf.start_playback()
        stall = buf.drain(3.0)
        assert stall == 0.0
        assert buf.level_s == pytest.approx(2.0)

    def test_underrun_counts_stall(self):
        buf = PlayerBuffer(level_s=2.0)
        buf.start_playback()
        stall = buf.drain(5.0)
        assert stall == pytest.approx(3.0)
        assert buf.level_s == 0.0
        assert buf.total_stall_s == pytest.approx(3.0)
        assert buf.stall_events == 1

    def test_continuous_underrun_is_one_event(self):
        buf = PlayerBuffer(level_s=1.0)
        buf.start_playback()
        buf.drain(2.0)
        buf.drain(2.0)  # still starving, same stall event
        assert buf.stall_events == 1
        assert buf.total_stall_s == pytest.approx(3.0)

    def test_refill_ends_stall_event(self):
        buf = PlayerBuffer(level_s=1.0)
        buf.start_playback()
        buf.drain(2.0)  # stall 1
        buf.add(4.0)
        buf.drain(2.0)  # healthy
        buf.drain(10.0)  # stall 2
        assert buf.stall_events == 2

    def test_exact_drain_no_stall(self):
        buf = PlayerBuffer(level_s=4.0)
        buf.start_playback()
        assert buf.drain(4.0) == 0.0
        assert buf.level_s == 0.0
        assert buf.stall_events == 0
