"""Tests for the session playback simulation."""

import numpy as np
import pytest

from repro.sim.abr import FixedBitrateABR, RateBasedABR
from repro.sim.bandwidth import MarkovBandwidth
from repro.sim.cdn import CDNServer
from repro.sim.playback import simulate_session
from repro.sim.segments import VideoManifest

MANIFEST = VideoManifest(
    ladder_kbps=(400.0, 1000.0, 2500.0),
    segment_duration_s=4.0,
    total_duration_s=120.0,
)


def steady_bandwidth(mean, seed=0):
    """A bandwidth process pinned to its good state with no jitter."""
    return MarkovBandwidth(
        mean, np.random.default_rng(seed),
        state_factors=(1.0,), transitions=((1.0,),), jitter_sigma=0.0,
    )


def healthy_server(**overrides):
    kwargs = dict(name="edge", rtt_s=0.03, failure_prob=0.001,
                  throughput_cap_kbps=1e9)
    kwargs.update(overrides)
    return CDNServer(**kwargs)


def run(bandwidth_kbps=8000.0, abr=None, server=None, seed=0, **kwargs):
    return simulate_session(
        manifest=MANIFEST,
        abr=abr or RateBasedABR(),
        bandwidth=steady_bandwidth(bandwidth_kbps, seed),
        server=server or healthy_server(),
        rng=np.random.default_rng(seed),
        **kwargs,
    )


class TestHealthySession:
    def test_plays_without_stalls(self):
        result = run(bandwidth_kbps=10_000.0)
        assert not result.failed
        assert result.buffering_s == 0.0
        assert result.stall_events == 0
        assert result.played_s > 0

    def test_join_time_reasonable(self):
        result = run(bandwidth_kbps=10_000.0)
        # Startup needs one 4 s segment at the lowest-ish rung.
        assert 0 < result.join_time_s < 5.0

    def test_reaches_top_rung(self):
        result = run(bandwidth_kbps=20_000.0)
        assert result.avg_bitrate_kbps > 1000.0

    def test_buffering_ratio_zero(self):
        result = run(bandwidth_kbps=10_000.0)
        assert result.buffering_ratio == 0.0


class TestConstrainedSession:
    def test_slow_link_stalls_fixed_high_rung(self):
        # Forcing the top rung over a link slower than the rung must stall.
        result = run(bandwidth_kbps=2000.0, abr=FixedBitrateABR(rung=2))
        assert result.buffering_s > 0
        assert result.stall_events >= 1

    def test_abr_avoids_most_stalls_vs_fixed(self):
        fixed = run(bandwidth_kbps=2000.0, abr=FixedBitrateABR(rung=2), seed=4)
        adaptive = run(bandwidth_kbps=2000.0, abr=RateBasedABR(), seed=4)
        assert adaptive.buffering_s < fixed.buffering_s

    def test_slow_link_picks_low_rung(self):
        result = run(bandwidth_kbps=900.0)
        assert result.avg_bitrate_kbps <= 1000.0

    def test_watch_duration_limits_playback(self):
        short = run(watch_duration_s=20.0)
        long = run(watch_duration_s=100.0)
        assert short.played_s <= long.played_s
        assert short.played_s <= 30.0  # ~watch limit + buffer drain slack


class TestFailures:
    def test_server_failure_yields_join_failure(self):
        result = run(server=healthy_server(failure_prob=0.5), seed=3,
                     failure_odds=50.0)
        assert result.failed
        assert np.isnan(result.join_time_s)
        assert result.played_s == 0.0

    def test_hopeless_startup_times_out(self):
        result = simulate_session(
            manifest=MANIFEST,
            abr=FixedBitrateABR(rung=2),
            bandwidth=steady_bandwidth(50.0),
            server=healthy_server(),
            rng=np.random.default_rng(0),
            max_join_time_s=30.0,
        )
        assert result.failed


class TestAccounting:
    def test_duration_is_play_plus_stall(self):
        result = run(bandwidth_kbps=1200.0, abr=FixedBitrateABR(rung=2), seed=5)
        assert result.duration_s == pytest.approx(
            result.played_s + result.buffering_s
        )

    def test_avg_bitrate_within_ladder(self):
        for seed in range(5):
            result = run(seed=seed)
            if not result.failed:
                assert MANIFEST.ladder_kbps[0] <= result.avg_bitrate_kbps
                assert result.avg_bitrate_kbps <= MANIFEST.ladder_kbps[-1]

    def test_rung_playtime_sums_to_steady_state_play(self):
        result = run(bandwidth_kbps=6000.0)
        assert sum(result.rung_playtime_s.values()) > 0

    def test_switch_count_nonnegative(self):
        result = run(bandwidth_kbps=3000.0)
        assert result.rung_switches >= 0

    def test_join_overhead_adds_to_join_time(self):
        base = run(seed=6)
        slowed = run(seed=6, join_overhead_s=5.0)
        assert slowed.join_time_s == pytest.approx(base.join_time_s + 5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            run(startup_buffer_s=0.0)
        with pytest.raises(ValueError):
            run(watch_duration_s=0.0)
