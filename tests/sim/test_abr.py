"""Tests for the ABR algorithms."""

import pytest

from repro.sim.abr import BufferBasedABR, FixedBitrateABR, RateBasedABR
from repro.sim.segments import VideoManifest

MANIFEST = VideoManifest(
    ladder_kbps=(400.0, 1000.0, 2500.0, 5000.0),
    segment_duration_s=4.0,
    total_duration_s=60.0,
)


class TestFixedBitrate:
    def test_constant_choice(self):
        abr = FixedBitrateABR(rung=1)
        assert abr.choose(MANIFEST, 100_000.0, 30.0) == 1
        assert abr.choose(MANIFEST, 10.0, 0.0) == 1

    def test_clamped_to_ladder(self):
        abr = FixedBitrateABR(rung=99)
        assert abr.choose(MANIFEST, 1000.0, 0.0) == 3

    def test_negative_rung_rejected(self):
        with pytest.raises(ValueError):
            FixedBitrateABR(rung=-1)

    def test_observe_is_noop(self):
        abr = FixedBitrateABR()
        abr.observe(123.0)
        assert abr.choose(MANIFEST, 1.0, 0.0) == 0


class TestRateBased:
    def test_safety_margin_applied(self):
        abr = RateBasedABR(safety=0.8)
        # 0.8 * 1200 = 960 -> rung 400
        assert abr.choose(MANIFEST, 1200.0, 0.0) == 0
        # 0.8 * 1300 = 1040 -> rung 1000
        assert abr.choose(MANIFEST, 1300.0, 0.0) == 1

    def test_uses_initial_estimate_when_unobserved(self):
        abr = RateBasedABR(safety=1.0)
        assert abr.choose(MANIFEST, 2500.0, 0.0) == 2

    def test_ewma_converges_to_observations(self):
        abr = RateBasedABR(safety=1.0, ewma_alpha=0.5)
        for _ in range(20):
            abr.observe(5000.0)
        assert abr.estimate_kbps == pytest.approx(5000.0, rel=0.01)
        assert abr.choose(MANIFEST, 100.0, 0.0) == 3  # estimate overrides hint

    def test_ewma_reacts_to_drop(self):
        abr = RateBasedABR(safety=1.0, ewma_alpha=0.5)
        abr.observe(5000.0)
        for _ in range(6):
            abr.observe(500.0)
        assert abr.choose(MANIFEST, 5000.0, 0.0) == 0

    def test_observe_rejects_non_positive(self):
        with pytest.raises(ValueError):
            RateBasedABR().observe(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RateBasedABR(safety=0.0)
        with pytest.raises(ValueError):
            RateBasedABR(ewma_alpha=1.5)


class TestBufferBased:
    def test_reservoir_forces_lowest(self):
        abr = BufferBasedABR(reservoir_s=8.0, cushion_end_s=30.0)
        assert abr.choose(MANIFEST, 1e9, 4.0) == 0
        assert abr.choose(MANIFEST, 1e9, 8.0) == 0

    def test_full_cushion_forces_highest(self):
        abr = BufferBasedABR(reservoir_s=8.0, cushion_end_s=30.0)
        assert abr.choose(MANIFEST, 1.0, 30.0) == 3
        assert abr.choose(MANIFEST, 1.0, 55.0) == 3

    def test_linear_interpolation(self):
        abr = BufferBasedABR(reservoir_s=8.0, cushion_end_s=30.0)
        rungs = [abr.choose(MANIFEST, 1.0, level) for level in (10, 15, 20, 25, 29)]
        assert rungs == sorted(rungs)
        assert rungs[0] >= 0
        assert rungs[-1] <= 3

    def test_monotone_in_buffer_level(self):
        abr = BufferBasedABR()
        levels = [0, 5, 10, 15, 20, 25, 30, 40]
        rungs = [abr.choose(MANIFEST, 1.0, lv) for lv in levels]
        assert rungs == sorted(rungs)

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferBasedABR(reservoir_s=-1.0)
        with pytest.raises(ValueError):
            BufferBasedABR(reservoir_s=10.0, cushion_end_s=5.0)

    def test_throughput_ignored(self):
        abr = BufferBasedABR()
        assert abr.choose(MANIFEST, 1.0, 50.0) == abr.choose(MANIFEST, 1e9, 50.0)
