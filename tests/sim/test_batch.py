"""Unit tests for the lockstep batch kernels (``repro.sim.batch``).

The batch engine's end-to-end bit-identity lives in
``tests/property/test_sim_batch_equivalence.py``; these tests pin down
each vectorized kernel in isolation — degenerate shapes (empty batch,
all-failed batch, one-segment grids), the ragged ``n_segments_per_row``
mode, and the hand-checkable single-session arithmetic.
"""

import numpy as np
import pytest

from repro.sim.bandwidth import (
    DEFAULT_JITTER_SIGMA,
    DEFAULT_STATE_FACTORS,
    DEFAULT_TRANSITIONS,
    MarkovBandwidth,
)
from repro.sim.batch import (
    BatchPlaybackResult,
    markov_rate_matrix,
    simulate_batch,
)
from repro.sim.playback import simulate_session
from repro.sim.playerbuffer import BatchPlayerBuffer, PlayerBuffer
from repro.sim.abr import RateBasedABR
from repro.sim.cdn import CDNServer
from repro.sim.segments import VideoManifest


CUM = np.cumsum(np.asarray(DEFAULT_TRANSITIONS), axis=1)
FACTORS = np.asarray(DEFAULT_STATE_FACTORS)


def run_batch(ladders, durations, rates, **kwargs):
    m = np.asarray(ladders).shape[0]
    defaults = dict(
        rtt_s=np.full(m, 0.05),
        watch_duration_s=np.full(m, 600.0),
        join_overhead_s=np.zeros(m),
    )
    defaults.update(kwargs)
    return simulate_batch(
        effective_ladders=np.asarray(ladders, dtype=np.float64),
        segment_durations_s=np.asarray(durations, dtype=np.float64),
        rates_kbps=np.asarray(rates, dtype=np.float64),
        **defaults,
    )


class TestMarkovRateMatrix:
    def test_matches_scalar_sample_path(self):
        """Row i of the matrix == sample_path driven by the same draws."""
        n, means = 120, np.array([800.0, 5000.0, 20000.0])
        uniforms = np.empty((3, n))
        jitter = np.empty((3, n))
        expected = np.empty((3, n))
        for i, mean in enumerate(means):
            rng = np.random.default_rng(100 + i)
            expected[i] = MarkovBandwidth(
                mean, rng, initial_state=0
            ).sample_path(n)
            rng = np.random.default_rng(100 + i)
            uniforms[i] = rng.random(n)
            jitter[i] = np.exp(rng.normal(0.0, DEFAULT_JITTER_SIGMA, size=n))
        rates = markov_rate_matrix(means, uniforms, jitter, CUM, FACTORS)
        assert np.array_equal(rates, expected)

    def test_empty_batch(self):
        rates = markov_rate_matrix(
            np.empty(0), np.empty((0, 5)), np.empty((0, 5)), CUM, FACTORS
        )
        assert rates.shape == (0, 5)

    def test_floor_at_one_kbps(self):
        rates = markov_rate_matrix(
            np.array([1e-6]), np.full((1, 4), 0.99), np.ones((1, 4)),
            CUM, FACTORS,
        )
        assert np.all(rates == 1.0)


class TestBatchPlayerBuffer:
    def test_mirrors_scalar_buffer(self):
        rng = np.random.default_rng(0)
        scalar = PlayerBuffer(capacity_s=20.0)
        scalar.start_playback()
        batch = BatchPlayerBuffer(1, capacity_s=20.0)
        mask = np.array([True])
        for _ in range(200):
            add = float(rng.uniform(0.0, 6.0))
            drain = float(rng.uniform(0.0, 6.0))
            scalar.add(add)
            batch.add(add, mask)
            s_stall = scalar.drain(drain)
            b_stall = batch.drain(np.array([drain]), mask)
            assert b_stall[0] == s_stall
            assert batch.level_s[0] == scalar.level_s
        assert batch.total_stall_s[0] == scalar.total_stall_s

    def test_masked_rows_untouched(self):
        batch = BatchPlayerBuffer(2)
        batch.add(5.0, np.array([True, False]))
        stall = batch.drain(np.array([8.0, 8.0]), np.array([True, False]))
        assert batch.level_s[1] == 0.0
        assert stall[1] == 0.0
        assert batch.total_stall_s[1] == 0.0
        assert stall[0] == 3.0

    def test_capacity_clamp(self):
        batch = BatchPlayerBuffer(1, capacity_s=10.0)
        batch.add(25.0, np.array([True]))
        assert batch.level_s[0] == 10.0


class TestSimulateBatchShapes:
    def test_empty_batch(self):
        result = run_batch(
            np.empty((0, 2)), [4.0, 4.0], np.empty((0, 2))
        )
        assert isinstance(result, BatchPlaybackResult)
        assert len(result) == 0
        assert result.segments_downloaded == 0

    def test_all_failed_batch(self):
        result = run_batch(
            [[500.0, np.inf]] * 3, [4.0] * 5, np.full((3, 5), 2000.0),
            join_failed=np.array([True, True, True]),
        )
        assert np.all(result.failed)
        assert np.all(np.isnan(result.join_time_s))
        assert np.all(result.played_s == 0.0)
        assert result.segments_downloaded == 0

    def test_one_segment_grid(self):
        """One 4 s segment at 2000 kbps: the session must join on it
        (last-segment forcing) and drain the single banked segment."""
        result = run_batch(
            [[500.0, 1500.0]], [4.0], [[2000.0]],
            watch_duration_s=np.array([300.0]),
        )
        assert not result.failed[0]
        # est starts from the instantaneous throughput: rung 1 fits
        # (1500 <= 0.85 * 2000), size = 4 * 1500, dl = rtt + size/rate.
        expected_dl = 0.05 + 4.0 * 1500.0 / 2000.0
        assert result.join_time_s[0] == expected_dl
        assert result.played_s[0] == 4.0  # the banked segment drains
        assert result.buffering_s[0] == 0.0
        assert result.avg_bitrate_kbps[0] == 1500.0  # startup-rung fallback
        assert result.segments_downloaded == 1

    def test_join_timeout_marks_failed(self):
        result = run_batch(
            [[500.0]], [4.0] * 10, np.full((1, 10), 10.0),
            max_join_time_s=30.0,
        )
        # 4 s segments at 500 kbps over a 10 kbps link: the first
        # download alone takes ~200 s > 30 s.
        assert result.failed[0]
        assert np.isnan(result.join_time_s[0])

    def test_watch_limit_stops_early(self):
        long_grid = [4.0] * 100
        result = run_batch(
            [[500.0]], long_grid, np.full((1, 100), 5000.0),
            watch_duration_s=np.array([20.0]),
        )
        assert not result.failed[0]
        # Played wall time is bounded by watch + one final buffer drain.
        assert result.played_s[0] <= 20.0 + 60.0
        assert result.segments_downloaded < 100


class TestRaggedBatches:
    def test_ragged_equals_separate_uniform_runs(self):
        """A ragged two-row batch == each row run alone on its own grid."""
        rng = np.random.default_rng(42)
        durations = np.full(8, 4.0)
        ladders = np.array([[300.0, 900.0], [500.0, 2500.0]])
        rates = rng.uniform(500.0, 8000.0, size=(2, 8))
        n_seg = np.array([3, 8])
        watch = np.array([500.0, 500.0])
        ragged = run_batch(
            ladders, durations, rates,
            n_segments_per_row=n_seg, watch_duration_s=watch,
        )
        singles = [
            run_batch(
                ladders[i : i + 1], durations[: n_seg[i]],
                rates[i : i + 1, : n_seg[i]],
                watch_duration_s=watch[i : i + 1],
            )
            for i in range(2)
        ]
        for attr in ("failed", "join_time_s", "played_s", "buffering_s",
                     "avg_bitrate_kbps"):
            got = getattr(ragged, attr)
            want = [getattr(s, attr)[0] for s in singles]
            assert np.array_equal(got, want, equal_nan=got.dtype.kind == "f"), attr
        assert ragged.segments_downloaded == sum(
            s.segments_downloaded for s in singles
        )

    def test_ragged_bounds_validated(self):
        with pytest.raises(ValueError, match="n_segments_per_row"):
            run_batch(
                [[500.0]], [4.0, 4.0], [[1000.0, 1000.0]],
                n_segments_per_row=np.array([0]),
            )
        with pytest.raises(ValueError, match="n_segments_per_row"):
            run_batch(
                [[500.0]], [4.0, 4.0], [[1000.0, 1000.0]],
                n_segments_per_row=np.array([3]),
            )


class TestSimulateBatchValidation:
    def test_rates_shape_checked(self):
        with pytest.raises(ValueError, match="rates_kbps"):
            run_batch([[500.0]], [4.0, 4.0], [[1000.0]])

    def test_watch_must_be_finite(self):
        with pytest.raises(ValueError, match="finite"):
            run_batch(
                [[500.0]], [4.0], [[1000.0]],
                watch_duration_s=np.array([np.inf]),
            )

    def test_startup_buffer_positive(self):
        with pytest.raises(ValueError, match="startup_buffer_s"):
            run_batch(
                [[500.0]], [4.0], [[1000.0]], startup_buffer_s=0.0
            )


class TestAgainstScalarLoop:
    def test_single_session_matches_simulate_session(self):
        """Kernel vs the reference loop, outside the engine: same
        pre-drawn rate path, same parameters, equal outputs bit for bit."""
        manifest = VideoManifest(
            ladder_kbps=(300.0, 800.0, 2000.0, 4500.0),
            segment_duration_s=4.0,
            total_duration_s=120.0,
        )
        for seed in range(8):
            rng = np.random.default_rng(seed)
            bandwidth = MarkovBandwidth(6000.0, rng, initial_state=0)
            server = CDNServer(
                name="edge", rtt_s=0.08, failure_prob=1e-4,
                throughput_cap_kbps=1e9,
            )
            scalar = simulate_session(
                manifest=manifest,
                abr=RateBasedABR(),
                bandwidth=bandwidth,
                server=server,
                rng=rng,
                watch_duration_s=90.0,
            )
            # Batch twin: consume the same substream in the same blocked
            # layout (join uniform, transition uniforms, jitter block).
            rng = np.random.default_rng(seed)
            u_join = rng.random()
            n = manifest.n_segments
            uniforms = rng.random(n)[None, :]
            jitter = np.exp(
                rng.normal(0.0, DEFAULT_JITTER_SIGMA, size=n)
            )[None, :]
            rates = markov_rate_matrix(
                np.array([6000.0]), uniforms, jitter, CUM, FACTORS
            )
            p = 1e-4
            result = simulate_batch(
                effective_ladders=np.array(
                    [[300.0, 800.0, 2000.0, 4500.0]]
                ),
                segment_durations_s=manifest.segment_durations_s,
                rates_kbps=rates,
                rtt_s=np.array([0.08]),
                watch_duration_s=np.array([90.0]),
                join_overhead_s=np.array([0.0]),
                join_failed=np.array([u_join < p / (1.0 - p) / (1.0 + p / (1.0 - p))]),
            )
            assert result.failed[0] == scalar.failed
            if scalar.failed:
                continue
            assert result.join_time_s[0] == scalar.join_time_s
            assert result.played_s[0] == scalar.played_s
            assert result.buffering_s[0] == scalar.buffering_s
            assert result.avg_bitrate_kbps[0] == scalar.avg_bitrate_kbps
            assert result.segments_downloaded == scalar.segments_downloaded
