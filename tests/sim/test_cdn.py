"""Tests for CDN servers and site CDN selection."""

import numpy as np
import pytest

from repro.sim.cdn import CDNServer, SiteCDNSelector


def server(**overrides) -> CDNServer:
    kwargs = dict(name="edge", rtt_s=0.05, failure_prob=0.02,
                  throughput_cap_kbps=50_000.0)
    kwargs.update(overrides)
    return CDNServer(**kwargs)


class TestCDNServer:
    def test_validation(self):
        with pytest.raises(ValueError):
            server(rtt_s=0.0)
        with pytest.raises(ValueError):
            server(failure_prob=1.0)
        with pytest.raises(ValueError):
            server(throughput_cap_kbps=0.0)

    def test_effective_throughput_caps(self):
        s = server(throughput_cap_kbps=10_000.0)
        assert s.effective_throughput(50_000.0) == 10_000.0
        assert s.effective_throughput(5_000.0) == 5_000.0

    def test_effective_throughput_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            server().effective_throughput(0.0)

    def test_join_failure_rate_matches_probability(self):
        s = server(failure_prob=0.2)
        rng = np.random.default_rng(0)
        fails = sum(s.join_fails(rng) for _ in range(20_000)) / 20_000
        assert fails == pytest.approx(0.2, abs=0.02)

    def test_odds_multiplier_raises_rate(self):
        s = server(failure_prob=0.02)
        rng = np.random.default_rng(1)
        base = sum(s.join_fails(rng) for _ in range(20_000)) / 20_000
        rng = np.random.default_rng(1)
        boosted = sum(s.join_fails(rng, 10.0) for _ in range(20_000)) / 20_000
        assert boosted > 5 * base
        assert boosted < 1.0

    def test_zero_failure_never_fails(self):
        s = server(failure_prob=0.0)
        rng = np.random.default_rng(2)
        assert not any(s.join_fails(rng, 100.0) for _ in range(1000))

    def test_odds_multiplier_must_be_positive(self):
        with pytest.raises(ValueError):
            server().join_fails(np.random.default_rng(0), 0.0)


class TestSiteCDNSelector:
    def test_weighted_selection(self):
        servers = [server(name="a"), server(name="b")]
        selector = SiteCDNSelector(servers, weights=[9.0, 1.0])
        rng = np.random.default_rng(3)
        picks = [selector.select(rng).name for _ in range(2000)]
        frac_a = picks.count("a") / len(picks)
        assert frac_a == pytest.approx(0.9, abs=0.03)

    def test_single_server(self):
        selector = SiteCDNSelector([server(name="only")], weights=[1.0])
        assert selector.select(np.random.default_rng(0)).name == "only"

    def test_validation(self):
        with pytest.raises(ValueError):
            SiteCDNSelector([], weights=[])
        with pytest.raises(ValueError):
            SiteCDNSelector([server()], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            SiteCDNSelector([server()], weights=[-1.0])
