"""Tests for the Markov-modulated bandwidth process."""

import numpy as np
import pytest

from repro.sim.bandwidth import MarkovBandwidth


def make(mean=5000.0, seed=0, **kwargs):
    return MarkovBandwidth(mean, np.random.default_rng(seed), **kwargs)


class TestValidation:
    def test_mean_positive(self):
        with pytest.raises(ValueError):
            make(mean=0.0)

    def test_transition_rows_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            MarkovBandwidth(
                1000.0, np.random.default_rng(0),
                state_factors=(1.0, 0.5),
                transitions=((0.5, 0.4), (0.5, 0.5)),
            )

    def test_transition_shape(self):
        with pytest.raises(ValueError, match="shape"):
            MarkovBandwidth(
                1000.0, np.random.default_rng(0),
                state_factors=(1.0, 0.5, 0.2),
                transitions=((0.5, 0.5), (0.5, 0.5)),
            )

    def test_negative_probability(self):
        with pytest.raises(ValueError, match="non-negative"):
            MarkovBandwidth(
                1000.0, np.random.default_rng(0),
                state_factors=(1.0, 0.5),
                transitions=((1.5, -0.5), (0.5, 0.5)),
            )

    def test_initial_state_range(self):
        with pytest.raises(ValueError, match="out of range"):
            make(initial_state=9)

    def test_negative_jitter(self):
        with pytest.raises(ValueError):
            make(jitter_sigma=-0.1)


class TestDynamics:
    def test_rates_positive(self):
        bw = make()
        for sample in bw.sample_series(200):
            assert sample.rate_kbps > 0

    def test_states_valid(self):
        bw = make()
        for sample in bw.sample_series(200):
            assert 0 <= sample.state < 3

    def test_mean_rate_tracks_mean_parameter(self):
        bw = make(mean=8000.0, seed=1, jitter_sigma=0.0)
        rates = [s.rate_kbps for s in bw.sample_series(5000)]
        # Stationary mix of (1.0, 0.5, 0.15) factors: mean well below
        # the nominal but the same order of magnitude.
        assert 0.4 * 8000 < np.mean(rates) <= 8000

    def test_deterministic_given_seed(self):
        r1 = [s.rate_kbps for s in make(seed=7).sample_series(50)]
        r2 = [s.rate_kbps for s in make(seed=7).sample_series(50)]
        assert r1 == r2

    def test_sticky_good_state(self):
        bw = make(seed=2, initial_state=0)
        states = [s.state for s in bw.sample_series(2000)]
        frac_good = states.count(0) / len(states)
        assert frac_good > 0.5  # good state dominates the stationary mix

    def test_deep_fade_reduces_rate(self):
        bw = make(seed=3, jitter_sigma=0.0, initial_state=0)
        rates_by_state = {0: [], 1: [], 2: []}
        for sample in bw.sample_series(3000):
            rates_by_state[sample.state].append(sample.rate_kbps)
        assert np.mean(rates_by_state[2]) < np.mean(rates_by_state[0])

    def test_negative_series_length_rejected(self):
        with pytest.raises(ValueError):
            make().sample_series(-1)
