"""Tests for the Markov-modulated bandwidth process."""

import numpy as np
import pytest

from repro.sim.bandwidth import MarkovBandwidth


def make(mean=5000.0, seed=0, **kwargs):
    return MarkovBandwidth(mean, np.random.default_rng(seed), **kwargs)


class TestValidation:
    def test_mean_positive(self):
        with pytest.raises(ValueError):
            make(mean=0.0)

    def test_transition_rows_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            MarkovBandwidth(
                1000.0, np.random.default_rng(0),
                state_factors=(1.0, 0.5),
                transitions=((0.5, 0.4), (0.5, 0.5)),
            )

    def test_transition_shape(self):
        with pytest.raises(ValueError, match="shape"):
            MarkovBandwidth(
                1000.0, np.random.default_rng(0),
                state_factors=(1.0, 0.5, 0.2),
                transitions=((0.5, 0.5), (0.5, 0.5)),
            )

    def test_negative_probability(self):
        with pytest.raises(ValueError, match="non-negative"):
            MarkovBandwidth(
                1000.0, np.random.default_rng(0),
                state_factors=(1.0, 0.5),
                transitions=((1.5, -0.5), (0.5, 0.5)),
            )

    def test_initial_state_range(self):
        with pytest.raises(ValueError, match="out of range"):
            make(initial_state=9)

    def test_negative_jitter(self):
        with pytest.raises(ValueError):
            make(jitter_sigma=-0.1)


class TestDynamics:
    def test_rates_positive(self):
        rates, _ = make().sample_series(200)
        assert rates.shape == (200,)
        assert np.all(rates > 0)

    def test_states_valid(self):
        _, states = make().sample_series(200)
        assert states.shape == (200,)
        assert np.all((states >= 0) & (states < 3))

    def test_mean_rate_tracks_mean_parameter(self):
        bw = make(mean=8000.0, seed=1, jitter_sigma=0.0)
        rates, _ = bw.sample_series(5000)
        # Stationary mix of (1.0, 0.5, 0.15) factors: mean well below
        # the nominal but the same order of magnitude.
        assert 0.4 * 8000 < np.mean(rates) <= 8000

    def test_deterministic_given_seed(self):
        r1, _ = make(seed=7).sample_series(50)
        r2, _ = make(seed=7).sample_series(50)
        assert np.array_equal(r1, r2)

    def test_sample_path_matches_series_rates(self):
        rates, _ = make(seed=11).sample_series(80)
        assert np.array_equal(rates, make(seed=11).sample_path(80))

    def test_state_advances_across_calls(self):
        bw = make(seed=13)
        _, first = bw.sample_series(40)
        assert bw.state == int(first[-1])

    def test_sticky_good_state(self):
        _, states = make(seed=2, initial_state=0).sample_series(2000)
        frac_good = np.mean(states == 0)
        assert frac_good > 0.5  # good state dominates the stationary mix

    def test_deep_fade_reduces_rate(self):
        rates, states = make(
            seed=3, jitter_sigma=0.0, initial_state=0
        ).sample_series(3000)
        assert np.mean(rates[states == 2]) < np.mean(rates[states == 0])

    def test_negative_series_length_rejected(self):
        with pytest.raises(ValueError):
            make().sample_series(-1)
