"""Tests for the mechanistic QoE engine."""

import numpy as np
import pytest

from repro.sim.engine import MechanisticParams, MechanisticQoEEngine
from repro.trace.entities import WorldConfig, build_world
from repro.trace.population import AttributeSampler
from repro.trace.qoe import EffectArrays


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(n_asns=10, n_cdns=4, n_sites=6),
                       np.random.default_rng(8))


@pytest.fixture(scope="module")
def engine(world):
    return MechanisticQoEEngine(world)


@pytest.fixture(scope="module")
def codes(world):
    return AttributeSampler(world).sample(400, np.random.default_rng(9))


class TestMechanisticEngine:
    def test_batch_shapes(self, engine, codes):
        batch = engine.generate(
            codes, EffectArrays.neutral(len(codes)), np.random.default_rng(0)
        )
        assert len(batch) == len(codes)

    def test_invariants(self, engine, codes):
        batch = engine.generate(
            codes, EffectArrays.neutral(len(codes)), np.random.default_rng(0)
        )
        ok = ~batch.join_failed
        assert (batch.duration_s[ok] >= 0).all()
        assert (batch.buffering_s[ok] <= batch.duration_s[ok] + 1e-9).all()
        assert np.isnan(batch.bitrate_kbps[~ok]).all()

    def test_bitrates_within_site_ladders(self, world, engine, codes):
        batch = engine.generate(
            codes, EffectArrays.neutral(len(codes)), np.random.default_rng(1)
        )
        ok = ~batch.join_failed
        for i in np.nonzero(ok)[0]:
            ladder = world.sites[int(codes[i, 2])].ladder
            assert ladder[0] <= batch.bitrate_kbps[i] <= ladder[-1]

    def test_failure_odds_effect(self, engine, codes):
        eff = EffectArrays.neutral(len(codes))
        eff.join_failure_odds[:] = 100.0
        batch = engine.generate(codes, eff, np.random.default_rng(2))
        base = engine.generate(
            codes, EffectArrays.neutral(len(codes)), np.random.default_rng(2)
        )
        assert batch.join_failed.mean() > base.join_failed.mean()

    def test_bitrate_cap_effect(self, engine, codes):
        eff = EffectArrays.neutral(len(codes))
        eff.bitrate_cap_kbps[:] = 500.0
        batch = engine.generate(codes, eff, np.random.default_rng(3))
        ok = ~batch.join_failed
        assert (batch.bitrate_kbps[ok] <= 500.0).all()

    def test_join_time_factor_effect(self, engine, codes):
        eff = EffectArrays.neutral(len(codes))
        eff.join_time_factor[:] = 8.0
        slow = engine.generate(codes, eff, np.random.default_rng(4))
        base = engine.generate(
            codes, EffectArrays.neutral(len(codes)), np.random.default_rng(4)
        )
        assert np.nanmedian(slow.join_time_s) > np.nanmedian(base.join_time_s)

    def test_custom_params(self, world, codes):
        engine = MechanisticQoEEngine(
            world, MechanisticParams(watch_median_s=30.0, watch_sigma=0.1)
        )
        batch = engine.generate(
            codes, EffectArrays.neutral(len(codes)), np.random.default_rng(5)
        )
        ok = ~batch.join_failed
        assert np.median(batch.duration_s[ok]) < 120.0
