"""Tests for video manifests and segments."""

import pytest

from repro.sim.segments import Segment, VideoManifest


class TestSegment:
    def test_size(self):
        seg = Segment(index=0, duration_s=4.0, bitrate_kbps=1000.0)
        assert seg.size_kbits == pytest.approx(4000.0)

    def test_download_time(self):
        seg = Segment(index=0, duration_s=4.0, bitrate_kbps=1000.0)
        assert seg.download_time(2000.0) == pytest.approx(2.0)
        assert seg.download_time(2000.0, rtt_s=0.1) == pytest.approx(2.1)

    def test_download_faster_than_realtime(self):
        seg = Segment(index=0, duration_s=4.0, bitrate_kbps=1000.0)
        assert seg.download_time(4000.0) < seg.duration_s

    def test_invalid_throughput(self):
        seg = Segment(index=0, duration_s=4.0, bitrate_kbps=1000.0)
        with pytest.raises(ValueError):
            seg.download_time(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Segment(index=-1, duration_s=4.0, bitrate_kbps=1000.0)
        with pytest.raises(ValueError):
            Segment(index=0, duration_s=0.0, bitrate_kbps=1000.0)


class TestVideoManifest:
    @pytest.fixture()
    def manifest(self):
        return VideoManifest(
            ladder_kbps=(400.0, 1000.0, 2500.0),
            segment_duration_s=4.0,
            total_duration_s=30.0,
        )

    def test_n_segments_includes_partial(self, manifest):
        assert manifest.n_segments == 8  # 7 full + one 2s tail

    def test_n_segments_exact_multiple(self):
        manifest = VideoManifest(
            ladder_kbps=(400.0,), segment_duration_s=4.0, total_duration_s=32.0
        )
        assert manifest.n_segments == 8

    def test_segment_durations(self, manifest):
        assert manifest.segment(0, 0).duration_s == pytest.approx(4.0)
        assert manifest.segment(7, 0).duration_s == pytest.approx(2.0)

    def test_segment_bitrate_follows_rung(self, manifest):
        assert manifest.segment(0, 2).bitrate_kbps == 2500.0

    def test_segment_bounds(self, manifest):
        with pytest.raises(ValueError, match="rung"):
            manifest.segment(0, 3)
        with pytest.raises(ValueError, match="segment"):
            manifest.segment(8, 0)

    def test_rung_below(self, manifest):
        assert manifest.rung_below(300.0) == 0  # below lowest: lowest
        assert manifest.rung_below(999.0) == 0
        assert manifest.rung_below(1000.0) == 1
        assert manifest.rung_below(99_999.0) == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            VideoManifest(ladder_kbps=())
        with pytest.raises(ValueError, match="ascending"):
            VideoManifest(ladder_kbps=(1000.0, 400.0))
        with pytest.raises(ValueError, match="positive"):
            VideoManifest(ladder_kbps=(-5.0, 400.0))
        with pytest.raises(ValueError):
            VideoManifest(ladder_kbps=(400.0,), segment_duration_s=0.0)

    def test_n_rungs(self, manifest):
        assert manifest.n_rungs == 3
