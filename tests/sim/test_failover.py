"""Tests for mid-stream CDN failover."""

import numpy as np
import pytest

from repro.sim.abr import FixedBitrateABR, RateBasedABR
from repro.sim.bandwidth import MarkovBandwidth
from repro.sim.cdn import CDNServer
from repro.sim.failover import (
    compare_single_vs_multi_cdn,
    simulate_session_with_failover,
)
from repro.sim.segments import VideoManifest

MANIFEST = VideoManifest(
    ladder_kbps=(400.0, 1000.0, 2500.0),
    segment_duration_s=4.0,
    total_duration_s=120.0,
)


def server(name="edge", fail=0.01, cap=1e9, rtt=0.03):
    return CDNServer(name=name, rtt_s=rtt, failure_prob=fail,
                     throughput_cap_kbps=cap)


def steady(mean, seed=0):
    return MarkovBandwidth(
        mean, np.random.default_rng(seed),
        state_factors=(1.0,), transitions=((1.0,),), jitter_sigma=0.0,
    )


def run(servers, bandwidth_kbps=8000.0, seed=0, **kwargs):
    return simulate_session_with_failover(
        manifest=MANIFEST,
        abr=kwargs.pop("abr", RateBasedABR()),
        bandwidth=steady(bandwidth_kbps, seed),
        servers=servers,
        rng=np.random.default_rng(seed),
        **kwargs,
    )


class TestJoinFailover:
    def test_second_server_rescues_join(self):
        # First server always fails; second never does.
        servers = [server("dead", fail=0.99), server("alive", fail=0.0)]
        result = run(servers, seed=1, failure_odds=100.0)
        assert not result.failed
        assert result.join_attempts == 2
        assert result.servers_used[0] == "alive"

    def test_all_servers_failing_fails_session(self):
        servers = [server("dead1", fail=0.99), server("dead2", fail=0.99)]
        result = run(servers, seed=2, failure_odds=1e6)
        assert result.failed
        assert result.join_attempts == 2

    def test_single_healthy_server_plays(self):
        result = run([server(fail=0.0)])
        assert not result.failed
        assert result.midstream_switches == 0


class TestMidstreamFailover:
    def test_switch_away_from_capped_server(self):
        # First server's edge is so slow the top rung stalls; the
        # second is healthy. Forcing the top rung triggers switching.
        servers = [
            server("slow", fail=0.0, cap=900.0),
            server("fast", fail=0.0, cap=1e9),
        ]
        result = run(
            servers, bandwidth_kbps=20_000.0, seed=3,
            abr=FixedBitrateABR(rung=2), stall_tolerance_s=2.0,
        )
        assert not result.failed
        assert result.midstream_switches >= 1
        assert "fast" in result.servers_used

    def test_no_switching_with_single_server(self):
        result = run(
            [server("slow", fail=0.0, cap=900.0)],
            bandwidth_kbps=20_000.0, seed=4,
            abr=FixedBitrateABR(rung=2), stall_tolerance_s=2.0,
        )
        assert result.midstream_switches == 0
        assert result.buffering_s > 0

    def test_failover_reduces_buffering(self):
        slow_only = run(
            [server("slow", fail=0.0, cap=900.0)],
            bandwidth_kbps=20_000.0, seed=5,
            abr=FixedBitrateABR(rung=2), stall_tolerance_s=2.0,
        )
        with_failover = run(
            [server("slow", fail=0.0, cap=900.0), server("fast", fail=0.0)],
            bandwidth_kbps=20_000.0, seed=5,
            abr=FixedBitrateABR(rung=2), stall_tolerance_s=2.0,
        )
        assert with_failover.buffering_s < slow_only.buffering_s

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            run([])
        with pytest.raises(ValueError, match="invalid failover"):
            run([server()], stall_tolerance_s=0.0)


class TestComparison:
    def test_multi_cdn_reduces_failures(self):
        servers = [server("flaky", fail=0.3), server("stable", fail=0.005)]
        comparison = compare_single_vs_multi_cdn(
            MANIFEST, RateBasedABR, servers,
            mean_bandwidth_kbps=8000.0, n_sessions=150, seed=6,
            failure_odds=3.0,
        )
        assert comparison.multi_failure_rate < comparison.single_failure_rate
        assert comparison.failure_reduction > 0.5

    def test_accounting_fields(self):
        servers = [server("a", fail=0.05), server("b", fail=0.05)]
        comparison = compare_single_vs_multi_cdn(
            MANIFEST, RateBasedABR, servers,
            mean_bandwidth_kbps=6000.0, n_sessions=50, seed=7,
        )
        assert comparison.n_sessions == 50
        assert 0 <= comparison.multi_failure_rate <= 1
        assert comparison.mean_switches >= 0

    def test_requires_two_servers(self):
        with pytest.raises(ValueError, match="two servers"):
            compare_single_vs_multi_cdn(
                MANIFEST, RateBasedABR, [server()], 5000.0
            )
