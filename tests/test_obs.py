"""The observability subsystem: spans, metrics, sinks, degradations."""

import json
import logging

import pytest

from repro.obs import (
    MetricsRegistry,
    NullMetrics,
    NullTracer,
    Tracer,
    current_metrics,
    current_tracer,
    degradation_reasons,
    manifest_path_for,
    peak_rss_bytes,
    record_degradation,
    use_metrics,
    use_tracer,
    write_run_manifest,
    write_trace_json,
)


class TestTracer:
    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer", kind="x"):
            with tracer.span("inner") as inner:
                inner.set(rows=5)
        root = tracer.finish()
        assert [c.name for c in root.children] == ["outer"]
        outer = root.children[0]
        assert outer.attrs["kind"] == "x"
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.children[0].attrs["rows"] == 5
        assert root.duration_s >= outer.duration_s >= 0.0

    def test_exception_annotates_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        span = tracer.find("doomed")[0]
        assert span.attrs["error"] == "RuntimeError: boom"

    def test_record_and_event(self):
        tracer = Tracer()
        tracer.record("worker", duration_s=1.5, pid=42)
        tracer.event("degraded", kind="k", reason="r")
        assert tracer.find("worker")[0].duration_s == 1.5
        assert tracer.find("degraded")[0].attrs["kind"] == "k"

    def test_as_dict_round_trips_through_json(self):
        tracer = Tracer()
        with tracer.span("phase", bytes=1024):
            pass
        data = json.loads(json.dumps(tracer.as_dict()))
        assert data["children"][0]["name"] == "phase"
        assert data["children"][0]["attrs"]["bytes"] == 1024

    def test_render_is_indented_tree(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        text = tracer.render()
        lines = text.splitlines()
        assert any(line.lstrip().startswith("a") for line in lines)
        assert any(line.startswith("    b") for line in lines)

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("x", attr=1) as span:
            span.set(more=2)
        tracer.event("e")
        tracer.record("r", duration_s=9.0)
        assert tracer.find("x") == []
        assert not tracer.enabled


class TestMetrics:
    def test_counters_gauges_histograms(self):
        m = MetricsRegistry()
        m.inc("hits")
        m.inc("hits", 2)
        m.gauge("size", 7.5)
        m.observe("latency", 1.0)
        m.observe("latency", 3.0)
        data = m.as_dict()
        assert data["counters"]["hits"] == 3
        assert data["gauges"]["size"] == 7.5
        hist = data["histograms"]["latency"]
        assert hist["count"] == 2
        assert hist["min"] == 1.0 and hist["max"] == 3.0

    def test_null_metrics_is_inert(self):
        m = NullMetrics()
        m.inc("x")
        m.gauge("y", 1.0)
        m.observe("z", 2.0)
        assert not m.enabled


class TestInstallation:
    def test_use_tracer_restores_previous(self):
        before = current_tracer()
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is before

    def test_use_metrics_restores_on_error(self):
        before = current_metrics()
        with pytest.raises(RuntimeError):
            with use_metrics(MetricsRegistry()):
                raise RuntimeError
        assert current_metrics() is before

    def test_record_degradation_reaches_all_sinks(self, caplog):
        tracer, metrics = Tracer(), MetricsRegistry()
        with use_tracer(tracer), use_metrics(metrics):
            with caplog.at_level(logging.WARNING, logger="repro.obs"):
                record_degradation("shm_to_pickle", "because reasons")
        assert "because reasons" in caplog.text
        assert metrics.get("degraded.shm_to_pickle") == 1
        reasons = degradation_reasons(tracer)
        assert reasons == [
            {"kind": "shm_to_pickle", "reason": "because reasons"}
        ]

    def test_record_degradation_without_collectors_only_logs(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            record_degradation("parallel_to_serial", "quietly degraded")
        assert "quietly degraded" in caplog.text


class TestSinks:
    def test_write_trace_json(self, tmp_path):
        tracer, metrics = Tracer(), MetricsRegistry()
        with use_tracer(tracer), use_metrics(metrics):
            with tracer.span("work"):
                metrics.inc("things", 3)
        path = write_trace_json(tmp_path / "trace.json", tracer, metrics)
        data = json.loads(path.read_text())
        assert data["trace"]["children"][0]["name"] == "work"
        assert data["metrics"]["counters"]["things"] == 3

    def test_write_run_manifest(self, tmp_path):
        tracer, metrics = Tracer(), MetricsRegistry()
        with use_tracer(tracer):
            with tracer.span("work"):
                record_degradation("snapshot_rebuild", "corrupt")
        path = write_run_manifest(
            tmp_path / "run.manifest.json",
            command="analyze",
            argv=["analyze", "t.jsonl"],
            tracer=tracer,
            metrics=metrics,
            args={"workers": 2},
            outputs=["trace.json"],
            exit_code=0,
        )
        manifest = json.loads(path.read_text())
        assert manifest["command"] == "analyze"
        assert manifest["exit_code"] == 0
        assert manifest["peak_rss_bytes"] == pytest.approx(
            peak_rss_bytes(), rel=0.5
        )
        assert manifest["args"]["workers"] == 2
        assert manifest["degradations"][0]["kind"] == "snapshot_rebuild"
        assert "work" in manifest["span_names"]
        assert manifest["duration_s"] >= 0.0

    def test_manifest_path_for(self):
        assert (
            manifest_path_for("out/trace.json").name == "trace.manifest.json"
        )

    def test_peak_rss_bytes_is_plausible(self):
        peak = peak_rss_bytes()
        # rusage is always available on the POSIX platforms we test on;
        # a Python process comfortably exceeds 1 MB and a high-water
        # mark can only grow.
        assert peak is not None
        assert peak > 1_000_000
        assert peak_rss_bytes() >= peak


class TestHistogramQuantiles:
    def test_as_dict_carries_quantile_keys(self):
        m = MetricsRegistry()
        for v in range(1, 101):
            m.observe("latency", float(v))
        hist = m.as_dict()["histograms"]["latency"]
        assert set(hist) >= {"p50", "p95", "p99", "count", "sum", "min",
                             "max", "mean"}
        # 100 uniform values fit the reservoir whole: exact quantiles.
        assert hist["p50"] == pytest.approx(50.5)
        assert hist["p95"] == pytest.approx(95.05)
        assert hist["p99"] == pytest.approx(99.01)

    def test_quantiles_deterministic_across_registries(self):
        # Vitter's reservoir is seeded from the histogram name, so two
        # runs observing the same 10k-value series (more than the
        # reservoir holds) report identical estimates — no diff flap.
        def run():
            m = MetricsRegistry()
            for i in range(10_000):
                m.observe("epoch.seconds", float(i % 997))
            return m.as_dict()["histograms"]["epoch.seconds"]

        assert run() == run()

    def test_different_names_seed_differently(self):
        m = MetricsRegistry()
        for i in range(10_000):
            m.observe("a", float(i % 997))
            m.observe("b", float(i % 997))
        hists = m.as_dict()["histograms"]
        # Same series, different reservoirs (seeded per name).
        assert hists["a"] != hists["b"]

    def test_quantile_validation_and_empty(self):
        from repro.obs.metrics import HistogramSummary

        hist = HistogramSummary()
        assert hist.quantile(0.5) == 0.0
        with pytest.raises(ValueError, match="quantile"):
            hist.quantile(1.5)
        with pytest.raises(ValueError, match="quantile"):
            hist.quantile(-0.1)

    def test_render_histograms(self):
        from repro.obs.metrics import render_histograms

        m = MetricsRegistry()
        assert render_histograms(m) == ""
        for v in (1.0, 2.0, 3.0):
            m.observe("queue.wait", v)
        text = render_histograms(m)
        assert "queue.wait" in text
        assert "p95" in text and "count" in text


class TestAtomicWrites:
    def test_trace_write_is_atomic_under_failure(self, tmp_path,
                                                 monkeypatch):
        import os

        import repro.obs.sinks as sinks

        target = tmp_path / "trace.json"
        target.write_text('{"trace": {"name": "old"}}')

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", exploding_replace)
        tracer = Tracer()
        with pytest.raises(OSError):
            write_trace_json(target, tracer)
        # Old content intact, no tmp litter.
        assert json.loads(target.read_text())["trace"]["name"] == "old"
        assert list(tmp_path.iterdir()) == [target]

    def test_no_tmp_left_after_success(self, tmp_path):
        tracer = Tracer()
        write_trace_json(tmp_path / "trace.json", tracer)
        assert [p.name for p in tmp_path.iterdir()] == ["trace.json"]
