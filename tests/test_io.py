"""Tests for trace and result persistence."""

import csv
import math

import numpy as np
import pytest

from repro.io import (
    read_sessions_csv,
    read_sessions_jsonl,
    write_sessions_csv,
    write_sessions_jsonl,
    write_series_csv,
    write_table_csv,
)
from repro.core.sessions import SessionTable
from tests.conftest import make_session


@pytest.fixture()
def sample_table() -> SessionTable:
    return SessionTable.from_sessions(
        [
            make_session(start_time=12.5, duration_s=300.0, buffering_s=4.5,
                         join_time_s=2.25, bitrate_kbps=1600.0, cdn="cdn_x"),
            make_session(start_time=99.0, join_failed=True, asn="AS77"),
        ]
    )


class TestJsonlRoundTrip:
    def test_round_trip(self, sample_table, tmp_path):
        path = tmp_path / "trace.jsonl"
        n = write_sessions_jsonl(sample_table, path)
        assert n == 2
        back = read_sessions_jsonl(path)
        assert len(back) == 2
        original = list(sample_table.rows())
        restored = list(back.rows())
        assert restored[0].attrs == original[0].attrs
        assert restored[0].buffering_s == original[0].buffering_s
        assert restored[1].join_failed is True
        assert math.isnan(restored[1].join_time_s)

    def test_nan_encoded_as_null(self, sample_table, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_sessions_jsonl(sample_table, path)
        lines = path.read_text().splitlines()
        assert '"join_time_s": null' in lines[1]

    def test_blank_lines_skipped(self, sample_table, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_sessions_jsonl(sample_table, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(read_sessions_jsonl(path)) == 2

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            read_sessions_jsonl(path)

    def test_missing_attribute_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"asn": "AS1"}\n')
        with pytest.raises(ValueError, match="missing"):
            read_sessions_jsonl(path)


class TestCsvRoundTrip:
    def test_round_trip(self, sample_table, tmp_path):
        path = tmp_path / "trace.csv"
        n = write_sessions_csv(sample_table, path)
        assert n == 2
        back = read_sessions_csv(path)
        original = list(sample_table.rows())
        restored = list(back.rows())
        assert restored[0].attrs == original[0].attrs
        assert restored[0].bitrate_kbps == original[0].bitrate_kbps
        assert restored[1].join_failed is True

    def test_header(self, sample_table, tmp_path):
        path = tmp_path / "trace.csv"
        write_sessions_csv(sample_table, path)
        with path.open() as handle:
            header = next(csv.reader(handle))
        assert header[:7] == list(sample_table.schema.names)
        assert "join_failed" in header


class TestResultExport:
    def test_write_table(self, tmp_path):
        path = tmp_path / "table.csv"
        write_table_csv(path, ["metric", "value"], [["a", 1], ["b", 2]])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["metric", "value"], ["a", "1"], ["b", "2"]]

    def test_write_table_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            write_table_csv(tmp_path / "t.csv", ["a", "b"], [["only_one"]])

    def test_write_series(self, tmp_path):
        path = tmp_path / "series.csv"
        write_series_csv(path, [0, 1], {"y": [0.5, 0.6]}, x_label="hour")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["hour", "y"]
        assert rows[2] == ["1", "0.6"]

    def test_write_series_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            write_series_csv(tmp_path / "s.csv", [0, 1], {"y": [1.0]})


class TestGeneratedTraceRoundTrip:
    def test_analysis_identical_after_round_trip(self, tiny_trace, tmp_path):
        from repro.core import analyze_trace
        from repro.core.metrics import JOIN_FAILURE
        from repro.core.pipeline import AnalysisConfig

        path = tmp_path / "trace.jsonl"
        # Subset for speed: first two epochs.
        rows = np.nonzero(tiny_trace.table.start_time < 2 * 3600.0)[0]
        subset = tiny_trace.table.select(rows)
        write_sessions_jsonl(subset, path)
        restored = read_sessions_jsonl(path)
        config = AnalysisConfig(metrics=(JOIN_FAILURE,))
        a1 = analyze_trace(subset, config=config)
        a2 = analyze_trace(restored, config=config)
        e1 = a1["join_failure"].epochs
        e2 = a2["join_failure"].epochs
        assert [e.total_problems for e in e1] == [e.total_problems for e in e2]
        assert [set(e.critical_clusters) for e in e1] == [
            set(e.critical_clusters) for e in e2
        ]


class TestChunkedReaders:
    """``chunked=True`` is a pure fast path: bit-identical tables."""

    @staticmethod
    def _assert_same(a: SessionTable, b: SessionTable) -> None:
        assert a.vocabs == b.vocabs
        assert np.array_equal(a.codes, b.codes)
        for name in ("start_time", "duration_s", "buffering_s",
                     "join_time_s", "bitrate_kbps", "join_failed"):
            ca, cb = getattr(a, name), getattr(b, name)
            assert np.array_equal(ca, cb, equal_nan=ca.dtype.kind == "f"), name

    @pytest.fixture()
    def varied_table(self) -> SessionTable:
        return SessionTable.from_sessions(
            make_session(
                start_time=37.0 * i,
                asn=f"AS{i % 5}",
                cdn=f"cdn_{i % 3}",
                join_failed=i % 4 == 0,
            )
            for i in range(101)
        )

    @pytest.mark.parametrize("chunk_rows", [7, 101, 4096])
    def test_csv_chunked_equals_row_wise(self, tmp_path, varied_table,
                                         chunk_rows):
        path = tmp_path / "t.csv"
        write_sessions_csv(varied_table, path)
        self._assert_same(
            read_sessions_csv(path),
            read_sessions_csv(path, chunked=True, chunk_rows=chunk_rows),
        )

    @pytest.mark.parametrize("chunk_rows", [7, 101, 4096])
    def test_jsonl_chunked_equals_row_wise(self, tmp_path, varied_table,
                                           chunk_rows):
        path = tmp_path / "t.jsonl"
        write_sessions_jsonl(varied_table, path)
        self._assert_same(
            read_sessions_jsonl(path),
            read_sessions_jsonl(path, chunked=True, chunk_rows=chunk_rows),
        )

    def test_chunked_preserves_nan_for_failed_joins(self, tmp_path,
                                                    sample_table):
        for writer, reader, name in (
            (write_sessions_csv, read_sessions_csv, "t.csv"),
            (write_sessions_jsonl, read_sessions_jsonl, "t.jsonl"),
        ):
            path = tmp_path / name
            writer(sample_table, path)
            restored = reader(path, chunked=True)
            assert bool(restored.join_failed[1])
            assert math.isnan(restored.join_time_s[1])
            assert math.isnan(restored.bitrate_kbps[1])

    def test_chunked_csv_missing_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("asn,start_time\nAS1,0.0\n")
        with pytest.raises(ValueError, match="missing column"):
            read_sessions_csv(path, chunked=True)

    def test_chunked_csv_ragged_row(self, tmp_path, sample_table):
        path = tmp_path / "bad.csv"
        write_sessions_csv(sample_table, path)
        with path.open("a") as handle:
            handle.write("only,three,fields\n")
        with pytest.raises(ValueError, match="expected .* fields"):
            read_sessions_csv(path, chunked=True)

    def test_chunked_jsonl_invalid_json(self, tmp_path, sample_table):
        path = tmp_path / "bad.jsonl"
        write_sessions_jsonl(sample_table, path)
        with path.open("a") as handle:
            handle.write("{not json\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            read_sessions_jsonl(path, chunked=True)

    def test_chunked_empty_files(self, tmp_path):
        csv_path = tmp_path / "e.csv"
        write_sessions_csv(SessionTable.empty(), csv_path)
        assert len(read_sessions_csv(csv_path, chunked=True)) == 0
        jsonl_path = tmp_path / "e.jsonl"
        jsonl_path.write_text("")
        assert len(read_sessions_jsonl(jsonl_path, chunked=True)) == 0
