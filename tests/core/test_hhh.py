"""Tests for the hierarchical-heavy-hitters baseline."""

import numpy as np
import pytest

from repro.core.aggregation import aggregate_epoch
from repro.core.clusters import ClusterKey
from repro.core.hhh import HHHConfig, find_hierarchical_heavy_hitters
from repro.core.metrics import JOIN_FAILURE
from repro.core.sessions import SessionTable
from tests.conftest import make_session


def agg_from(groups, seed=0):
    rng = np.random.default_rng(seed)
    sessions = []
    for attrs, n, fail_p in groups:
        for _ in range(n):
            merged = {
                "asn": f"AS{rng.integers(0, 4)}",
                "site": f"site_{rng.integers(0, 4)}",
            }
            merged.update(attrs)
            sessions.append(
                make_session(join_failed=bool(rng.random() < fail_p), **merged)
            )
    table = SessionTable.from_sessions(sessions)
    return aggregate_epoch(table, np.arange(len(table)), JOIN_FAILURE)


class TestHHHConfig:
    def test_default_phi(self):
        assert HHHConfig().phi == 0.02

    def test_invalid_phi(self):
        with pytest.raises(ValueError):
            HHHConfig(phi=0.0)
        with pytest.raises(ValueError):
            HHHConfig(phi=1.5)


class TestDetection:
    def test_dominant_cluster_reported_at_coarse_phi(self):
        # With phi above any single (asn/site-refined) slice's share,
        # the bad CDN is pinned without splitting over the varying
        # attributes. (Attributes that never vary — player, browser,
        # ... — ride along at full depth; HHH has no minimality rule,
        # which is the paper's argument against it.)
        agg = agg_from([({"cdn": "bad"}, 1000, 0.5), ({"cdn": "ok"}, 3000, 0.02)])
        hitters = find_hierarchical_heavy_hitters(agg, HHHConfig(phi=0.3))
        assert len(hitters) == 1
        pinned = dict(hitters[0].key.pairs)
        assert pinned.get("cdn") == "bad"
        assert "asn" not in pinned and "site" not in pinned

    def test_fine_phi_reports_descendants(self):
        # With a small phi the per-ASN descendants qualify first and
        # claim the mass — the paper's argument for why plain HHH is
        # not a critical-cluster detector (Section 7).
        agg = agg_from([({"cdn": "bad"}, 1000, 0.5), ({"cdn": "ok"}, 3000, 0.02)])
        hitters = find_hierarchical_heavy_hitters(agg, HHHConfig(phi=0.1))
        assert hitters
        for h in hitters:
            assert dict(h.key.pairs).get("cdn") == "bad"
            assert h.key.depth > 1

    def test_no_problems_no_hitters(self):
        agg = agg_from([({"cdn": "ok"}, 500, 0.0)])
        assert find_hierarchical_heavy_hitters(agg) == []

    def test_discount_prevents_double_reporting(self):
        # One concentrated leaf-ish cause: once the deep cluster is
        # reported, its ancestors' discounted counts drop below phi.
        agg = agg_from(
            [
                ({"cdn": "bad", "asn": "AS_x", "site": "s_x"}, 800, 0.6),
                ({"cdn": "ok"}, 4000, 0.01),
            ],
            seed=1,
        )
        hitters = find_hierarchical_heavy_hitters(agg, HHHConfig(phi=0.3))
        # Every reported cluster must have discounted >= threshold
        total = agg.total_problems
        for h in hitters:
            assert h.discounted_problems >= 0.3 * total

    def test_discounted_never_exceeds_raw(self):
        agg = agg_from(
            [({"cdn": "bad"}, 1000, 0.4), ({"cdn": "ok"}, 2000, 0.05)], seed=2
        )
        for h in find_hierarchical_heavy_hitters(agg, HHHConfig(phi=0.05)):
            assert h.discounted_problems <= h.raw_problems + 1e-9

    def test_lower_phi_reports_more(self):
        agg = agg_from(
            [({"cdn": "bad"}, 1000, 0.4), ({"site": "s_bad"}, 800, 0.3),
             ({"cdn": "ok"}, 3000, 0.03)],
            seed=3,
        )
        few = find_hierarchical_heavy_hitters(agg, HHHConfig(phi=0.3))
        many = find_hierarchical_heavy_hitters(agg, HHHConfig(phi=0.02))
        assert len(many) >= len(few)
