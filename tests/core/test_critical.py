"""Tests for the critical-cluster phase-transition algorithm.

The scenarios mirror the paper's Figures 4 and 5: a single underlying
cause (e.g. one CDN) manifesting as many problem clusters must be
attributed to the one critical cluster; combination causes (CDN x ASN)
must be pinned at the combination, not at either parent.
"""

import numpy as np
import pytest

from repro.core.aggregation import aggregate_epoch
from repro.core.clusters import ClusterKey
from repro.core.critical import find_critical_clusters
from repro.core.metrics import JOIN_FAILURE
from repro.core.problems import ProblemClusterConfig, find_problem_clusters
from repro.core.sessions import SessionTable
from tests.conftest import make_session


def key(**pairs):
    return ClusterKey.from_mapping(pairs)


def build(groups, seed=0):
    """groups: (attrs, n, fail_probability); randomised fill attrs."""
    rng = np.random.default_rng(seed)
    sessions = []
    for attrs, n, fail_p in groups:
        for _ in range(n):
            merged = {
                "asn": f"AS{rng.integers(0, 4)}",
                "cdn": f"cdn_{rng.integers(0, 3)}",
                "site": f"site_{rng.integers(0, 3)}",
            }
            merged.update(attrs)
            sessions.append(
                make_session(join_failed=bool(rng.random() < fail_p), **merged)
            )
    return SessionTable.from_sessions(sessions)


def run(table, **config_kwargs):
    config_kwargs.setdefault("min_sessions", 50)
    config_kwargs.setdefault("min_problems", 3)
    config_kwargs.setdefault("significance_sigmas", 0.0)
    agg = aggregate_epoch(table, np.arange(len(table)), JOIN_FAILURE)
    problems = find_problem_clusters(agg, ProblemClusterConfig(**config_kwargs))
    return find_critical_clusters(problems)


class TestSingleCause:
    def test_bad_cdn_attributed_to_cdn_cluster(self):
        table = build(
            [({"cdn": "cdn_bad"}, 1500, 0.5), ({}, 4500, 0.04)], seed=1
        )
        critical = run(table)
        decoded = critical.decoded()
        assert key(cdn="cdn_bad") in decoded
        best = max(decoded.items(), key=lambda kv: kv[1].attributed_problems)
        assert best[0] == key(cdn="cdn_bad")

    def test_single_cause_dominates_attribution(self):
        table = build(
            [({"cdn": "cdn_bad"}, 1500, 0.5), ({}, 4500, 0.04)], seed=2
        )
        critical = run(table)
        att = critical.decoded()[key(cdn="cdn_bad")]
        # The bad CDN's ~750 failures dominate the epoch's problems.
        assert att.attributed_problems > 500
        assert att.own_stats.ratio > 0.4

    def test_descendants_not_reported_separately(self):
        # Children like (cdn_bad, AS1) are problem clusters but should
        # fold into the cdn_bad critical cluster.
        table = build(
            [({"cdn": "cdn_bad"}, 2000, 0.5), ({}, 6000, 0.04)], seed=3
        )
        decoded = run(table).decoded()
        for k in decoded:
            if "cdn" in k.attributes and k.value_of("cdn") == "cdn_bad":
                assert k == key(cdn="cdn_bad"), f"unexpected deeper critical {k}"


class TestCombinationCause:
    def test_pairwise_cause_pinned_at_combination(self):
        # Only the (cdn_bad, AS_bad) path fails; neither parent alone.
        table = build(
            [
                ({"cdn": "cdn_bad", "asn": "AS_bad"}, 600, 0.6),
                ({"cdn": "cdn_bad"}, 2000, 0.04),
                ({"asn": "AS_bad"}, 2000, 0.04),
                ({}, 4000, 0.04),
            ],
            seed=4,
        )
        decoded = run(table).decoded()
        assert key(cdn="cdn_bad", asn="AS_bad") in decoded
        assert key(cdn="cdn_bad") not in decoded
        assert key(asn="AS_bad") not in decoded

    def test_removal_condition_rejects_parent(self):
        # cdn_bad fails everywhere -> parent is the right grain even
        # though (cdn_bad, AS1) has a high ratio too.
        table = build(
            [({"cdn": "cdn_bad"}, 1500, 0.5), ({}, 4500, 0.03)], seed=5
        )
        decoded = run(table).decoded()
        combos = [k for k in decoded if k.depth >= 2 and "cdn" in k.attributes
                  and k.value_of("cdn") == "cdn_bad"]
        assert combos == []


class TestCoverageAccounting:
    def test_coverage_bounded_by_problem_coverage(self):
        table = build(
            [({"cdn": "cdn_bad"}, 1000, 0.5), ({}, 4000, 0.05)], seed=6
        )
        agg = aggregate_epoch(table, np.arange(len(table)), JOIN_FAILURE)
        problems = find_problem_clusters(
            agg,
            ProblemClusterConfig(
                min_sessions=50, min_problems=3, significance_sigmas=0.0
            ),
        )
        critical = find_critical_clusters(problems)
        assert critical.coverage <= problems.coverage + 1e-9

    def test_attribution_conserves_problem_sessions(self):
        table = build(
            [({"cdn": "cdn_bad"}, 1000, 0.5), ({}, 4000, 0.05)], seed=7
        )
        critical = run(table)
        total_attributed = critical.attributed_problem_sessions
        assert (
            total_attributed + critical.unattributed_problem_sessions
            == pytest.approx(critical.agg.total_problems)
        )

    def test_attributed_sessions_positive(self):
        table = build(
            [({"cdn": "cdn_bad"}, 1000, 0.5), ({}, 4000, 0.05)], seed=8
        )
        for att in run(table).decoded().values():
            assert att.attributed_sessions > 0
            assert att.attributed_problems <= att.attributed_sessions + 1e-9


class TestEdgeCases:
    def test_no_problems_yields_no_criticals(self):
        table = build([({}, 2000, 0.0)], seed=9)
        critical = run(table)
        assert critical.n_clusters == 0
        assert critical.coverage == 0.0

    def test_uniform_problems_yield_no_criticals(self):
        # Failures evenly spread: no cluster is 1.5x the global rate.
        table = build([({}, 8000, 0.1)], seed=10)
        critical = run(table)
        assert critical.n_clusters == 0

    def test_empty_epoch(self):
        table = build([({}, 10, 0.0)], seed=11)
        agg = aggregate_epoch(table, np.array([], dtype=np.int64), JOIN_FAILURE)
        problems = find_problem_clusters(agg, ProblemClusterConfig(min_sessions=5))
        critical = find_critical_clusters(problems)
        assert critical.n_clusters == 0

    def test_critical_clusters_are_problem_clusters(self, failure_table):
        agg = aggregate_epoch(
            failure_table, np.arange(len(failure_table)), JOIN_FAILURE
        )
        problems = find_problem_clusters(
            agg,
            ProblemClusterConfig(
                min_sessions=50, min_problems=3, significance_sigmas=0.0
            ),
        )
        critical = find_critical_clusters(problems)
        assert critical.n_clusters >= 1
        for mask, packed, _ in critical.iter_clusters():
            assert problems.contains(mask, packed)

    def test_two_independent_causes_both_found(self):
        table = build(
            [
                ({"cdn": "cdn_bad"}, 1000, 0.5),
                ({"site": "site_bad"}, 1000, 0.45),
                ({}, 6000, 0.03),
            ],
            seed=12,
        )
        decoded = run(table).decoded()
        assert key(cdn="cdn_bad") in decoded
        assert key(site="site_bad") in decoded
