"""Tests for the four quality metrics and their thresholds."""

import pickle

import numpy as np
import pytest

from repro.core.metrics import (
    ALL_METRICS,
    BITRATE,
    BUFFERING_RATIO,
    JOIN_FAILURE,
    JOIN_TIME,
    MetricThresholds,
    QualityMetric,
    metric_by_name,
    register_metric,
    unregister_metric,
)
from repro.core.sessions import SessionTable
from tests.conftest import make_session


@pytest.fixture()
def mixed_table() -> SessionTable:
    return SessionTable.from_sessions(
        [
            # 0: healthy
            make_session(duration_s=100, buffering_s=1, join_time_s=2,
                         bitrate_kbps=2000),
            # 1: heavy buffering
            make_session(duration_s=100, buffering_s=10, join_time_s=2,
                         bitrate_kbps=2000),
            # 2: slow join
            make_session(duration_s=100, buffering_s=0, join_time_s=15,
                         bitrate_kbps=2000),
            # 3: low bitrate
            make_session(duration_s=100, buffering_s=0, join_time_s=2,
                         bitrate_kbps=500),
            # 4: join failure
            make_session(join_failed=True),
        ]
    )


class TestProblemClassification:
    def test_buffering_ratio_threshold(self, mixed_table):
        problems = BUFFERING_RATIO.problem_mask(mixed_table)
        assert problems.tolist() == [False, True, False, False, False]

    def test_join_time_threshold(self, mixed_table):
        problems = JOIN_TIME.problem_mask(mixed_table)
        assert problems.tolist() == [False, False, True, False, False]

    def test_bitrate_threshold(self, mixed_table):
        problems = BITRATE.problem_mask(mixed_table)
        assert problems.tolist() == [False, False, False, True, False]

    def test_join_failure_binary(self, mixed_table):
        problems = JOIN_FAILURE.problem_mask(mixed_table)
        assert problems.tolist() == [False, False, False, False, True]

    def test_boundary_values_are_not_problems(self):
        # Thresholds are strict inequalities per the paper's wording
        # ("greater than 5%", "greater than 10 seconds", "less than
        # 700 kbps").
        table = SessionTable.from_sessions(
            [
                make_session(duration_s=100, buffering_s=5.0),
                make_session(join_time_s=10.0),
                make_session(bitrate_kbps=700.0),
            ]
        )
        assert not BUFFERING_RATIO.problem_mask(table)[0]
        assert not JOIN_TIME.problem_mask(table)[1]
        assert not BITRATE.problem_mask(table)[2]

    def test_custom_thresholds(self, mixed_table):
        strict = MetricThresholds(buffering_ratio=0.005)
        problems = BUFFERING_RATIO.problem_mask(mixed_table, strict)
        assert problems.tolist() == [True, True, False, False, False]


class TestValidity:
    def test_failed_sessions_invalid_for_playback_metrics(self, mixed_table):
        for metric in (BUFFERING_RATIO, JOIN_TIME, BITRATE):
            assert not metric.valid_mask(mixed_table)[4]

    def test_all_sessions_valid_for_join_failure(self, mixed_table):
        assert JOIN_FAILURE.valid_mask(mixed_table).all()

    def test_problem_mask_never_true_for_invalid(self, mixed_table):
        for metric in ALL_METRICS:
            problems = metric.problem_mask(mixed_table)
            valid = metric.valid_mask(mixed_table)
            assert not np.any(problems & ~valid)


class TestValues:
    def test_buffering_values_nan_for_failed(self, mixed_table):
        values = BUFFERING_RATIO.values(mixed_table)
        assert np.isnan(values[4])
        assert values[1] == pytest.approx(0.1)

    def test_join_failure_values_are_indicator(self, mixed_table):
        values = JOIN_FAILURE.values(mixed_table)
        assert values.tolist() == [0, 0, 0, 0, 1]


class TestThresholds:
    def test_defaults_match_paper(self):
        th = MetricThresholds()
        assert th.buffering_ratio == 0.05
        assert th.join_time_s == 10.0
        assert th.bitrate_kbps == 700.0

    def test_scaled(self):
        th = MetricThresholds().scaled(2.0)
        assert th.buffering_ratio == pytest.approx(0.10)
        assert th.join_time_s == pytest.approx(20.0)
        assert th.bitrate_kbps == pytest.approx(1400.0)

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            MetricThresholds().scaled(0.0)


class TestLookup:
    def test_by_library_name(self):
        assert metric_by_name("buffering_ratio") is BUFFERING_RATIO

    def test_by_paper_name(self):
        assert metric_by_name("BufRatio") is BUFFERING_RATIO
        assert metric_by_name("JoinFailure") is JOIN_FAILURE

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown metric"):
            metric_by_name("latency")

    def test_all_metrics_order(self):
        names = [m.name for m in ALL_METRICS]
        assert names == ["buffering_ratio", "bitrate", "join_time", "join_failure"]


def make_custom_metric(name: str = "long_buffering") -> QualityMetric:
    return QualityMetric(
        name=name,
        paper_name=f"{name}_paper",
        higher_is_worse=True,
        _values=lambda t: t.buffering_s,
        _valid=lambda t: ~t.join_failed,
        _problem=lambda t, th: t.buffering_s > 5.0,
    )


class TestRegistry:
    def test_builtin_metrics_pickle_by_name(self):
        for metric in ALL_METRICS:
            clone = pickle.loads(pickle.dumps(metric))
            assert clone is metric

    def test_unregistered_metric_refuses_to_pickle(self):
        metric = make_custom_metric("unregistered_metric")
        with pytest.raises(TypeError, match="register_metric"):
            pickle.dumps(metric)

    def test_registered_metric_pickles_and_rehydrates(self):
        metric = register_metric(make_custom_metric())
        try:
            clone = pickle.loads(pickle.dumps(metric))
            assert clone is metric
            assert metric_by_name("long_buffering") is metric
            assert metric_by_name("long_buffering_paper") is metric
        finally:
            unregister_metric("long_buffering")

    def test_register_refuses_duplicate_without_overwrite(self):
        first = register_metric(make_custom_metric())
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_metric(make_custom_metric())
            replacement = register_metric(make_custom_metric(), overwrite=True)
            assert metric_by_name("long_buffering") is replacement
            assert replacement is not first
        finally:
            unregister_metric("long_buffering")

    def test_register_never_shadows_builtins(self):
        clash = make_custom_metric("buffering_ratio")
        with pytest.raises(ValueError, match="built-in"):
            register_metric(clash, overwrite=True)

    def test_unregister_builtin_rejected(self):
        with pytest.raises(ValueError, match="built-in"):
            unregister_metric("join_failure")

    def test_unregister_absent_is_noop(self):
        unregister_metric("never_registered")

    def test_unregister_removes_both_aliases(self):
        register_metric(make_custom_metric())
        unregister_metric("long_buffering")
        with pytest.raises(KeyError):
            metric_by_name("long_buffering")
        with pytest.raises(KeyError):
            metric_by_name("long_buffering_paper")

    def test_registered_metric_runs_with_workers(self, mixed_table):
        """The whole point: custom metrics survive the worker fan-out."""
        from repro.core.pipeline import AnalysisConfig, analyze_trace

        metric = register_metric(make_custom_metric())
        try:
            config = AnalysisConfig(metrics=(metric,))
            serial = analyze_trace(mixed_table, config=config)
            parallel = analyze_trace(mixed_table, config=config, workers=2)
            assert serial.metric_names == parallel.metric_names
            want = serial[metric.name]
            got = parallel[metric.name]
            assert len(want.epochs) == len(got.epochs)
            for a, b in zip(want.epochs, got.epochs):
                assert a.problem_clusters == b.problem_clusters
                assert a.critical_clusters == b.critical_clusters
        finally:
            unregister_metric("long_buffering")
