"""Shared-memory transport: pack lifecycle, payload equivalence, no leaks."""

import pickle

import numpy as np
import pytest

from repro.core.index import TraceClusterIndex
from repro.core.metrics import ALL_METRICS, MetricThresholds
from repro.core.pipeline import AnalysisConfig, analyze_trace
from repro.core.shm import (
    PickleWorkerPayload,
    SharedArrayPack,
    ShmWorkerPayload,
    make_worker_payload,
    payload_pickled_bytes,
    resolve_transport,
    shared_memory_available,
)
from tests.conftest import make_session
from repro.core.sessions import SessionTable

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no POSIX shared memory"
)


@pytest.fixture(scope="module")
def mixed_epoch_table() -> SessionTable:
    """Three epochs, varied attributes, every metric exercised."""
    rng = np.random.default_rng(11)
    sessions = []
    for epoch in range(3):
        for i in range(300):
            failed = bool(rng.random() < (0.3 if i % 5 == 0 else 0.05))
            sessions.append(
                make_session(
                    start_time=epoch * 3600.0 + float(rng.uniform(0, 3600)),
                    buffering_s=float(rng.uniform(0, 60)),
                    join_time_s=float(rng.uniform(0.5, 12)),
                    bitrate_kbps=float(rng.uniform(300, 4000)),
                    join_failed=failed,
                    cdn=f"cdn_{i % 3}",
                    asn=f"AS{i % 4}",
                    site=f"site_{i % 2}",
                )
            )
    return SessionTable.from_sessions(sessions)


def segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    handle.close()
    return True


SAMPLE_ARRAYS = {
    "a": np.arange(17, dtype=np.int64),
    ("b", 2): np.linspace(0.0, 1.0, 5, dtype=np.float64),
    "flags": np.array([True, False, True]),
    "empty": np.empty(0, dtype=np.float32),
    "matrix": np.arange(12, dtype=np.int32).reshape(3, 4),
}


class TestSharedArrayPack:
    def test_roundtrip_through_attach(self):
        pack = SharedArrayPack.create(SAMPLE_ARRAYS)
        try:
            attached = pack.manifest.attach()
            for key, arr in SAMPLE_ARRAYS.items():
                got = attached[key]
                assert got.dtype == arr.dtype
                np.testing.assert_array_equal(got, arr)
                assert not got.flags.writeable
            attached.close()
        finally:
            pack.release()

    def test_entries_are_aligned(self):
        pack = SharedArrayPack.create(SAMPLE_ARRAYS)
        try:
            for entry in pack.manifest.entries:
                assert entry.offset % 64 == 0
        finally:
            pack.release()

    def test_release_unlinks_segment(self):
        pack = SharedArrayPack.create({"x": np.arange(4)})
        name = pack.manifest.segment
        assert segment_exists(name)
        pack.release()
        assert not segment_exists(name)

    def test_release_is_idempotent(self):
        pack = SharedArrayPack.create({"x": np.arange(4)})
        pack.release()
        pack.unlink()  # second unlink must not raise

    def test_manifest_is_small_and_picklable(self):
        big = {"payload": np.zeros(1_000_000, dtype=np.float64)}
        pack = SharedArrayPack.create(big)
        try:
            wire = pickle.dumps(pack.manifest, protocol=pickle.HIGHEST_PROTOCOL)
            assert len(wire) < 1_000  # 8 MB of data, <1 kB on the wire
            manifest = pickle.loads(wire)
            attached = manifest.attach()
            np.testing.assert_array_equal(attached["payload"], big["payload"])
            attached.close()
        finally:
            pack.release()

    def test_empty_mapping_still_valid(self):
        pack = SharedArrayPack.create({})
        try:
            attached = pack.manifest.attach()
            assert attached.arrays == {}
            attached.close()
        finally:
            pack.release()


class TestResolveTransport:
    def test_auto_and_none_pick_shm_when_available(self):
        assert resolve_transport(None) == "shm"
        assert resolve_transport("auto") == "shm"

    def test_explicit_values_pass_through(self):
        assert resolve_transport("shm") == "shm"
        assert resolve_transport("pickle") == "pickle"

    def test_unknown_value_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            resolve_transport("carrier-pigeon")


class TestWorkerPayloads:
    def test_make_worker_payload_respects_transport(self, mixed_epoch_table):
        shm_payload = make_worker_payload(mixed_epoch_table, transport="shm")
        try:
            assert isinstance(shm_payload, ShmWorkerPayload)
        finally:
            shm_payload.release()
        pickle_payload = make_worker_payload(mixed_epoch_table, transport="pickle")
        assert isinstance(pickle_payload, PickleWorkerPayload)

    def test_restored_table_matches(self, mixed_epoch_table):
        payload = make_worker_payload(mixed_epoch_table, transport="shm")
        try:
            clone = pickle.loads(
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            )
            table, index = clone.restore()
            assert index is None
            assert table.schema == mixed_epoch_table.schema
            assert table.vocabs == mixed_epoch_table.vocabs
            np.testing.assert_array_equal(table.codes, mixed_epoch_table.codes)
            np.testing.assert_array_equal(
                table.start_time, mixed_epoch_table.start_time
            )
            np.testing.assert_array_equal(
                table.packed_keys(), mixed_epoch_table.packed_keys()
            )
            clone.release()
        finally:
            payload.release()

    def test_restored_index_matches_aggregates(self, mixed_epoch_table):
        index = TraceClusterIndex.build(mixed_epoch_table)
        config = AnalysisConfig(metrics=ALL_METRICS)
        index.warm_metric_masks(config.metrics, config.thresholds)
        payload = make_worker_payload(mixed_epoch_table, index, transport="shm")
        try:
            clone = pickle.loads(
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            )
            table, restored = clone.restore()
            assert restored is not None
            rows = np.arange(len(mixed_epoch_table))
            want_view = index.epoch_view(rows)
            got_view = restored.epoch_view(rows)
            for metric in config.metrics:
                want = want_view.aggregate(metric, thresholds=config.thresholds)
                got = got_view.aggregate(metric, thresholds=config.thresholds)
                assert set(want.per_mask) == set(got.per_mask)
                assert want.total_sessions == got.total_sessions
                assert want.total_problems == got.total_problems
                for mask, want_agg in want.per_mask.items():
                    got_agg = got.per_mask[mask]
                    np.testing.assert_array_equal(want_agg.keys, got_agg.keys)
                    np.testing.assert_array_equal(
                        want_agg.sessions, got_agg.sessions
                    )
                    np.testing.assert_array_equal(
                        want_agg.problems, got_agg.problems
                    )
            clone.release()
        finally:
            payload.release()

    def test_shm_payload_pickles_metadata_only(self, mixed_epoch_table):
        index = TraceClusterIndex.build(mixed_epoch_table)
        shm_payload = make_worker_payload(mixed_epoch_table, index, transport="shm")
        try:
            shm_bytes = payload_pickled_bytes(shm_payload)
            pickle_bytes = payload_pickled_bytes(
                make_worker_payload(mixed_epoch_table, index, transport="pickle")
            )
            # metadata only: far below the full-array pickle, and it
            # must not scale with the number of sessions
            assert shm_bytes < pickle_bytes / 2
        finally:
            shm_payload.release()

    def test_release_removes_segment(self, mixed_epoch_table):
        payload = make_worker_payload(mixed_epoch_table, transport="shm")
        name = payload.manifest.segment
        assert segment_exists(name)
        payload.release()
        assert not segment_exists(name)


class TestAnalyzeTraceTransport:
    @pytest.fixture(scope="class")
    def serial_reference(self, mixed_epoch_table):
        return analyze_trace(
            mixed_epoch_table, config=AnalysisConfig(metrics=ALL_METRICS)
        )

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_parallel_matches_serial(
        self, mixed_epoch_table, serial_reference, transport
    ):
        from tests.property.test_parallel_equivalence import assert_equal_analyses

        parallel = analyze_trace(
            mixed_epoch_table,
            config=AnalysisConfig(metrics=ALL_METRICS),
            workers=2,
            transport=transport,
        )
        assert_equal_analyses(serial_reference, parallel)

    def test_no_segments_leak_across_parallel_run(self, mixed_epoch_table):
        # Counting /dev/shm entries is racy across a parallel test
        # suite; instead record the segments this run creates and
        # assert each is gone afterwards.
        payload_names = []
        original_init = ShmWorkerPayload.__init__

        def recording_init(self, table, index):
            original_init(self, table, index)
            payload_names.append(self.manifest.segment)

        ShmWorkerPayload.__init__ = recording_init
        try:
            analyze_trace(
                mixed_epoch_table,
                config=AnalysisConfig(metrics=ALL_METRICS),
                workers=2,
                transport="shm",
            )
        finally:
            ShmWorkerPayload.__init__ = original_init
        assert payload_names
        for name in payload_names:
            assert not segment_exists(name)


class TestLeakSafetyNet:
    def test_atexit_net_releases_stray_packs(self, mixed_epoch_table):
        from repro.core.shm import _LIVE_PACKS, _release_stray_packs

        payload = make_worker_payload(mixed_epoch_table, transport="shm")
        name = payload.manifest.segment
        assert payload._pack in _LIVE_PACKS
        assert segment_exists(name)
        # Simulate a process exiting without release(): the atexit hook
        # must unlink anything still registered.
        _release_stray_packs()
        assert not segment_exists(name)
        # Idempotent: a second pass (or a normal release afterwards)
        # must not raise on the already-unlinked segment.
        _release_stray_packs()
        payload.release()

    def test_release_unregisters_from_net(self, mixed_epoch_table):
        from repro.core.shm import _LIVE_PACKS

        payload = make_worker_payload(mixed_epoch_table, transport="shm")
        pack = payload._pack
        payload.release()
        assert pack not in _LIVE_PACKS

    def test_payload_context_manager_releases(self, mixed_epoch_table):
        with make_worker_payload(mixed_epoch_table, transport="shm") as payload:
            name = payload.manifest.segment
            assert segment_exists(name)
        assert not segment_exists(name)

    def test_payload_context_manager_releases_on_error(self, mixed_epoch_table):
        with pytest.raises(RuntimeError):
            with make_worker_payload(
                mixed_epoch_table, transport="shm"
            ) as payload:
                name = payload.manifest.segment
                raise RuntimeError("boom")
        assert not segment_exists(name)
