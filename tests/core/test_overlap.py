"""Tests for cross-metric Jaccard overlap (Table 2 machinery)."""

import pytest

from repro.core.overlap import (
    jaccard_similarity,
    top_critical_clusters,
    top_k_critical_overlap,
)


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard_similarity({1, 2}, {1, 2}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard_similarity({1}, {2}) == 0.0

    def test_partial_overlap(self):
        assert jaccard_similarity({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard_similarity([], []) == 0.0

    def test_one_empty(self):
        assert jaccard_similarity({1}, set()) == 0.0

    def test_accepts_iterables(self):
        assert jaccard_similarity([1, 1, 2], (2, 3)) == pytest.approx(1 / 3)


class TestTopCriticalClusters:
    def test_ranked_by_attribution(self, tiny_analysis):
        ma = tiny_analysis["join_failure"]
        top = top_critical_clusters(ma, k=5)
        totals = ma.critical_attribution_totals()
        scores = [totals[k] for k in top]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits_result(self, tiny_analysis):
        ma = tiny_analysis["join_failure"]
        assert len(top_critical_clusters(ma, k=3)) <= 3

    def test_invalid_k(self, tiny_analysis):
        with pytest.raises(ValueError):
            top_critical_clusters(tiny_analysis["join_failure"], k=0)


class TestOverlapMatrix:
    def test_all_pairs_present(self, tiny_analysis):
        overlaps = top_k_critical_overlap(tiny_analysis.metrics, k=50)
        n = len(tiny_analysis.metrics)
        assert len(overlaps) == n * (n - 1) // 2

    def test_values_in_unit_interval(self, tiny_analysis):
        for value in top_k_critical_overlap(tiny_analysis.metrics, k=50).values():
            assert 0.0 <= value <= 1.0

    def test_metrics_not_identical(self, tiny_analysis):
        # The planted events are metric-specific, so the critical sets
        # must not coincide (paper Table 2's core finding).
        for value in top_k_critical_overlap(tiny_analysis.metrics, k=100).values():
            assert value < 0.9
