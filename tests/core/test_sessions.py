"""Tests for Session records and the columnar SessionTable."""

import numpy as np
import pytest

from repro.core.attributes import AttributeSchema
from repro.core.sessions import Session, SessionTable
from tests.conftest import make_session


class TestSession:
    def test_buffering_ratio(self):
        s = make_session(duration_s=100.0, buffering_s=5.0)
        assert s.buffering_ratio == pytest.approx(0.05)

    def test_buffering_ratio_zero_duration(self):
        s = Session(
            attrs=make_session().attrs,
            start_time=0.0,
            duration_s=0.0,
            buffering_s=0.0,
            join_time_s=1.0,
            bitrate_kbps=1000.0,
            join_failed=False,
        )
        assert s.buffering_ratio == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="negative duration"):
            make_session(duration_s=-1.0)

    def test_negative_buffering_rejected(self):
        with pytest.raises(ValueError, match="negative buffering"):
            make_session(buffering_s=-0.1)

    def test_buffering_exceeding_duration_rejected(self):
        with pytest.raises(ValueError, match="exceeds duration"):
            make_session(duration_s=10.0, buffering_s=11.0)

    def test_failed_session_has_nan_metrics(self):
        s = make_session(join_failed=True)
        assert np.isnan(s.join_time_s)
        assert np.isnan(s.bitrate_kbps)


class TestSessionTableConstruction:
    def test_from_sessions_round_trip(self):
        sessions = [
            make_session(cdn="cdn_x", asn="AS9"),
            make_session(cdn="cdn_y", join_failed=True),
        ]
        table = SessionTable.from_sessions(sessions)
        back = list(table.rows())
        assert len(back) == 2
        assert back[0].attrs["cdn"] == "cdn_x"
        assert back[0].attrs["asn"] == "AS9"
        assert back[1].join_failed is True
        assert np.isnan(back[1].join_time_s)

    def test_vocab_codes_are_dense(self):
        sessions = [make_session(cdn=f"cdn_{i % 3}") for i in range(9)]
        table = SessionTable.from_sessions(sessions)
        cdn_col = table.schema.index("cdn")
        assert sorted(table.vocabs[cdn_col]) == ["cdn_0", "cdn_1", "cdn_2"]
        assert set(table.codes[:, cdn_col]) == {0, 1, 2}

    def test_missing_attribute_rejected(self):
        bad = Session(
            attrs={"asn": "AS1"},  # missing the rest
            start_time=0.0,
            duration_s=1.0,
            buffering_s=0.0,
            join_time_s=1.0,
            bitrate_kbps=1.0,
            join_failed=False,
        )
        with pytest.raises(ValueError, match="missing attribute"):
            SessionTable.from_sessions([bad])

    def test_empty_table(self):
        table = SessionTable.empty()
        assert len(table) == 0
        assert table.n_attrs == 7

    def test_column_shape_validation(self):
        table = SessionTable.from_sessions([make_session()])
        with pytest.raises(ValueError, match="column"):
            SessionTable(
                schema=table.schema,
                vocabs=table.vocabs,
                codes=table.codes,
                start_time=np.zeros(2),  # wrong length
                duration_s=table.duration_s,
                buffering_s=table.buffering_s,
                join_time_s=table.join_time_s,
                bitrate_kbps=table.bitrate_kbps,
                join_failed=table.join_failed,
            )

    def test_codes_beyond_vocab_rejected(self):
        table = SessionTable.from_sessions([make_session()])
        bad_codes = table.codes.copy()
        bad_codes[0, 0] = 99
        with pytest.raises(ValueError, match="beyond vocab"):
            SessionTable(
                schema=table.schema,
                vocabs=table.vocabs,
                codes=bad_codes,
                start_time=table.start_time,
                duration_s=table.duration_s,
                buffering_s=table.buffering_s,
                join_time_s=table.join_time_s,
                bitrate_kbps=table.bitrate_kbps,
                join_failed=table.join_failed,
            )

    def test_concat_merges_vocabs(self):
        t1 = SessionTable.from_sessions([make_session(cdn="a"), make_session(cdn="b")])
        t2 = SessionTable.from_sessions([make_session(cdn="b"), make_session(cdn="c")])
        merged = SessionTable.concat([t1, t2])
        assert len(merged) == 4
        cdns = [s.attrs["cdn"] for s in merged.rows()]
        assert cdns == ["a", "b", "b", "c"]

    def test_concat_schema_mismatch_rejected(self):
        t1 = SessionTable.from_sessions([make_session()])
        other = SessionTable.empty(AttributeSchema(names=("x", "y")))
        with pytest.raises(ValueError, match="different schemas"):
            SessionTable.concat([t1, other])

    def test_concat_empty_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SessionTable.concat([])


class TestSessionTableAccess:
    def test_select_boolean_mask(self):
        table = SessionTable.from_sessions(
            [make_session(asn=f"AS{i}") for i in range(5)]
        )
        sub = table.select(table.codes[:, 0] >= 3)
        assert len(sub) == 2
        # vocabs carry over unchanged (codes stay valid)
        assert sub.vocabs == table.vocabs

    def test_buffering_ratio_vector(self):
        table = SessionTable.from_sessions(
            [
                make_session(duration_s=100.0, buffering_s=10.0),
                make_session(join_failed=True),
            ]
        )
        ratios = table.buffering_ratio
        assert ratios[0] == pytest.approx(0.1)
        assert ratios[1] == 0.0  # failed session: duration 0 -> ratio 0

    def test_attr_labels(self):
        table = SessionTable.from_sessions([make_session(browser="opera")])
        assert table.attr_labels("browser") == ["opera"]


class TestKeyPacking:
    def test_bit_widths_cover_vocab(self):
        sessions = [make_session(asn=f"AS{i}") for i in range(10)]
        table = SessionTable.from_sessions(sessions)
        widths = table.bit_widths()
        asn_col = table.schema.index("asn")
        assert widths[asn_col] >= 4  # 10 values need 4 bits

    def test_packed_keys_unique_per_combination(self):
        sessions = [
            make_session(asn=f"AS{i % 4}", cdn=f"c{i % 3}") for i in range(24)
        ]
        table = SessionTable.from_sessions(sessions)
        packed = table.packed_keys()
        # 12 distinct (asn, cdn) combos; other attrs constant
        assert len(np.unique(packed)) == 12

    def test_field_mask_projection(self):
        sessions = [make_session(asn=f"AS{i % 3}", cdn=f"c{i % 2}") for i in range(6)]
        table = SessionTable.from_sessions(sessions)
        packed = table.packed_keys()
        fm = table.field_masks()
        asn_mask = 1 << table.schema.index("asn")
        proj = packed & fm[asn_mask]
        assert len(np.unique(proj)) == 3  # only ASN varies after projection

    def test_unpack_key_round_trip(self):
        table = SessionTable.from_sessions(
            [make_session(asn="AS7", cdn="cdn_q", site="s3")]
        )
        packed = int(table.packed_keys()[0])
        mask = table.schema.mask_of(["asn", "site"])
        pairs = table.unpack_key(mask, packed)
        assert pairs == (("asn", "AS7"), ("site", "s3"))

    def test_unpack_full_mask(self):
        table = SessionTable.from_sessions([make_session()])
        packed = int(table.packed_keys()[0])
        pairs = dict(table.unpack_key(table.schema.full_mask, packed))
        assert pairs == dict(make_session().attrs)
