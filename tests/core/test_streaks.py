"""Tests for prevalence and persistence (Figure 6 semantics)."""

import numpy as np
import pytest

from repro.core.streaks import (
    ClusterTimeline,
    Streak,
    build_timelines,
    max_persistence_values,
    median_persistence_values,
    persistence_streaks,
    prevalence,
    prevalence_values,
)


def timeline(epochs, total):
    return ClusterTimeline(key="c", epochs=np.array(epochs), n_epochs_total=total)


class TestStreak:
    def test_end(self):
        assert Streak(start=2, length=3).end == 5

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            Streak(start=0, length=0)


class TestClusterTimeline:
    def test_prevalence(self):
        # Figure 6: "ASN1, CDN1" appears in 4 of 6 epochs -> 0.67
        tl = timeline([0, 1, 3, 4], 6)
        assert tl.prevalence == pytest.approx(4 / 6)

    def test_prevalence_empty(self):
        assert timeline([], 6).prevalence == 0.0

    def test_streak_coalescing(self):
        # Figure 6: occurrences {0,1} and {3,4} coalesce to two streaks
        tl = timeline([0, 1, 3, 4], 6)
        assert tl.streaks() == [Streak(0, 2), Streak(3, 2)]

    def test_median_and_max_persistence(self):
        tl = timeline([0, 1, 3, 4, 5, 6], 10)  # streaks of 2 and 4
        assert tl.median_persistence == pytest.approx(3.0)
        assert tl.max_persistence == 4

    def test_figure6_asn2_example(self):
        # "ASN2" appears in 4 consecutive epochs: max persistence 4.
        tl = timeline([2, 3, 4, 5], 6)
        assert tl.max_persistence == 4
        assert tl.median_persistence == 4.0

    def test_single_occurrence(self):
        tl = timeline([3], 6)
        assert tl.streaks() == [Streak(3, 1)]
        assert tl.max_persistence == 1

    def test_duplicates_deduplicated(self):
        tl = timeline([2, 2, 3], 6)
        assert tl.n_occurrences == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            timeline([7], 6)
        with pytest.raises(ValueError):
            timeline([-1], 6)

    def test_no_occurrences_properties(self):
        tl = timeline([], 6)
        assert tl.streaks() == []
        assert tl.median_persistence == 0.0
        assert tl.max_persistence == 0


class TestBuildTimelines:
    def test_inversion(self):
        per_epoch = [{"a"}, {"a", "b"}, set(), {"b"}]
        timelines = build_timelines(per_epoch)
        assert timelines["a"].epochs.tolist() == [0, 1]
        assert timelines["b"].epochs.tolist() == [1, 3]
        assert timelines["a"].n_epochs_total == 4

    def test_explicit_n_epochs(self):
        timelines = build_timelines([{"a"}], n_epochs=10)
        assert timelines["a"].prevalence == pytest.approx(0.1)

    def test_n_epochs_too_small_rejected(self):
        with pytest.raises(ValueError):
            build_timelines([{"a"}, {"a"}], n_epochs=1)

    def test_empty(self):
        assert build_timelines([]) == {}


class TestConvenienceExtractors:
    @pytest.fixture()
    def timelines(self):
        return build_timelines([{"a", "b"}, {"a"}, {"a", "c"}, set()])

    def test_prevalence_map(self, timelines):
        p = prevalence(timelines)
        assert p["a"] == pytest.approx(0.75)
        assert p["b"] == pytest.approx(0.25)

    def test_persistence_streaks_map(self, timelines):
        s = persistence_streaks(timelines)
        assert s["a"] == [Streak(0, 3)]
        assert s["c"] == [Streak(2, 1)]

    def test_value_extractors_align(self, timelines):
        assert prevalence_values(timelines).shape == (3,)
        assert median_persistence_values(timelines).shape == (3,)
        assert max_persistence_values(timelines).shape == (3,)
        assert max_persistence_values(timelines).max() == 3
