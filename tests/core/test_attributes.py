"""Tests for the attribute schema and mask utilities."""

import pytest

from repro.core.attributes import (
    AttributeSchema,
    DEFAULT_ATTRIBUTES,
    DEFAULT_SCHEMA,
    iter_submasks,
    iter_supermasks,
    popcount,
)


class TestAttributeSchema:
    def test_default_has_papers_seven_attributes(self):
        assert len(DEFAULT_SCHEMA) == 7
        assert DEFAULT_SCHEMA.names == DEFAULT_ATTRIBUTES
        assert "asn" in DEFAULT_SCHEMA
        assert "cdn" in DEFAULT_SCHEMA
        assert "connection_type" in DEFAULT_SCHEMA

    def test_index_positions(self):
        for i, name in enumerate(DEFAULT_SCHEMA.names):
            assert DEFAULT_SCHEMA.index(name) == i

    def test_index_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown attribute"):
            DEFAULT_SCHEMA.index("geography")

    def test_contains(self):
        assert "site" in DEFAULT_SCHEMA
        assert "nope" not in DEFAULT_SCHEMA

    def test_iteration_order(self):
        assert tuple(DEFAULT_SCHEMA) == DEFAULT_ATTRIBUTES

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            AttributeSchema(names=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AttributeSchema(names=("a", "b", "a"))

    def test_too_many_attributes_rejected(self):
        names = tuple(f"attr{i}" for i in range(17))
        with pytest.raises(ValueError, match="at most 16"):
            AttributeSchema(names=names)

    def test_custom_schema(self):
        schema = AttributeSchema(names=("x", "y", "z"))
        assert len(schema) == 3
        assert schema.full_mask == 0b111

    def test_mask_of_round_trips_names_of(self):
        mask = DEFAULT_SCHEMA.mask_of(["cdn", "asn"])
        assert DEFAULT_SCHEMA.names_of(mask) == ("asn", "cdn")

    def test_mask_of_empty(self):
        assert DEFAULT_SCHEMA.mask_of([]) == 0

    def test_full_mask(self):
        assert DEFAULT_SCHEMA.full_mask == (1 << 7) - 1
        assert DEFAULT_SCHEMA.names_of(DEFAULT_SCHEMA.full_mask) == DEFAULT_ATTRIBUTES

    def test_validate_mask_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            DEFAULT_SCHEMA.validate_mask(1 << 7)
        with pytest.raises(ValueError, match="out of range"):
            DEFAULT_SCHEMA.validate_mask(-1)


class TestMaskIteration:
    def test_submasks_of_simple_mask(self):
        assert set(iter_submasks(0b101)) == {0b100, 0b001}

    def test_submasks_exclude_self_and_empty(self):
        subs = set(iter_submasks(0b111))
        assert 0b111 not in subs
        assert 0 not in subs
        assert len(subs) == 6

    def test_submasks_of_singleton_is_empty(self):
        assert list(iter_submasks(0b010)) == []

    def test_submask_count_matches_formula(self):
        mask = 0b11011
        assert len(list(iter_submasks(mask))) == 2 ** popcount(mask) - 2

    def test_supermasks_within_full(self):
        sups = set(iter_supermasks(0b001, 0b111))
        assert sups == {0b011, 0b101, 0b111}

    def test_supermasks_of_full_is_empty(self):
        assert list(iter_supermasks(0b111, 0b111)) == []

    def test_supermasks_are_strict_supersets(self):
        for sup in iter_supermasks(0b0101, 0b1111):
            assert sup & 0b0101 == 0b0101
            assert sup != 0b0101

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 7) - 1) == 7
