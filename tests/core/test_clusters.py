"""Tests for ClusterKey and the cluster lattice/DAG."""

import networkx as nx
import pytest

from repro.core.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.core.clusters import ClusterKey, ClusterLattice, attribute_signature


def key(**pairs: str) -> ClusterKey:
    return ClusterKey.from_mapping(pairs)


class TestClusterKey:
    def test_pairs_canonical_schema_order(self):
        k = key(cdn="c1", asn="a1")
        assert k.pairs == (("asn", "a1"), ("cdn", "c1"))

    def test_equality_ignores_construction_order(self):
        assert key(cdn="c1", asn="a1") == key(asn="a1", cdn="c1")
        assert hash(key(cdn="c1", asn="a1")) == hash(key(asn="a1", cdn="c1"))

    def test_unknown_attribute_rejected(self):
        with pytest.raises(KeyError, match="not in schema"):
            key(geography="us")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ClusterKey((("asn", "a1"), ("asn", "a2")))

    def test_root(self):
        root = ClusterKey.root()
        assert root.depth == 0
        assert root.label() == "[root]"

    def test_depth_and_attributes(self):
        k = key(site="s1", cdn="c1", asn="a1")
        assert k.depth == 3
        assert k.attributes == ("asn", "cdn", "site")

    def test_value_of(self):
        k = key(cdn="c1")
        assert k.value_of("cdn") == "c1"
        with pytest.raises(KeyError):
            k.value_of("asn")

    def test_mask(self):
        k = key(asn="a1", site="s1")
        expected = DEFAULT_SCHEMA.mask_of(["asn", "site"])
        assert k.mask() == expected

    def test_ancestor_relation(self):
        parent = key(asn="a1")
        child = key(asn="a1", cdn="c1")
        assert parent.is_ancestor_of(child)
        assert child.is_descendant_of(parent)
        assert not child.is_ancestor_of(parent)

    def test_ancestor_requires_agreeing_values(self):
        assert not key(asn="a2").is_ancestor_of(key(asn="a1", cdn="c1"))

    def test_ancestor_is_strict(self):
        k = key(asn="a1")
        assert not k.is_ancestor_of(k)

    def test_parents_drop_one_attribute(self):
        k = key(asn="a1", cdn="c1", site="s1")
        parents = set(k.parents())
        assert parents == {
            key(cdn="c1", site="s1"),
            key(asn="a1", site="s1"),
            key(asn="a1", cdn="c1"),
        }

    def test_ancestors_excludes_root_and_self(self):
        k = key(asn="a1", cdn="c1")
        ancestors = set(k.ancestors())
        assert ancestors == {key(asn="a1"), key(cdn="c1")}

    def test_project(self):
        k = key(asn="a1", cdn="c1", site="s1")
        assert k.project(["cdn"]) == key(cdn="c1")
        assert k.project([]) == ClusterKey.root()

    def test_label(self):
        assert key(cdn="c1").label() == "[cdn=c1]"

    def test_paper_signature(self):
        k = key(site="s1", asn="a1")
        assert k.paper_signature() == "[asn, *, site, *, *, *, *]"

    def test_attribute_signature(self):
        assert attribute_signature(key(cdn="c1", asn="a1")) == ("asn", "cdn")


class TestClusterLattice:
    @pytest.fixture()
    def lattice(self):
        return ClusterLattice(AttributeSchema(names=("a", "b", "c")))

    def test_masks_enumeration(self, lattice):
        assert list(lattice.masks()) == list(range(1, 8))

    def test_masks_by_depth(self, lattice):
        levels = lattice.masks_by_depth()
        assert levels[0] == [0]
        assert sorted(levels[1]) == [1, 2, 4]
        assert levels[3] == [7]

    def test_parents_children_inverse(self, lattice):
        for mask in lattice.masks():
            for child in lattice.children_of_mask(mask):
                assert mask in set(lattice.parents_of_mask(child))

    def test_interval_masks(self, lattice):
        interval = set(lattice.interval_masks(0b001, 0b111))
        assert interval == {0b001, 0b011, 0b101, 0b111}

    def test_interval_requires_subset(self, lattice):
        with pytest.raises(ValueError, match="not a subset"):
            list(lattice.interval_masks(0b010, 0b101))

    def test_build_dag_edges(self):
        lattice = ClusterLattice()
        keys = [
            key(asn="a1"),
            key(cdn="c1"),
            key(asn="a1", cdn="c1"),
            key(asn="a2", cdn="c2"),  # no present parent
        ]
        dag = lattice.build_dag(keys)
        assert dag.has_edge(key(asn="a1"), key(asn="a1", cdn="c1"))
        assert dag.has_edge(key(cdn="c1"), key(asn="a1", cdn="c1"))
        root = ClusterKey.root()
        assert dag.has_edge(root, key(asn="a2", cdn="c2"))
        assert nx.is_directed_acyclic_graph(dag)

    def test_build_dag_multi_parent(self):
        # A node with several parents — the DAG structure from Fig. 4.
        lattice = ClusterLattice()
        keys = [key(asn="a1"), key(cdn="c1"), key(asn="a1", cdn="c1")]
        dag = lattice.build_dag(keys)
        preds = set(dag.predecessors(key(asn="a1", cdn="c1")))
        assert preds == {key(asn="a1"), key(cdn="c1")}
