"""Unit tests for the epoch-range shard store machinery.

Equivalence properties (sharded == monolithic) live in
``tests/property/test_shard_equivalence.py``; this file covers the
store's durability contract — manifest validation in
:meth:`ShardStore.open`, builder lifecycle errors, accounting fixes
(``memory_bytes`` including packed columns and splits), and the
shard-specific timing/observability surface.
"""

import json

import numpy as np
import pytest

from repro.core.epoching import EpochGrid
from repro.core.shards import (
    STORE_MANIFEST,
    ShardInfo,
    ShardStore,
    ShardStoreBuilder,
    analyze_shards,
    build_shard_store,
    sweep_shards,
)
from repro.core.substrate import AnalysisSubstrate, StreamingSubstrate
from tests.property.test_parallel_equivalence import SMALL_CONFIG, build_table


def small_table():
    return build_table(
        [(e, a % 3, a % 2, (a + e) % 4 == 0) for e in range(3) for a in range(30)]
    )


@pytest.fixture
def store(tmp_path):
    return build_shard_store(small_table(), tmp_path / "s", n_shards=3)


class TestShardStoreOpen:
    def test_round_trip(self, store):
        reopened = ShardStore.open(store.path)
        assert reopened.grid == store.grid
        assert reopened.shards == store.shards
        assert reopened.total_sessions == store.total_sessions
        assert reopened.schema_digest == store.schema_digest

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ValueError, match="not a shard store"):
            ShardStore.open(tmp_path / "empty")

    def test_corrupt_manifest(self, store):
        (store.path / STORE_MANIFEST).write_text("{not json")
        with pytest.raises(ValueError, match="corrupted"):
            ShardStore.open(store.path)

    def test_wrong_kind(self, store):
        manifest = store.manifest_dict()
        manifest["kind"] = "something-else"
        (store.path / STORE_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="not a shard-store manifest"):
            ShardStore.open(store.path)

    def test_wrong_version(self, store):
        manifest = store.manifest_dict()
        manifest["version"] = 99
        (store.path / STORE_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported shard-store version"):
            ShardStore.open(store.path)

    def test_missing_field(self, store):
        manifest = store.manifest_dict()
        del manifest["total_sessions"]
        (store.path / STORE_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="malformed"):
            ShardStore.open(store.path)

    def test_non_contiguous_shards(self, store):
        manifest = store.manifest_dict()
        manifest["shards"][1]["epoch_lo"] -= 1  # overlaps shard 0
        (store.path / STORE_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="must abut"):
            ShardStore.open(store.path)

    def test_incomplete_coverage(self, store):
        manifest = store.manifest_dict()
        manifest["shards"].pop()  # last epochs uncovered
        (store.path / STORE_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="grid has"):
            ShardStore.open(store.path)

    def test_missing_shard_file(self, store):
        store.shard_path(1).unlink()
        with pytest.raises(ValueError, match="missing shard file"):
            ShardStore.open(store.path)

    def test_empty_shard_range_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ShardInfo(file="x.sub", epoch_lo=3, epoch_hi=3, sessions=0)


class TestShardStoreContents:
    def test_shard_grid_is_range_restriction(self, store):
        for i, shard in enumerate(store.shards):
            grid = store.shard_grid(i)
            assert grid.n_epochs == shard.n_epochs
            assert grid.origin == store.grid.epoch_start(shard.epoch_lo)
            assert grid.epoch_seconds == store.grid.epoch_seconds

    def test_load_shard_mmaps_substrate(self, store):
        substrate = store.load_shard(0)
        assert isinstance(substrate, AnalysisSubstrate)
        assert len(substrate.table) == store.shards[0].sessions

    def test_session_counts_sum(self, store):
        assert sum(s.sessions for s in store.shards) == store.total_sessions

    def test_snapshot_carries_shard_provenance(self, store):
        from repro.io.snapshot import read_snapshot_manifest

        manifest = read_snapshot_manifest(store.shard_path(1))
        shard = manifest["extra"]["shard"]
        assert shard["epoch_lo"] == store.shards[1].epoch_lo
        assert shard["epoch_hi"] == store.shards[1].epoch_hi
        assert shard["epoch_seconds"] == store.grid.epoch_seconds


class TestBuilder:
    def test_append_after_finalize_raises(self, tmp_path):
        builder = ShardStoreBuilder(tmp_path / "s", epochs_per_shard=2)
        builder.append(small_table())
        builder.finalize()
        with pytest.raises(ValueError, match="finalized"):
            builder.append(small_table())
        with pytest.raises(ValueError, match="finalized"):
            builder.finalize()

    def test_finalize_without_appends_yields_empty_store(self, tmp_path):
        store = ShardStoreBuilder(tmp_path / "s").finalize()
        assert store.shards == ()
        assert store.grid.n_epochs == 0
        assert ShardStore.open(store.path).total_sessions == 0

    def test_gap_epochs_get_empty_shards(self, tmp_path):
        rows = [(0, 0, 0, True)] * 10 + [(5, 1, 1, False)] * 10
        builder = ShardStoreBuilder(tmp_path / "s", epochs_per_shard=2)
        builder.append(build_table(rows))
        store = builder.finalize()
        assert store.grid.n_epochs == 6
        assert [s.sessions for s in store.shards] == [10, 0, 10]
        reopened = ShardStore.open(store.path)
        assert reopened.shards == store.shards


class TestAnalyzeShards:
    def test_epoch_seconds_mismatch_rejected(self, store):
        import dataclasses

        bad = dataclasses.replace(SMALL_CONFIG, epoch_seconds=60.0)
        with pytest.raises(ValueError, match="epoch_seconds"):
            sweep_shards(store, [bad])

    def test_timings_expose_load_and_merge_phases(self, store):
        analysis = analyze_shards(store, config=SMALL_CONFIG)
        d = analysis.timings.as_dict()
        assert d["load_s"] > 0.0
        assert d["merge_s"] > 0.0
        rendered = analysis.timings.render()
        assert "shard snapshot load" in rendered
        assert "shard merge" in rendered

    def test_monolithic_timings_omit_shard_lines(self):
        from repro.core.pipeline import analyze_trace

        analysis = analyze_trace(small_table(), config=SMALL_CONFIG)
        rendered = analysis.timings.render()
        assert "shard snapshot load" not in rendered
        assert "shard merge" not in rendered

    def test_observability_surface(self, store):
        from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer

        tracer, metrics = Tracer(), MetricsRegistry()
        with use_tracer(tracer), use_metrics(metrics):
            analyze_shards(store, config=SMALL_CONFIG)
        counters = metrics.as_dict()["counters"]
        assert counters["shards.analyses"] == 1
        assert counters["shards.shards_analyzed"] == len(store.shards)
        spans = {s.name for s in tracer.finish().walk()}
        assert "analyze_shards" in spans
        assert "shard" in spans


class TestMemoryBytesAccounting:
    def test_substrate_includes_table_and_index(self):
        table = small_table()
        substrate = AnalysisSubstrate.build(table)
        # packed columns alone exceed the index-only figure the old
        # accounting reported
        assert substrate.memory_bytes() > substrate.index.memory_bytes()
        assert substrate.memory_bytes() >= table.start_time.nbytes

    def test_substrate_counts_cached_splits(self):
        substrate = AnalysisSubstrate.build(small_table())
        before = substrate.memory_bytes()
        grid = EpochGrid.covering(substrate.table, epoch_seconds=3600.0)
        substrate.epoch_rows(grid)
        assert substrate.memory_bytes() > before

    def test_streaming_includes_table_and_epoch_rows(self):
        streaming = StreamingSubstrate()
        streaming.append(small_table())
        total = streaming.memory_bytes()
        assert total > streaming.index.memory_bytes()
        assert total >= streaming.table.start_time.nbytes
