"""Unit tests for the content-addressed result cache.

Cached-vs-uncached analysis equivalence lives in
``tests/property/test_cache_equivalence.py``; this file covers the
cache's own durability contract: the entry file format round-trips,
every flavor of corruption degrades to a logged miss (never an
exception, never a wrong value), and LRU eviction respects the byte
cap deterministically.
"""

import os
import pickle

import pytest

from repro.core.resultcache import (
    ENTRY_MAGIC,
    ENTRY_SUFFIX,
    RESULT_FORMAT_VERSION,
    CacheStats,
    ResultCache,
    shard_result_key,
)
from repro.obs import MetricsRegistry, use_metrics


def key_n(i: int) -> str:
    return shard_result_key(
        payload_sha256=f"{i:064x}",
        schema_sha256="b" * 64,
        config_digest="c" * 64,
        epoch_origin=0.0,
        n_epochs=24,
    )


class TestKey:
    def test_key_is_hex_sha256(self):
        key = key_n(0)
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_key_is_deterministic(self):
        assert key_n(1) == key_n(1)

    @pytest.mark.parametrize(
        "override",
        [
            {"payload_sha256": "f" * 64},
            {"schema_sha256": "f" * 64},
            {"config_digest": "f" * 64},
            {"epoch_origin": 3600.0},
            {"n_epochs": 25},
        ],
    )
    def test_every_component_changes_the_key(self, override):
        base = dict(
            payload_sha256="a" * 64,
            schema_sha256="b" * 64,
            config_digest="c" * 64,
            epoch_origin=0.0,
            n_epochs=24,
        )
        assert shard_result_key(**base) != shard_result_key(
            **{**base, **override}
        )


class TestRoundTrip:
    def test_put_get_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        value = {"epochs": [1, 2, 3], "label": "x"}
        key = key_n(0)
        assert cache.get(key) is None
        assert cache.put(key, value) is True
        assert cache.get(key) == value

    def test_entry_file_format(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        key = key_n(0)
        cache.put(key, [1, 2, 3])
        blob = cache.entry_path(key).read_bytes()
        assert blob.startswith(ENTRY_MAGIC)
        assert cache.entry_path(key).suffix == ENTRY_SUFFIX
        # header carries the format version right after the magic
        version = int.from_bytes(blob[8:12], "little")
        assert version == RESULT_FORMAT_VERSION

    def test_put_overwrites_atomically(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        key = key_n(0)
        cache.put(key, "first")
        cache.put(key, "second")
        assert cache.get(key) == "second"
        leftovers = [
            p for p in (tmp_path / "rc").iterdir() if p.suffix != ENTRY_SUFFIX
        ]
        assert leftovers == []

    def test_unpicklable_value_degrades_not_raises(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        metrics = MetricsRegistry()
        with use_metrics(metrics):
            assert cache.put(key_n(0), lambda: None) is False
        assert metrics.get("degraded.cache_store_failed") == 1
        assert cache.get(key_n(0)) is None  # nothing half-written


def _corrupt_flip_last(path):
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))


def _corrupt_truncate_header(path):
    path.write_bytes(path.read_bytes()[:10])


def _corrupt_truncate_payload(path):
    path.write_bytes(path.read_bytes()[:-5])


def _corrupt_magic(path):
    blob = bytearray(path.read_bytes())
    blob[:8] = b"NOTCACHE"
    path.write_bytes(bytes(blob))


def _corrupt_version(path):
    blob = bytearray(path.read_bytes())
    blob[8:12] = (RESULT_FORMAT_VERSION + 1).to_bytes(4, "little")
    path.write_bytes(bytes(blob))


class TestCorruptTolerance:
    @pytest.mark.parametrize(
        "corrupt",
        [
            _corrupt_flip_last,
            _corrupt_truncate_header,
            _corrupt_truncate_payload,
            _corrupt_magic,
            _corrupt_version,
        ],
    )
    def test_corruption_is_a_degraded_miss(self, tmp_path, corrupt):
        cache = ResultCache(tmp_path / "rc")
        key = key_n(0)
        cache.put(key, {"x": 1})
        corrupt(cache.entry_path(key))
        metrics = MetricsRegistry()
        with use_metrics(metrics):
            assert cache.get(key) is None
        assert metrics.get("cache.miss") == 1
        assert metrics.get("cache.hit") == 0
        assert metrics.get("degraded.cache_corrupt") == 1
        # the unusable entry is removed so it cannot degrade again
        assert not cache.entry_path(key).exists()

    def test_absent_entry_is_a_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        metrics = MetricsRegistry()
        with use_metrics(metrics):
            assert cache.get(key_n(9)) is None
        assert metrics.get("cache.miss") == 1
        assert metrics.get("degraded.cache_corrupt") == 0


class TestEviction:
    def fill(self, cache, n, payload_bytes=100):
        keys = [key_n(i) for i in range(n)]
        for i, key in enumerate(keys):
            cache.put(key, b"x" * payload_bytes)
            # deterministic, strictly increasing recency: key 0 oldest
            os.utime(cache.entry_path(key), (1_000 + i, 1_000 + i))
        return keys

    def entry_size(self, cache, key):
        return cache.entry_path(key).stat().st_size

    def test_evicts_lru_first_until_under_cap(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        keys = self.fill(cache, 5)
        size = self.entry_size(cache, keys[0])
        metrics = MetricsRegistry()
        with use_metrics(metrics):
            evicted = cache.evict_to(3 * size)
        assert evicted == keys[:2]  # the two oldest
        assert cache.stats().total_bytes <= 3 * size
        assert metrics.get("cache.evict") == 2
        for key in keys[2:]:
            assert cache.get(key) is not None

    def test_hit_bumps_recency(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        keys = self.fill(cache, 3)
        assert cache.get(keys[0]) is not None  # utime bump: now newest
        os.utime(cache.entry_path(keys[0]), (2_000, 2_000))
        size = self.entry_size(cache, keys[0])
        evicted = cache.evict_to(2 * size)
        assert keys[0] not in evicted
        assert keys[1] in evicted

    def test_put_enforces_max_bytes(self, tmp_path):
        size = None
        cache = ResultCache(tmp_path / "rc")
        cache.put(key_n(0), b"x" * 100)
        size = self.entry_size(cache, key_n(0))
        capped = ResultCache(tmp_path / "rc2", max_bytes=2 * size)
        for i in range(4):
            capped.put(key_n(i), b"x" * 100)
        stats = capped.stats()
        assert stats.total_bytes <= 2 * size
        assert stats.entries <= 2

    def test_evict_to_zero_empties_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        keys = self.fill(cache, 3)
        assert sorted(cache.evict_to(0)) == sorted(keys)
        assert cache.stats() == CacheStats(
            entries=0, total_bytes=0, max_bytes=None
        )

    def test_negative_caps_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        with pytest.raises(ValueError, match="max_bytes"):
            cache.evict_to(-1)
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(tmp_path / "rc", max_bytes=-1)

    def test_stats_on_missing_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "never_created")
        assert cache.stats() == CacheStats(
            entries=0, total_bytes=0, max_bytes=None
        )
        assert cache.evict_to(0) == []
