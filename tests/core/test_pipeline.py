"""Tests for the end-to-end analysis pipeline."""

import numpy as np
import pytest

from repro.core.metrics import JOIN_FAILURE
from repro.core.pipeline import (
    AnalysisConfig,
    analyze_trace,
    restrict_epochs,
)
from repro.core.problems import ProblemClusterConfig
from repro.core.sessions import SessionTable
from tests.conftest import make_session


@pytest.fixture(scope="module")
def two_epoch_analysis():
    """Epoch 0: cdn_bad fails heavily; epoch 1: healthy."""
    rng = np.random.default_rng(3)
    sessions = []
    for epoch, bad_p in ((0, 0.5), (1, 0.05)):
        for _ in range(2000):
            cdn = "cdn_bad" if rng.random() < 0.3 else f"cdn_{rng.integers(0, 2)}"
            fail_p = bad_p if cdn == "cdn_bad" else 0.05
            sessions.append(
                make_session(
                    start_time=epoch * 3600.0 + float(rng.uniform(0, 3600)),
                    join_failed=bool(rng.random() < fail_p),
                    cdn=cdn,
                    asn=f"AS{rng.integers(0, 4)}",
                )
            )
    table = SessionTable.from_sessions(sessions)
    config = AnalysisConfig(
        metrics=(JOIN_FAILURE,),
        problem_config=ProblemClusterConfig(
            min_sessions=50, min_problems=3, significance_sigmas=0.0
        ),
    )
    return analyze_trace(table, config=config)


class TestAnalyzeTrace:
    def test_epoch_count(self, two_epoch_analysis):
        assert two_epoch_analysis.grid.n_epochs == 2
        ma = two_epoch_analysis["join_failure"]
        assert len(ma.epochs) == 2

    def test_problem_found_only_in_bad_epoch(self, two_epoch_analysis):
        ma = two_epoch_analysis["join_failure"]
        keys0 = {k.label() for k in ma.epochs[0].critical_clusters}
        keys1 = {k.label() for k in ma.epochs[1].critical_clusters}
        assert "[cdn=cdn_bad]" in keys0
        assert "[cdn=cdn_bad]" not in keys1

    def test_problem_ratio_series(self, two_epoch_analysis):
        ma = two_epoch_analysis["join_failure"]
        series = ma.problem_ratio_series
        assert series.shape == (2,)
        assert series[0] > series[1]

    def test_counts_series(self, two_epoch_analysis):
        ma = two_epoch_analysis["join_failure"]
        assert ma.problem_cluster_counts[0] >= 1
        assert ma.critical_cluster_counts[0] >= 1

    def test_timelines(self, two_epoch_analysis):
        ma = two_epoch_analysis["join_failure"]
        timelines = ma.critical_timelines()
        bad = [tl for k, tl in timelines.items() if k.label() == "[cdn=cdn_bad]"]
        assert len(bad) == 1
        assert bad[0].prevalence == pytest.approx(0.5)

    def test_attribution_totals(self, two_epoch_analysis):
        ma = two_epoch_analysis["join_failure"]
        totals = ma.critical_attribution_totals()
        best = max(totals.items(), key=lambda kv: kv[1])
        assert best[0].label() == "[cdn=cdn_bad]"

    def test_metric_names(self, two_epoch_analysis):
        assert two_epoch_analysis.metric_names == ["join_failure"]

    def test_progress_callback(self):
        table = SessionTable.from_sessions(
            [make_session(start_time=t * 3600.0) for t in range(3)]
        )
        calls = []
        analyze_trace(
            table,
            config=AnalysisConfig(metrics=(JOIN_FAILURE,)),
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_epoch_analysis_invariants(self, two_epoch_analysis):
        for epoch in two_epoch_analysis["join_failure"].epochs:
            assert 0 <= epoch.problem_cluster_coverage <= 1
            assert 0 <= epoch.critical_cluster_coverage <= 1 + 1e-9
            assert epoch.total_problems <= epoch.total_sessions
            # critical clusters explain at most what problem clusters hold
            assert (
                epoch.critical_cluster_coverage
                <= epoch.problem_cluster_coverage + 1e-9
            )


class TestRestrictEpochs:
    def test_subset_and_renumbering(self, two_epoch_analysis):
        ma = two_epoch_analysis["join_failure"]
        view = restrict_epochs(ma, [1])
        assert len(view.epochs) == 1
        assert view.epochs[0].epoch == 0  # renumbered
        assert view.grid.n_epochs == 1
        assert view.epochs[0].total_sessions == ma.epochs[1].total_sessions

    def test_preserves_cluster_content(self, two_epoch_analysis):
        ma = two_epoch_analysis["join_failure"]
        view = restrict_epochs(ma, [0, 1])
        assert view.total_problem_sessions == ma.total_problem_sessions


class TestTinyTraceIntegration:
    """Integration: the full pipeline over a generated trace."""

    def test_all_four_metrics_analyzed(self, tiny_analysis):
        assert set(tiny_analysis.metric_names) == {
            "buffering_ratio",
            "bitrate",
            "join_time",
            "join_failure",
        }

    def test_epochs_match_grid(self, tiny_analysis, tiny_trace):
        assert tiny_analysis.grid.n_epochs == tiny_trace.spec.n_epochs
        for ma in tiny_analysis.metrics.values():
            assert len(ma.epochs) == tiny_trace.spec.n_epochs

    def test_some_structure_found(self, tiny_analysis):
        for name, ma in tiny_analysis.metrics.items():
            assert ma.mean_problem_clusters > 0, name
            assert ma.mean_critical_clusters > 0, name
            assert ma.mean_critical_cluster_coverage > 0.1, name

    def test_critical_coverage_never_exceeds_problem_coverage(self, tiny_analysis):
        for ma in tiny_analysis.metrics.values():
            for epoch in ma.epochs:
                assert (
                    epoch.critical_cluster_coverage
                    <= epoch.problem_cluster_coverage + 1e-9
                )

    def test_critical_counts_below_problem_counts(self, tiny_analysis):
        for ma in tiny_analysis.metrics.values():
            assert ma.mean_critical_clusters <= ma.mean_problem_clusters


class TestRestrictEpochsOrigin:
    """The subset view must report true trace timestamps, not epoch-0's."""

    def test_origin_moves_to_first_chosen_epoch(self, two_epoch_analysis):
        ma = two_epoch_analysis["join_failure"]
        view = restrict_epochs(ma, [1])
        assert view.grid.origin == ma.grid.epoch_start(1)
        assert view.grid.epoch_start(0) == ma.grid.epoch_start(1)

    def test_full_subset_keeps_origin(self, two_epoch_analysis):
        ma = two_epoch_analysis["join_failure"]
        view = restrict_epochs(ma, [0, 1])
        assert view.grid.origin == ma.grid.origin

    def test_empty_subset_keeps_origin(self, two_epoch_analysis):
        ma = two_epoch_analysis["join_failure"]
        view = restrict_epochs(ma, [])
        assert view.grid.origin == ma.grid.origin
        assert view.grid.n_epochs == 0


class TestPipelineTimings:
    def test_timings_populated(self, two_epoch_analysis):
        t = two_epoch_analysis.timings
        assert t.n_epochs == 2
        assert t.n_units == 2  # 2 epochs x 1 metric
        assert t.pack_s > 0
        assert t.index_build_s > 0  # default engine is the indexed one
        assert t.aggregate_s > 0
        assert t.problems_s > 0
        assert t.critical_s > 0
        assert t.wall_s > 0

    def test_timings_render_mentions_phases(self, two_epoch_analysis):
        text = two_epoch_analysis.timings.render()
        for word in ("pack", "aggregate", "problem", "critical", "wall"):
            assert word in text

    def test_as_dict_roundtrips_fields(self, two_epoch_analysis):
        d = two_epoch_analysis.timings.as_dict()
        assert d["n_epochs"] == 2
        assert set(d) >= {"pack_s", "index_build_s", "aggregate_s",
                          "problems_s", "critical_s", "wall_s"}


class TestConfigDigest:
    """The digest keys the result cache: it must cover exactly the
    result-determining knobs and nothing about execution strategy."""

    def test_stable_and_hex(self):
        digest = AnalysisConfig().config_digest()
        assert digest == AnalysisConfig().config_digest()
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_execution_knobs_never_change_the_digest(self):
        import dataclasses

        base = AnalysisConfig()
        varied = dataclasses.replace(
            base, workers="auto", engine="epoch", transport="pickle"
        )
        assert varied.config_digest() == base.config_digest()

    @pytest.mark.parametrize(
        "override",
        [
            lambda cfg: {"metrics": (JOIN_FAILURE,)},
            lambda cfg: {"thresholds": cfg.thresholds.scaled(2.0)},
            lambda cfg: {
                "problem_config": ProblemClusterConfig(ratio_multiplier=2.0)
            },
            lambda cfg: {"epoch_seconds": 1800.0},
        ],
    )
    def test_every_result_knob_changes_the_digest(self, override):
        import dataclasses

        base = AnalysisConfig()
        varied = dataclasses.replace(base, **override(base))
        assert varied.config_digest() != base.config_digest()

    def test_registered_custom_metric_is_addressable_by_name(self):
        import dataclasses

        from repro.core.metrics import (
            JOIN_TIME,
            metric_by_name,
            register_metric,
            unregister_metric,
        )

        custom = dataclasses.replace(
            JOIN_TIME, name="join_time_alt", paper_name="join time (alt)"
        )
        register_metric(custom)
        try:
            base = AnalysisConfig()
            varied = dataclasses.replace(base, metrics=(custom,))
            assert varied.config_digest() != base.config_digest()
            assert metric_by_name("join_time_alt") is custom
        finally:
            unregister_metric("join_time_alt")

    def test_unregistered_metric_has_no_identity(self):
        import dataclasses

        from repro.core.metrics import JOIN_TIME

        rogue = dataclasses.replace(JOIN_TIME, name="never_registered")
        config = AnalysisConfig(metrics=(rogue,))
        with pytest.raises(ValueError, match="not registered"):
            config.config_digest()
