"""Transport and pool degradation: every rung lands on identical results.

The ladder is shm -> pickle -> serial. These tests force each failure
(shared memory unavailable, segment allocation failure, a worker raising
mid-pool, a worker dying hard via ``os._exit``) and assert three things:
the run completes with results bit-identical to the serial reference,
the degradation reason is observable (metrics counter + trace event),
and no shared-memory segment leaks.
"""

import os

import numpy as np
import pytest

import repro.core.pipeline as pipeline_mod
import repro.core.shm as shm_mod
import repro.core.substrate as substrate_mod
from repro.core.pipeline import AnalysisConfig, analyze_trace
from repro.core.sessions import SessionTable
from repro.core.shm import (
    PickleWorkerPayload,
    SharedArrayPack,
    make_worker_payload,
    shared_memory_available,
)
from repro.core.substrate import analyze_sweep
from repro.obs import (
    MetricsRegistry,
    Tracer,
    degradation_reasons,
    use_metrics,
    use_tracer,
)
from tests.conftest import make_session
from tests.property.test_parallel_equivalence import assert_equal_analyses


@pytest.fixture(scope="module")
def table() -> SessionTable:
    rng = np.random.default_rng(23)
    sessions = []
    for epoch in range(3):
        for i in range(120):
            sessions.append(
                make_session(
                    start_time=epoch * 3600.0 + float(rng.uniform(0, 3600)),
                    buffering_s=float(rng.uniform(0, 60)),
                    join_time_s=float(rng.uniform(0.5, 12)),
                    bitrate_kbps=float(rng.uniform(300, 4000)),
                    join_failed=bool(rng.random() < 0.1),
                    cdn=f"cdn_{i % 3}",
                    asn=f"AS{i % 4}",
                    site=f"site_{i % 2}",
                )
            )
    return SessionTable.from_sessions(sessions)


@pytest.fixture
def collectors():
    tracer, metrics = Tracer(), MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        yield tracer, metrics


def created_segments(monkeypatch) -> list:
    """Record every SharedArrayPack created under the patch."""
    packs = []
    original = SharedArrayPack.create.__func__

    def tracking(cls, arrays):
        pack = original(cls, arrays)
        packs.append(pack)
        return pack

    monkeypatch.setattr(
        SharedArrayPack, "create", classmethod(tracking)
    )
    return packs


def assert_no_leaks(packs) -> None:
    from multiprocessing import shared_memory

    for pack in packs:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=pack.shm.name)


# Module-level so the pool can pickle them by qualified name.
def _exploding_batch(batch):
    raise RuntimeError("worker exploded")


def _dying_batch(batch):
    os._exit(17)


def _exploding_sweep_batch(batch):
    raise RuntimeError("sweep worker exploded")


class TestShmUnavailable:
    def test_auto_falls_back_to_pickle_with_reason(
        self, table, collectors, monkeypatch
    ):
        tracer, metrics = collectors
        monkeypatch.setattr(shm_mod, "shared_memory_available", lambda: False)
        payload = make_worker_payload(table, transport="auto")
        assert isinstance(payload, PickleWorkerPayload)
        assert metrics.get("degraded.shm_to_pickle") == 1
        assert degradation_reasons(tracer)[0]["kind"] == "shm_to_pickle"

    def test_explicit_shm_still_raises(self, table, monkeypatch):
        monkeypatch.setattr(shm_mod, "shared_memory_available", lambda: False)
        with pytest.raises(ValueError):
            make_worker_payload(table, transport="shm")

    def test_pack_failure_falls_back_under_auto(
        self, table, collectors, monkeypatch
    ):
        tracer, metrics = collectors

        def broken_create(cls, arrays):
            raise OSError("no space left on /dev/shm")

        monkeypatch.setattr(
            SharedArrayPack, "create", classmethod(broken_create)
        )
        payload = make_worker_payload(table, transport="auto")
        assert isinstance(payload, PickleWorkerPayload)
        assert metrics.get("degraded.shm_to_pickle") == 1
        assert "no space left" in degradation_reasons(tracer)[0]["reason"]

    def test_pack_failure_raises_under_explicit_shm(self, table, monkeypatch):
        def broken_create(cls, arrays):
            raise OSError("no space left on /dev/shm")

        monkeypatch.setattr(
            SharedArrayPack, "create", classmethod(broken_create)
        )
        with pytest.raises(OSError):
            make_worker_payload(table, transport="shm")

    def test_parallel_run_without_shm_matches_serial(
        self, table, collectors, monkeypatch
    ):
        _, metrics = collectors
        monkeypatch.setattr(shm_mod, "shared_memory_available", lambda: False)
        parallel = analyze_trace(table, workers=2, transport="auto")
        monkeypatch.undo()
        serial = analyze_trace(table, workers=0)
        assert_equal_analyses(parallel, serial)
        assert metrics.get("degraded.shm_to_pickle") >= 1


@pytest.mark.skipif(
    not shared_memory_available(), reason="no POSIX shared memory"
)
class TestWorkerCrash:
    def test_raising_worker_degrades_to_serial(
        self, table, collectors, monkeypatch
    ):
        tracer, metrics = collectors
        packs = created_segments(monkeypatch)

        monkeypatch.setattr(
            pipeline_mod, "_worker_run_batch", _exploding_batch
        )
        parallel = analyze_trace(table, workers=2, transport="shm")
        monkeypatch.undo()
        serial = analyze_trace(table, workers=0)
        assert_equal_analyses(parallel, serial)
        assert metrics.get("degraded.parallel_to_serial") == 1
        reasons = degradation_reasons(tracer)
        assert any("worker exploded" in r["reason"] for r in reasons)
        assert any(
            s.attrs.get("mode") == "serial-fallback"
            for s in tracer.find("epochs")
        )
        assert packs and len(packs) == 1
        assert_no_leaks(packs)

    def test_hard_worker_death_degrades_to_serial(
        self, table, collectors, monkeypatch
    ):
        _, metrics = collectors
        packs = created_segments(monkeypatch)

        monkeypatch.setattr(pipeline_mod, "_worker_run_batch", _dying_batch)
        parallel = analyze_trace(table, workers=2, transport="shm")
        monkeypatch.undo()
        serial = analyze_trace(table, workers=0)
        assert_equal_analyses(parallel, serial)
        assert metrics.get("degraded.parallel_to_serial") == 1
        assert_no_leaks(packs)

    def test_sweep_worker_crash_degrades_to_serial(
        self, table, collectors, monkeypatch
    ):
        _, metrics = collectors
        packs = created_segments(monkeypatch)
        configs = [
            AnalysisConfig(),
            AnalysisConfig(epoch_seconds=1800.0),
        ]

        monkeypatch.setattr(
            substrate_mod, "_sweep_worker_run_batch", _exploding_sweep_batch
        )
        parallel = analyze_sweep(table, configs, workers=2, transport="shm")
        monkeypatch.undo()
        serial = analyze_sweep(table, configs, workers=0)
        assert len(parallel) == len(serial) == 2
        for p, s in zip(parallel, serial):
            assert_equal_analyses(p, s)
        assert metrics.get("degraded.parallel_to_serial") == 1
        assert_no_leaks(packs)
