"""Unit tests for the trace-global cluster index and its epoch views."""

import pickle

import numpy as np
import pytest

from repro.core.aggregation import KeyCodec, aggregate_epoch
from repro.core.critical import find_critical_clusters
from repro.core.index import EpochClusterView, TraceClusterIndex
from repro.core.metrics import (
    ALL_METRICS,
    BUFFERING_RATIO,
    JOIN_FAILURE,
    MetricThresholds,
)
from repro.core.problems import ProblemClusterConfig, find_problem_clusters
from repro.core.sessions import SessionTable
from tests.conftest import make_session, planted_failure_table


@pytest.fixture(scope="module")
def table() -> SessionTable:
    return planted_failure_table(n=2000, seed=3)


@pytest.fixture(scope="module")
def index(table) -> TraceClusterIndex:
    return TraceClusterIndex.build(table)


class TestBuild:
    def test_leaf_universe_matches_direct_pack(self, table, index):
        codec = KeyCodec.from_table(table)
        packed = codec.pack(table.codes)
        expected = np.unique(packed)
        np.testing.assert_array_equal(index.leaf_keys, expected)
        np.testing.assert_array_equal(
            index.leaf_keys[index.row_to_leaf], packed
        )

    def test_mask_keys_are_sorted_projections(self, index):
        field_masks = index.codec.field_masks()
        for m in range(1, index.codec.full_mask + 1):
            expected = np.unique(index.leaf_keys & field_masks[m])
            np.testing.assert_array_equal(index.mask_keys[m], expected)

    def test_leaf_to_cluster_inverts_projection(self, index):
        field_masks = index.codec.field_masks()
        for m in range(1, index.codec.full_mask + 1):
            np.testing.assert_array_equal(
                index.mask_keys[m][index.leaf_to_cluster[m]],
                index.leaf_keys & field_masks[m],
            )

    def test_fold_source_is_one_attribute_finer(self, index):
        for m, src in index.fold_source.items():
            extra = src ^ m
            assert src & m == m and extra and (extra & (extra - 1)) == 0

    def test_counts(self, index, table):
        assert index.n_leaves == index.leaf_keys.size
        assert index.n_clusters_total == sum(
            k.size for k in index.mask_keys.values()
        )
        assert index.memory_bytes() > 0


class TestProjectIndex:
    def test_matches_searchsorted(self, index):
        field_masks = index.codec.field_masks()
        full = index.codec.full_mask
        for fine, coarse in [(full, 1), (3, 1), (7, 5), (full, full >> 1)]:
            got = index.project_index(fine, coarse)
            expected = np.searchsorted(
                index.mask_keys[coarse],
                index.mask_keys[fine] & field_masks[coarse],
            )
            np.testing.assert_array_equal(got, expected)

    def test_cached_identity(self, index):
        assert index.project_index(7, 1) is index.project_index(7, 1)

    def test_rejects_non_submask(self, index):
        with pytest.raises(ValueError):
            index.project_index(3, 3)
        with pytest.raises(ValueError):
            index.project_index(1, 2)


class TestMetricMasks:
    def test_cached_per_metric_and_thresholds(self, index, table):
        a = index.metric_masks(JOIN_FAILURE)
        assert index.metric_masks(JOIN_FAILURE)[0] is a[0]
        other = index.metric_masks(
            BUFFERING_RATIO, MetricThresholds(buffering_ratio=0.5)
        )
        assert other[0] is not a[0]

    def test_values_match_metric(self, index, table):
        valid, problem = index.metric_masks(JOIN_FAILURE)
        np.testing.assert_array_equal(valid, JOIN_FAILURE.valid_mask(table))
        np.testing.assert_array_equal(
            problem, JOIN_FAILURE.problem_mask(table, MetricThresholds())
        )

    def test_warm_prefills(self, table):
        idx = TraceClusterIndex.build(table)
        idx.warm_metric_masks(ALL_METRICS)
        before = idx.memory_bytes()
        for metric in ALL_METRICS:
            idx.metric_masks(metric)
        assert idx.memory_bytes() == before


def assert_equal_aggregates(a, b):
    """`b` must contain exactly `a`'s clusters plus (possibly) clusters
    whose counts are all zero, with identical counts on the shared ones."""
    assert a.total_sessions == b.total_sessions
    assert a.total_problems == b.total_problems
    for m in a.per_mask:
        ma, mb = a.per_mask[m], b.per_mask[m]
        pos = np.searchsorted(mb.keys, ma.keys)
        np.testing.assert_array_equal(mb.keys[pos], ma.keys)
        np.testing.assert_array_equal(mb.sessions[pos], ma.sessions)
        np.testing.assert_array_equal(mb.problems[pos], ma.problems)
        extra = np.ones(mb.keys.size, dtype=bool)
        extra[pos] = False
        assert not mb.sessions[extra].any()
        assert not mb.problems[extra].any()


class TestEpochViewAggregate:
    def test_matches_legacy_aggregate(self, table, index):
        rows = np.arange(0, len(table), 2)
        for metric in ALL_METRICS:
            legacy = aggregate_epoch(table, rows, metric, epoch=4)
            indexed = index.aggregate(rows, metric, epoch=4)
            assert indexed.epoch == 4
            assert indexed.metric_name == metric.name
            assert_equal_aggregates(legacy, indexed)

    def test_view_shared_across_metrics(self, table, index):
        rows = np.arange(100)
        view = index.epoch_view(rows, epoch=1)
        for metric in ALL_METRICS:
            agg = view.aggregate(metric)
            assert agg.index is view
            assert_equal_aggregates(
                aggregate_epoch(table, rows, metric, epoch=1), agg
            )

    def test_problem_flags_override(self, table, index):
        rows = np.arange(200)
        flags = np.zeros(rows.size, dtype=bool)
        flags[::3] = True
        legacy = aggregate_epoch(
            table, rows, JOIN_FAILURE, problem_flags=flags
        )
        indexed = index.aggregate(rows, JOIN_FAILURE, problem_flags=flags)
        assert_equal_aggregates(legacy, indexed)

    def test_problem_flags_shape_validated(self, index):
        with pytest.raises(ValueError):
            index.aggregate(
                np.arange(10), JOIN_FAILURE, problem_flags=np.zeros(3, bool)
            )

    def test_empty_rows(self, index):
        agg = index.aggregate(np.arange(0), JOIN_FAILURE)
        assert agg.total_sessions == 0
        assert agg.leaf.keys.size == 0

    def test_view_project_index_local(self, index, table):
        view = index.epoch_view(np.arange(0, len(table), 3))
        full = index.codec.full_mask
        for fine, coarse in [(full, 1), (7, 5)]:
            local = view.project_index(fine, coarse)
            fine_keys = view.keys(fine)
            coarse_keys = view.keys(coarse)
            field = index.codec.field_masks()[coarse]
            np.testing.assert_array_equal(
                coarse_keys[local], fine_keys & field
            )

    def test_downstream_detection_matches_legacy(self, table, index):
        rows = np.arange(len(table))
        config = ProblemClusterConfig(
            min_sessions=20, min_problems=2, significance_sigmas=0.0
        )
        legacy_agg = aggregate_epoch(table, rows, JOIN_FAILURE)
        indexed_agg = index.aggregate(rows, JOIN_FAILURE)
        legacy = find_critical_clusters(find_problem_clusters(legacy_agg, config))
        indexed = find_critical_clusters(
            find_problem_clusters(indexed_agg, config)
        )
        assert legacy.problems.cluster_keys() == indexed.problems.cluster_keys()
        assert legacy.decoded() == indexed.decoded()
        assert legacy.unattributed_problem_sessions == pytest.approx(
            indexed.unattributed_problem_sessions
        )
        # the planted CDN produces structure, so equality is not vacuous
        assert indexed.problems.n_clusters > 0

    def test_index_survives_pickling(self, index, table):
        clone = pickle.loads(pickle.dumps(index))
        rows = np.arange(0, len(table), 5)
        a = index.aggregate(rows, JOIN_FAILURE)
        b = clone.aggregate(rows, JOIN_FAILURE)
        assert_equal_aggregates(a, b)
        assert_equal_aggregates(b, a)


class TestViewConstruction:
    def test_active_ids_sorted_subsets(self, index, table):
        view = index.epoch_view(np.arange(0, 300))
        for m, ids in view.active_ids.items():
            assert np.all(np.diff(ids) > 0)
            assert ids.size <= index.mask_keys[m].size

    def test_single_row(self, index):
        view = index.epoch_view(np.array([7]))
        assert view.n_leaves == 1
        for m in view.active_ids:
            assert view.active_ids[m].size == 1
