"""Tests for epoch partitioning."""

import numpy as np
import pytest

from repro.core.epoching import EpochGrid, iter_epoch_tables, split_into_epochs
from repro.core.sessions import SessionTable
from tests.conftest import make_session


def table_at(times) -> SessionTable:
    return SessionTable.from_sessions([make_session(start_time=t) for t in times])


class TestEpochGrid:
    def test_covering_rounds_origin_down(self):
        grid = EpochGrid.covering(table_at([4000.0, 8000.0]))
        assert grid.origin == 3600.0
        assert grid.n_epochs == 2

    def test_covering_single_session(self):
        grid = EpochGrid.covering(table_at([100.0]))
        assert grid.origin == 0.0
        assert grid.n_epochs == 1

    def test_covering_empty_table(self):
        grid = EpochGrid.covering(SessionTable.empty())
        assert grid.n_epochs == 0

    def test_epoch_of(self):
        grid = EpochGrid(origin=0.0, epoch_seconds=3600.0, n_epochs=3)
        epochs = grid.epoch_of(np.array([0.0, 3599.9, 3600.0, 7300.0]))
        assert epochs.tolist() == [0, 0, 1, 2]

    def test_epoch_of_before_origin_is_negative(self):
        grid = EpochGrid(origin=3600.0, epoch_seconds=3600.0, n_epochs=2)
        assert grid.epoch_of(np.array([0.0]))[0] == -1

    def test_epoch_start(self):
        grid = EpochGrid(origin=7200.0, epoch_seconds=3600.0, n_epochs=5)
        assert grid.epoch_start(2) == 7200.0 + 2 * 3600.0

    def test_hours(self):
        grid = EpochGrid(n_epochs=3)
        assert grid.hours().tolist() == [0.0, 1.0, 2.0]

    def test_len(self):
        assert len(EpochGrid(n_epochs=7)) == 7

    def test_invalid_epoch_seconds(self):
        with pytest.raises(ValueError):
            EpochGrid(epoch_seconds=0.0)

    def test_custom_epoch_length(self):
        grid = EpochGrid.covering(table_at([0.0, 250.0]), epoch_seconds=100.0)
        assert grid.n_epochs == 3


class TestSplitIntoEpochs:
    def test_rows_partition_table(self):
        table = table_at([10.0, 3700.0, 3800.0, 7300.0])
        grid, per_epoch = split_into_epochs(table)
        assert grid.n_epochs == 3
        assert [len(rows) for rows in per_epoch] == [1, 2, 1]
        all_rows = np.concatenate(per_epoch)
        assert sorted(all_rows.tolist()) == [0, 1, 2, 3]

    def test_empty_epochs_have_empty_arrays(self):
        table = table_at([10.0, 7300.0])  # epoch 1 is empty
        _, per_epoch = split_into_epochs(table)
        assert len(per_epoch[1]) == 0

    def test_sessions_outside_grid_dropped(self):
        table = table_at([10.0, 5000.0])
        grid = EpochGrid(origin=0.0, epoch_seconds=3600.0, n_epochs=1)
        _, per_epoch = split_into_epochs(table, grid)
        assert len(per_epoch) == 1
        assert per_epoch[0].tolist() == [0]

    def test_iter_epoch_tables_skips_empty(self):
        table = table_at([10.0, 7300.0])
        pairs = list(iter_epoch_tables(table))
        assert [epoch for epoch, _ in pairs] == [0, 2]
        for _, sub in pairs:
            assert len(sub) == 1
