"""Tests for per-epoch cluster aggregation."""

import numpy as np
import pytest

from repro.core.aggregation import (
    ClusterStats,
    KeyCodec,
    aggregate_epoch,
)
from repro.core.clusters import ClusterKey
from repro.core.metrics import BUFFERING_RATIO, JOIN_FAILURE, JOIN_TIME
from repro.core.sessions import SessionTable
from tests.conftest import make_session


@pytest.fixture()
def small_table() -> SessionTable:
    sessions = []
    # 6 failing of 10 on (AS1, cdn_a); 1 failing of 10 on (AS2, cdn_b)
    for i in range(10):
        sessions.append(make_session(asn="AS1", cdn="cdn_a", join_failed=i < 6))
    for i in range(10):
        sessions.append(make_session(asn="AS2", cdn="cdn_b", join_failed=i < 1))
    return SessionTable.from_sessions(sessions)


def agg_of(table, metric=JOIN_FAILURE):
    return aggregate_epoch(table, np.arange(len(table)), metric)


class TestClusterStats:
    def test_ratio(self):
        assert ClusterStats(10, 3).ratio == pytest.approx(0.3)

    def test_zero_sessions_ratio(self):
        assert ClusterStats(0, 0).ratio == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ClusterStats(-1, 0)

    def test_problems_exceeding_sessions_rejected(self):
        with pytest.raises(ValueError):
            ClusterStats(5, 6)


class TestAggregation:
    def test_global_counts(self, small_table):
        agg = agg_of(small_table)
        assert agg.total_sessions == 20
        assert agg.total_problems == 7
        assert agg.global_ratio == pytest.approx(0.35)

    def test_single_attribute_cluster_counts(self, small_table):
        agg = agg_of(small_table)
        stats = agg.stats_of_key(ClusterKey.from_mapping({"asn": "AS1"}))
        assert stats == ClusterStats(10, 6)
        stats = agg.stats_of_key(ClusterKey.from_mapping({"cdn": "cdn_b"}))
        assert stats == ClusterStats(10, 1)

    def test_combination_cluster_counts(self, small_table):
        agg = agg_of(small_table)
        stats = agg.stats_of_key(
            ClusterKey.from_mapping({"asn": "AS1", "cdn": "cdn_a"})
        )
        assert stats == ClusterStats(10, 6)

    def test_absent_cluster_returns_none(self, small_table):
        agg = agg_of(small_table)
        assert agg.stats_of_key(
            ClusterKey.from_mapping({"asn": "AS1", "cdn": "cdn_b"})
        ) is None
        assert agg.stats_of_key(ClusterKey.from_mapping({"asn": "AS99"})) is None

    def test_root_key_gives_global(self, small_table):
        agg = agg_of(small_table)
        assert agg.stats_of_key(ClusterKey.root()) == agg.global_stats

    def test_every_mask_conserves_totals(self, small_table):
        agg = agg_of(small_table)
        for mask, mask_agg in agg.per_mask.items():
            assert int(mask_agg.sessions.sum()) == agg.total_sessions, mask
            assert int(mask_agg.problems.sum()) == agg.total_problems, mask

    def test_mask_count(self, small_table):
        agg = agg_of(small_table)
        assert len(agg.per_mask) == (1 << 7) - 1

    def test_invalid_sessions_excluded(self, small_table):
        # join time is undefined for failed joins: only 13 valid sessions
        agg = agg_of(small_table, JOIN_TIME)
        assert agg.total_sessions == 13
        assert agg.total_problems == 0

    def test_problem_flags_override(self, small_table):
        flags = np.zeros(len(small_table), dtype=bool)
        flags[:3] = True
        agg = aggregate_epoch(
            small_table,
            np.arange(len(small_table)),
            JOIN_FAILURE,
            problem_flags=flags,
        )
        assert agg.total_problems == 3

    def test_problem_flags_wrong_shape_rejected(self, small_table):
        with pytest.raises(ValueError, match="problem_flags shape"):
            aggregate_epoch(
                small_table,
                np.arange(len(small_table)),
                JOIN_FAILURE,
                problem_flags=np.zeros(3, dtype=bool),
            )

    def test_rows_subset(self, small_table):
        agg = aggregate_epoch(small_table, np.arange(10), JOIN_FAILURE)
        assert agg.total_sessions == 10
        assert agg.total_problems == 6

    def test_empty_rows(self, small_table):
        agg = aggregate_epoch(small_table, np.array([], dtype=np.int64), JOIN_FAILURE)
        assert agg.total_sessions == 0
        assert agg.global_ratio == 0.0


class TestKeyCodec:
    def test_decode_round_trip(self, small_table):
        codec = KeyCodec.from_table(small_table)
        packed = codec.pack(small_table.codes[:1])[0]
        key = codec.decode(codec.full_mask, int(packed))
        assert key.as_dict() == dict(next(small_table.rows()).attrs)

    def test_decode_partial_mask(self, small_table):
        codec = KeyCodec.from_table(small_table)
        packed = codec.pack(small_table.codes[:1])[0]
        mask = small_table.schema.mask_of(["cdn"])
        fm = codec.field_masks()
        key = codec.decode(mask, int(packed) & int(fm[mask]))
        assert key == ClusterKey.from_mapping({"cdn": "cdn_a"})

    def test_field_masks_cached(self, small_table):
        codec = KeyCodec.from_table(small_table)
        assert codec.field_masks() is codec.field_masks()

    def test_index_of_vector(self, small_table):
        agg = agg_of(small_table)
        leaf = agg.leaf
        idx = leaf.index_of(leaf.keys)
        assert idx.tolist() == list(range(len(leaf)))

    def test_index_of_missing(self, small_table):
        agg = agg_of(small_table)
        leaf = agg.leaf
        missing = int(leaf.keys.max()) + 1
        assert leaf.index_of(missing) == -1


class TestBufferingAggregation:
    def test_buffering_problems_counted(self):
        sessions = [
            make_session(duration_s=100, buffering_s=b) for b in (0, 2, 10, 20)
        ]
        table = SessionTable.from_sessions(sessions)
        agg = agg_of(table, BUFFERING_RATIO)
        assert agg.total_problems == 2  # ratios 0.10 and 0.20


class TestEpochLeafIndex:
    def test_matches_direct_aggregation(self, small_table):
        from repro.core.aggregation import EpochLeafIndex

        rows = np.arange(len(small_table))
        index = EpochLeafIndex.build(small_table, rows)
        for metric in (JOIN_FAILURE, BUFFERING_RATIO, JOIN_TIME):
            direct = aggregate_epoch(small_table, rows, metric)
            shared = aggregate_epoch(
                small_table, rows, metric, leaf_index=index
            )
            for mask in direct.per_mask:
                d, s = direct.per_mask[mask], shared.per_mask[mask]
                assert np.array_equal(d.keys, s.keys), (metric.name, mask)
                assert np.array_equal(d.sessions, s.sessions)
                assert np.array_equal(d.problems, s.problems)

    def test_drops_leaves_with_no_valid_sessions(self):
        from repro.core.aggregation import EpochLeafIndex

        # (AS1, cdn_a) sessions all fail -> invalid for join_time, so
        # that leaf must vanish from the shared-index aggregate.
        sessions = [make_session(asn="AS1", cdn="cdn_a", join_failed=True)
                    for _ in range(5)]
        sessions += [make_session(asn="AS2", cdn="cdn_b") for _ in range(5)]
        table = SessionTable.from_sessions(sessions)
        rows = np.arange(len(table))
        index = EpochLeafIndex.build(table, rows)
        direct = aggregate_epoch(table, rows, JOIN_TIME)
        shared = aggregate_epoch(table, rows, JOIN_TIME, leaf_index=index)
        assert len(shared.leaf) == len(direct.leaf)
        assert np.array_equal(shared.leaf.keys, direct.leaf.keys)

    def test_valid_mask_shape_checked(self, small_table):
        from repro.core.aggregation import EpochLeafIndex

        index = EpochLeafIndex.build(small_table, np.arange(len(small_table)))
        with pytest.raises(ValueError, match="valid mask"):
            index.restrict(np.ones(3, dtype=bool), np.ones(3))


class TestKeyCodecEncode:
    def test_encode_key_roundtrip(self, small_table):
        codec = KeyCodec.from_table(small_table)
        key = ClusterKey.from_mapping({"asn": "AS1", "cdn": "cdn_a"})
        encoded = codec.encode_key(key)
        assert encoded is not None
        mask, packed = encoded
        assert codec.decode(mask, packed) == key

    def test_encode_unknown_label_is_none(self, small_table):
        codec = KeyCodec.from_table(small_table)
        key = ClusterKey.from_mapping({"asn": "AS_nope"})
        assert codec.encode_key(key) is None

    def test_code_maps_cached(self, small_table):
        codec = KeyCodec.from_table(small_table)
        assert codec.code_maps() is codec.code_maps()
