"""Tests for the streaming critical-cluster monitor."""

import numpy as np
import pytest

from repro.core.clusters import ClusterKey
from repro.core.epoching import split_into_epochs
from repro.core.metrics import JOIN_FAILURE
from repro.core.online import OnlineDetector
from repro.core.problems import ProblemClusterConfig
from repro.core.sessions import SessionTable
from tests.conftest import make_session


def epoch_table(bad_cdn_fail_p: float, n: int = 1500, seed: int = 0) -> SessionTable:
    rng = np.random.default_rng(seed)
    sessions = []
    for _ in range(n):
        cdn = "cdn_bad" if rng.random() < 0.3 else f"cdn_{rng.integers(0, 2)}"
        fail_p = bad_cdn_fail_p if cdn == "cdn_bad" else 0.03
        sessions.append(
            make_session(
                cdn=cdn,
                asn=f"AS{rng.integers(0, 4)}",
                join_failed=bool(rng.random() < fail_p),
            )
        )
    return SessionTable.from_sessions(sessions)


CONFIG = ProblemClusterConfig(
    min_sessions=50, min_problems=3, significance_sigmas=0.0
)
BAD_KEY = ClusterKey.from_mapping({"cdn": "cdn_bad"})


def make_detector(confirm_after=2) -> OnlineDetector:
    return OnlineDetector(
        JOIN_FAILURE, problem_config=CONFIG, confirm_after=confirm_after
    )


class TestAlertLifecycle:
    def test_raise_confirm_clear(self):
        detector = make_detector(confirm_after=2)
        # epoch 0: healthy; epochs 1-3: outage; epoch 4: healthy again.
        fail_ps = [0.03, 0.5, 0.5, 0.5, 0.03]
        events_per_epoch = []
        for i, p in enumerate(fail_ps):
            obs = detector.observe_epoch(epoch_table(p, seed=i))
            events_per_epoch.append(
                [(e.kind, e.alert.key) for e in obs.events]
            )
        assert ("raised", BAD_KEY) in events_per_epoch[1]
        assert ("confirmed", BAD_KEY) in events_per_epoch[2]
        assert ("cleared", BAD_KEY) in events_per_epoch[4]

    def test_alert_durations(self):
        detector = make_detector()
        for i, p in enumerate([0.5, 0.5, 0.5, 0.03]):
            detector.observe_epoch(epoch_table(p, seed=10 + i))
        bad = [a for a in detector.closed_alerts if a.key == BAD_KEY]
        assert len(bad) == 1
        assert bad[0].raised_epoch == 0
        assert bad[0].cleared_epoch == 3
        assert bad[0].duration_epochs == 3

    def test_unconfirmed_blip_never_confirms(self):
        detector = make_detector(confirm_after=2)
        for i, p in enumerate([0.03, 0.5, 0.03]):
            detector.observe_epoch(epoch_table(p, seed=20 + i))
        bad = [a for a in detector.all_alerts if a.key == BAD_KEY]
        assert len(bad) == 1
        assert not bad[0].is_confirmed
        assert bad[0].actionable_alleviation == 0.0

    def test_reopened_streak_is_new_alert(self):
        detector = make_detector()
        for i, p in enumerate([0.5, 0.03, 0.5]):
            detector.observe_epoch(epoch_table(p, seed=30 + i))
        bad = [a for a in detector.all_alerts if a.key == BAD_KEY]
        assert len(bad) == 2

    def test_actionable_alleviation_accrues_after_confirm(self):
        detector = make_detector(confirm_after=2)
        for i, p in enumerate([0.5, 0.5, 0.5]):
            detector.observe_epoch(epoch_table(p, seed=40 + i))
        bad = [a for a in detector.all_alerts if a.key == BAD_KEY][0]
        assert bad.is_confirmed
        assert bad.actionable_alleviation > 0
        assert detector.total_actionable_alleviation >= bad.actionable_alleviation

    def test_confirm_after_validated(self):
        with pytest.raises(ValueError):
            make_detector(confirm_after=0)


class TestHistoryAndQueries:
    def test_history_records_epochs(self):
        detector = make_detector()
        for i, p in enumerate([0.03, 0.5]):
            detector.observe_epoch(epoch_table(p, seed=50 + i))
        assert len(detector.history) == 2
        assert detector.history[0].epoch == 0
        assert detector.history[1].n_critical_clusters >= 1

    def test_critical_keys_at(self):
        detector = make_detector()
        for i, p in enumerate([0.03, 0.5, 0.5, 0.03]):
            detector.observe_epoch(epoch_table(p, seed=60 + i))
        assert BAD_KEY not in detector.critical_keys_at(0)
        assert BAD_KEY in detector.critical_keys_at(1)
        assert BAD_KEY in detector.critical_keys_at(2)
        assert BAD_KEY not in detector.critical_keys_at(3)


class TestOnlineMatchesBatch:
    def test_same_critical_sets_as_batch_pipeline(self, tiny_trace):
        """Streaming the trace epoch by epoch reproduces the batch
        pipeline's per-epoch critical sets exactly."""
        from repro.core.pipeline import AnalysisConfig, analyze_trace

        table = tiny_trace.table
        grid, per_epoch = split_into_epochs(table, tiny_trace.grid)
        n = min(grid.n_epochs, 8)

        detector = OnlineDetector(JOIN_FAILURE)
        for epoch in range(n):
            detector.observe_epoch(table, per_epoch[epoch])

        batch = analyze_trace(
            table.select(np.nonzero(table.start_time < n * 3600.0)[0]),
            config=AnalysisConfig(metrics=(JOIN_FAILURE,)),
        )
        for epoch in range(n):
            online_keys = detector.critical_keys_at(epoch)
            batch_keys = set(batch["join_failure"].epochs[epoch].critical_clusters)
            assert online_keys == batch_keys, f"epoch {epoch}"


class TestHysteresis:
    def test_clear_after_bridges_gaps(self):
        """With clear_after=2, a one-epoch dip does not clear the alert."""
        detector = OnlineDetector(
            JOIN_FAILURE, problem_config=CONFIG, confirm_after=2,
            clear_after=2,
        )
        for i, p in enumerate([0.5, 0.5, 0.03, 0.5, 0.5]):
            detector.observe_epoch(epoch_table(p, seed=70 + i))
        bad = [a for a in detector.all_alerts if a.key == BAD_KEY]
        assert len(bad) == 1  # one alert spanning the dip
        assert bad[0].is_open
        assert bad[0].total_active_epochs == 4

    def test_clear_after_one_is_immediate(self):
        detector = OnlineDetector(
            JOIN_FAILURE, problem_config=CONFIG, clear_after=1
        )
        for i, p in enumerate([0.5, 0.03]):
            detector.observe_epoch(epoch_table(p, seed=80 + i))
        bad = [a for a in detector.closed_alerts if a.key == BAD_KEY]
        assert len(bad) == 1
        assert bad[0].cleared_epoch == 1

    def test_cleared_epoch_marks_first_absence(self):
        detector = OnlineDetector(
            JOIN_FAILURE, problem_config=CONFIG, clear_after=2
        )
        for i, p in enumerate([0.5, 0.03, 0.03]):
            detector.observe_epoch(epoch_table(p, seed=90 + i))
        bad = [a for a in detector.closed_alerts if a.key == BAD_KEY]
        assert len(bad) == 1
        assert bad[0].cleared_epoch == 1  # absent from epoch 1 onward

    def test_clear_after_validated(self):
        with pytest.raises(ValueError):
            OnlineDetector(JOIN_FAILURE, clear_after=0)
