"""Tests for problem-cluster identification (Section 3.1 semantics)."""

import numpy as np
import pytest

from repro.core.aggregation import aggregate_epoch
from repro.core.clusters import ClusterKey
from repro.core.metrics import JOIN_FAILURE
from repro.core.problems import ProblemClusterConfig, find_problem_clusters
from repro.core.sessions import SessionTable
from tests.conftest import make_session


def build_table(groups):
    """groups: list of (attrs_dict, n_sessions, n_failures)."""
    sessions = []
    for attrs, n, failures in groups:
        for i in range(n):
            sessions.append(make_session(join_failed=i < failures, **attrs))
    return SessionTable.from_sessions(sessions)


def find(table, **config_kwargs):
    config_kwargs.setdefault("min_sessions", 50)
    config_kwargs.setdefault("min_problems", 3)
    config_kwargs.setdefault("significance_sigmas", 0.0)
    agg = aggregate_epoch(table, np.arange(len(table)), JOIN_FAILURE)
    return find_problem_clusters(agg, ProblemClusterConfig(**config_kwargs))


class TestConfig:
    def test_defaults(self):
        config = ProblemClusterConfig()
        assert config.ratio_multiplier == 1.5
        assert config.min_sessions == "auto"

    def test_auto_min_sessions_scales(self):
        config = ProblemClusterConfig()
        assert config.resolve_min_sessions(900_000) == 1000  # the paper's setup
        assert config.resolve_min_sessions(1_000) == config.auto_floor

    def test_explicit_min_sessions(self):
        config = ProblemClusterConfig(min_sessions=123)
        assert config.resolve_min_sessions(10**9) == 123

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ProblemClusterConfig(ratio_multiplier=0.0)
        with pytest.raises(ValueError):
            ProblemClusterConfig(min_sessions="bogus")
        with pytest.raises(ValueError):
            ProblemClusterConfig(min_sessions=0)
        with pytest.raises(ValueError):
            ProblemClusterConfig(auto_fraction=1.5)
        with pytest.raises(ValueError):
            ProblemClusterConfig(min_problems=0)
        with pytest.raises(ValueError):
            ProblemClusterConfig(significance_sigmas=-1.0)


class TestDetection:
    def test_planted_bad_cdn_flagged(self):
        table = build_table(
            [
                ({"cdn": "bad"}, 200, 100),  # 50% failure
                ({"cdn": "ok1"}, 400, 20),  # 5%
                ({"cdn": "ok2"}, 400, 20),
            ]
        )
        pc = find(table)
        keys = pc.cluster_keys()
        assert ClusterKey.from_mapping({"cdn": "bad"}) in keys

    def test_healthy_cluster_not_flagged(self):
        table = build_table(
            [
                ({"cdn": "bad"}, 200, 100),
                ({"cdn": "ok1"}, 400, 20),
            ]
        )
        pc = find(table)
        assert ClusterKey.from_mapping({"cdn": "ok1"}) not in pc.cluster_keys()

    def test_small_cluster_culled(self):
        # The bad cluster has only 30 sessions: below the 50 floor.
        table = build_table(
            [
                ({"cdn": "bad"}, 30, 25),
                ({"cdn": "ok"}, 800, 30),
            ]
        )
        pc = find(table)
        assert ClusterKey.from_mapping({"cdn": "bad"}) not in pc.cluster_keys()

    def test_ratio_threshold_is_relative_to_global(self):
        # 12% failing cluster against a 10% global: below 1.5x.
        table = build_table(
            [
                ({"cdn": "slightly_bad"}, 500, 60),  # 12%
                ({"cdn": "ok"}, 500, 40),  # 8%
            ]
        )
        pc = find(table)
        assert ClusterKey.from_mapping({"cdn": "slightly_bad"}) not in pc.cluster_keys()

    def test_min_problems_guard(self):
        # 4 failures of 100 vs near-zero global: huge relative ratio
        # but absolutely insignificant under min_problems=5.
        table = build_table(
            [
                ({"cdn": "noisy"}, 100, 4),
                ({"cdn": "ok"}, 2000, 2),
            ]
        )
        pc = find(table, min_problems=5)
        assert ClusterKey.from_mapping({"cdn": "noisy"}) not in pc.cluster_keys()

    def test_significance_sigmas_guard(self):
        # 10 failures of 60 at global ~10%: expected ~6, sigma ~2.3;
        # passes the 1.5x ratio cut but not a 2-sigma excess.
        table = build_table(
            [
                ({"cdn": "borderline"}, 60, 10),
                ({"cdn": "ok"}, 940, 91),
            ]
        )
        loose = find(table, significance_sigmas=0.0)
        strict = find(table, significance_sigmas=2.0)
        key = ClusterKey.from_mapping({"cdn": "borderline"})
        assert key in loose.cluster_keys()
        assert key not in strict.cluster_keys()

    def test_no_problems_no_clusters(self):
        table = build_table([({"cdn": "ok"}, 500, 0)])
        pc = find(table)
        assert pc.n_clusters == 0
        assert pc.coverage == 0.0

    def test_contains(self):
        table = build_table(
            [({"cdn": "bad"}, 200, 100), ({"cdn": "ok"}, 800, 30)]
        )
        pc = find(table)
        agg = pc.agg
        mask = agg.codec.schema.mask_of(["cdn"])
        bad_code = table.attr_labels("cdn").index("bad")
        packed = bad_code << int(agg.codec.offsets[agg.codec.schema.index("cdn")])
        assert pc.contains(mask, packed)
        assert not pc.contains(mask, packed + 10_000)


class TestCoverage:
    def test_coverage_counts_problem_sessions_in_clusters(self):
        table = build_table(
            [
                ({"cdn": "bad", "asn": "AS1"}, 200, 100),
                # diffuse failures spread over many small ASNs
                *[
                    ({"cdn": "ok", "asn": f"AS_{i}"}, 20, 2)
                    for i in range(20)
                ],
            ]
        )
        pc = find(table)
        # bad-cdn cluster holds 100 problems; the ok-cdn cluster (400
        # sessions, 40 failures = 10% vs global 28.6%) is not flagged,
        # so those 40 problems are uncovered.
        assert pc.covered_problem_sessions == 100
        assert pc.coverage == pytest.approx(100 / 140)

    def test_full_coverage_when_all_problems_clustered(self):
        table = build_table([({"cdn": "bad"}, 200, 100), ({"cdn": "ok"}, 800, 8)])
        pc = find(table)
        assert pc.coverage == pytest.approx(100 / 108)

    def test_leaf_problem_matrix_shape(self):
        table = build_table([({"cdn": "bad"}, 100, 50), ({"cdn": "ok"}, 100, 5)])
        pc = find(table)
        matrix = pc.leaf_problem_matrix()
        n_leaves = len(pc.agg.leaf)
        assert matrix.shape == (n_leaves, (1 << 7))
        assert not matrix[:, 0].any()  # root column always False

    def test_counts_are_problem_matches_flags(self):
        table = build_table(
            [({"cdn": "bad"}, 200, 100), ({"cdn": "ok"}, 800, 30)]
        )
        pc = find(table)
        for mask, flags in pc.is_problem.items():
            mask_agg = pc.agg.per_mask[mask]
            recomputed = pc.counts_are_problem(mask_agg.sessions, mask_agg.problems)
            assert np.array_equal(recomputed, flags)


class TestConfigRejectsBooleans:
    """bool is an int subclass; min_sessions=True must not mean 1."""

    @pytest.mark.parametrize("flag", [True, False])
    def test_bool_min_sessions_rejected(self, flag):
        with pytest.raises(ValueError, match="min_sessions"):
            ProblemClusterConfig(min_sessions=flag)

    def test_int_and_auto_still_accepted(self):
        assert ProblemClusterConfig(min_sessions=7).min_sessions == 7
        assert ProblemClusterConfig(min_sessions="auto").min_sessions == "auto"
