#!/usr/bin/env python3
"""The full automated loop: detect -> suggest -> apply -> re-measure.

The paper closes with: "A more comprehensive solution will involve an
automated system that identifies the bottleneck as well as provides
remedial actions." (Section 6). This example runs that system:

1. analyse a generated trace and find the critical clusters;
2. map the top clusters to concrete remedies via the Table 3 playbook
   (multi-CDN for single-CDN sites, finer ladders, CDN upgrades, ISP
   peering);
3. apply the remedies causally — transform the world and attenuate the
   planted events they address — and re-generate the trace from the
   same seeds;
4. compare measured problem ratios before and after.

Run:  python examples/auto_remediation.py
"""

from repro import analyze_trace
from repro.analysis.render import render_table
from repro.remedies import evaluate_remedies, suggest_remedies
from repro.trace import StandardWorkloads, generate_trace


def main() -> None:
    spec = StandardWorkloads.small(seed=17)
    trace = generate_trace(spec)
    analysis = analyze_trace(trace.table, grid=trace.grid)

    # 1+2: detect and suggest.
    suggestions = []
    for name, ma in analysis.metrics.items():
        suggestions.extend(suggest_remedies(trace.world, ma, top_k=4))
    # Deduplicate remedies suggested by several metrics.
    unique = {s.remedy.name: s for s in suggestions}
    print(render_table(
        ["Remedy", "Triggered by", "Rationale"],
        [
            [s.remedy.name, f"{s.metric} {s.cluster.label()}", s.rationale]
            for s in unique.values()
        ],
        title="Suggested remedies (paper Table 3 playbook)",
    ))

    # 3+4: apply everything and re-measure.
    evaluation = evaluate_remedies(
        spec, [s.remedy for s in unique.values()], baseline=trace
    )
    print()
    print(evaluation.render())
    best = max(
        evaluation.deltas.values(), key=lambda d: d.relative_reduction
    )
    print(
        f"\nBiggest win: {best.metric} problem ratio down "
        f"{best.relative_reduction:.0%} "
        f"({best.baseline_problems} -> {best.remedied_problems} problem "
        "sessions) — measured by re-generating, not by accounting."
    )


if __name__ == "__main__":
    main()
