#!/usr/bin/env python3
"""Proactive "bad apples" monitoring over a multi-day trace.

The paper's Section 5.2 asks: if an operator studies a few days of
history, picks the worst 1% of critical clusters, and fixes them, how
much of the *future* problem mass disappears? This example runs that
simulation on a three-day trace (train on the first two days, evaluate
on the third) and prints the chosen clusters with their planted causes.

Run:  python examples/proactive_monitoring.py
"""

from repro import analyze_trace
from repro.analysis.render import render_kv, render_table
from repro.analysis.whatif import proactive_simulation, rank_critical_clusters
from repro.core.pipeline import restrict_epochs
from repro.trace import StandardWorkloads, generate_trace

TRAIN_EPOCHS = 48  # first two days
TOP_FRACTION = 0.05  # small trace: 5% plays the role of the paper's 1%


def main() -> None:
    trace = generate_trace(StandardWorkloads.small(seed=13))
    analysis = analyze_trace(trace.table, grid=trace.grid)
    n = trace.spec.n_epochs
    planted = {e.cluster_key: e.tag for e in trace.catalog}

    rows = []
    chosen_report: dict[str, str] = {}
    for name, ma in analysis.metrics.items():
        train = restrict_epochs(ma, range(0, TRAIN_EPOCHS))
        test = restrict_epochs(ma, range(TRAIN_EPOCHS, n))
        result = proactive_simulation(train, test, top_fraction=TOP_FRACTION)
        rows.append(
            [name, result.improvement, result.potential,
             result.fraction_of_potential]
        )
        ranked = rank_critical_clusters(train, by="coverage")
        k = max(int(round(TOP_FRACTION * len(ranked))), 1) if ranked else 0
        for key in ranked[:k]:
            chosen_report[f"{name}: {key.label()}"] = planted.get(
                key, "(organic/noise)"
            )

    print(render_table(
        ["Metric", "Future improvement", "Oracle potential", "Fraction of oracle"],
        rows,
        title=f"Proactive fixing: top {TOP_FRACTION:.0%} clusters from the "
        f"first {TRAIN_EPOCHS} h, evaluated on hours "
        f"{TRAIN_EPOCHS}-{n - 1} (paper Table 4 shape)",
    ))
    print()
    print(render_kv(chosen_report, title="Clusters the operator would fix"))


if __name__ == "__main__":
    main()
