#!/usr/bin/env python3
"""Root-cause drill-down of the worst critical cluster.

Implements the paper's Section 6 proposal ("more diagnostic
capabilities"): once a critical cluster is flagged, trigger
finer-grained analysis. Here we take the worst buffering critical
cluster of a generated trace and produce the incident report an
operator would want — which refining attribute values concentrate the
problem, and how the cluster's problem ratio moves hour by hour —
then compare cost-aware vs cost-blind remediation budgets
(Section 6's "cost of remedial measures").

Run:  python examples/root_cause_drilldown.py
"""

from repro import analyze_trace
from repro.analysis.costbenefit import cost_benefit_analysis
from repro.analysis.drilldown import drill_down
from repro.analysis.render import render_table
from repro.analysis.whatif import rank_critical_clusters
from repro.core.metrics import BUFFERING_RATIO
from repro.trace import StandardWorkloads, generate_trace


def main() -> None:
    trace = generate_trace(StandardWorkloads.small(seed=29))
    analysis = analyze_trace(trace.table, grid=trace.grid)
    ma = analysis["buffering_ratio"]

    # The cluster covering the most buffering problem sessions.
    worst = rank_critical_clusters(ma, by="coverage")[0]
    planted = {e.cluster_key: e.tag for e in trace.catalog}
    print(f"Worst buffering critical cluster: {worst.label()} "
          f"(planted cause: {planted.get(worst, 'organic')})\n")

    report = drill_down(
        trace.table, worst, BUFFERING_RATIO, grid=analysis.grid
    )
    print(report.render(max_values=3))
    hot = report.concentrated_attributes(factor=1.5)
    print(f"\nAttributes concentrating the problem further: {hot or 'none'}")

    # How should a constrained operator spend a remediation budget?
    result = cost_benefit_analysis(ma)
    rows = [
        [p.budget, aware.n_fixed, aware.improvement, blind.improvement]
        for p, aware, blind in zip(
            result.cost_aware, result.cost_aware, result.cost_blind
        )
    ]
    print()
    print(render_table(
        ["Budget", "Clusters fixed (aware)", "Improvement (cost-aware)",
         "Improvement (cost-blind)"],
        rows,
        title="Remediation budget sweep (Section 6 extension)",
    ))


if __name__ == "__main__":
    main()
