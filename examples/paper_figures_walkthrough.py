#!/usr/bin/env python3
"""Reconstructing the paper's illustration figures (3, 4, 5, 6).

The methodology section explains itself with four toy scenarios:

* Figure 3 — problem clusters over a 2-ASN x 2-CDN grid;
* Figure 4 — the cluster DAG where a bad CDN explains several problem
  clusters;
* Figure 5 — the phase transition: a CDN x ASN *combination* is the
  critical cluster, its parents stop being problem clusters once it is
  removed;
* Figure 6 — prevalence and persistence over six epochs.

This walkthrough builds each scenario with the library and shows the
algorithms producing exactly the paper's answers.

Run:  python examples/paper_figures_walkthrough.py
"""

import numpy as np

from repro.analysis.render import render_table
from repro.core import (
    ClusterKey,
    JOIN_FAILURE,
    ProblemClusterConfig,
    Session,
    SessionTable,
)
from repro.core.aggregation import aggregate_epoch
from repro.core.clusters import ClusterLattice
from repro.core.critical import find_critical_clusters
from repro.core.problems import find_problem_clusters
from repro.core.streaks import build_timelines

CONFIG = ProblemClusterConfig(
    min_sessions=40, min_problems=3, significance_sigmas=0.0
)


def make_sessions(counts, seed=0):
    """counts: {(asn, cdn): (n_sessions, n_failures)}."""
    rng = np.random.default_rng(seed)
    sessions = []
    for (asn, cdn), (n, failures) in counts.items():
        for i in range(n):
            sessions.append(Session(
                attrs={
                    "asn": asn, "cdn": cdn,
                    "site": f"site_{rng.integers(0, 2)}",
                    "content_type": "vod", "player": "flash",
                    "browser": "chrome", "connection_type": "dsl",
                },
                start_time=0.0, duration_s=600.0, buffering_s=0.0,
                join_time_s=float("nan") if i < failures else 2.0,
                bitrate_kbps=float("nan") if i < failures else 2000.0,
                join_failed=i < failures,
            ))
    return SessionTable.from_sessions(sessions)


def analyze(table):
    agg = aggregate_epoch(table, np.arange(len(table)), JOIN_FAILURE)
    problems = find_problem_clusters(agg, CONFIG)
    critical = find_critical_clusters(problems)
    return agg, problems, critical


def figure_3_and_4():
    print("=" * 70)
    print("Figures 3 & 4 — one bad CDN manifests as several problem clusters")
    print("=" * 70)
    # CDN1 fails everywhere; CDN2 is healthy.
    table = make_sessions({
        ("ASN1", "CDN1"): (300, 90),   # 30% failures
        ("ASN2", "CDN1"): (300, 90),
        ("ASN1", "CDN2"): (300, 15),   # 5%
        ("ASN2", "CDN2"): (300, 15),
    })
    agg, problems, critical = analyze(table)
    print(f"global problem ratio: {agg.global_ratio:.3f} "
          f"(problem threshold: {problems.ratio_threshold:.3f})\n")

    keys = problems.cluster_keys()
    interesting = [k for k in keys if set(k.attributes) <= {"asn", "cdn"}]
    rows = []
    for key in sorted(interesting, key=lambda k: (k.depth, k.label())):
        stats = agg.stats_of_key(key)
        rows.append([key.label(), stats.sessions, stats.problems, stats.ratio])
    print(render_table(["Problem cluster", "Sessions", "Failures", "Ratio"],
                       rows, title="Problem clusters (Figure 4's red boxes)"))

    dag = ClusterLattice().build_dag(interesting)
    print("\nDAG edges (parent -> child):")
    for parent, child in sorted(dag.edges, key=str):
        print(f"  {parent.label()} -> {child.label()}")

    print("\nCritical clusters (the single underlying cause):")
    for key, att in critical.decoded().items():
        print(f"  {key.label()}: attributed {att.attributed_problems:.0f} "
              "problem sessions")
    assert list(critical.decoded()) == [ClusterKey.from_mapping({"cdn": "CDN1"})]
    print()


def figure_5():
    print("=" * 70)
    print("Figure 5 — the phase transition pins a CDN x ASN combination")
    print("=" * 70)
    # Only the (CDN1, ASN1) path fails.
    table = make_sessions({
        ("ASN1", "CDN1"): (300, 120),  # 40%
        ("ASN2", "CDN1"): (300, 12),
        ("ASN1", "CDN2"): (300, 12),
        ("ASN2", "CDN2"): (300, 12),
    }, seed=1)
    agg, problems, critical = analyze(table)

    combo = ClusterKey.from_mapping({"asn": "ASN1", "cdn": "CDN1"})
    parent_asn = ClusterKey.from_mapping({"asn": "ASN1"})
    parent_cdn = ClusterKey.from_mapping({"cdn": "CDN1"})
    rows = []
    for key in (parent_asn, parent_cdn, combo):
        stats = agg.stats_of_key(key)
        flagged = key in problems.cluster_keys()
        rows.append([key.label(), stats.ratio, "yes" if flagged else "no"])
    print(render_table(
        ["Cluster", "Failure ratio", "Problem cluster?"], rows,
        title="Parents are problem clusters only because of the combination",
    ))

    decoded = critical.decoded()
    print("\nCritical clusters found:", [k.label() for k in decoded])
    assert combo in decoded
    assert parent_asn not in decoded and parent_cdn not in decoded
    print("-> removing (ASN1, CDN1) sessions makes both parents healthy, "
          "so the combination is the phase-transition point.\n")


def figure_6():
    print("=" * 70)
    print("Figure 6 — prevalence and persistence over six epochs")
    print("=" * 70)
    a1c1 = ClusterKey.from_mapping({"asn": "ASN1", "cdn": "CDN1"})
    asn2 = ClusterKey.from_mapping({"asn": "ASN2"})
    cdn2 = ClusterKey.from_mapping({"cdn": "CDN2"})
    # The paper's timeline: A1C1 in epochs {1,2,4,5}; ASN2 in {2..5};
    # CDN2 in {1,2,3,5,6} (1-indexed in the figure; 0-indexed here).
    per_epoch = [
        {a1c1, cdn2},
        {a1c1, asn2, cdn2},
        {asn2, cdn2},
        {a1c1, asn2},
        {a1c1, asn2, cdn2},
        {cdn2},
    ]
    timelines = build_timelines(per_epoch)
    rows = []
    for key in (a1c1, asn2, cdn2):
        tl = timelines[key]
        rows.append([
            key.label(),
            f"{tl.n_occurrences}/6",
            tl.prevalence,
            tl.median_persistence,
            tl.max_persistence,
        ])
    print(render_table(
        ["Cluster", "Occurrences", "Prevalence", "Median streak",
         "Max streak"],
        rows,
        title="Prevalence = occurrences/epochs; streaks coalesce "
        "consecutive epochs",
    ))
    assert timelines[a1c1].prevalence == 4 / 6
    assert timelines[asn2].max_persistence == 4
    print()


def main() -> None:
    figure_3_and_4()
    figure_5()
    figure_6()
    print("All three scenarios reproduce the paper's illustrated answers.")


if __name__ == "__main__":
    main()
