#!/usr/bin/env python3
"""Live monitoring: streaming the reactive strategy as a component.

The paper's reactive analysis (Section 5.3) assumes someone watches the
critical clusters hour by hour. This example is that someone: an
:class:`~repro.core.online.OnlineDetector` consumes one epoch of
telemetry at a time, raises alerts when clusters turn critical,
confirms them after they persist (the one-hour detection delay), and
accounts the problem sessions that acting on each confirmed alert
would have saved.

Run:  python examples/live_monitoring.py
"""

from repro.core.epoching import split_into_epochs
from repro.core.metrics import JOIN_FAILURE
from repro.core.online import OnlineDetector
from repro.analysis.render import render_table
from repro.trace import StandardWorkloads, generate_trace


def main() -> None:
    trace = generate_trace(StandardWorkloads.tiny(seed=31))
    grid, per_epoch = split_into_epochs(trace.table, trace.grid)
    planted = {e.cluster_key: e.tag for e in trace.catalog}

    # confirm_after=2 mirrors the paper's one-hour detection delay;
    # clear_after=2 adds hysteresis so structural causes that hover
    # around the significance threshold do not flap raise/clear.
    detector = OnlineDetector(JOIN_FAILURE, confirm_after=2, clear_after=2)
    print("Streaming", grid.n_epochs, "hourly epochs of join-failure telemetry...\n")
    for epoch in range(grid.n_epochs):
        observation = detector.observe_epoch(trace.table, per_epoch[epoch])
        for event in observation.events:
            cause = planted.get(event.alert.key, "organic/unknown")
            print(f"[h{epoch:02d}] {event.kind.upper():9s} "
                  f"{event.alert.key.label()}  (cause: {cause})")

    print()
    rows = []
    for alert in sorted(
        detector.all_alerts,
        key=lambda a: -a.actionable_alleviation,
    ):
        rows.append([
            alert.key.label(),
            alert.raised_epoch,
            alert.cleared_epoch if alert.cleared_epoch is not None else "open",
            alert.duration_epochs,
            "yes" if alert.is_confirmed else "no",
            alert.actionable_alleviation,
            planted.get(alert.key, "organic/unknown"),
        ])
    print(render_table(
        ["Cluster", "Raised", "Cleared", "Hours", "Confirmed",
         "Actionable alleviation", "Planted cause"],
        rows,
        title="Alert ledger after one day",
        precision=1,
    ))
    print(
        f"\nActing on confirmed alerts would have saved "
        f"{detector.total_actionable_alleviation:.0f} problem sessions."
    )


if __name__ == "__main__":
    main()
