#!/usr/bin/env python3
"""Multi-CDN failover at chunk level: the mechanism behind the remedy.

The paper speculates that single-CDN "low priority" sites "could have
potentially benefited from using multiple CDNs". This example runs the
mechanism on the player substrate: identical sessions, identical
network conditions, one population pinned to a flaky CDN and one
allowed to fail over (retry joins on the next CDN, switch mid-stream
after sustained stalls).

Run:  python examples/multicdn_failover.py
"""

from repro.analysis.render import render_table
from repro.sim import (
    CDNServer,
    FixedBitrateABR,
    RateBasedABR,
    VideoManifest,
    compare_single_vs_multi_cdn,
)

MANIFEST = VideoManifest(
    ladder_kbps=(400.0, 1000.0, 2500.0, 5000.0),
    segment_duration_s=4.0,
    total_duration_s=240.0,
)

SCENARIOS = {
    "flaky primary (20% join failures)": dict(
        servers=[
            CDNServer("primary_flaky", rtt_s=0.04, failure_prob=0.20,
                      throughput_cap_kbps=1e9),
            CDNServer("backup_stable", rtt_s=0.06, failure_prob=0.005,
                      throughput_cap_kbps=1e9),
        ],
        failure_odds=1.0,
    ),
    # A high-bitrate-only player (the paper's Table 3 join-time/
    # buffering anecdote) pinned to a congested edge: the lone CDN
    # cannot sustain the rung, failover can.
    "congested primary, high-bitrate site": dict(
        servers=[
            CDNServer("primary_congested", rtt_s=0.04, failure_prob=0.01,
                      throughput_cap_kbps=3_000.0),
            CDNServer("backup_fast", rtt_s=0.06, failure_prob=0.01,
                      throughput_cap_kbps=1e9),
        ],
        failure_odds=1.0,
        make_abr=lambda: FixedBitrateABR(rung=3),
    ),
}


def main() -> None:
    rows = []
    for label, scenario in SCENARIOS.items():
        comparison = compare_single_vs_multi_cdn(
            MANIFEST,
            scenario.get("make_abr", RateBasedABR),
            scenario["servers"],
            mean_bandwidth_kbps=9_000.0,
            n_sessions=250,
            seed=5,
            failure_odds=scenario["failure_odds"],
        )
        rows.append([
            label,
            comparison.single_failure_rate,
            comparison.multi_failure_rate,
            comparison.single_mean_buffering_ratio,
            comparison.multi_mean_buffering_ratio,
            comparison.mean_switches,
        ])
    print(render_table(
        ["Scenario", "Fail rate (single)", "Fail rate (multi)",
         "Buf ratio (single)", "Buf ratio (multi)", "Mean switches"],
        rows,
        title="Single-CDN vs multi-CDN failover (250 sessions each)",
    ))
    print(
        "\nJoin failures collapse when a backup CDN can field the retry, "
        "and sustained stalls trigger mid-stream switches off the "
        "congested edge — the chunk-level mechanism behind the paper's "
        "multi-CDN suggestion."
    )


if __name__ == "__main__":
    main()
