#!/usr/bin/env python3
"""Post-mortem of a planted CDN outage.

Scenario: a CDN suffers a 6-hour join-failure outage overnight. This
script plants exactly that event into an otherwise calm trace, then
answers the operational questions the paper's machinery is built for:

* When did the pipeline first flag the outage, and at what grain
  (the CDN, not its hundreds of per-ASN manifestations)?
* How long did the problem event persist (streak coalescing, §4.1)?
* How many problem sessions would a reactive fix after one hour have
  saved (the §5.3 simulation)?

Run:  python examples/cdn_outage_postmortem.py
"""

import numpy as np

from repro import analyze_trace
from repro.analysis.render import render_kv, render_series
from repro.analysis.whatif import reactive_simulation
from repro.core.clusters import ClusterKey
from repro.trace import (
    EventCatalog,
    EventEffects,
    GroundTruthEvent,
    StandardWorkloads,
    generate_trace,
)
from repro.trace.entities import build_world

OUTAGE_START = 8  # epoch (hour) the outage begins
OUTAGE_HOURS = 6


def main() -> None:
    spec = StandardWorkloads.tiny(seed=21)
    world = build_world(spec.world, np.random.default_rng(spec.seed))
    victim_cdn = world.cdns[1].name

    outage = GroundTruthEvent(
        event_id="outage-001",
        tag="cdn-origin-overload",
        category="major",
        primary_metric="join_failure",
        constraints=(("cdn", victim_cdn),),
        start_epoch=OUTAGE_START,
        duration_epochs=OUTAGE_HOURS,
        effects=EventEffects(join_failure_odds=40.0),
    )
    trace = generate_trace(spec, world=world, catalog=EventCatalog([outage]))
    analysis = analyze_trace(trace.table, grid=trace.grid)
    ma = analysis["join_failure"]

    # Detection: in which epochs was the CDN flagged critical?
    outage_key = ClusterKey.from_mapping({"cdn": victim_cdn})
    flagged = [
        e.epoch for e in ma.epochs if outage_key in e.critical_clusters
    ]
    timeline = ma.critical_timelines().get(outage_key)
    streaks = timeline.streaks() if timeline else []

    print(render_kv(
        {
            "victim CDN": victim_cdn,
            "outage window (planted)": f"hours {OUTAGE_START}-"
            f"{OUTAGE_START + OUTAGE_HOURS - 1}",
            "flagged critical in hours": ", ".join(map(str, flagged)) or "never",
            "detected streaks": ", ".join(
                f"start={s.start} len={s.length}h" for s in streaks
            ) or "none",
        },
        title="Outage detection",
    ))

    # Grain: the detector must pin the CDN itself, not CDN x ASN shards.
    deeper = [
        key.label()
        for e in ma.epochs
        for key in e.critical_clusters
        if key != outage_key and "cdn" in key.attributes
        and key.value_of("cdn") == victim_cdn
    ]
    print(f"\nDeeper {victim_cdn} critical shards flagged: "
          f"{sorted(set(deeper)) or 'none (correctly pinned at CDN level)'}")

    # What would reacting after one hour have saved?
    result = reactive_simulation(ma, detection_delay_epochs=1)
    print()
    print(render_series(
        np.arange(len(result.original_series)),
        {
            "original": result.original_series,
            "after_reactive_fix": result.after_series,
        },
        x_label="hour",
        precision=0,
        title="Join-failure problem sessions per hour (paper Fig. 13 shape)",
    ))
    print(f"\nReactive repair (1h detection delay) alleviates "
          f"{result.improvement:.0%} of all join-failure problem sessions "
          f"(zero-delay potential: {result.potential:.0%}).")


if __name__ == "__main__":
    main()
