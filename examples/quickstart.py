#!/usr/bin/env python3
"""Quickstart: generate a synthetic trace and find its problem structure.

Walks the paper's full pipeline in a few lines:

1. generate a day of synthetic video-session telemetry with planted
   ground-truth problem events;
2. classify problem sessions for the four quality metrics (Section 2);
3. find per-epoch problem clusters and critical clusters (Section 3);
4. print the headline structure (Table 1 shape) and the top critical
   clusters next to the events that were actually planted.

Run:  python examples/quickstart.py
"""

from repro import analyze_trace
from repro.analysis.render import render_kv, render_table
from repro.analysis.whatif import rank_critical_clusters
from repro.trace import StandardWorkloads, generate_trace


def main() -> None:
    # 1. One day of telemetry: 24 hourly epochs, ~17k sessions.
    trace = generate_trace(StandardWorkloads.tiny(seed=7))
    print(
        f"Generated {trace.n_sessions} sessions over "
        f"{trace.spec.n_epochs} epochs with {len(trace.catalog)} planted "
        "ground-truth events.\n"
    )

    # 2+3. The full per-epoch pipeline for all four quality metrics.
    analysis = analyze_trace(trace.table, grid=trace.grid)

    rows = []
    for name, ma in analysis.metrics.items():
        rows.append(
            [
                name,
                float(ma.problem_ratio_series.mean()),
                ma.mean_problem_clusters,
                ma.mean_critical_clusters,
                ma.mean_critical_cluster_coverage,
            ]
        )
    print(
        render_table(
            ["Metric", "Problem ratio", "Problem clusters/epoch",
             "Critical clusters/epoch", "Critical coverage"],
            rows,
            title="Problem structure (paper Table 1 shape)",
        )
    )

    # 4. Who are the bad apples? Compare against the planted truth.
    print("\nTop critical clusters (by covered problem sessions) vs ground truth:")
    planted = {e.cluster_key: e.tag for e in trace.catalog}
    for name, ma in analysis.metrics.items():
        top = rank_critical_clusters(ma, by="coverage")[:3]
        lines = {}
        for key in top:
            lines[key.label()] = planted.get(key, "(organic/noise)")
        print()
        print(render_kv(lines, title=f"-- {name}"))


if __name__ == "__main__":
    main()
