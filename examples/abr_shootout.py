#!/usr/bin/env python3
"""ABR algorithm shoot-out on the chunk-level player substrate.

The paper's Table 3 traces several chronic problems to player-side
choices (single-bitrate sites, high-bitrate-only ladders). This example
uses the mechanistic substrate directly — Markov bandwidth, player
buffer, CDN edge — to quantify how the choice of adaptation algorithm
moves the paper's metrics on identical network conditions:

* a single-bitrate player (no adaptation at all),
* a fixed top-rung player (what "high bitrate sites" behave like),
* throughput-rate-based adaptation,
* buffer-based adaptation (BBA-style).

Run:  python examples/abr_shootout.py
"""

import numpy as np

from repro.analysis.render import render_table
from repro.sim import (
    BufferBasedABR,
    CDNServer,
    FixedBitrateABR,
    MarkovBandwidth,
    RateBasedABR,
    VideoManifest,
    simulate_session,
)

N_SESSIONS = 300
MEAN_BANDWIDTH_KBPS = 3200.0  # a congested cable/DSL link

MANIFEST = VideoManifest(
    ladder_kbps=(400.0, 1000.0, 2500.0, 5000.0),
    segment_duration_s=4.0,
    total_duration_s=240.0,
)

PLAYERS = {
    "single-bitrate (1.0 Mbps)": lambda: FixedBitrateABR(rung=1),
    "fixed top rung (5 Mbps)": lambda: FixedBitrateABR(rung=3),
    "rate-based (EWMA, 0.85 margin)": lambda: RateBasedABR(),
    "buffer-based (BBA-style)": lambda: BufferBasedABR(),
}


def main() -> None:
    server = CDNServer(
        name="edge", rtt_s=0.04, failure_prob=0.005,
        throughput_cap_kbps=1e9,
    )
    rows = []
    for label, make_abr in PLAYERS.items():
        rng = np.random.default_rng(11)
        buf_ratios, bitrates, joins, switches, failures = [], [], [], [], 0
        for _ in range(N_SESSIONS):
            result = simulate_session(
                manifest=MANIFEST,
                abr=make_abr(),
                bandwidth=MarkovBandwidth(MEAN_BANDWIDTH_KBPS, rng),
                server=server,
                rng=rng,
                watch_duration_s=180.0,
            )
            if result.failed:
                failures += 1
                continue
            buf_ratios.append(result.buffering_ratio)
            bitrates.append(result.avg_bitrate_kbps)
            joins.append(result.join_time_s)
            switches.append(result.rung_switches)
        rows.append(
            [
                label,
                float(np.mean(buf_ratios)),
                float(np.mean(np.array(buf_ratios) > 0.05)),
                float(np.mean(bitrates)),
                float(np.median(joins)),
                float(np.mean(switches)),
                failures,
            ]
        )

    print(render_table(
        ["Player", "Mean buf ratio", "P(buf>5%)", "Mean bitrate kbps",
         "Median join s", "Mean switches", "Join failures"],
        rows,
        title=f"ABR shoot-out over a {MEAN_BANDWIDTH_KBPS:.0f} kbps "
        f"Markov-modulated link ({N_SESSIONS} sessions each)",
    ))
    print(
        "\nThe fixed top-rung player reproduces the paper's "
        "'high-bitrate site' pathology (heavy buffering + slow joins); "
        "adaptation trades a little bitrate for far fewer stalls."
    )


if __name__ == "__main__":
    main()
