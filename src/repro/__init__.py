"""repro — reproduction of "Shedding Light on the Structure of Internet
Video Quality Problems in the Wild" (Jiang, Sekar, Stoica, Zhang;
CoNEXT 2013).

Public API layout:

* :mod:`repro.core` — quality metrics, cluster lattice, problem- and
  critical-cluster detection, prevalence/persistence (the paper's
  methodology, Sections 3-4).
* :mod:`repro.trace` — synthetic session-trace substrate with planted
  ground-truth problem events (substitute for the proprietary Conviva
  dataset).
* :mod:`repro.sim` — chunk-level player/CDN simulation substrate (a
  mechanistic alternative QoE engine).
* :mod:`repro.analysis` — figure/table computations and the what-if
  improvement engine (Section 5).
* :mod:`repro.experiments` — registry regenerating every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import generate_trace, analyze_trace, StandardWorkloads

    trace = generate_trace(StandardWorkloads.small(seed=7))
    analysis = analyze_trace(trace.table)
    print(analysis["join_failure"].mean_critical_clusters)
"""

from repro.core import (
    ALL_METRICS,
    AnalysisConfig,
    AttributeSchema,
    BITRATE,
    BUFFERING_RATIO,
    ClusterKey,
    DEFAULT_SCHEMA,
    JOIN_FAILURE,
    JOIN_TIME,
    MetricThresholds,
    ProblemClusterConfig,
    QualityMetric,
    Session,
    SessionTable,
    TraceAnalysis,
    analyze_trace,
    metric_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_METRICS",
    "AnalysisConfig",
    "AttributeSchema",
    "BITRATE",
    "BUFFERING_RATIO",
    "ClusterKey",
    "DEFAULT_SCHEMA",
    "JOIN_FAILURE",
    "JOIN_TIME",
    "MetricThresholds",
    "ProblemClusterConfig",
    "QualityMetric",
    "Session",
    "SessionTable",
    "TraceAnalysis",
    "analyze_trace",
    "metric_by_name",
    "generate_trace",
    "StandardWorkloads",
    "__version__",
]


def __getattr__(name: str):
    # Lazy imports: keep `import repro` light and avoid import cycles
    # while the trace substrate depends on repro.core.
    if name == "generate_trace":
        from repro.trace import generate_trace

        return generate_trace
    if name == "StandardWorkloads":
        from repro.trace import StandardWorkloads

        return StandardWorkloads
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
