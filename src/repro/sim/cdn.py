"""CDN servers and per-site CDN selection.

A :class:`CDNServer` bounds segment throughput (edge capacity), adds
its RTT to each request, and may fail the initial join request. A
:class:`SiteCDNSelector` models the per-site CDN policy: a weighted
choice over the CDNs the site contracts (the paper notes providers
using proprietary CDN-switching; the trace records the CDN used for
the longest span, which a per-session draw approximates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class CDNServer:
    """One CDN edge from a client's perspective."""

    name: str
    rtt_s: float
    failure_prob: float
    throughput_cap_kbps: float

    def __post_init__(self) -> None:
        if self.rtt_s <= 0:
            raise ValueError("rtt must be positive")
        if not 0 <= self.failure_prob < 1:
            raise ValueError("failure_prob must be in [0, 1)")
        if self.throughput_cap_kbps <= 0:
            raise ValueError("throughput cap must be positive")

    def join_fails(self, rng: np.random.Generator, odds_multiplier: float = 1.0) -> bool:
        """Whether the initial request fails (odds-scaled)."""
        if odds_multiplier <= 0:
            raise ValueError("odds multiplier must be positive")
        p = self.failure_prob
        if p == 0:
            return False
        odds = p / (1.0 - p) * odds_multiplier
        return bool(rng.random() < odds / (1.0 + odds))

    def effective_throughput(self, link_rate_kbps: float) -> float:
        """Download rate: min(access link, edge capacity)."""
        if link_rate_kbps <= 0:
            raise ValueError("link rate must be positive")
        return min(link_rate_kbps, self.throughput_cap_kbps)


def join_failure_probability(
    failure_probs: np.ndarray, odds_multipliers: np.ndarray
) -> np.ndarray:
    """Vectorized odds-scaled join-failure probability.

    Same arithmetic as :meth:`CDNServer.join_fails` for positive
    ``failure_probs``: scale the odds ``p / (1 - p)`` by the multiplier
    and convert back, ``odds / (1 + odds)``. Callers comparing against a
    pre-drawn uniform get the same verdict as the scalar method, draw
    for draw (the engine floors ``failure_prob`` at 1e-4, so the scalar
    path's zero-probability no-draw shortcut never triggers there).
    """
    odds = failure_probs / (1.0 - failure_probs) * odds_multipliers
    return odds / (1.0 + odds)


class SiteCDNSelector:
    """Weighted CDN choice for one site."""

    def __init__(self, servers: Sequence[CDNServer], weights: Sequence[float]) -> None:
        if not servers or len(servers) != len(weights):
            raise ValueError("servers/weights mismatch or empty")
        w = np.asarray(weights, dtype=np.float64)
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        self.servers = list(servers)
        self._p = w / w.sum()

    def select(self, rng: np.random.Generator) -> CDNServer:
        return self.servers[int(rng.choice(len(self.servers), p=self._p))]
