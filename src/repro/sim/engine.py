"""Mechanistic QoE engine: the player simulation behind the
``QoEEngine`` interface.

Implements the same contract as
:class:`repro.trace.qoe.StatisticalQoEEngine` but derives every metric
from chunk-level playback dynamics (:mod:`repro.sim.playback`). Two
interchangeable execution paths sit behind ``generate``:

* ``sim="scalar"`` — one :func:`simulate_session` Python loop per
  session (the reference semantics);
* ``sim="batch"`` — the lockstep vectorized kernel
  (:mod:`repro.sim.batch`), which steps whole live/VOD groups through
  segments together and is ~an order of magnitude faster;
* ``sim="auto"`` (default) — currently the batch path: the two are
  bit-identical, so there is never a reason to fall back.

Bit-identity rests on per-session RNG substreams (DESIGN.md §9): each
``generate`` call consumes exactly one draw from the shared stream to
seed a ``SeedSequence``, whose spawned children give every batch row
its own generator. Both paths consume each child in the same blocked
layout — watch draw, join uniform, transition uniforms, jitter block —
so every random number lands in the same place regardless of path.

Event-effect mapping (documented in DESIGN.md):

* ``bandwidth_factor`` scales the session's mean link rate (organic:
  affects ABR choices, stalls and join time alike);
* ``join_failure_odds`` scales the CDN join-failure odds;
* ``join_time_factor`` scales the CDN RTT and adds fixed startup
  overhead (remote player-module loads);
* ``buffering_factor`` adds uniform extra stall time proportional to
  playback (a stand-in for pathologies the chunk model does not
  represent, e.g. mid-path congestion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import current_metrics
from repro.sim.abr import FixedBitrateABR, RateBasedABR
from repro.sim.bandwidth import (
    DEFAULT_JITTER_SIGMA,
    DEFAULT_STATE_FACTORS,
    DEFAULT_TRANSITIONS,
    MarkovBandwidth,
)
from repro.sim.batch import markov_rate_matrix, simulate_batch
from repro.sim.cdn import CDNServer, join_failure_probability
from repro.sim.playback import simulate_session
from repro.sim.segments import VideoManifest
from repro.trace.entities import CONNECTION_BANDWIDTH_KBPS, CONNECTION_TYPES, World
from repro.trace.qoe import EffectArrays, QoEBatch

SIM_MODES = ("auto", "scalar", "batch")


@dataclass(frozen=True)
class MechanisticParams:
    """Knobs of the mechanistic engine."""

    vod_video_s: float = 300.0
    live_video_s: float = 1200.0
    watch_median_s: float = 240.0
    watch_sigma: float = 0.8
    segment_s: float = 4.0
    startup_buffer_s: float = 4.0
    join_overhead_per_factor_s: float = 0.8
    max_join_time_s: float = 60.0


class MechanisticQoEEngine:
    """Chunk-level implementation of the ``QoEEngine`` protocol."""

    def __init__(
        self,
        world: World,
        params: MechanisticParams | None = None,
        sim: str = "auto",
    ) -> None:
        if sim not in SIM_MODES:
            raise ValueError(f"sim must be one of {SIM_MODES}, got {sim!r}")
        self.world = world
        self.params = params or MechanisticParams()
        self.sim = sim
        self._conn_base = np.array(
            [CONNECTION_BANDWIDTH_KBPS[c] for c in CONNECTION_TYPES]
        )
        self._asn_quality = np.array([a.quality for a in world.asns])
        self._asn_region = world.region_of_asn
        self._cdn_quality = np.array([c.throughput_quality for c in world.cdns])
        self._cdn_coverage = np.array([c.region_coverage for c in world.cdns])
        self._cdn_rtt_s = np.array([c.base_rtt_ms / 1000.0 for c in world.cdns])
        # Join-failure probabilities floored at 1e-4: a zero would take
        # the scalar path's no-draw shortcut in CDNServer.join_fails and
        # desynchronise it from the batch path's pre-drawn uniform.
        self._cdn_fail = np.array(
            [max(c.failure_prob, 1e-4) for c in world.cdns]
        )
        # Ladders padded to a rectangle with +inf (never chosen by ABR):
        # the per-(site, live) rung-cap table and the batch engine's
        # effective-ladder rows both index this.
        ladders = [np.asarray(s.ladder, dtype=np.float64) for s in world.sites]
        max_rungs = max(ladder.size for ladder in ladders)
        self._ladder_pad = np.full((len(ladders), max_rungs), np.inf)
        for i, ladder in enumerate(ladders):
            self._ladder_pad[i, : ladder.size] = ladder
        self._site_n_rungs = np.array([ladder.size for ladder in ladders])
        self._manifests = {
            (site_idx, live): VideoManifest(
                ladder_kbps=world.sites[site_idx].ladder,
                segment_duration_s=self.params.segment_s,
                total_duration_s=(
                    self.params.live_video_s if live else self.params.vod_video_s
                ),
            )
            for site_idx in range(len(world.sites))
            for live in (False, True)
        }
        # Cap-limited manifests, keyed by allowed-rung count (ladders
        # are ascending, so any cap keeps a prefix); a cap below the
        # lowest rung (k == 0) serves a degraded stream at the cap rate.
        self._capped_manifests: dict[tuple, VideoManifest] = {}
        self._mk_cum = np.cumsum(np.asarray(DEFAULT_TRANSITIONS), axis=1)
        self._mk_factors = np.asarray(DEFAULT_STATE_FACTORS)

    # -- shared per-batch precomputation --------------------------------

    def _allowed_rungs(self, sites: np.ndarray, caps: np.ndarray) -> np.ndarray:
        """Rung-cap table: prefix length of each session's ladder.

        ``k[i]`` counts the rungs of site ``sites[i]`` at or under
        ``caps[i]`` (the +inf padding forces the min against the site's
        true rung count for uncapped sessions); ``k == 0`` marks
        cap-below-ladder sessions that get a synthetic single rung.
        """
        rows = self._ladder_pad[sites]
        return np.minimum(
            (rows <= caps[:, None]).sum(axis=1), self._site_n_rungs[sites]
        )

    def _capped_manifest(
        self, site_idx: int, live: bool, k: int, cap: float
    ) -> VideoManifest:
        if k == self._site_n_rungs[site_idx]:
            return self._manifests[(site_idx, live)]
        key = (site_idx, live, k) if k > 0 else (site_idx, live, 0, cap)
        manifest = self._capped_manifests.get(key)
        if manifest is None:
            base = self._manifests[(site_idx, live)]
            ladder = base.ladder_kbps[:k] if k > 0 else (float(cap),)
            manifest = VideoManifest(
                ladder_kbps=ladder,
                segment_duration_s=base.segment_duration_s,
                total_duration_s=base.total_duration_s,
            )
            self._capped_manifests[key] = manifest
        return manifest

    def _effective_ladders(
        self, sites: np.ndarray, caps: np.ndarray, k: np.ndarray
    ) -> np.ndarray:
        """Per-session cap-limited ladder rows, padded with +inf."""
        eff = self._ladder_pad[sites].copy()
        cols = np.arange(eff.shape[1])
        eff[cols[None, :] >= k[:, None]] = np.inf
        capped_out = k == 0
        if capped_out.any():
            eff[capped_out, 0] = caps[capped_out]
        return eff

    def _session_streams(
        self, n: int, rng: np.random.Generator
    ) -> tuple[list[np.random.Generator], np.ndarray]:
        """Per-session substreams plus their watch-duration draws.

        Consumes exactly one integer from the shared ``rng`` (keeping
        the caller's stream position independent of ``n`` and of the
        sim path), then seeds one child generator per batch row. The
        watch draw is each child's first block in both paths.
        """
        entropy = int(rng.integers(0, 2**63))
        children = np.random.SeedSequence(entropy).spawn(n)
        gens = [
            np.random.Generator(np.random.PCG64(child)) for child in children
        ]
        params = self.params
        log_median = np.log(params.watch_median_s)
        watch = np.empty(n)
        for i, gen in enumerate(gens):
            watch[i] = gen.normal(log_median, params.watch_sigma)
        # One vectorized exp over the normals: both sim paths read the
        # same array, so the scalar-vs-SIMD transcendental concern does
        # not apply here.
        return gens, np.exp(watch)

    def _shared_inputs(
        self, codes: np.ndarray, effects: EffectArrays
    ) -> dict[str, np.ndarray]:
        """Vectorized per-session quantities used by both sim paths."""
        asn, cdn = codes[:, 0], codes[:, 1]
        region = self._asn_region[asn]
        coverage = self._cdn_coverage[cdn, region]
        mean_bw = (
            self._conn_base[codes[:, 6]]
            * self._asn_quality[asn]
            * self._cdn_quality[cdn]
            * coverage
            * effects.bandwidth_factor
        )
        jt_factor = effects.join_time_factor
        rtt = self._cdn_rtt_s[cdn] * jt_factor / np.maximum(coverage, 0.2)
        overhead = self.params.join_overhead_per_factor_s * np.maximum(
            jt_factor - 1.0, 0.0
        )
        fail_p = join_failure_probability(
            self._cdn_fail[cdn], effects.join_failure_odds
        )
        k = self._allowed_rungs(codes[:, 2], effects.bitrate_cap_kbps)
        return dict(
            mean_bw=mean_bw, rtt=rtt, overhead=overhead, fail_p=fail_p, k=k
        )

    # -- generate -------------------------------------------------------

    def generate(
        self,
        codes: np.ndarray,
        effects: EffectArrays,
        rng: np.random.Generator,
    ) -> QoEBatch:
        n = codes.shape[0]
        metrics = current_metrics()
        metrics.inc("generate.sessions", n)
        gens, watch = self._session_streams(n, rng)
        shared = self._shared_inputs(codes, effects)
        if self.sim == "scalar":
            batch, segments = self._generate_scalar(
                codes, effects, shared, gens, watch
            )
        else:
            batch, segments = self._generate_batch(
                codes, effects, shared, gens, watch
            )
        metrics.inc("generate.segments", segments)
        return batch

    def _generate_scalar(
        self,
        codes: np.ndarray,
        effects: EffectArrays,
        shared: dict[str, np.ndarray],
        gens: list[np.random.Generator],
        watch: np.ndarray,
    ) -> tuple[QoEBatch, int]:
        n = codes.shape[0]
        params = self.params
        duration = np.empty(n)
        buffering = np.empty(n)
        join_time = np.empty(n)
        bitrate = np.empty(n)
        failed = np.empty(n, dtype=bool)
        mean_bw, rtt, overhead, k = (
            shared["mean_bw"], shared["rtt"], shared["overhead"], shared["k"]
        )
        segments = 0

        for i in range(n):
            site_idx = int(codes[i, 2])
            live = bool(codes[i, 3])
            manifest = self._capped_manifest(
                site_idx, live, int(k[i]), float(effects.bitrate_cap_kbps[i])
            )
            cdn_idx = int(codes[i, 1])
            server = CDNServer(
                name=self.world.cdns[cdn_idx].name,
                rtt_s=float(rtt[i]),
                failure_prob=float(self._cdn_fail[cdn_idx]),
                throughput_cap_kbps=1e9,
            )
            abr = (
                FixedBitrateABR(rung=0)
                if manifest.n_rungs == 1
                else RateBasedABR()
            )
            bandwidth = MarkovBandwidth(
                mean_kbps=float(mean_bw[i]), rng=gens[i], initial_state=0
            )
            result = simulate_session(
                manifest=manifest,
                abr=abr,
                bandwidth=bandwidth,
                server=server,
                rng=gens[i],
                watch_duration_s=float(watch[i]),
                startup_buffer_s=params.startup_buffer_s,
                failure_odds=float(effects.join_failure_odds[i]),
                join_overhead_s=float(overhead[i]),
                max_join_time_s=params.max_join_time_s,
            )
            segments += result.segments_downloaded
            if result.failed:
                failed[i] = True
                duration[i] = 0.0
                buffering[i] = 0.0
                join_time[i] = np.nan
                bitrate[i] = np.nan
                continue
            failed[i] = False
            extra = 0.02 * max(effects.buffering_factor[i] - 1.0, 0.0)
            stall = min(
                result.buffering_s + extra * result.played_s,
                max(result.played_s * 0.85, result.buffering_s),
            )
            duration[i] = result.played_s + stall
            buffering[i] = stall
            join_time[i] = result.join_time_s
            bitrate[i] = result.avg_bitrate_kbps

        batch = QoEBatch(
            duration_s=duration,
            buffering_s=buffering,
            join_time_s=join_time,
            bitrate_kbps=bitrate,
            join_failed=failed,
        )
        return batch, segments

    def _generate_batch(
        self,
        codes: np.ndarray,
        effects: EffectArrays,
        shared: dict[str, np.ndarray],
        gens: list[np.random.Generator],
        watch: np.ndarray,
    ) -> tuple[QoEBatch, int]:
        n = codes.shape[0]
        params = self.params
        mean_bw, rtt, overhead, fail_p, k = (
            shared["mean_bw"], shared["rtt"], shared["overhead"],
            shared["fail_p"], shared["k"],
        )

        # Join check first — each child's second draw, matching the
        # scalar path where simulate_session draws it before the rate
        # path. Failed rows consume nothing further, as in the scalar
        # loop's early return.
        u_join = np.empty(n)
        for i, gen in enumerate(gens):
            u_join[i] = gen.random()
        failed = u_join < fail_p

        eff = self._effective_ladders(
            codes[:, 2], effects.bitrate_cap_kbps, k
        )
        live = codes[:, 3] != 0

        join_time = np.full(n, np.nan)
        played = np.zeros(n)
        raw_buffering = np.zeros(n)
        bitrate = np.full(n, np.nan)
        segments = 0

        def run_group(
            rows: np.ndarray,
            durations: np.ndarray,
            n_seg_row: np.ndarray | None,
        ) -> None:
            """One lockstep pass over ``rows`` on the ``durations`` grid."""
            nonlocal segments
            m = rows.size
            if m == 0:
                return
            n_segments = durations.size
            # Each row's rate-path blocks are drawn with its *own*
            # segment count, exactly as the scalar path's sample_path
            # call; ragged rows leave neutral filler (state-0 uniforms,
            # unit jitter) in the columns they never reach.
            if n_seg_row is None:
                uniforms = np.empty((m, n_segments))
                jitter = np.empty((m, n_segments))
                for r, i in enumerate(rows):
                    gen = gens[i]
                    uniforms[r] = gen.random(n_segments)
                    jitter[r] = np.exp(
                        gen.normal(0.0, DEFAULT_JITTER_SIGMA, size=n_segments)
                    )
            else:
                uniforms = np.zeros((m, n_segments))
                jitter = np.ones((m, n_segments))
                for r, i in enumerate(rows):
                    gen = gens[i]
                    t_i = int(n_seg_row[r])
                    uniforms[r, :t_i] = gen.random(t_i)
                    jitter[r, :t_i] = np.exp(
                        gen.normal(0.0, DEFAULT_JITTER_SIGMA, size=t_i)
                    )
            rates = markov_rate_matrix(
                mean_bw[rows], uniforms, jitter,
                self._mk_cum, self._mk_factors, initial_state=0,
            )
            result = simulate_batch(
                effective_ladders=eff[rows],
                segment_durations_s=durations,
                rates_kbps=rates,
                rtt_s=rtt[rows],
                watch_duration_s=watch[rows],
                join_overhead_s=overhead[rows],
                n_segments_per_row=n_seg_row,
                startup_buffer_s=params.startup_buffer_s,
                max_join_time_s=params.max_join_time_s,
            )
            segments += result.segments_downloaded
            join_time[rows] = result.join_time_s
            played[rows] = result.played_s
            raw_buffering[rows] = result.buffering_s
            bitrate[rows] = result.avg_bitrate_kbps
            failed[rows] |= result.failed

        # Ragged batches: live and VOD sessions have different segment
        # grids, so each class steps as its own lockstep group (ladders,
        # watch limits, RTTs stay per-row inside the group). Merging the
        # classes into one ragged pass on the long grid is *slower*:
        # the majority VOD rows would pad every per-step array for the
        # full live grid, trading a few ufunc dispatches for ~2.5x the
        # element work.
        for live_flag in (False, True):
            rows = np.flatnonzero((live == live_flag) & ~failed)
            run_group(
                rows,
                self._manifests[(0, live_flag)].segment_durations_s,
                None,
            )

        ok = ~failed
        extra = 0.02 * np.maximum(effects.buffering_factor - 1.0, 0.0)
        stall = np.minimum(
            raw_buffering + extra * played,
            np.maximum(played * 0.85, raw_buffering),
        )
        batch = QoEBatch(
            duration_s=np.where(ok, played + stall, 0.0),
            buffering_s=np.where(ok, stall, 0.0),
            join_time_s=np.where(ok, join_time, np.nan),
            bitrate_kbps=np.where(ok, bitrate, np.nan),
            join_failed=failed,
        )
        return batch, segments
