"""Mechanistic QoE engine: the player simulation behind the
``QoEEngine`` interface.

Implements the same contract as
:class:`repro.trace.qoe.StatisticalQoEEngine` but derives every metric
from chunk-level playback dynamics (:mod:`repro.sim.playback`). It is
orders of magnitude slower (a Python loop per session), so it backs
the ``mechanistic_*`` workloads used by tests, the engine-agreement
ablation, and examples rather than the week-scale benches.

Event-effect mapping (documented in DESIGN.md):

* ``bandwidth_factor`` scales the session's mean link rate (organic:
  affects ABR choices, stalls and join time alike);
* ``join_failure_odds`` scales the CDN join-failure odds;
* ``join_time_factor`` scales the CDN RTT and adds fixed startup
  overhead (remote player-module loads);
* ``buffering_factor`` adds uniform extra stall time proportional to
  playback (a stand-in for pathologies the chunk model does not
  represent, e.g. mid-path congestion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.abr import FixedBitrateABR, RateBasedABR
from repro.sim.bandwidth import MarkovBandwidth
from repro.sim.cdn import CDNServer
from repro.sim.playback import simulate_session
from repro.sim.segments import VideoManifest
from repro.trace.entities import CONNECTION_BANDWIDTH_KBPS, CONNECTION_TYPES, World
from repro.trace.qoe import EffectArrays, QoEBatch


@dataclass(frozen=True)
class MechanisticParams:
    """Knobs of the mechanistic engine."""

    vod_video_s: float = 300.0
    live_video_s: float = 1200.0
    watch_median_s: float = 240.0
    watch_sigma: float = 0.8
    segment_s: float = 4.0
    startup_buffer_s: float = 4.0
    join_overhead_per_factor_s: float = 0.8
    max_join_time_s: float = 60.0


class MechanisticQoEEngine:
    """Chunk-level implementation of the ``QoEEngine`` protocol."""

    def __init__(self, world: World, params: MechanisticParams | None = None) -> None:
        self.world = world
        self.params = params or MechanisticParams()
        self._conn_base = np.array(
            [CONNECTION_BANDWIDTH_KBPS[c] for c in CONNECTION_TYPES]
        )
        self._asn_quality = np.array([a.quality for a in world.asns])
        self._asn_region = world.region_of_asn
        self._cdn_quality = np.array([c.throughput_quality for c in world.cdns])
        self._cdn_coverage = np.array([c.region_coverage for c in world.cdns])
        self._manifests = {
            (site_idx, live): VideoManifest(
                ladder_kbps=world.sites[site_idx].ladder,
                segment_duration_s=self.params.segment_s,
                total_duration_s=(
                    self.params.live_video_s if live else self.params.vod_video_s
                ),
            )
            for site_idx in range(len(world.sites))
            for live in (False, True)
        }

    def generate(
        self,
        codes: np.ndarray,
        effects: EffectArrays,
        rng: np.random.Generator,
    ) -> QoEBatch:
        n = codes.shape[0]
        params = self.params
        duration = np.empty(n)
        buffering = np.empty(n)
        join_time = np.empty(n)
        bitrate = np.empty(n)
        failed = np.empty(n, dtype=bool)

        region = self._asn_region[codes[:, 0]]
        coverage = self._cdn_coverage[codes[:, 1], region]
        mean_bw = (
            self._conn_base[codes[:, 6]]
            * self._asn_quality[codes[:, 0]]
            * self._cdn_quality[codes[:, 1]]
            * coverage
            * effects.bandwidth_factor
        )
        watch = np.exp(
            rng.normal(np.log(params.watch_median_s), params.watch_sigma, size=n)
        )

        for i in range(n):
            site_idx = int(codes[i, 2])
            live = bool(codes[i, 3])
            manifest = self._manifests[(site_idx, live)]
            cap = effects.bitrate_cap_kbps[i]
            if np.isfinite(cap):
                # Throttled session: only rungs under the absolute cap
                # are offered (at least the lowest rung).
                allowed = tuple(
                    b for b in manifest.ladder_kbps if b <= cap
                ) or (float(cap),)
                manifest = VideoManifest(
                    ladder_kbps=allowed,
                    segment_duration_s=manifest.segment_duration_s,
                    total_duration_s=manifest.total_duration_s,
                )
            cdn_profile = self.world.cdns[int(codes[i, 1])]
            jt_factor = effects.join_time_factor[i]
            server = CDNServer(
                name=cdn_profile.name,
                rtt_s=(cdn_profile.base_rtt_ms / 1000.0)
                * jt_factor
                / max(coverage[i], 0.2),
                failure_prob=max(cdn_profile.failure_prob, 1e-4),
                throughput_cap_kbps=1e9,
            )
            abr = (
                FixedBitrateABR(rung=0)
                if manifest.n_rungs == 1
                else RateBasedABR()
            )
            bandwidth = MarkovBandwidth(
                mean_kbps=float(mean_bw[i]), rng=rng, initial_state=0
            )
            result = simulate_session(
                manifest=manifest,
                abr=abr,
                bandwidth=bandwidth,
                server=server,
                rng=rng,
                watch_duration_s=float(watch[i]),
                startup_buffer_s=params.startup_buffer_s,
                failure_odds=float(effects.join_failure_odds[i]),
                join_overhead_s=params.join_overhead_per_factor_s
                * max(jt_factor - 1.0, 0.0),
                max_join_time_s=params.max_join_time_s,
            )
            if result.failed:
                failed[i] = True
                duration[i] = 0.0
                buffering[i] = 0.0
                join_time[i] = np.nan
                bitrate[i] = np.nan
                continue
            failed[i] = False
            extra = 0.02 * max(effects.buffering_factor[i] - 1.0, 0.0)
            stall = min(
                result.buffering_s + extra * result.played_s,
                max(result.played_s * 0.85, result.buffering_s),
            )
            duration[i] = result.played_s + stall
            buffering[i] = stall
            join_time[i] = result.join_time_s
            bitrate[i] = result.avg_bitrate_kbps

        return QoEBatch(
            duration_s=duration,
            buffering_s=buffering,
            join_time_s=join_time,
            bitrate_kbps=bitrate,
            join_failed=failed,
        )
