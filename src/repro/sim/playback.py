"""Session playback simulation: the download/playout loop.

``simulate_session`` runs one session end to end:

1. join request to the CDN (may fail -> join failure);
2. startup: segments download until the startup buffer threshold is
   reached; elapsed wall time is the join time;
3. steady state: the ABR algorithm picks a rung per segment, the
   buffer drains in real time during downloads, stalls accumulate as
   buffering, and the player stops after ``watch_duration_s`` of wall
   time (users leave) or when the video ends.

The result carries the paper's four metrics plus diagnostics (rung
switches, stall events, per-rung playtime).

RNG draw layout (DESIGN.md §9): the join-failure uniform is consumed
first, then — when the bandwidth model supports it — the session's
whole rate path is pre-drawn as two fixed-size blocks via
:meth:`MarkovBandwidth.sample_path`. The lockstep batch engine
(:mod:`repro.sim.batch`) consumes per-session substreams in exactly
this order, which is what makes it bit-identical to this loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.abr import ABRAlgorithm
from repro.sim.bandwidth import MarkovBandwidth
from repro.sim.cdn import CDNServer
from repro.sim.playerbuffer import PlayerBuffer
from repro.sim.segments import VideoManifest


@dataclass
class PlaybackResult:
    """Outcome of one simulated session."""

    failed: bool
    join_time_s: float
    played_s: float
    buffering_s: float
    avg_bitrate_kbps: float
    rung_switches: int = 0
    stall_events: int = 0
    rung_playtime_s: dict[int, float] = field(default_factory=dict)
    #: Segment downloads actually simulated (diagnostics/metrics).
    segments_downloaded: int = 0

    @property
    def duration_s(self) -> float:
        """Total session duration: playback plus stalls."""
        return self.played_s + self.buffering_s

    @property
    def buffering_ratio(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.buffering_s / self.duration_s


_FAILED = dict(
    failed=True, join_time_s=float("nan"), played_s=0.0,
    buffering_s=0.0, avg_bitrate_kbps=float("nan"),
)


def simulate_session(
    manifest: VideoManifest,
    abr: ABRAlgorithm,
    bandwidth: MarkovBandwidth,
    server: CDNServer,
    rng: np.random.Generator,
    watch_duration_s: float | None = None,
    startup_buffer_s: float = 4.0,
    buffer_capacity_s: float = 60.0,
    failure_odds: float = 1.0,
    join_overhead_s: float = 0.0,
    max_join_time_s: float = 120.0,
) -> PlaybackResult:
    """Simulate one session; see module docstring for the phases.

    ``join_overhead_s`` models fixed startup work (DNS, player module
    loads — the paper's Chinese-ASN join-time anecdote is exactly a
    large such overhead). ``max_join_time_s`` converts a hopeless
    startup into a join failure (players time out).
    """
    if startup_buffer_s <= 0:
        raise ValueError("startup_buffer_s must be positive")
    if watch_duration_s is not None and watch_duration_s <= 0:
        raise ValueError("watch_duration_s must be positive")

    if server.join_fails(rng, odds_multiplier=failure_odds):
        return PlaybackResult(**_FAILED)

    n_segments = manifest.n_segments
    # Pre-draw the whole rate path as fixed-size blocks so the batch
    # engine can reproduce the draws; bandwidth models without the
    # array API fall back to stepwise draws.
    sample_path = getattr(bandwidth, "sample_path", None)
    rates = sample_path(n_segments) if sample_path is not None else None

    durations = manifest.segment_durations_s
    sizes = manifest.segment_sizes_kbits  # (n_rungs, n_segments)
    rtt_s = server.rtt_s

    buffer = PlayerBuffer(capacity_s=buffer_capacity_s)
    wall_clock = join_overhead_s
    join_time = None
    watched_wall_s = 0.0
    last_rung: int | None = None
    switches = 0
    rung_playtime: dict[int, float] = {}
    played = 0.0
    # Average bitrate accumulates per segment (not grouped by rung) so
    # the summation order matches the batch engine's bit for bit.
    bitrate_time = 0.0
    steady_time = 0.0

    limit = watch_duration_s if watch_duration_s is not None else float("inf")
    downloads = 0

    for index in range(n_segments):
        downloads += 1
        rate = float(rates[index]) if rates is not None else bandwidth.step().rate_kbps
        throughput = server.effective_throughput(rate)
        rung = abr.choose(manifest, throughput, buffer.level_s)
        if last_rung is not None and rung != last_rung:
            switches += 1
        last_rung = rung
        size_kbits = float(sizes[rung, index])
        seg_duration = float(durations[index])
        dl_time = rtt_s + size_kbits / throughput
        # Observed goodput includes the RTT hit.
        abr.observe(size_kbits / max(dl_time, 1e-9))

        if join_time is None:
            wall_clock += dl_time
            buffer.add(seg_duration)
            if buffer.level_s >= startup_buffer_s or index == n_segments - 1:
                join_time = wall_clock
                buffer.start_playback()
                if join_time > max_join_time_s:
                    return PlaybackResult(**_FAILED, segments_downloaded=downloads)
            continue

        # Steady state: the buffer drains while this segment downloads.
        before = buffer.level_s
        stall = buffer.drain(dl_time)
        play_now = min(dl_time - stall, before)
        played += play_now
        buffer.add(seg_duration)
        watched_wall_s += dl_time
        rung_playtime[rung] = rung_playtime.get(rung, 0.0) + seg_duration
        bitrate_time += manifest.ladder_kbps[rung] * seg_duration
        steady_time += seg_duration
        if watched_wall_s >= limit:
            break

    if join_time is None:  # pragma: no cover - guarded by loop structure
        join_time = wall_clock
        buffer.start_playback()

    # Drain whatever is left in the buffer (up to the watch limit).
    remaining_wall = max(limit - watched_wall_s, 0.0)
    drainable = min(buffer.level_s, remaining_wall)
    if np.isfinite(limit):
        played += drainable
    else:
        played += buffer.level_s

    # Average bitrate: time-weighted over rungs actually buffered.
    if steady_time > 0:
        avg_bitrate = bitrate_time / steady_time
    else:
        # Session too short to reach steady state: the startup rung.
        avg_bitrate = manifest.ladder_kbps[last_rung if last_rung is not None else 0]

    return PlaybackResult(
        failed=False,
        join_time_s=join_time,
        played_s=played,
        buffering_s=buffer.total_stall_s,
        avg_bitrate_kbps=avg_bitrate,
        rung_switches=switches,
        stall_events=buffer.stall_events,
        rung_playtime_s=rung_playtime,
        segments_downloaded=downloads,
    )
