"""Adaptive-bitrate algorithms.

Three classic families (the paper's related work, Section 7, studies
exactly these): a fixed-rung player (the "single bitrate" sites of
Table 3 degenerate to this), throughput-rate-based adaptation with an
EWMA estimator and safety margin, and buffer-based adaptation in the
style of BBA-0 (reservoir/cushion mapping from buffer level to rung).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.sim.segments import VideoManifest


class ABRAlgorithm(Protocol):
    """Per-session rung chooser (stateful across segments)."""

    def choose(
        self,
        manifest: VideoManifest,
        throughput_estimate_kbps: float,
        buffer_level_s: float,
    ) -> int:
        """Rung index for the next segment."""
        ...  # pragma: no cover

    def observe(self, throughput_kbps: float) -> None:
        """Feed the measured throughput of the last download."""
        ...  # pragma: no cover


@dataclass
class FixedBitrateABR:
    """Always plays one rung (clamped to the manifest)."""

    rung: int = 0

    def __post_init__(self) -> None:
        if self.rung < 0:
            raise ValueError("rung must be non-negative")

    def choose(
        self,
        manifest: VideoManifest,
        throughput_estimate_kbps: float,
        buffer_level_s: float,
    ) -> int:
        return min(self.rung, manifest.n_rungs - 1)

    def observe(self, throughput_kbps: float) -> None:
        pass


@dataclass
class RateBasedABR:
    """EWMA throughput estimate with a safety margin.

    Picks the highest rung below ``safety * estimate``. The estimator
    starts from the first observation.
    """

    safety: float = 0.85
    ewma_alpha: float = 0.4
    _estimate_kbps: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0 < self.safety <= 1:
            raise ValueError("safety must be in (0, 1]")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")

    @property
    def estimate_kbps(self) -> float | None:
        return self._estimate_kbps

    def choose(
        self,
        manifest: VideoManifest,
        throughput_estimate_kbps: float,
        buffer_level_s: float,
    ) -> int:
        estimate = (
            self._estimate_kbps
            if self._estimate_kbps is not None
            else throughput_estimate_kbps
        )
        return manifest.rung_below(self.safety * estimate)

    def observe(self, throughput_kbps: float) -> None:
        if throughput_kbps <= 0:
            raise ValueError("throughput must be positive")
        if self._estimate_kbps is None:
            self._estimate_kbps = throughput_kbps
        else:
            self._estimate_kbps = (
                self.ewma_alpha * throughput_kbps
                + (1.0 - self.ewma_alpha) * self._estimate_kbps
            )


def rate_based_rungs(
    effective_ladders: np.ndarray, estimates_kbps: np.ndarray, safety: float = 0.85
) -> np.ndarray:
    """Vectorized :meth:`RateBasedABR.choose` over a session batch.

    ``effective_ladders`` is ``(n, max_rungs)``, each row the session's
    cap-limited ladder padded with ``+inf``; ``estimates_kbps`` the
    current throughput estimates. Returns the highest rung whose bitrate
    is <= ``safety * estimate`` (rung 0 if none) — exactly
    ``manifest.rung_below(safety * estimate)``, which single-rung
    (fixed-bitrate) rows satisfy trivially.
    """
    counts = (effective_ladders <= safety * estimates_kbps[:, None]).sum(axis=1)
    return np.maximum(counts - 1, 0)


def ewma_update(
    estimates_kbps: np.ndarray, observed_kbps: np.ndarray, alpha: float = 0.4
) -> np.ndarray:
    """Vectorized :meth:`RateBasedABR.observe` over a session batch.

    ``estimates_kbps`` uses NaN for "no observation yet": NaN rows take
    the observation verbatim (the estimator starts from the first
    observation), others blend ``alpha * obs + (1 - alpha) * est`` —
    the same expression, term order, and rounding as the scalar path.
    """
    blended = alpha * observed_kbps + (1.0 - alpha) * estimates_kbps
    return np.where(np.isnan(estimates_kbps), observed_kbps, blended)


@dataclass
class BufferBasedABR:
    """BBA-0-style mapping from buffer occupancy to rung.

    Below the ``reservoir_s`` the lowest rung is used; above
    ``cushion_end_s`` the highest; in between the rung index scales
    linearly with buffer level.
    """

    reservoir_s: float = 8.0
    cushion_end_s: float = 30.0

    def __post_init__(self) -> None:
        if self.reservoir_s < 0:
            raise ValueError("reservoir must be non-negative")
        if self.cushion_end_s <= self.reservoir_s:
            raise ValueError("cushion_end must exceed reservoir")

    def choose(
        self,
        manifest: VideoManifest,
        throughput_estimate_kbps: float,
        buffer_level_s: float,
    ) -> int:
        if buffer_level_s <= self.reservoir_s:
            return 0
        if buffer_level_s >= self.cushion_end_s:
            return manifest.n_rungs - 1
        span = self.cushion_end_s - self.reservoir_s
        frac = (buffer_level_s - self.reservoir_s) / span
        return min(int(frac * manifest.n_rungs), manifest.n_rungs - 1)

    def observe(self, throughput_kbps: float) -> None:
        pass
