"""Lockstep vectorized playback: a whole session batch per step.

This is the batch twin of :func:`repro.sim.playback.simulate_session`.
Instead of running one Python loop per session, :func:`simulate_batch`
steps *all* sessions of a batch through segment ``t`` together:

* the Markov bandwidth chains advance as one vectorized categorical
  transition per column (:func:`markov_rate_matrix`);
* rate-based ABR is a ``searchsorted``-style count over each row's
  cap-limited ladder (:func:`repro.sim.abr.rate_based_rungs`);
* buffer fill/drain/stall is masked array arithmetic
  (:class:`repro.sim.playerbuffer.BatchPlayerBuffer`);
* join-failure / join-timeout / watch-limit exits are per-session done
  masks: a finished row simply drops out of the active mask while the
  rest of the batch keeps stepping.

Sessions in one call share the segment grid (``segment_durations_s``)
— the engine groups sessions by live/VOD class — but each row carries
its own ladder, RTT, watch limit, and join overhead, and may end its
grid early via ``n_segments_per_row`` (ragged batches).

Every arithmetic update mirrors the scalar loop operation for
operation in the same order, and the per-session RNG substreams are
consumed in the same blocked layout, so the results are bit-identical
to ``simulate_session`` (property-tested in
``tests/property/test_sim_batch_equivalence.py``; DESIGN.md §9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.abr import ewma_update, rate_based_rungs
from repro.sim.bandwidth import markov_states_step
from repro.sim.playerbuffer import BatchPlayerBuffer


@dataclass
class BatchPlaybackResult:
    """Per-session outcomes of one lockstep batch (all shape (m,))."""

    failed: np.ndarray
    join_time_s: np.ndarray
    played_s: np.ndarray
    buffering_s: np.ndarray
    avg_bitrate_kbps: np.ndarray
    #: Total segment downloads simulated across the batch (diagnostics).
    segments_downloaded: int = 0

    def __len__(self) -> int:
        return self.failed.shape[0]


def markov_rate_matrix(
    mean_kbps: np.ndarray,
    uniforms: np.ndarray,
    jitter: np.ndarray,
    cum_transitions: np.ndarray,
    state_factors: np.ndarray,
    initial_state: int = 0,
) -> np.ndarray:
    """Per-segment rates for a batch of Markov bandwidth chains.

    ``uniforms``/``jitter`` are ``(m, T)`` — each row a session's
    pre-drawn transition-uniform and jitter blocks (the exact blocks
    :meth:`MarkovBandwidth.sample_path` consumes). The chains advance
    one vectorized categorical transition per column via
    :func:`markov_states_step`, so row ``i`` of the result is bit
    identical to ``MarkovBandwidth(mean_kbps[i], ...).sample_path(T)``
    driven by the same draws.
    """
    m, n_steps = uniforms.shape
    factors = np.empty((m, n_steps), dtype=np.float64)
    states = np.full(m, initial_state, dtype=np.intp)
    for t in range(n_steps):
        states = markov_states_step(cum_transitions, states, uniforms[:, t])
        factors[:, t] = state_factors[states]
    rates = mean_kbps[:, None] * factors * jitter
    return np.maximum(rates, 1.0)


def simulate_batch(
    effective_ladders: np.ndarray,
    segment_durations_s: np.ndarray,
    rates_kbps: np.ndarray,
    rtt_s: np.ndarray,
    watch_duration_s: np.ndarray,
    join_overhead_s: np.ndarray,
    join_failed: np.ndarray | None = None,
    n_segments_per_row: np.ndarray | None = None,
    startup_buffer_s: float = 4.0,
    buffer_capacity_s: float = 60.0,
    max_join_time_s: float = 120.0,
    throughput_cap_kbps: float = 1e9,
    abr_safety: float = 0.85,
    abr_ewma_alpha: float = 0.4,
) -> BatchPlaybackResult:
    """Simulate ``m`` sessions in lockstep over ``T`` segments.

    ``effective_ladders`` is ``(m, max_rungs)`` with each row the
    session's cap-limited ladder padded by ``+inf``; ``rates_kbps`` is
    the ``(m, T)`` pre-drawn bandwidth path (:func:`markov_rate_matrix`);
    ``watch_duration_s`` must be finite. Rows already ``join_failed``
    never enter the active mask and come back as failed outputs.

    ``n_segments_per_row`` makes the batch *ragged*: row ``i`` only
    participates in segments ``t < n_segments_per_row[i]`` — its video
    simply ends earlier. This lets sessions on different grids share one
    lockstep pass, provided the shorter grid's durations are a prefix of
    ``segment_durations_s`` (the caller's responsibility).

    Exit semantics (DESIGN.md §9): a row leaves the active mask when its
    join times out (``join_time > max_join_time_s`` → failed), when its
    watch limit is reached, or when its own segment grid runs out; the
    loop stops early once every row is done.
    """
    if startup_buffer_s <= 0:
        raise ValueError("startup_buffer_s must be positive")
    m = effective_ladders.shape[0]
    n_segments = len(segment_durations_s)
    if rates_kbps.shape != (m, n_segments):
        raise ValueError("rates_kbps must be (m, n_segments)")
    if not np.all(np.isfinite(watch_duration_s)):
        raise ValueError("watch limits must be finite")
    if n_segments_per_row is not None and m > 0 and not np.all(
        (n_segments_per_row >= 1) & (n_segments_per_row <= n_segments)
    ):
        raise ValueError("n_segments_per_row must lie in [1, n_segments]")
    fail0 = (
        np.zeros(m, dtype=bool) if join_failed is None else join_failed.astype(bool)
    )

    est = np.full(m, np.nan)
    buf = BatchPlayerBuffer(m, capacity_s=buffer_capacity_s)
    wall = np.array(join_overhead_s, dtype=np.float64, copy=True)
    join_time = np.full(m, np.nan)
    joined = np.zeros(m, dtype=bool)
    timed_out = np.zeros(m, dtype=bool)
    done = np.zeros(m, dtype=bool)
    watched = np.zeros(m)
    played = np.zeros(m)
    bitrate_time = np.zeros(m)
    steady_time = np.zeros(m)
    last_bitrate = np.zeros(m)
    segments = 0
    rows = np.arange(m)

    active = ~fail0
    n_active = int(active.sum())
    ewma_rest = 1.0 - abr_ewma_alpha
    # Once the startup phase is globally over it never restarts (rows
    # only leave the active mask, `joined` only grows), so the phase
    # masks collapse to `steady == active`.
    startup_possible = True
    for t in range(n_segments):
        if n_active == 0:
            break
        dur = float(segment_durations_s[t])
        # Phase masks use `joined` from *before* this segment: the
        # segment that completes startup does not also play (the scalar
        # loop's `continue`).
        if startup_possible:
            steady = active & joined
            startup = active & ~joined
            in_startup = bool(startup.any())
            startup_possible = in_startup
        else:
            steady = active
            in_startup = False

        throughput = np.minimum(rates_kbps[:, t], throughput_cap_kbps)
        # Every row still in play observed a goodput at t == 0, so the
        # NaN fallback to the instantaneous throughput (the scalar
        # estimator "starts from the first observation") only matters
        # on the first segment.
        est_now = np.where(np.isnan(est), throughput, est) if t == 0 else est
        rung = rate_based_rungs(effective_ladders, est_now, abr_safety)
        bitrate = effective_ladders[rows, rung]
        size_kbits = dur * bitrate
        dl_time = rtt_s + size_kbits / throughput
        goodput = size_kbits / np.maximum(dl_time, 1e-9)
        # Inline :func:`ewma_update` (same expression, same term order):
        # its NaN branch can only fire before the first observation, so
        # the extra isnan/where pair is skipped for t > 0.
        blended = abr_ewma_alpha * goodput + ewma_rest * est
        if t == 0:
            blended = np.where(np.isnan(est), goodput, blended)
        est = np.where(active, blended, est)
        segments += n_active

        # The steady rows' buffers drain while the segment downloads
        # (shortfalls stall; only pre-download content plays), then
        # every active row banks the new segment.
        before = buf.level_s
        stall = buf.drain(dl_time, steady)
        play_now = np.minimum(dl_time - stall, before)
        buf.add(dur, active)

        played = np.where(steady, played + play_now, played)
        watched = np.where(steady, watched + dl_time, watched)
        bitrate_time = np.where(steady, bitrate_time + size_kbits, bitrate_time)
        steady_time = np.where(steady, steady_time + dur, steady_time)
        done |= steady & (watched >= watch_duration_s)

        if in_startup:
            wall = np.where(startup, wall + dl_time, wall)
            last_seg = (
                t == n_segments - 1
                if n_segments_per_row is None
                else n_segments_per_row == t + 1
            )
            complete = startup & (
                (buf.level_s >= startup_buffer_s) | last_seg
            )
            # A row joining on its very last segment never plays a
            # steady segment; its average-bitrate fallback is the rung
            # of this completing download (the scalar loop's last_rung).
            np.copyto(join_time, wall, where=complete)
            np.copyto(last_bitrate, bitrate, where=complete)
            joined |= complete
            timed_out |= complete & (join_time > max_join_time_s)

        active = ~fail0 & ~timed_out & ~done
        if n_segments_per_row is not None:
            active &= n_segments_per_row > t + 1
        n_active = int(active.sum())

    failed = fail0 | timed_out
    ok = ~failed
    # Drain whatever is left in each buffer (up to the watch limit).
    remaining = np.maximum(watch_duration_s - watched, 0.0)
    drainable = np.minimum(buf.level_s, remaining)
    played[ok] += drainable[ok]
    avg_bitrate = last_bitrate.copy()
    np.divide(bitrate_time, steady_time, out=avg_bitrate, where=steady_time > 0)

    return BatchPlaybackResult(
        failed=failed,
        join_time_s=np.where(ok, join_time, np.nan),
        played_s=np.where(ok, played, 0.0),
        buffering_s=np.where(ok, buf.total_stall_s, 0.0),
        avg_bitrate_kbps=np.where(ok, avg_bitrate, np.nan),
        segments_downloaded=segments,
    )
