"""Player buffer dynamics.

The buffer holds downloaded-but-unplayed media (seconds of content).
While a segment downloads the buffer drains in real time; when it hits
zero mid-stream the player stalls (rebuffering) until the download
completes. Startup follows the same dynamics but counts toward join
time instead of buffering (the paper measures the two separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class PlayerBuffer:
    """Seconds-of-content buffer with stall accounting."""

    capacity_s: float = 60.0
    level_s: float = 0.0
    playing: bool = False
    total_stall_s: float = field(default=0.0, init=False)
    stall_events: int = field(default=0, init=False)
    _in_stall: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_s <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= self.level_s <= self.capacity_s:
            raise ValueError("initial level out of range")

    @property
    def is_full(self) -> bool:
        return self.level_s >= self.capacity_s - 1e-9

    def headroom_s(self) -> float:
        return max(self.capacity_s - self.level_s, 0.0)

    def add(self, seconds: float) -> None:
        """Add downloaded content (clamped to capacity)."""
        if seconds < 0:
            raise ValueError("cannot add negative content")
        self.level_s = min(self.level_s + seconds, self.capacity_s)
        if self.playing and self.level_s > 0:
            self._in_stall = False

    def drain(self, wall_seconds: float) -> float:
        """Advance playback by ``wall_seconds``; returns stall seconds.

        While playing, the buffer drains one content-second per
        wall-second; any shortfall is a stall. When not playing (still
        joining) nothing drains.
        """
        if wall_seconds < 0:
            raise ValueError("cannot drain negative time")
        if not self.playing:
            return 0.0
        if self.level_s >= wall_seconds:
            self.level_s -= wall_seconds
            return 0.0
        stall = wall_seconds - self.level_s
        self.level_s = 0.0
        self.total_stall_s += stall
        if not self._in_stall:
            self.stall_events += 1
            self._in_stall = True
        return stall

    def start_playback(self) -> None:
        self.playing = True
        self._in_stall = False


class BatchPlayerBuffer:
    """Lockstep buffer dynamics for a session batch (DESIGN.md §9).

    One float64 level per session, updated with masked array arithmetic
    that mirrors :class:`PlayerBuffer` operation for operation — the
    same ``min``/``max``/subtractions in the same order, so a batched
    session's level is bit-identical to its scalar twin's. Sessions
    outside ``mask`` are left untouched by every update.

    Updates replace the level array rather than mutating it, so a
    caller holding a reference to ``level_s`` from before a drain still
    sees the pre-drain levels (the lockstep kernel uses this to compute
    played-while-downloading without a copy).
    """

    def __init__(self, n: int, capacity_s: float = 60.0) -> None:
        if capacity_s <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_s = capacity_s
        self.level_s = np.zeros(n, dtype=np.float64)
        self.total_stall_s = np.zeros(n, dtype=np.float64)

    def add(self, seconds: np.ndarray | float, mask: np.ndarray) -> None:
        """Masked :meth:`PlayerBuffer.add`: clamp to capacity."""
        self.level_s = np.where(
            mask, np.minimum(self.level_s + seconds, self.capacity_s), self.level_s
        )

    def drain(self, wall_seconds: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Masked :meth:`PlayerBuffer.drain`; returns per-session stalls.

        Rows with enough buffered content drain ``level -= wall`` with
        zero stall; short rows stall the difference and hit level 0 —
        the same two branches as the scalar buffer, selected per row.
        Returned stalls are zero outside ``mask``.
        """
        level = self.level_s
        short = level < wall_seconds
        stall = np.where(mask & short, wall_seconds - level, 0.0)
        self.level_s = np.where(
            mask, np.where(short, 0.0, level - wall_seconds), level
        )
        self.total_stall_s = np.where(
            mask, self.total_stall_s + stall, self.total_stall_s
        )
        return stall
