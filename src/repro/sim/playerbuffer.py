"""Player buffer dynamics.

The buffer holds downloaded-but-unplayed media (seconds of content).
While a segment downloads the buffer drains in real time; when it hits
zero mid-stream the player stalls (rebuffering) until the download
completes. Startup follows the same dynamics but counts toward join
time instead of buffering (the paper measures the two separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PlayerBuffer:
    """Seconds-of-content buffer with stall accounting."""

    capacity_s: float = 60.0
    level_s: float = 0.0
    playing: bool = False
    total_stall_s: float = field(default=0.0, init=False)
    stall_events: int = field(default=0, init=False)
    _in_stall: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_s <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= self.level_s <= self.capacity_s:
            raise ValueError("initial level out of range")

    @property
    def is_full(self) -> bool:
        return self.level_s >= self.capacity_s - 1e-9

    def headroom_s(self) -> float:
        return max(self.capacity_s - self.level_s, 0.0)

    def add(self, seconds: float) -> None:
        """Add downloaded content (clamped to capacity)."""
        if seconds < 0:
            raise ValueError("cannot add negative content")
        self.level_s = min(self.level_s + seconds, self.capacity_s)
        if self.playing and self.level_s > 0:
            self._in_stall = False

    def drain(self, wall_seconds: float) -> float:
        """Advance playback by ``wall_seconds``; returns stall seconds.

        While playing, the buffer drains one content-second per
        wall-second; any shortfall is a stall. When not playing (still
        joining) nothing drains.
        """
        if wall_seconds < 0:
            raise ValueError("cannot drain negative time")
        if not self.playing:
            return 0.0
        if self.level_s >= wall_seconds:
            self.level_s -= wall_seconds
            return 0.0
        stall = wall_seconds - self.level_s
        self.level_s = 0.0
        self.total_stall_s += stall
        if not self._in_stall:
            self.stall_events += 1
            self._in_stall = True
        return stall

    def start_playback(self) -> None:
        self.playing = True
        self._in_stall = False
