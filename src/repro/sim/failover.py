"""Mid-stream CDN failover — the multi-CDN remedy at chunk level.

The paper argues single-CDN "low priority" sites "could have
potentially benefited from using multiple CDNs" and cites multi-CDN
optimisation work. This module provides the mechanism: a session that
holds a list of candidate servers, retries its join on the next server
when one fails, and switches servers mid-stream when the current one
stalls playback beyond a tolerance. The shoot-out function quantifies
the benefit on identical network conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.sim.abr import ABRAlgorithm
from repro.sim.bandwidth import MarkovBandwidth
from repro.sim.cdn import CDNServer
from repro.sim.playerbuffer import PlayerBuffer
from repro.sim.segments import VideoManifest


@dataclass
class FailoverResult:
    """Outcome of one multi-CDN session."""

    failed: bool
    join_time_s: float
    played_s: float
    buffering_s: float
    avg_bitrate_kbps: float
    join_attempts: int = 1
    midstream_switches: int = 0
    servers_used: list[str] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.played_s + self.buffering_s

    @property
    def buffering_ratio(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.buffering_s / self.duration_s


def simulate_session_with_failover(
    manifest: VideoManifest,
    abr: ABRAlgorithm,
    bandwidth: MarkovBandwidth,
    servers: Sequence[CDNServer],
    rng: np.random.Generator,
    watch_duration_s: float | None = None,
    startup_buffer_s: float = 4.0,
    buffer_capacity_s: float = 60.0,
    failure_odds: float = 1.0,
    stall_tolerance_s: float = 4.0,
    switch_penalty_s: float = 0.5,
    max_join_time_s: float = 120.0,
) -> FailoverResult:
    """One session over an ordered server list.

    Join: servers are tried in order; the session only fails if *every*
    server rejects it. Playback: when cumulative stall time on the
    current server exceeds ``stall_tolerance_s``, the player pays
    ``switch_penalty_s`` (a stall) and moves to the next server
    (wrapping), resetting the stall budget.
    """
    if not servers:
        raise ValueError("need at least one server")
    if stall_tolerance_s <= 0 or switch_penalty_s < 0:
        raise ValueError("invalid failover parameters")

    # Join with failover.
    join_attempts = 0
    server_index = None
    for i, server in enumerate(servers):
        join_attempts += 1
        if not server.join_fails(rng, odds_multiplier=failure_odds):
            server_index = i
            break
    if server_index is None:
        return FailoverResult(
            failed=True, join_time_s=float("nan"), played_s=0.0,
            buffering_s=0.0, avg_bitrate_kbps=float("nan"),
            join_attempts=join_attempts,
        )

    buffer = PlayerBuffer(capacity_s=buffer_capacity_s)
    wall_clock = 0.0
    join_time = None
    watched_wall_s = 0.0
    played = 0.0
    switches = 0
    stall_on_server = 0.0
    servers_used = [servers[server_index].name]
    rung_playtime: dict[int, float] = {}
    last_rung: int | None = None
    limit = watch_duration_s if watch_duration_s is not None else float("inf")

    for index in range(manifest.n_segments):
        server = servers[server_index]
        sample = bandwidth.step()
        throughput = server.effective_throughput(sample.rate_kbps)
        rung = abr.choose(manifest, throughput, buffer.level_s)
        last_rung = rung
        segment = manifest.segment(index, rung)
        dl_time = segment.download_time(throughput, rtt_s=server.rtt_s)
        abr.observe(segment.size_kbits / max(dl_time, 1e-9))

        if join_time is None:
            wall_clock += dl_time
            buffer.add(segment.duration_s)
            if buffer.level_s >= startup_buffer_s or index == manifest.n_segments - 1:
                join_time = wall_clock
                buffer.start_playback()
                if join_time > max_join_time_s:
                    return FailoverResult(
                        failed=True, join_time_s=float("nan"), played_s=0.0,
                        buffering_s=0.0, avg_bitrate_kbps=float("nan"),
                        join_attempts=join_attempts,
                        midstream_switches=switches,
                        servers_used=servers_used,
                    )
            continue

        before = buffer.level_s
        stall = buffer.drain(dl_time)
        played += min(dl_time - stall, before)
        buffer.add(segment.duration_s)
        watched_wall_s += dl_time
        rung_playtime[rung] = rung_playtime.get(rung, 0.0) + segment.duration_s
        stall_on_server += stall

        if stall_on_server > stall_tolerance_s and len(servers) > 1:
            server_index = (server_index + 1) % len(servers)
            switches += 1
            stall_on_server = 0.0
            buffer.total_stall_s += switch_penalty_s
            if servers[server_index].name not in servers_used:
                servers_used.append(servers[server_index].name)

        if watched_wall_s >= limit:
            break

    if join_time is None:  # pragma: no cover - loop structure guards this
        join_time = wall_clock
        buffer.start_playback()

    remaining_wall = max(limit - watched_wall_s, 0.0)
    played += min(buffer.level_s, remaining_wall) if np.isfinite(limit) else buffer.level_s

    total_rung_time = sum(rung_playtime.values())
    if total_rung_time > 0:
        avg_bitrate = (
            sum(manifest.ladder_kbps[r] * t for r, t in rung_playtime.items())
            / total_rung_time
        )
    else:
        avg_bitrate = manifest.ladder_kbps[last_rung if last_rung is not None else 0]

    return FailoverResult(
        failed=False,
        join_time_s=join_time,
        played_s=played,
        buffering_s=buffer.total_stall_s,
        avg_bitrate_kbps=avg_bitrate,
        join_attempts=join_attempts,
        midstream_switches=switches,
        servers_used=servers_used,
    )


@dataclass
class FailoverComparison:
    """Aggregate single-CDN vs multi-CDN outcomes."""

    n_sessions: int
    single_failure_rate: float
    multi_failure_rate: float
    single_mean_buffering_ratio: float
    multi_mean_buffering_ratio: float
    mean_switches: float

    @property
    def failure_reduction(self) -> float:
        if self.single_failure_rate == 0:
            return 0.0
        return 1.0 - self.multi_failure_rate / self.single_failure_rate


def compare_single_vs_multi_cdn(
    manifest: VideoManifest,
    make_abr,
    servers: Sequence[CDNServer],
    mean_bandwidth_kbps: float,
    n_sessions: int = 200,
    seed: int = 0,
    failure_odds: float = 1.0,
    watch_duration_s: float = 180.0,
) -> FailoverComparison:
    """Shoot-out: first server only vs full failover list."""
    if len(servers) < 2:
        raise ValueError("need at least two servers to compare")
    single_fail = 0
    multi_fail = 0
    single_buf: list[float] = []
    multi_buf: list[float] = []
    switches = 0

    for mode in ("single", "multi"):
        rng = np.random.default_rng(seed)
        candidate = servers[:1] if mode == "single" else servers
        for _ in range(n_sessions):
            result = simulate_session_with_failover(
                manifest=manifest,
                abr=make_abr(),
                bandwidth=MarkovBandwidth(
                    mean_bandwidth_kbps, np.random.default_rng(rng.integers(2**31))
                ),
                servers=candidate,
                rng=rng,
                watch_duration_s=watch_duration_s,
                failure_odds=failure_odds,
            )
            if mode == "single":
                if result.failed:
                    single_fail += 1
                else:
                    single_buf.append(result.buffering_ratio)
            else:
                if result.failed:
                    multi_fail += 1
                else:
                    multi_buf.append(result.buffering_ratio)
                    switches += result.midstream_switches

    return FailoverComparison(
        n_sessions=n_sessions,
        single_failure_rate=single_fail / n_sessions,
        multi_failure_rate=multi_fail / n_sessions,
        single_mean_buffering_ratio=float(np.mean(single_buf)) if single_buf else 0.0,
        multi_mean_buffering_ratio=float(np.mean(multi_buf)) if multi_buf else 0.0,
        mean_switches=switches / max(n_sessions - multi_fail, 1),
    )
