"""Chunk-level player/CDN simulation substrate.

A mechanistic alternative to the statistical QoE engine: each session
is simulated segment by segment — a Markov-modulated bandwidth
process, an ABR algorithm choosing ladder rungs, a player buffer that
drains in real time and stalls when empty, and a CDN server with RTT,
capacity and failure behaviour. The same four quality metrics fall out
of the playback dynamics instead of being sampled from distributions.

The paper's metrics map to simulation outcomes as:

* join time — time from request to the startup buffer filling,
* buffering ratio — total stall time / session duration,
* average bitrate — time-weighted average of the rungs played,
* join failure — the CDN request failing before first byte.
"""

from repro.sim.bandwidth import BandwidthSample, MarkovBandwidth
from repro.sim.segments import Segment, VideoManifest
from repro.sim.abr import (
    ABRAlgorithm,
    BufferBasedABR,
    FixedBitrateABR,
    RateBasedABR,
)
from repro.sim.playerbuffer import PlayerBuffer
from repro.sim.cdn import CDNServer, SiteCDNSelector
from repro.sim.playback import PlaybackResult, simulate_session
from repro.sim.failover import (
    FailoverComparison,
    FailoverResult,
    compare_single_vs_multi_cdn,
    simulate_session_with_failover,
)
from repro.sim.engine import MechanisticQoEEngine

__all__ = [
    "BandwidthSample",
    "MarkovBandwidth",
    "Segment",
    "VideoManifest",
    "ABRAlgorithm",
    "BufferBasedABR",
    "FixedBitrateABR",
    "RateBasedABR",
    "PlayerBuffer",
    "CDNServer",
    "SiteCDNSelector",
    "PlaybackResult",
    "simulate_session",
    "FailoverComparison",
    "FailoverResult",
    "compare_single_vs_multi_cdn",
    "simulate_session_with_failover",
    "MechanisticQoEEngine",
]
