"""Video manifests and segments for the chunk-level simulation.

HTTP adaptive streaming (the delivery style behind the paper's
dataset) serves video as fixed-duration segments encoded at each rung
of a bitrate ladder; the player fetches one segment at a time at the
rung its ABR algorithm picks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np


@dataclass(frozen=True)
class Segment:
    """One media segment at a chosen rung."""

    index: int
    duration_s: float
    bitrate_kbps: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("segment index must be non-negative")
        if self.duration_s <= 0 or self.bitrate_kbps <= 0:
            raise ValueError("duration and bitrate must be positive")

    @property
    def size_kbits(self) -> float:
        """Payload size in kilobits."""
        return self.duration_s * self.bitrate_kbps

    def download_time(self, throughput_kbps: float, rtt_s: float = 0.0) -> float:
        """Seconds to fetch at ``throughput_kbps`` plus one RTT."""
        if throughput_kbps <= 0:
            raise ValueError("throughput must be positive")
        return rtt_s + self.size_kbits / throughput_kbps


@dataclass(frozen=True)
class VideoManifest:
    """A video: its ladder and segmentation."""

    ladder_kbps: tuple[float, ...]
    segment_duration_s: float = 4.0
    total_duration_s: float = 300.0

    def __post_init__(self) -> None:
        if not self.ladder_kbps:
            raise ValueError("ladder must have at least one rung")
        if list(self.ladder_kbps) != sorted(self.ladder_kbps):
            raise ValueError("ladder must be ascending")
        if any(b <= 0 for b in self.ladder_kbps):
            raise ValueError("bitrates must be positive")
        if self.segment_duration_s <= 0 or self.total_duration_s <= 0:
            raise ValueError("durations must be positive")

    @property
    def n_segments(self) -> int:
        """Number of segments (last one may be short; we count it)."""
        full, rem = divmod(self.total_duration_s, self.segment_duration_s)
        return int(full) + (1 if rem > 1e-9 else 0)

    @property
    def n_rungs(self) -> int:
        return len(self.ladder_kbps)

    @cached_property
    def ladder_array(self) -> np.ndarray:
        """The ladder as a read-only float64 array."""
        arr = np.asarray(self.ladder_kbps, dtype=np.float64)
        arr.flags.writeable = False
        return arr

    @cached_property
    def segment_durations_s(self) -> np.ndarray:
        """Per-segment durations (the last one may be short), read-only."""
        starts = np.arange(self.n_segments, dtype=np.float64) * self.segment_duration_s
        durations = np.minimum(self.segment_duration_s, self.total_duration_s - starts)
        durations.flags.writeable = False
        return durations

    @cached_property
    def segment_sizes_kbits(self) -> np.ndarray:
        """Payload sizes, shape ``(n_rungs, n_segments)``, read-only.

        ``segment_sizes_kbits[rung, index]`` equals
        ``segment(index, rung).size_kbits`` — the hot loops index this
        table instead of constructing :class:`Segment` objects per step.
        """
        sizes = self.ladder_array[:, None] * self.segment_durations_s[None, :]
        sizes.flags.writeable = False
        return sizes

    def segment(self, index: int, rung: int) -> Segment:
        """The ``index``-th segment encoded at ladder rung ``rung``."""
        if not 0 <= rung < self.n_rungs:
            raise ValueError(f"rung {rung} out of range 0..{self.n_rungs - 1}")
        if not 0 <= index < self.n_segments:
            raise ValueError(f"segment {index} out of range 0..{self.n_segments - 1}")
        start = index * self.segment_duration_s
        duration = min(self.segment_duration_s, self.total_duration_s - start)
        return Segment(
            index=index, duration_s=duration, bitrate_kbps=self.ladder_kbps[rung]
        )

    def rung_below(self, rate_kbps: float) -> int:
        """Highest rung with bitrate <= ``rate_kbps`` (lowest if none)."""
        rung = 0
        for i, bitrate in enumerate(self.ladder_kbps):
            if bitrate <= rate_kbps:
                rung = i
            else:
                break
        return rung
