"""Markov-modulated bandwidth process.

Access-link throughput over a session is modelled as a three-state
Markov chain (good / degraded / bad multipliers on the session's mean
rate) sampled once per segment download, with lognormal within-state
jitter. This captures the burstiness that makes ABR hard (the paper's
Section 7 cites rate-adaptation instability work) without simulating
packets.

Two consumption styles coexist (DESIGN.md §9):

* the stateful scalar API — :meth:`MarkovBandwidth.step` draws one
  segment at a time (interactive simulations, failover experiments);
* the array API — :meth:`MarkovBandwidth.sample_path` pre-draws a whole
  session's rates as two fixed-size blocks (one uniform block for the
  transitions, one normal block for the jitter). Both QoE engine paths
  (scalar loop and lockstep batch) consume this exact layout, which is
  what makes them bit-identical.

The lockstep helpers :func:`markov_state_path` (one chain, many steps)
and :func:`markov_states_step` (many chains, one step) share the same
cumulative-row ``searchsorted`` arithmetic, so a batch of chains stepped
column-by-column reproduces each per-session path bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default state multipliers: nominal, halved, heavily degraded.
DEFAULT_STATE_FACTORS: tuple[float, ...] = (1.0, 0.5, 0.15)

#: Default state-transition matrix (rows sum to 1): sticky good state,
#: occasional dips, rare deep fades.
DEFAULT_TRANSITIONS: tuple[tuple[float, ...], ...] = (
    (0.92, 0.06, 0.02),
    (0.30, 0.60, 0.10),
    (0.15, 0.25, 0.60),
)

#: Default lognormal within-state jitter sigma.
DEFAULT_JITTER_SIGMA: float = 0.25


@dataclass(frozen=True)
class BandwidthSample:
    """One draw of the process: rate in kbps and the hidden state."""

    rate_kbps: float
    state: int


def markov_state_path(
    cum_transitions: np.ndarray, initial_state: int, uniforms: np.ndarray
) -> np.ndarray:
    """Sequential state path of one chain driven by ``uniforms``.

    ``cum_transitions`` is the row-wise cumulative sum of the transition
    matrix. Each step is ``searchsorted(cum[state], u, side="right")``
    clipped to the last state (cumulative rows can fall a few ulps short
    of 1.0).
    """
    n_states = cum_transitions.shape[0]
    states = np.empty(len(uniforms), dtype=np.intp)
    state = initial_state
    for i, u in enumerate(uniforms):
        state = min(
            int(np.searchsorted(cum_transitions[state], u, side="right")),
            n_states - 1,
        )
        states[i] = state
    return states


def markov_states_step(
    cum_transitions: np.ndarray, states: np.ndarray, uniforms: np.ndarray
) -> np.ndarray:
    """One lockstep transition for a whole batch of chains.

    Vectorized equivalent of one :func:`markov_state_path` step applied
    to every chain: ``(cum[state] <= u).sum()`` is exactly
    ``searchsorted(cum[state], u, side="right")`` for the nondecreasing
    cumulative rows, so batch and sequential paths agree bit for bit.
    """
    nxt = (cum_transitions[states] <= uniforms[:, None]).sum(axis=1)
    return np.minimum(nxt, cum_transitions.shape[0] - 1)


class MarkovBandwidth:
    """Stateful per-segment bandwidth process for one session."""

    def __init__(
        self,
        mean_kbps: float,
        rng: np.random.Generator,
        state_factors: tuple[float, ...] = DEFAULT_STATE_FACTORS,
        transitions: tuple[tuple[float, ...], ...] = DEFAULT_TRANSITIONS,
        jitter_sigma: float = DEFAULT_JITTER_SIGMA,
        initial_state: int | None = None,
    ) -> None:
        if mean_kbps <= 0:
            raise ValueError("mean_kbps must be positive")
        matrix = np.asarray(transitions, dtype=np.float64)
        if matrix.shape != (len(state_factors), len(state_factors)):
            raise ValueError("transition matrix shape mismatch")
        if not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("transition rows must sum to 1")
        if np.any(matrix < 0):
            raise ValueError("transition probabilities must be non-negative")
        if jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        self.mean_kbps = mean_kbps
        self.state_factors = tuple(state_factors)
        self.transitions = matrix
        self.jitter_sigma = jitter_sigma
        self._factors = np.asarray(state_factors, dtype=np.float64)
        self._cum = np.cumsum(matrix, axis=1)
        self._rng = rng
        self.state = (
            int(initial_state)
            if initial_state is not None
            else int(rng.integers(0, len(state_factors)))
        )
        if not 0 <= self.state < len(state_factors):
            raise ValueError(f"initial_state {self.state} out of range")

    def step(self) -> BandwidthSample:
        """Advance one segment and sample the rate for its download."""
        u = self._rng.random()
        self.state = min(
            int(np.searchsorted(self._cum[self.state], u, side="right")),
            len(self.state_factors) - 1,
        )
        jitter = float(np.exp(self._rng.normal(0.0, self.jitter_sigma)))
        rate = self.mean_kbps * self.state_factors[self.state] * jitter
        return BandwidthSample(rate_kbps=max(rate, 1.0), state=self.state)

    def sample_path(self, n: int) -> np.ndarray:
        """Rates for ``n`` consecutive segments, pre-drawn as two blocks.

        Consumes exactly ``rng.random(n)`` (transition uniforms) then
        ``rng.normal(0, jitter_sigma, n)`` (jitter) — the fixed
        per-session substream layout shared by the scalar and batch QoE
        engines. Advances ``self.state`` to the path's final state.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        uniforms = self._rng.random(n)
        jitter = np.exp(self._rng.normal(0.0, self.jitter_sigma, size=n))
        states = markov_state_path(self._cum, self.state, uniforms)
        if n:
            self.state = int(states[-1])
        rates = self.mean_kbps * self._factors[states] * jitter
        return np.maximum(rates, 1.0)

    def sample_series(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``n`` consecutive steps as ``(rates, states)`` arrays.

        Array-form convenience over :meth:`sample_path` (same two-block
        draw layout); ``rates`` is float64 kbps, ``states`` the hidden
        state indices.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        uniforms = self._rng.random(n)
        jitter = np.exp(self._rng.normal(0.0, self.jitter_sigma, size=n))
        states = markov_state_path(self._cum, self.state, uniforms)
        if n:
            self.state = int(states[-1])
        rates = np.maximum(self.mean_kbps * self._factors[states] * jitter, 1.0)
        return rates, states
