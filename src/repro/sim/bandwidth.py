"""Markov-modulated bandwidth process.

Access-link throughput over a session is modelled as a three-state
Markov chain (good / degraded / bad multipliers on the session's mean
rate) sampled once per segment download, with lognormal within-state
jitter. This captures the burstiness that makes ABR hard (the paper's
Section 7 cites rate-adaptation instability work) without simulating
packets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default state multipliers: nominal, halved, heavily degraded.
DEFAULT_STATE_FACTORS: tuple[float, ...] = (1.0, 0.5, 0.15)

#: Default state-transition matrix (rows sum to 1): sticky good state,
#: occasional dips, rare deep fades.
DEFAULT_TRANSITIONS: tuple[tuple[float, ...], ...] = (
    (0.92, 0.06, 0.02),
    (0.30, 0.60, 0.10),
    (0.15, 0.25, 0.60),
)


@dataclass(frozen=True)
class BandwidthSample:
    """One draw of the process: rate in kbps and the hidden state."""

    rate_kbps: float
    state: int


class MarkovBandwidth:
    """Stateful per-segment bandwidth process for one session."""

    def __init__(
        self,
        mean_kbps: float,
        rng: np.random.Generator,
        state_factors: tuple[float, ...] = DEFAULT_STATE_FACTORS,
        transitions: tuple[tuple[float, ...], ...] = DEFAULT_TRANSITIONS,
        jitter_sigma: float = 0.25,
        initial_state: int | None = None,
    ) -> None:
        if mean_kbps <= 0:
            raise ValueError("mean_kbps must be positive")
        matrix = np.asarray(transitions, dtype=np.float64)
        if matrix.shape != (len(state_factors), len(state_factors)):
            raise ValueError("transition matrix shape mismatch")
        if not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("transition rows must sum to 1")
        if np.any(matrix < 0):
            raise ValueError("transition probabilities must be non-negative")
        if jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        self.mean_kbps = mean_kbps
        self.state_factors = tuple(state_factors)
        self.transitions = matrix
        self.jitter_sigma = jitter_sigma
        self._rng = rng
        self.state = (
            int(initial_state)
            if initial_state is not None
            else int(rng.integers(0, len(state_factors)))
        )
        if not 0 <= self.state < len(state_factors):
            raise ValueError(f"initial_state {self.state} out of range")

    def step(self) -> BandwidthSample:
        """Advance one segment and sample the rate for its download."""
        self.state = int(
            self._rng.choice(len(self.state_factors), p=self.transitions[self.state])
        )
        jitter = float(np.exp(self._rng.normal(0.0, self.jitter_sigma)))
        rate = self.mean_kbps * self.state_factors[self.state] * jitter
        return BandwidthSample(rate_kbps=max(rate, 1.0), state=self.state)

    def sample_series(self, n: int) -> list[BandwidthSample]:
        """Sample ``n`` consecutive steps (convenience for tests)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return [self.step() for _ in range(n)]
