"""Ground-truth problem events planted into the synthetic trace.

The paper observes problems in the wild and infers structure; we invert
the process: plant a structured catalogue of quality-degradation events
and verify the pipeline recovers them. An event constrains a set of
attributes (e.g. ``{cdn: cdn_03}`` or ``{asn: AS10007, connection_type:
mobile_wireless}``), is active over specific epochs (possibly recurring
daily), and multiplies QoE model factors for matching sessions.

The catalogue mixes four classes, mirroring the paper's findings:

* **chronic** — structural, high-prevalence conditions modelled on the
  Table 3 anecdotes (Asian ISPs with buffering trouble, single-bitrate
  sites, in-house CDNs with long join times, low-priority sites on a
  shared global CDN, wireless providers with low bitrates, ...);
* **major** — multi-hour outages on a single attribute (Site/CDN/ASN/
  ConnectionType), some recurring across days;
* **minor** — shorter degradations, sometimes on two-attribute
  combinations (a bad CDN-ASN path, a site's streams on one access
  type);
* **transient** — one-epoch blips.

Durations are heavy-tailed so that the persistence distribution has the
paper's shape (most events >= 2 h, a tail of day-long ones). Each event
predominantly targets one quality metric, which keeps the cross-metric
overlap low (paper Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from repro.core.clusters import ClusterKey
from repro.trace.entities import CONNECTION_TYPES, World

#: Metric families an event can predominantly target.
METRIC_FAMILIES: tuple[str, ...] = (
    "buffering_ratio",
    "bitrate",
    "join_time",
    "join_failure",
)


@dataclass(frozen=True)
class EventEffects:
    """Multiplicative QoE degradations applied to matching sessions.

    ``bandwidth_factor`` scales the session's effective bandwidth
    (affecting bitrate selection and buffering stress);
    ``bitrate_cap_kbps`` is an *absolute* ceiling on the rungs offered
    to matching sessions (throttling / a degraded low-rung-only
    manifest) — absolute, so the degradation is uniform across the
    cluster's sub-slices regardless of each user's access speed;
    ``buffering_factor``/``join_time_factor`` raise the respective
    metric directly; ``join_failure_odds`` multiplies the failure odds.
    Neutral values: 1.0 for factors, +inf for the cap.
    """

    bandwidth_factor: float = 1.0
    bitrate_cap_kbps: float = float("inf")
    buffering_factor: float = 1.0
    join_time_factor: float = 1.0
    join_failure_odds: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "bandwidth_factor",
            "bitrate_cap_kbps",
            "buffering_factor",
            "join_time_factor",
            "join_failure_odds",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def combine(self, other: "EventEffects") -> "EventEffects":
        """Compose two effect sets (factors multiply)."""
        return EventEffects(
            bandwidth_factor=self.bandwidth_factor * other.bandwidth_factor,
            bitrate_cap_kbps=min(self.bitrate_cap_kbps, other.bitrate_cap_kbps),
            buffering_factor=self.buffering_factor * other.buffering_factor,
            join_time_factor=self.join_time_factor * other.join_time_factor,
            join_failure_odds=self.join_failure_odds * other.join_failure_odds,
        )

    @property
    def is_neutral(self) -> bool:
        return (
            self.bandwidth_factor == 1.0
            and self.bitrate_cap_kbps == float("inf")
            and self.buffering_factor == 1.0
            and self.join_time_factor == 1.0
            and self.join_failure_odds == 1.0
        )


NEUTRAL_EFFECTS = EventEffects()


@dataclass(frozen=True)
class GroundTruthEvent:
    """One planted quality-degradation event."""

    event_id: str
    tag: str
    category: str  # "chronic" | "major" | "minor" | "transient"
    primary_metric: str
    constraints: tuple[tuple[str, str], ...]  # (attribute, label) pairs
    start_epoch: int
    duration_epochs: int
    effects: EventEffects
    recurrence_period: int | None = None  # e.g. 24 for daily
    recurrence_active: int | None = None  # active epochs per period

    def __post_init__(self) -> None:
        if self.primary_metric not in METRIC_FAMILIES:
            raise ValueError(f"unknown metric family {self.primary_metric!r}")
        if self.category not in ("chronic", "major", "minor", "transient"):
            raise ValueError(f"unknown category {self.category!r}")
        if not self.constraints:
            raise ValueError("event must constrain at least one attribute")
        if self.start_epoch < 0 or self.duration_epochs < 1:
            raise ValueError("invalid event window")
        if (self.recurrence_period is None) != (self.recurrence_active is None):
            raise ValueError("recurrence period and active length go together")
        if self.recurrence_period is not None:
            if self.recurrence_period < 1 or not (
                1 <= self.recurrence_active <= self.recurrence_period
            ):
                raise ValueError("invalid recurrence parameters")

    @property
    def end_epoch(self) -> int:
        """First epoch after the event window."""
        return self.start_epoch + self.duration_epochs

    @property
    def cluster_key(self) -> ClusterKey:
        """The attribute combination this event degrades."""
        return ClusterKey.from_mapping(dict(self.constraints))

    def is_active(self, epoch: int) -> bool:
        if not self.start_epoch <= epoch < self.end_epoch:
            return False
        if self.recurrence_period is None:
            return True
        return (epoch - self.start_epoch) % self.recurrence_period < (
            self.recurrence_active or 0
        )

    def active_epochs(self, n_epochs: int) -> np.ndarray:
        """Boolean activity vector over ``n_epochs``."""
        active = np.zeros(n_epochs, dtype=bool)
        for epoch in range(
            max(self.start_epoch, 0), min(self.end_epoch, n_epochs)
        ):
            active[epoch] = self.is_active(epoch)
        return active

    def prevalence(self, n_epochs: int) -> float:
        if n_epochs == 0:
            return 0.0
        return float(self.active_epochs(n_epochs).sum()) / n_epochs


@dataclass
class EventCatalog:
    """The full set of planted events for one trace."""

    events: list[GroundTruthEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def active_at(self, epoch: int) -> list[GroundTruthEvent]:
        return [e for e in self.events if e.is_active(epoch)]

    def by_category(self, category: str) -> list[GroundTruthEvent]:
        return [e for e in self.events if e.category == category]

    def by_metric(self, metric: str) -> list[GroundTruthEvent]:
        return [e for e in self.events if e.primary_metric == metric]

    def keys(self) -> set[ClusterKey]:
        return {e.cluster_key for e in self.events}


@dataclass(frozen=True)
class EventConfig:
    """Catalogue shape, expressed per 168 epochs (one week)."""

    chronic_per_metric: int = 2
    major_per_week: int = 10
    minor_per_week: int = 24
    transient_per_week: int = 30
    major_duration_median_h: float = 6.0
    minor_duration_median_h: float = 2.5
    duration_sigma: float = 0.8
    chronic_daily_active_h: int = 17  # ~0.7 prevalence (> the 60% bar)
    include_themed_chronics: bool = True

    def __post_init__(self) -> None:
        if min(
            self.chronic_per_metric,
            self.major_per_week,
            self.minor_per_week,
            self.transient_per_week,
        ) < 0:
            raise ValueError("event counts must be non-negative")
        if not 1 <= self.chronic_daily_active_h <= 24:
            raise ValueError("chronic_daily_active_h must be in [1, 24]")


# Effect templates per metric family: (mild, severe) ranges used when
# sampling random events.
_EFFECT_RANGES: dict[str, dict[str, tuple[float, float]]] = {
    "buffering_ratio": {"buffering_factor": (3.0, 9.0)},
    "bitrate": {"bitrate_cap_kbps": (350.0, 650.0)},
    "join_time": {"join_time_factor": (3.0, 8.0)},
    "join_failure": {"join_failure_odds": (12.0, 45.0)},
}


def _effects_for(metric: str, severity: float) -> EventEffects:
    """Interpolate an effect set for ``metric`` at ``severity`` in [0,1]."""
    if not 0 <= severity <= 1:
        raise ValueError("severity must be in [0, 1]")
    kwargs: dict[str, float] = {}
    for name, (lo, hi) in _EFFECT_RANGES[metric].items():
        if name in ("bandwidth_factor", "bitrate_cap_kbps"):
            # Lower is worse for these: severity 1 -> lo.
            kwargs[name] = hi - severity * (hi - lo)
        else:
            kwargs[name] = lo + severity * (hi - lo)
    return EventEffects(**kwargs)


def _sample_duration(
    rng: np.random.Generator, median_h: float, sigma: float, n_epochs: int
) -> int:
    hours = float(np.exp(rng.normal(np.log(median_h), sigma)))
    return int(np.clip(round(hours), 1, max(n_epochs, 1)))


def _popular_index(
    rng: np.random.Generator, weights: np.ndarray, top_fraction: float = 0.5
) -> int:
    """Sample an entity index among the most popular ``top_fraction``.

    Events must hit clusters large enough to pass the significance
    floor, so random events avoid the deep unpopular tail; within the
    top fraction the choice is uniform, spreading events across
    entities instead of piling onto the few most popular ones.
    """
    order = np.argsort(weights)[::-1]
    top = order[: max(1, int(len(order) * top_fraction))]
    return int(rng.choice(top))


def generate_catalog(
    world: World,
    n_epochs: int,
    config: EventConfig | None = None,
    rng: np.random.Generator | None = None,
) -> EventCatalog:
    """Build the structured ground-truth catalogue for a trace."""
    config = config or EventConfig()
    rng = rng or np.random.default_rng(0)
    catalog = EventCatalog()
    weeks = max(n_epochs / 168.0, 1e-9)

    if config.include_themed_chronics:
        catalog.events.extend(_themed_chronic_events(world, n_epochs, config, rng))

    counter = len(catalog.events)
    site_w = np.array([s.weight for s in world.sites])
    asn_w = np.array([a.weight for a in world.asns])

    def constraint_for(
        attr_type: str, top_fraction: float
    ) -> tuple[tuple[str, str], ...]:
        if attr_type == "site":
            idx = _popular_index(rng, site_w, top_fraction)
            return (("site", world.sites[idx].name),)
        if attr_type == "cdn":
            idx = int(rng.integers(0, len(world.cdns)))
            return (("cdn", world.cdns[idx].name),)
        if attr_type == "asn":
            idx = _popular_index(rng, asn_w, top_fraction)
            return (("asn", world.asns[idx].name),)
        if attr_type == "connection_type":
            conn = CONNECTION_TYPES[int(rng.integers(0, len(CONNECTION_TYPES)))]
            return (("connection_type", conn),)
        raise ValueError(f"unknown attribute type {attr_type!r}")

    attr_types = ("site", "cdn", "asn", "connection_type")
    attr_probs = np.array([0.40, 0.25, 0.25, 0.10])

    def spawn(
        category: str,
        n: int,
        median_h: float,
        two_attr_prob: float,
        top_fraction: float,
    ) -> None:
        nonlocal counter
        for _ in range(n):
            metric = METRIC_FAMILIES[int(rng.integers(0, len(METRIC_FAMILIES)))]
            attr_type = str(rng.choice(attr_types, p=attr_probs))
            constraints = constraint_for(attr_type, top_fraction)
            if rng.random() < two_attr_prob:
                other_types = [t for t in attr_types if t != attr_type]
                extra = constraint_for(str(rng.choice(other_types)), top_fraction)
                constraints = tuple(sorted(constraints + extra))
            duration = (
                1
                if category == "transient"
                else _sample_duration(rng, median_h, config.duration_sigma, n_epochs)
            )
            start = int(rng.integers(0, max(n_epochs - duration, 0) + 1))
            severity = float(rng.uniform(0.5, 1.0))
            event = GroundTruthEvent(
                event_id=f"ev{counter:04d}",
                tag=f"{category}-{attr_type}-{metric}",
                category=category,
                primary_metric=metric,
                constraints=constraints,
                start_epoch=start,
                duration_epochs=duration,
                effects=_effects_for(metric, severity),
            )
            # A few major events recur daily over several days,
            # producing the high-prevalence tail of Figure 7.
            if category == "major" and rng.random() < 0.3 and n_epochs >= 72:
                span = min(n_epochs - event.start_epoch, 24 * int(rng.integers(2, 5)))
                event = replace(
                    event,
                    duration_epochs=max(span, 1),
                    recurrence_period=24,
                    recurrence_active=max(
                        min(event.duration_epochs, 12), 2
                    ),
                )
            catalog.events.append(event)
            counter += 1

    # Majors hit popular (hence statistically visible) entities; the
    # tail of transients may land on entities too small to ever form a
    # significant cluster — exactly the paper's uncovered residue.
    spawn("major", int(round(config.major_per_week * weeks)),
          config.major_duration_median_h, two_attr_prob=0.15, top_fraction=0.08)
    spawn("minor", int(round(config.minor_per_week * weeks)),
          config.minor_duration_median_h, two_attr_prob=0.35, top_fraction=0.2)
    spawn("transient", int(round(config.transient_per_week * weeks)),
          1.0, two_attr_prob=0.25, top_fraction=0.5)
    return catalog


def _pick(
    rng: np.random.Generator,
    candidates: Sequence[int],
    n: int,
    weights: Sequence[float] | None = None,
) -> list[int]:
    """Choose ``n`` distinct candidates, preferring popular ones.

    Chronic conditions must surface as statistically significant
    clusters, so when popularity weights are supplied the choice is
    restricted to the most popular half of the candidate set (ordered,
    then sampled without replacement).
    """
    if not candidates:
        return []
    n = min(n, len(candidates))
    pool = list(candidates)
    if weights is not None:
        order = sorted(pool, key=lambda i: -weights[i])
        pool = order[: max(n, (len(order) + 1) // 2)]
    return [int(i) for i in rng.choice(pool, size=min(n, len(pool)), replace=False)]


def _themed_chronic_events(
    world: World,
    n_epochs: int,
    config: EventConfig,
    rng: np.random.Generator,
) -> list[GroundTruthEvent]:
    """The Table 3 anecdotes as chronic, high-prevalence events."""
    events: list[GroundTruthEvent] = []
    n = config.chronic_per_metric
    active_h = config.chronic_daily_active_h

    def chronic(tag: str, metric: str, constraints: Iterable[tuple[str, str]],
                effects: EventEffects) -> None:
        # Stagger each chronic condition's daily phase: with every
        # chronic event active over the same hours, the per-metric
        # problem ratios would swing in lockstep, but the paper finds
        # the metrics only weakly temporally correlated (Figure 2).
        phase = int(rng.integers(0, 24)) if n_epochs > 24 else 0
        events.append(
            GroundTruthEvent(
                event_id=f"chronic{len(events):03d}",
                tag=tag,
                category="chronic",
                primary_metric=metric,
                constraints=tuple(sorted(constraints)),
                start_epoch=phase,
                duration_epochs=n_epochs - phase,
                effects=effects,
                recurrence_period=24,
                recurrence_active=active_h,
            )
        )

    asn_weights = [a.weight for a in world.asns]
    site_weights = [s.weight for s in world.sites]
    asian = [i for i, a in enumerate(world.asns) if a.region in ("cn", "apac")]
    chinese = [i for i, a in enumerate(world.asns) if a.region == "cn"]
    wireless = [i for i, a in enumerate(world.asns) if a.wireless]
    single_bitrate_sites = [i for i, s in enumerate(world.sites) if s.single_bitrate]
    high_bitrate_sites = [
        i for i, s in enumerate(world.sites) if min(s.ladder) >= 3000.0
    ]
    ugc_sites = [i for i, s in enumerate(world.sites) if s.genre == "ugc"]
    in_house_cdns = [i for i, c in enumerate(world.cdns) if c.kind in ("in_house", "isp")]
    global_cdns = [i for i, c in enumerate(world.cdns) if c.kind == "global"]

    # BufRatio row: Asian ISPs, in-house/single-bitrate sites, mobile wireless.
    for i in _pick(rng, asian, n, asn_weights):
        chronic("asian-isp-buffering", "buffering_ratio",
                [("asn", world.asns[i].name)], EventEffects(buffering_factor=6.0))
    for i in _pick(rng, single_bitrate_sites, n, site_weights):
        chronic("single-bitrate-site-buffering", "buffering_ratio",
                [("site", world.sites[i].name)], EventEffects(buffering_factor=5.0))
    chronic("mobile-wireless-buffering", "buffering_ratio",
            [("connection_type", "mobile_wireless")],
            EventEffects(buffering_factor=2.8))

    # JoinTime row: Chinese ISPs loading player modules from US CDNs,
    # in-house CDNs of UGC providers, high-bitrate sites.
    for i in _pick(rng, chinese, n, asn_weights):
        chronic("cn-isp-us-player-modules", "join_time",
                [("asn", world.asns[i].name)], EventEffects(join_time_factor=6.0))
    # Structural in-house/ISP CDN weaknesses: profiles are healthy by
    # construction (entities._build_cdns), so each weak CDN's single
    # deficiency is planted here — one metric per CDN, which keeps the
    # cross-metric critical sets decoupled (paper Table 2).
    weakness_cycle = (
        ("in-house-cdn-join-time", "join_time",
         EventEffects(join_time_factor=4.5)),
        ("in-house-cdn-failures", "join_failure",
         EventEffects(join_failure_odds=20.0)),
        ("in-house-cdn-congestion", "buffering_ratio",
         EventEffects(buffering_factor=4.0)),
    )
    for j, i in enumerate(in_house_cdns):
        tag, weak_metric, weak_effects = weakness_cycle[j % len(weakness_cycle)]
        chronic(tag, weak_metric, [("cdn", world.cdns[i].name)], weak_effects)
    for i in _pick(rng, high_bitrate_sites, n, site_weights):
        chronic("high-bitrate-site-join-time", "join_time",
                [("site", world.sites[i].name)], EventEffects(join_time_factor=3.5))

    # JoinFailure row: the buffering ASNs again (paper: "same set as
    # buffering ratio"), low-priority sites on the same global CDN.
    for i in _pick(rng, asian, n, asn_weights):
        chronic("asian-isp-join-failure", "join_failure",
                [("asn", world.asns[i].name)], EventEffects(join_failure_odds=25.0))
    if global_cdns:
        shared_cdn = global_cdns[0]
        low_priority = [
            i for i, s in enumerate(world.sites)
            if len(s.cdn_indices) == 1 and s.cdn_indices[0] == shared_cdn
        ]
        if not low_priority:
            low_priority = [
                i for i, s in enumerate(world.sites) if shared_cdn in s.cdn_indices
            ]
        for i in _pick(rng, low_priority, n, site_weights):
            chronic("low-priority-site-on-shared-global-cdn", "join_failure",
                    [("site", world.sites[i].name)],
                    EventEffects(join_failure_odds=30.0))

    # Bitrate row: wireless providers, UGC sites.
    for i in _pick(rng, wireless, n, asn_weights):
        chronic("wireless-provider-bitrate", "bitrate",
                [("asn", world.asns[i].name)],
                EventEffects(bitrate_cap_kbps=500.0))
    for i in _pick(rng, ugc_sites, n, site_weights):
        chronic("ugc-site-bitrate", "bitrate",
                [("site", world.sites[i].name)],
                EventEffects(bitrate_cap_kbps=600.0))
    return events
