"""Statistical QoE engine: attribute codes + event effects -> metrics.

This engine turns a batch of sampled sessions into the four quality
measurements via a parametric model of the delivery path:

* effective bandwidth = access-technology base rate x ASN quality x CDN
  throughput x CDN regional coverage x lognormal churn x event factor;
* average bitrate = the highest ladder rung under an ABR safety margin
  of the bandwidth (lowest rung when even that does not fit) — matching
  how rate-adaptation picks a sustainable rate;
* buffering ratio grows quadratically with "stress" (chosen bitrate vs
  sustainable rate) with lognormal noise;
* join time = CDN RTT-driven base x heavy lognormal tail;
* join failure = odds-scaled Bernoulli seeded by CDN failure rates and
  coverage gaps.

The constants are calibrated so the *baseline* (event-free) trace shows
the paper's Figure 1 shape: ~5% of sessions over 5% buffering ratio,
~5% of join times over 10 s, ~80% of bitrates under 2 Mbps, and a low
percent of join failures; planted events then concentrate extra
problem mass on their attribute combinations.

A mechanistic alternative backed by the chunk-level player simulation
lives in :mod:`repro.sim.engine`; both implement ``QoEEngine``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.obs import current_metrics
from repro.trace.entities import (
    CONNECTION_BANDWIDTH_KBPS,
    CONNECTION_TYPES,
    REGIONS,
    World,
)

#: ABR safety margin: players pick a rung at most this fraction of the
#: estimated bandwidth.
ABR_SAFETY_MARGIN = 0.85

#: Cap on buffering ratio (a player past this abandons rather than
#: stalls forever).
MAX_BUFFERING_RATIO = 0.85


@dataclass
class EffectArrays:
    """Per-session multiplicative event effects (all shape (n,))."""

    bandwidth_factor: np.ndarray
    bitrate_cap_kbps: np.ndarray
    buffering_factor: np.ndarray
    join_time_factor: np.ndarray
    join_failure_odds: np.ndarray

    @classmethod
    def neutral(cls, n: int) -> "EffectArrays":
        ones = np.ones(n, dtype=np.float64)
        caps = np.full(n, np.inf)
        return cls(ones.copy(), caps, ones.copy(), ones.copy(), ones.copy())

    def __len__(self) -> int:
        return self.bandwidth_factor.shape[0]


@dataclass
class QoEBatch:
    """Generated quality measurements for a batch of sessions."""

    duration_s: np.ndarray
    buffering_s: np.ndarray
    join_time_s: np.ndarray
    bitrate_kbps: np.ndarray
    join_failed: np.ndarray

    def __len__(self) -> int:
        return self.duration_s.shape[0]


class QoEEngine(Protocol):
    """Interface shared by the statistical and mechanistic engines."""

    def generate(
        self,
        codes: np.ndarray,
        effects: EffectArrays,
        rng: np.random.Generator,
    ) -> QoEBatch:
        """Produce metrics for sessions with attribute ``codes``.

        ``codes`` is an (n, 7) int array in the canonical schema order
        (asn, cdn, site, content_type, player, browser,
        connection_type), coded against the world's vocabularies.
        """
        ...  # pragma: no cover


@dataclass(frozen=True)
class QoEModelParams:
    """Calibration constants of the statistical model."""

    bandwidth_sigma: float = 0.5
    base_buffering: float = 0.02
    buffering_sigma: float = 1.0
    stress_exponent: float = 3.0
    min_stress: float = 0.15
    join_base_s: float = 1.0
    join_rtt_mult: float = 6.0
    join_sigma: float = 0.9
    base_failure_prob: float = 0.001
    vod_duration_median_s: float = 480.0
    live_duration_median_s: float = 960.0
    duration_sigma: float = 1.0
    min_duration_s: float = 30.0
    max_duration_s: float = 7200.0


class StatisticalQoEEngine:
    """Vectorised distribution-based QoE engine."""

    def __init__(self, world: World, params: QoEModelParams | None = None) -> None:
        self.world = world
        self.params = params or QoEModelParams()
        self._asn_quality = np.array([a.quality for a in world.asns])
        self._asn_region = world.region_of_asn
        self._conn_base = np.array(
            [CONNECTION_BANDWIDTH_KBPS[c] for c in CONNECTION_TYPES]
        )
        self._cdn_quality = np.array([c.throughput_quality for c in world.cdns])
        self._cdn_rtt_s = np.array([c.base_rtt_ms / 1000.0 for c in world.cdns])
        self._cdn_fail = np.array([c.failure_prob for c in world.cdns])
        self._cdn_coverage = np.array(
            [c.region_coverage for c in world.cdns]
        )  # (n_cdns, n_regions)
        self._ladders = [np.array(s.ladder) for s in world.sites]
        self._live_code = 1  # CONTENT_TYPES order is ("vod", "live")

    # -- pieces ---------------------------------------------------------
    def effective_bandwidth(
        self, codes: np.ndarray, effects: EffectArrays, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-session sustainable download rate, kbps."""
        asn, cdn, conn = codes[:, 0], codes[:, 1], codes[:, 6]
        region = self._asn_region[asn]
        coverage = self._cdn_coverage[cdn, region]
        churn = np.exp(rng.normal(0.0, self.params.bandwidth_sigma, size=len(asn)))
        return (
            self._conn_base[conn]
            * self._asn_quality[asn]
            * self._cdn_quality[cdn]
            * coverage
            * churn
            * effects.bandwidth_factor
        )

    def select_bitrates(self, site_codes: np.ndarray, bandwidth: np.ndarray) -> np.ndarray:
        """ABR rung choice: highest rung within the safety margin."""
        target = ABR_SAFETY_MARGIN * bandwidth
        bitrate = np.empty_like(bandwidth)
        for site in np.unique(site_codes):
            ladder = self._ladders[int(site)]
            rows = site_codes == site
            idx = np.searchsorted(ladder, target[rows], side="right") - 1
            idx = np.clip(idx, 0, ladder.size - 1)
            bitrate[rows] = ladder[idx]
        return bitrate

    # -- full batch -------------------------------------------------------
    def generate(
        self,
        codes: np.ndarray,
        effects: EffectArrays,
        rng: np.random.Generator,
    ) -> QoEBatch:
        n = codes.shape[0]
        current_metrics().inc("generate.sessions", n)
        params = self.params
        cdn = codes[:, 1]
        region = self._asn_region[codes[:, 0]]
        coverage = self._cdn_coverage[cdn, region]

        bandwidth = self.effective_bandwidth(codes, effects, rng)
        # Bitrate caps (throttling / low-rung-only manifests) put an
        # absolute ceiling on the *selection* target without degrading
        # the actual link: a capped session plays a low rung
        # comfortably — low bitrate, no extra stalls, and the same
        # ceiling for every sub-slice of the affected cluster. This
        # keeps bitrate events decoupled from buffering and uniform
        # within their cluster (paper: near-disjoint critical sets,
        # Figure 5 semantics).
        target = np.minimum(
            ABR_SAFETY_MARGIN * bandwidth, effects.bitrate_cap_kbps
        ) / ABR_SAFETY_MARGIN
        bitrate = self.select_bitrates(codes[:, 2], target)
        # A site whose lowest rung exceeds the cap is served a
        # degraded stream at the cap rate (server-side throttling), so
        # the ceiling binds for every matching session.
        bitrate = np.minimum(bitrate, effects.bitrate_cap_kbps)

        # Stress: chosen rung relative to what the bandwidth sustains.
        # A healthy ABR session sits at stress <= 1 (margin respected);
        # sessions forced onto their lowest rung exceed 1 and stall.
        # Event-driven buffering enters *additively* on top of the
        # stress term: pathologies like mid-path congestion stall every
        # session in the affected cluster regardless of each user's
        # bandwidth headroom, so sub-slices degrade uniformly.
        sustainable = np.maximum(ABR_SAFETY_MARGIN * bandwidth, 1e-9)
        stress = np.maximum(bitrate / sustainable, params.min_stress)
        stall_term = stress**params.stress_exponent + (
            effects.buffering_factor - 1.0
        )
        buffering_ratio = (
            params.base_buffering
            * np.exp(rng.normal(0.0, params.buffering_sigma, size=n))
            * stall_term
        )
        buffering_ratio = np.minimum(buffering_ratio, MAX_BUFFERING_RATIO)

        # Durations: lognormal, live sessions longer.
        live = codes[:, 3] == self._live_code
        median = np.where(
            live, params.live_duration_median_s, params.vod_duration_median_s
        )
        duration = np.exp(
            rng.normal(np.log(median), params.duration_sigma, size=n)
        )
        duration = np.clip(duration, params.min_duration_s, params.max_duration_s)

        # Join time: RTT-anchored base with a heavy lognormal tail;
        # poor regional coverage inflates it (far-away servers).
        join_base = (
            params.join_base_s + params.join_rtt_mult * self._cdn_rtt_s[cdn]
        ) / np.maximum(coverage, 0.2)
        join_time = (
            join_base
            * np.exp(rng.normal(0.0, params.join_sigma, size=n))
            * effects.join_time_factor
        )

        # Join failures on the odds scale so event multipliers compose
        # without leaving [0, 1).
        # Failures are deliberately concentrated: a small diffuse
        # background plus per-CDN structural rates; the paper finds
        # join failures the *most* cluster-concentrated metric (87% of
        # problem sessions inside problem clusters).
        base_p = np.clip(
            params.base_failure_prob
            + 0.5 * self._cdn_fail[cdn]
            + 0.003 * (1.0 - coverage),
            1e-6,
            0.5,
        )
        odds = base_p / (1.0 - base_p) * effects.join_failure_odds
        fail_p = odds / (1.0 + odds)
        join_failed = rng.random(n) < fail_p

        # Failed sessions never play: no join time/bitrate, no playback.
        join_time = np.where(join_failed, np.nan, join_time)
        bitrate = np.where(join_failed, np.nan, bitrate)
        buffering_s = np.where(join_failed, 0.0, buffering_ratio * duration)
        duration = np.where(join_failed, 0.0, duration)

        return QoEBatch(
            duration_s=duration,
            buffering_s=buffering_s,
            join_time_s=join_time,
            bitrate_kbps=bitrate,
            join_failed=join_failed,
        )
