"""Trace generation: world + events + arrivals + QoE engine -> table.

``generate_trace`` is the substrate's entry point. It is fully
deterministic given the workload's seed: independent random substreams
(via ``numpy.random.SeedSequence.spawn``) drive world construction,
event-catalogue generation, arrival volumes, attribute sampling and
QoE noise, so changing e.g. the event configuration does not perturb
the sampled population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.epoching import EpochGrid
from repro.core.sessions import SessionTable
from repro.obs import current_metrics, current_tracer
from repro.trace.entities import World, build_world
from repro.trace.events import EventCatalog, GroundTruthEvent, generate_catalog
from repro.trace.population import AttributeSampler, constraint_codes
from repro.trace.qoe import EffectArrays, QoEEngine, StatisticalQoEEngine
from repro.trace.workloads import WorkloadSpec


@dataclass
class GeneratedTrace:
    """A generated trace with its ground truth attached."""

    spec: WorkloadSpec
    world: World
    catalog: EventCatalog
    grid: EpochGrid
    table: SessionTable

    @property
    def n_sessions(self) -> int:
        return len(self.table)


def _make_engine(spec: WorkloadSpec, world: World) -> QoEEngine:
    if spec.engine == "statistical":
        return StatisticalQoEEngine(world)
    # Imported lazily: the mechanistic engine pulls in the whole player
    # simulation substrate.
    from repro.sim.engine import MechanisticQoEEngine

    return MechanisticQoEEngine(world, sim=spec.sim)


def apply_events(
    codes: np.ndarray,
    events: list[GroundTruthEvent],
    event_codes: dict[str, list[tuple[int, int]]],
    n: int,
) -> EffectArrays:
    """Combined per-session effect arrays for the active ``events``."""
    effects = EffectArrays.neutral(n)
    for event in events:
        rows = np.ones(n, dtype=bool)
        for col, code in event_codes[event.event_id]:
            rows &= codes[:, col] == code
        if not rows.any():
            continue
        eff = event.effects
        if eff.bandwidth_factor != 1.0:
            effects.bandwidth_factor[rows] *= eff.bandwidth_factor
        if eff.bitrate_cap_kbps != float("inf"):
            effects.bitrate_cap_kbps[rows] = np.minimum(
                effects.bitrate_cap_kbps[rows], eff.bitrate_cap_kbps
            )
        if eff.buffering_factor != 1.0:
            effects.buffering_factor[rows] *= eff.buffering_factor
        if eff.join_time_factor != 1.0:
            effects.join_time_factor[rows] *= eff.join_time_factor
        if eff.join_failure_odds != 1.0:
            effects.join_failure_odds[rows] *= eff.join_failure_odds
    return effects


def generate_trace(
    spec: WorkloadSpec,
    world: World | None = None,
    catalog: EventCatalog | None = None,
) -> GeneratedTrace:
    """Generate a full session trace from a workload specification.

    ``world`` and ``catalog`` may be supplied explicitly (e.g. to plant
    a hand-written event and test its recovery); otherwise both are
    derived from the spec's seed.
    """
    root = np.random.SeedSequence(spec.seed)
    ss_world, ss_events, ss_arrivals, ss_sessions = root.spawn(4)
    tracer = current_tracer()

    if world is None:
        with tracer.span("generate.world") as span:
            world = build_world(spec.world, np.random.default_rng(ss_world))
            span.set(
                n_asns=len(world.asns), n_cdns=len(world.cdns),
                n_sites=len(world.sites),
            )
    if catalog is None:
        with tracer.span("generate.events") as span:
            catalog = generate_catalog(
                world, spec.n_epochs, spec.events,
                np.random.default_rng(ss_events),
            )
            span.set(n_events=len(catalog))

    sampler = AttributeSampler(world)
    engine = _make_engine(spec, world)
    arrivals_rng = np.random.default_rng(ss_arrivals)
    session_rng = np.random.default_rng(ss_sessions)
    counts = spec.arrivals.sample(spec.n_epochs, arrivals_rng)
    event_codes = {
        e.event_id: constraint_codes(world, e.constraints) for e in catalog
    }

    all_codes = []
    all_start = []
    all_duration = []
    all_buffering = []
    all_join_time = []
    all_bitrate = []
    all_failed = []

    with tracer.span("generate.qoe") as span:
        for epoch in range(spec.n_epochs):
            n = int(counts[epoch])
            codes = sampler.sample(n, session_rng)
            active = catalog.active_at(epoch)
            effects = apply_events(codes, active, event_codes, n)
            batch = engine.generate(codes, effects, session_rng)
            start = epoch * spec.epoch_seconds + session_rng.uniform(
                0.0, spec.epoch_seconds, size=n
            )
            all_codes.append(codes)
            all_start.append(start)
            all_duration.append(batch.duration_s)
            all_buffering.append(batch.buffering_s)
            all_join_time.append(batch.join_time_s)
            all_bitrate.append(batch.bitrate_kbps)
            all_failed.append(batch.join_failed)
        span.set(
            engine=spec.engine,
            sim=spec.sim,
            n_epochs=spec.n_epochs,
            n_sessions=int(counts.sum()),
        )
        current_metrics().inc("generate.epochs", spec.n_epochs)

    codes = np.concatenate(all_codes, axis=0)
    vocabs = world.vocabularies()
    schema = SessionTable.empty().schema
    if spec.include_region:
        # Paper Section 6 "hidden attributes": geography as an extra
        # attribute, derived from the client ASN's region.
        from repro.core.attributes import AttributeSchema
        from repro.trace.entities import REGIONS

        schema = AttributeSchema(names=schema.names + ("region",))
        region_col = world.region_of_asn[codes[:, 0]].astype(np.int32)
        codes = np.column_stack([codes, region_col])
        vocabs = vocabs + [list(REGIONS)]

    table = SessionTable(
        schema=schema,
        vocabs=vocabs,
        codes=codes,
        start_time=np.concatenate(all_start),
        duration_s=np.concatenate(all_duration),
        buffering_s=np.concatenate(all_buffering),
        join_time_s=np.concatenate(all_join_time),
        bitrate_kbps=np.concatenate(all_bitrate),
        join_failed=np.concatenate(all_failed),
    )
    grid = EpochGrid(
        origin=0.0, epoch_seconds=spec.epoch_seconds, n_epochs=spec.n_epochs
    )
    return GeneratedTrace(
        spec=spec, world=world, catalog=catalog, grid=grid, table=table
    )
