"""Synthetic session-trace substrate.

Substitute for the paper's proprietary Conviva telemetry: a seeded,
structured generator of video sessions with the same seven attributes
and four quality metrics, plus a planted ground-truth event catalogue
that the analysis pipeline can be validated against (see DESIGN.md,
Section 2).
"""

from repro.trace.arrivals import ArrivalModel
from repro.trace.entities import (
    ASNProfile,
    BROWSERS,
    CDNProfile,
    CONNECTION_TYPES,
    CONTENT_TYPES,
    PLAYER_TYPES,
    REGIONS,
    SiteProfile,
    World,
    WorldConfig,
    build_world,
)
from repro.trace.events import (
    EventCatalog,
    EventConfig,
    EventEffects,
    GroundTruthEvent,
    generate_catalog,
)
from repro.trace.generator import GeneratedTrace, generate_trace
from repro.trace.population import AttributeSampler
from repro.trace.qoe import (
    EffectArrays,
    QoEBatch,
    QoEEngine,
    QoEModelParams,
    StatisticalQoEEngine,
)
from repro.trace.workloads import StandardWorkloads, WorkloadSpec

__all__ = [
    "ArrivalModel",
    "ASNProfile",
    "BROWSERS",
    "CDNProfile",
    "CONNECTION_TYPES",
    "CONTENT_TYPES",
    "PLAYER_TYPES",
    "REGIONS",
    "SiteProfile",
    "World",
    "WorldConfig",
    "build_world",
    "EventCatalog",
    "EventConfig",
    "EventEffects",
    "GroundTruthEvent",
    "generate_catalog",
    "GeneratedTrace",
    "generate_trace",
    "AttributeSampler",
    "EffectArrays",
    "QoEBatch",
    "QoEEngine",
    "QoEModelParams",
    "StatisticalQoEEngine",
    "StandardWorkloads",
    "WorkloadSpec",
]
