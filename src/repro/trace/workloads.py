"""Workload presets — reproducible trace specifications.

A :class:`WorkloadSpec` fully determines a generated trace (world
shape, event catalogue shape, arrival volume, engine, seed).
:class:`StandardWorkloads` provides the presets used by the test suite,
the examples and the benchmark harness:

* ``tiny``  — seconds-fast; unit/integration tests.
* ``small`` — three days; examples and quick experiments.
* ``week``  — one week (168 epochs), the scale most paper figures use.
* ``two_weeks`` — the paper's full span; needed by the inter-week
  proactive analysis (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.trace.arrivals import ArrivalModel
from repro.trace.entities import WorldConfig
from repro.trace.events import EventConfig


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything needed to deterministically generate one trace."""

    name: str
    seed: int
    n_epochs: int
    world: WorldConfig = field(default_factory=WorldConfig)
    events: EventConfig = field(default_factory=EventConfig)
    arrivals: ArrivalModel = field(default_factory=ArrivalModel)
    engine: str = "statistical"
    #: Mechanistic-engine execution path: ``"auto"`` (the vectorized
    #: batch kernel), ``"scalar"`` (the reference per-session loop) or
    #: ``"batch"``. The paths are bit-identical; the knob exists for
    #: the equivalence suite and benchmarks. Ignored by the
    #: statistical engine.
    sim: str = "auto"
    epoch_seconds: float = 3600.0
    #: Paper Section 6 ("hidden attributes"): annotate sessions with
    #: the client's geographic region as an eighth attribute. The
    #: clustering machinery is generic over the schema, so region
    #: participates in problem/critical clusters like any other
    #: attribute.
    include_region: bool = False

    def __post_init__(self) -> None:
        if self.n_epochs < 1:
            raise ValueError("n_epochs must be >= 1")
        if self.engine not in ("statistical", "mechanistic"):
            raise ValueError(
                f"engine must be 'statistical' or 'mechanistic', got {self.engine!r}"
            )
        if self.sim not in ("auto", "scalar", "batch"):
            raise ValueError(
                f"sim must be 'auto', 'scalar' or 'batch', got {self.sim!r}"
            )
        if self.epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")

    def with_seed(self, seed: int) -> "WorkloadSpec":
        return replace(self, seed=seed)


class StandardWorkloads:
    """Factory of the standard presets (all methods are static)."""

    @staticmethod
    def tiny(seed: int = 42) -> WorkloadSpec:
        return WorkloadSpec(
            name="tiny",
            seed=seed,
            n_epochs=24,
            world=WorldConfig(n_asns=40, n_cdns=6, n_sites=16),
            events=EventConfig(
                chronic_per_metric=1,
                major_per_week=6,
                minor_per_week=12,
                transient_per_week=12,
            ),
            arrivals=ArrivalModel(base_sessions_per_epoch=700),
        )

    @staticmethod
    def small(seed: int = 42) -> WorkloadSpec:
        return WorkloadSpec(
            name="small",
            seed=seed,
            n_epochs=72,
            world=WorldConfig(n_asns=80, n_cdns=8, n_sites=30),
            events=EventConfig(
                chronic_per_metric=1,
                major_per_week=8,
                minor_per_week=18,
                transient_per_week=20,
            ),
            arrivals=ArrivalModel(base_sessions_per_epoch=1200),
        )

    @staticmethod
    def week(seed: int = 42) -> WorkloadSpec:
        return WorkloadSpec(
            name="week",
            seed=seed,
            n_epochs=168,
            world=WorldConfig(n_asns=200, n_cdns=12, n_sites=60),
            arrivals=ArrivalModel(base_sessions_per_epoch=2500),
        )

    @staticmethod
    def two_weeks(seed: int = 42) -> WorkloadSpec:
        return WorkloadSpec(
            name="two_weeks",
            seed=seed,
            n_epochs=336,
            world=WorldConfig(n_asns=200, n_cdns=12, n_sites=60),
            arrivals=ArrivalModel(base_sessions_per_epoch=2500),
        )

    @staticmethod
    def tiny_with_region(seed: int = 42) -> WorkloadSpec:
        """Tiny workload with the geographic-region extra attribute."""
        return replace(
            StandardWorkloads.tiny(seed), name="tiny_with_region",
            include_region=True,
        )

    @staticmethod
    def mechanistic_tiny(seed: int = 42) -> WorkloadSpec:
        """Tiny workload driven by the chunk-level player simulation."""
        return replace(StandardWorkloads.tiny(seed), name="mechanistic_tiny",
                       engine="mechanistic",
                       arrivals=ArrivalModel(base_sessions_per_epoch=250))

    @staticmethod
    def mechanistic_day(seed: int = 42) -> WorkloadSpec:
        """One day at realistic volume on the chunk-level simulation.

        Tractable thanks to the vectorized batch engine; the benchmark
        harness runs it under both sim paths to gate the speedup.
        """
        return WorkloadSpec(
            name="mechanistic_day",
            seed=seed,
            n_epochs=24,
            world=WorldConfig(n_asns=60, n_cdns=8, n_sites=24),
            events=EventConfig(
                chronic_per_metric=1,
                major_per_week=6,
                minor_per_week=12,
                transient_per_week=12,
            ),
            arrivals=ArrivalModel(base_sessions_per_epoch=1200),
            engine="mechanistic",
        )

    @staticmethod
    def mechanistic_week(seed: int = 42) -> WorkloadSpec:
        """A full week of chunk-level traces (the paper-figure scale)."""
        return replace(
            StandardWorkloads.mechanistic_day(seed),
            name="mechanistic_week",
            n_epochs=168,
        )

    @staticmethod
    def by_name(name: str, seed: int = 42) -> WorkloadSpec:
        factories = {
            "tiny": StandardWorkloads.tiny,
            "tiny_with_region": StandardWorkloads.tiny_with_region,
            "small": StandardWorkloads.small,
            "week": StandardWorkloads.week,
            "two_weeks": StandardWorkloads.two_weeks,
            "mechanistic_tiny": StandardWorkloads.mechanistic_tiny,
            "mechanistic_day": StandardWorkloads.mechanistic_day,
            "mechanistic_week": StandardWorkloads.mechanistic_week,
        }
        try:
            return factories[name](seed)
        except KeyError:
            raise KeyError(
                f"unknown workload {name!r}; known: {sorted(factories)}"
            ) from None
