"""Sampling session attribute combinations from a world.

Draws the seven-attribute tuples for each session: site and ASN by
Zipf popularity, CDN by the site's CDN policy (the paper notes some
providers use proprietary CDN-switching; we model the outcome as a
per-site weighted choice), connection type by the ASN's access mix,
player by the site's player mix, VoD/Live by the site's genre, and
browser by a global mix. All draws are vectorised.
"""

from __future__ import annotations

import numpy as np

from repro.trace.entities import (
    BROWSERS,
    CONNECTION_TYPES,
    PLAYER_TYPES,
    World,
)

#: Global browser mix (chrome, firefox, msie, safari).
BROWSER_WEIGHTS: tuple[float, ...] = (0.42, 0.20, 0.22, 0.16)


class AttributeSampler:
    """Vectorised sampler of (n, 7) attribute code matrices."""

    def __init__(self, world: World) -> None:
        self.world = world
        self._site_p = self._norm([s.weight for s in world.sites])
        self._asn_p = self._norm([a.weight for a in world.asns])
        self._access_cum = np.cumsum(
            np.array([a.access_mix for a in world.asns]), axis=1
        )
        self._player_cum = np.cumsum(
            np.array([s.player_mix for s in world.sites]), axis=1
        )
        self._live_frac = np.array([s.live_fraction for s in world.sites])
        self._browser_p = self._norm(BROWSER_WEIGHTS)
        # Per-site CDN choice tables.
        self._site_cdns = [np.array(s.cdn_indices) for s in world.sites]
        self._site_cdn_p = [self._norm(s.cdn_weights) for s in world.sites]

    @staticmethod
    def _norm(weights) -> np.ndarray:
        arr = np.asarray(weights, dtype=np.float64)
        return arr / arr.sum()

    @staticmethod
    def _choice_rows(cum: np.ndarray, rows: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Categorical draw per row from a per-row cumulative table."""
        u = rng.random(rows.shape[0])
        return (u[:, None] > cum[rows]).sum(axis=1).astype(np.int32)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``n`` sessions; returns (n, 7) int32 codes.

        Column order is the canonical schema: asn, cdn, site,
        content_type, player, browser, connection_type.
        """
        codes = np.empty((n, 7), dtype=np.int32)
        site = rng.choice(len(self._site_p), size=n, p=self._site_p).astype(np.int32)
        asn = rng.choice(len(self._asn_p), size=n, p=self._asn_p).astype(np.int32)
        codes[:, 0] = asn
        codes[:, 2] = site
        # CDN: per-site policy; loop over the (few) sites present.
        cdn = np.empty(n, dtype=np.int32)
        for s in np.unique(site):
            rows = site == s
            cdn[rows] = rng.choice(
                self._site_cdns[int(s)],
                size=int(rows.sum()),
                p=self._site_cdn_p[int(s)],
            )
        codes[:, 1] = cdn
        codes[:, 3] = (rng.random(n) < self._live_frac[site]).astype(np.int32)
        codes[:, 4] = self._choice_rows(self._player_cum, site, rng)
        codes[:, 5] = rng.choice(
            len(BROWSERS), size=n, p=self._browser_p
        ).astype(np.int32)
        codes[:, 6] = self._choice_rows(self._access_cum, asn, rng)
        return codes

    def label_codes(self) -> dict[str, list[str]]:
        """Vocabularies keyed by attribute name (for reporting)."""
        vocabs = self.world.vocabularies()
        names = (
            "asn",
            "cdn",
            "site",
            "content_type",
            "player",
            "browser",
            "connection_type",
        )
        return dict(zip(names, vocabs))


def constraint_codes(world: World, constraints) -> list[tuple[int, int]]:
    """Translate (attribute, label) constraints to (column, code) pairs."""
    vocabs = world.vocabularies()
    names = (
        "asn",
        "cdn",
        "site",
        "content_type",
        "player",
        "browser",
        "connection_type",
    )
    index = {name: i for i, name in enumerate(names)}
    pairs = []
    for attr, label in constraints:
        col = index[attr]
        try:
            code = vocabs[col].index(label)
        except ValueError:
            raise KeyError(f"unknown {attr} label {label!r}") from None
        pairs.append((col, code))
    return pairs


__all__ = [
    "AttributeSampler",
    "BROWSER_WEIGHTS",
    "constraint_codes",
    "CONNECTION_TYPES",
    "PLAYER_TYPES",
]
