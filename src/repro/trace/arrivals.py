"""Diurnal session-arrival model.

The paper's Figure 2 shows hourly problem ratios over a week; session
*volume* in real telemetry follows a strong diurnal cycle with a
weekend lift. This model produces per-epoch session counts:

``n(e) = base * diurnal(hour) * weekly(day) * lognormal noise``

with a sinusoidal diurnal profile peaking in the evening.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ArrivalModel:
    """Per-epoch session volume process."""

    base_sessions_per_epoch: int = 2500
    diurnal_amplitude: float = 0.35
    peak_hour: float = 20.0
    weekend_factor: float = 1.15
    noise_sigma: float = 0.05
    min_sessions: int = 50

    def __post_init__(self) -> None:
        if self.base_sessions_per_epoch < 1:
            raise ValueError("base_sessions_per_epoch must be >= 1")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.weekend_factor <= 0:
            raise ValueError("weekend_factor must be positive")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")

    def expected(self, epochs: np.ndarray) -> np.ndarray:
        """Deterministic expected volume per epoch index (hours)."""
        epochs = np.asarray(epochs, dtype=np.float64)
        hour = epochs % 24
        day = (epochs // 24) % 7
        diurnal = 1.0 + self.diurnal_amplitude * np.cos(
            2.0 * np.pi * (hour - self.peak_hour) / 24.0
        )
        weekly = np.where(day >= 5, self.weekend_factor, 1.0)
        return self.base_sessions_per_epoch * diurnal * weekly

    def sample(self, n_epochs: int, rng: np.random.Generator) -> np.ndarray:
        """Sampled session counts for epochs ``0..n_epochs-1``."""
        expected = self.expected(np.arange(n_epochs))
        noise = np.exp(rng.normal(0.0, self.noise_sigma, size=n_epochs))
        counts = np.maximum(
            np.round(expected * noise).astype(np.int64), self.min_sessions
        )
        return counts
