"""Entity model of the synthetic video-delivery ecosystem.

The paper's dataset spans 379 content providers, 19 CDNs, ~15K ASNs,
multiple player/browser platforms and connection types across 213
countries. This module builds a scaled-down but structurally similar
*world*: profiles for ASNs (with region and access mix), CDNs (global
third-party vs in-house vs ISP-run) and Sites (bitrate ladders, CDN
policies, genres), plus the fixed vocabularies for the remaining
attributes.

Profiles carry the latent quality parameters the QoE engine consumes
(base RTT, failure probability, per-region coverage quality, ...).
Everything is derived deterministically from a seeded
``numpy.random.Generator``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

#: Viewer regions with approximate dataset shares (paper Section 2:
#: ~55% US, ~12% EU, ~8% CN; the rest spread out).
REGIONS: tuple[str, ...] = ("us", "eu", "cn", "apac", "sa", "other")
REGION_WEIGHTS: tuple[float, ...] = (0.55, 0.12, 0.08, 0.10, 0.08, 0.07)

#: Connection types (paper attribute 7; annotations from Quova in the
#: original study).
CONNECTION_TYPES: tuple[str, ...] = (
    "dsl",
    "cable",
    "fiber",
    "mobile_wireless",
    "fixed_wireless",
)

#: Player types seen in the dataset (paper attribute 5).
PLAYER_TYPES: tuple[str, ...] = ("flash", "silverlight", "html5")

#: Browsers (paper attribute 6).
BROWSERS: tuple[str, ...] = ("chrome", "firefox", "msie", "safari")

#: VoD-or-Live indicator (paper attribute 4).
CONTENT_TYPES: tuple[str, ...] = ("vod", "live")

#: Baseline downstream capacity per connection type, kbps.
CONNECTION_BANDWIDTH_KBPS: dict[str, float] = {
    "dsl": 6_000.0,
    "cable": 14_000.0,
    "fiber": 30_000.0,
    "mobile_wireless": 2_800.0,
    "fixed_wireless": 4_500.0,
}

#: Common bitrate ladders (kbps). Single-rung ladders model the
#: paper's "single bitrate" sites (Table 3).
BITRATE_LADDERS: tuple[tuple[float, ...], ...] = (
    (400.0, 800.0, 1_600.0, 3_000.0, 5_000.0),
    (400.0, 1_000.0, 2_500.0),
    (600.0, 1_200.0, 2_000.0, 4_000.0, 8_000.0),
    (300.0, 700.0, 1_500.0),
)

#: Ladder used by "single bitrate" sites.
SINGLE_BITRATE_LADDER: tuple[float, ...] = (1_200.0,)

#: Ladder used by "high bitrates only" sites (join-time anecdote in
#: Table 3: high-bitrate sites suffer long join times).
HIGH_BITRATE_LADDER: tuple[float, ...] = (3_000.0, 5_000.0, 8_000.0)


@dataclass(frozen=True)
class ASNProfile:
    """An autonomous system: the client-side network attribute."""

    name: str
    region: str
    wireless: bool
    quality: float  # multiplicative bandwidth factor, ~1.0 is nominal
    access_mix: tuple[float, ...]  # distribution over CONNECTION_TYPES
    weight: float  # popularity weight for sampling

    def __post_init__(self) -> None:
        if self.region not in REGIONS:
            raise ValueError(f"unknown region {self.region!r}")
        if len(self.access_mix) != len(CONNECTION_TYPES):
            raise ValueError("access_mix must cover all connection types")
        total = float(sum(self.access_mix))
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"access_mix sums to {total}, expected 1")
        if self.quality <= 0 or self.weight <= 0:
            raise ValueError("quality and weight must be positive")


@dataclass(frozen=True)
class CDNProfile:
    """A content delivery network: third-party, in-house, or ISP-run."""

    name: str
    kind: str  # "global" | "in_house" | "isp" | "datacenter"
    base_rtt_ms: float
    failure_prob: float
    throughput_quality: float  # multiplicative bandwidth factor
    region_coverage: tuple[float, ...]  # per-REGIONS quality in (0, 1]

    def __post_init__(self) -> None:
        if self.kind not in ("global", "in_house", "isp", "datacenter"):
            raise ValueError(f"unknown CDN kind {self.kind!r}")
        if len(self.region_coverage) != len(REGIONS):
            raise ValueError("region_coverage must cover all regions")
        if not 0 <= self.failure_prob < 1:
            raise ValueError("failure_prob must be in [0, 1)")
        if self.base_rtt_ms <= 0 or self.throughput_quality <= 0:
            raise ValueError("rtt and throughput_quality must be positive")


@dataclass(frozen=True)
class SiteProfile:
    """A content provider ("Site" in the paper)."""

    name: str
    genre: str  # "premium" | "ugc" | "news" | "sports"
    ladder: tuple[float, ...]  # ascending bitrates, kbps
    cdn_indices: tuple[int, ...]  # CDNs this site uses
    cdn_weights: tuple[float, ...]
    live_fraction: float
    player_mix: tuple[float, ...]  # distribution over PLAYER_TYPES
    weight: float

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ValueError("ladder must have at least one bitrate")
        if list(self.ladder) != sorted(self.ladder):
            raise ValueError("ladder must be ascending")
        if len(self.cdn_indices) != len(self.cdn_weights) or not self.cdn_indices:
            raise ValueError("cdn_indices/cdn_weights mismatch or empty")
        if not 0 <= self.live_fraction <= 1:
            raise ValueError("live_fraction must be in [0, 1]")
        if len(self.player_mix) != len(PLAYER_TYPES):
            raise ValueError("player_mix must cover all player types")

    @property
    def single_bitrate(self) -> bool:
        return len(self.ladder) == 1


@dataclass(frozen=True)
class WorldConfig:
    """Size and shape of the synthetic ecosystem."""

    n_asns: int = 200
    n_cdns: int = 12
    n_sites: int = 60
    zipf_exponent: float = 1.1
    single_bitrate_site_fraction: float = 0.12
    high_bitrate_site_fraction: float = 0.08
    in_house_cdn_fraction: float = 0.35
    wireless_asn_fraction: float = 0.15

    def __post_init__(self) -> None:
        if min(self.n_asns, self.n_cdns, self.n_sites) < 2:
            raise ValueError("world needs at least 2 of each entity")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        for name in (
            "single_bitrate_site_fraction",
            "high_bitrate_site_fraction",
            "in_house_cdn_fraction",
            "wireless_asn_fraction",
        ):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1]")


@dataclass
class World:
    """The concrete ecosystem a trace is generated from."""

    config: WorldConfig
    asns: list[ASNProfile]
    cdns: list[CDNProfile]
    sites: list[SiteProfile]
    region_of_asn: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.region_of_asn = np.array(
            [REGIONS.index(a.region) for a in self.asns], dtype=np.int32
        )

    # Vocabularies in the canonical schema order (asn, cdn, site,
    # content_type, player, browser, connection_type).
    def vocabularies(self) -> list[list[str]]:
        return [
            [a.name for a in self.asns],
            [c.name for c in self.cdns],
            [s.name for s in self.sites],
            list(CONTENT_TYPES),
            list(PLAYER_TYPES),
            list(BROWSERS),
            list(CONNECTION_TYPES),
        ]

    def asn_index(self, name: str) -> int:
        return self._index([a.name for a in self.asns], name, "ASN")

    def cdn_index(self, name: str) -> int:
        return self._index([c.name for c in self.cdns], name, "CDN")

    def site_index(self, name: str) -> int:
        return self._index([s.name for s in self.sites], name, "site")

    @staticmethod
    def _index(labels: Sequence[str], name: str, what: str) -> int:
        try:
            return labels.index(name)
        except ValueError:
            raise KeyError(f"unknown {what} {name!r}") from None


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def _normalized(values: np.ndarray) -> tuple[float, ...]:
    total = values.sum()
    return tuple(float(v) for v in values / total)


def build_world(config: WorldConfig, rng: np.random.Generator) -> World:
    """Construct a world deterministically from ``rng``."""
    asns = _build_asns(config, rng)
    cdns = _build_cdns(config, rng)
    sites = _build_sites(config, rng, n_cdns=len(cdns))
    return World(config=config, asns=asns, cdns=cdns, sites=sites)


def _build_asns(config: WorldConfig, rng: np.random.Generator) -> list[ASNProfile]:
    weights = _zipf_weights(config.n_asns, config.zipf_exponent)
    regions = rng.choice(
        len(REGIONS), size=config.n_asns, p=np.array(REGION_WEIGHTS)
    )
    wireless = rng.random(config.n_asns) < config.wireless_asn_fraction
    asns = []
    for i in range(config.n_asns):
        region = REGIONS[int(regions[i])]
        if wireless[i]:
            # Mobile carriers: almost all sessions on mobile wireless.
            mix = np.array([0.02, 0.02, 0.01, 0.90, 0.05])
        else:
            mix = np.array([0.30, 0.35, 0.15, 0.08, 0.12])
            if region == "us":
                mix = np.array([0.22, 0.45, 0.15, 0.08, 0.10])
            elif region in ("cn", "apac"):
                mix = np.array([0.40, 0.20, 0.22, 0.10, 0.08])
            mix = mix * rng.uniform(0.7, 1.3, size=mix.size)
        quality = float(np.exp(rng.normal(0.0, 0.15)))
        asns.append(
            ASNProfile(
                name=f"AS{10_000 + i}",
                region=region,
                wireless=bool(wireless[i]),
                quality=quality,
                access_mix=_normalized(mix),
                weight=float(weights[i]),
            )
        )
    return asns


def _build_cdns(config: WorldConfig, rng: np.random.Generator) -> list[CDNProfile]:
    cdns = []
    n_in_house = int(round(config.n_cdns * config.in_house_cdn_fraction))
    for i in range(config.n_cdns):
        # Baselines are healthy in every dimension: structural CDN
        # weaknesses are planted as *chronic ground-truth events* (see
        # repro.trace.events), not baked into profiles. This keeps the
        # ground-truth accounting exact and lets each weak CDN degrade
        # exactly one quality metric — the paper finds the
        # critical-cluster sets largely disjoint across metrics
        # (Table 2), which correlated weaknesses would destroy.
        rtt = float(rng.uniform(30.0, 60.0))
        fail = float(rng.uniform(0.002, 0.008))
        quality = float(rng.uniform(0.95, 1.15))
        if i < config.n_cdns - n_in_house:
            kind = "global" if i % 3 != 2 else "datacenter"
            coverage = rng.uniform(0.8, 1.0, size=len(REGIONS))
            coverage[REGIONS.index("us")] = rng.uniform(0.92, 1.0)
        else:
            kind = "in_house" if i % 2 == 0 else "isp"
            coverage = rng.uniform(0.65, 0.95, size=len(REGIONS))
        cdns.append(
            CDNProfile(
                name=f"cdn_{i:02d}_{kind}",
                kind=kind,
                base_rtt_ms=rtt,
                failure_prob=fail,
                throughput_quality=quality,
                region_coverage=tuple(float(c) for c in coverage),
            )
        )
    return cdns


def _build_sites(
    config: WorldConfig, rng: np.random.Generator, n_cdns: int
) -> list[SiteProfile]:
    weights = _zipf_weights(config.n_sites, config.zipf_exponent)
    genres = ("premium", "ugc", "news", "sports")
    sites = []
    n_single = int(round(config.n_sites * config.single_bitrate_site_fraction))
    n_high = int(round(config.n_sites * config.high_bitrate_site_fraction))
    for i in range(config.n_sites):
        genre = genres[int(rng.integers(0, len(genres)))]
        if i >= config.n_sites - n_single:
            ladder = SINGLE_BITRATE_LADDER
        elif i >= config.n_sites - n_single - n_high:
            ladder = HIGH_BITRATE_LADDER
        else:
            ladder = BITRATE_LADDERS[int(rng.integers(0, len(BITRATE_LADDERS)))]
        n_site_cdns = int(rng.integers(1, min(4, n_cdns) + 1))
        cdn_indices = tuple(
            int(c)
            for c in rng.choice(n_cdns, size=n_site_cdns, replace=False)
        )
        cdn_weights = rng.uniform(0.5, 2.0, size=n_site_cdns)
        live_fraction = float(rng.uniform(0.5, 0.9)) if genre == "sports" else float(
            rng.uniform(0.0, 0.2)
        )
        player_mix = rng.uniform(0.2, 1.0, size=len(PLAYER_TYPES))
        sites.append(
            SiteProfile(
                name=f"site_{i:03d}",
                genre=genre,
                ladder=ladder,
                cdn_indices=cdn_indices,
                cdn_weights=_normalized(cdn_weights),
                live_fraction=live_fraction,
                player_mix=_normalized(player_mix),
                weight=float(weights[i]),
            )
        )
    return sites
