"""Command-line interface.

Subcommands:

* ``generate`` — generate a synthetic trace and write it to disk.
* ``analyze``  — run the clustering pipeline over a trace file and
  print the per-metric structure summary.
* ``experiment`` — run one (or all) of the registered paper
  experiments and print its rows/series.
* ``validate`` — generate a trace and score the detector against the
  planted ground truth.
* ``report`` — write a one-shot markdown report of a workload's
  problem structure.
* ``remedies`` — suggest remedial actions for the detected critical
  clusters and optionally evaluate them by re-generation.

* ``sweep`` — analyze a trace under several config variants at once,
  building the shared substrate (pack + cluster index) only once.
* ``shard`` — build or inspect an epoch-range shard store; ``analyze``,
  ``sweep`` and ``report`` then accept ``--shard-dir`` to run
  out-of-core over the store (bounded parent memory, bit-identical
  results).
* ``cache`` — inspect or prune a ``--result-cache`` directory: the
  content-addressed store of per-(shard, config) analysis results that
  makes warm sharded re-runs pure load + merge.
* ``obs`` — trace analytics and run-history tooling: render a recorded
  span tree (``view``), compare two runs or a run against its journal
  baseline (``diff``), browse the append-only run journal
  (``journal list/show/trend``), summarize a collapsed-stack profile
  (``flame``), and export a run's metrics in Prometheus text format
  (``export-prom``). Instrumented commands take ``--journal [DIR]`` to
  record themselves and ``--profile [HZ]`` to sample a flamegraph.

Examples::

    repro-video-quality generate --workload tiny --seed 7 -o trace.npz
    repro-video-quality analyze trace.npz
    repro-video-quality sweep trace.npz --threshold-scales 0.5,1.0,2.0
    repro-video-quality shard build trace.npz -o trace.shards
    repro-video-quality analyze --shard-dir trace.shards --workers auto
    repro-video-quality analyze --shard-dir trace.shards --result-cache rc/
    repro-video-quality cache info rc/
    repro-video-quality cache prune rc/ --max-bytes 256M
    repro-video-quality analyze trace.npz --trace-out run.json --journal
    repro-video-quality analyze trace.npz --trace-out run.json --profile 97
    repro-video-quality obs view run.json
    repro-video-quality obs diff run1.json run2.json
    repro-video-quality obs diff --baseline 5 latest
    repro-video-quality obs journal list
    repro-video-quality obs flame run.flame.txt
    repro-video-quality obs export-prom run.json
    repro-video-quality experiment tab1 --workload small
    repro-video-quality validate --workload tiny
    repro-video-quality report --workload small -o report.md
    repro-video-quality remedies --workload tiny --evaluate
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.analysis.render import render_table
from repro.core.pipeline import analyze_trace
from repro.experiments.context import ExperimentContext
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.io.binary import read_sessions_npz, write_sessions_npz
from repro.io.traceio import (
    read_sessions_csv,
    read_sessions_jsonl,
    write_sessions_csv,
    write_sessions_jsonl,
)
from repro.trace.generator import generate_trace
from repro.trace.workloads import StandardWorkloads

WORKLOAD_NAMES = (
    "tiny",
    "tiny_with_region",
    "small",
    "week",
    "two_weeks",
    "mechanistic_tiny",
    "mechanistic_day",
    "mechanistic_week",
)


def _parse_workers(value: str) -> int | str:
    """Parse a ``--workers`` value: a non-negative int or 'auto'."""
    if value == "auto":
        return "auto"
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer or 'auto', got {value!r}"
        ) from None
    if workers < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be non-negative, got {workers}"
        )
    return workers


def _add_workers_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_parse_workers, default=0, metavar="N|auto",
        help="analysis worker processes: 0/1 serial (default), "
        "'auto' one per CPU, N explicit; results are identical "
        "at any worker count",
    )


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=("auto", "epoch", "indexed"), default="auto",
        help="analysis engine: 'indexed' builds one trace-global cluster "
        "index (what 'auto' resolves to), 'epoch' is the legacy "
        "per-epoch path; results are identical either way",
    )


def _add_transport_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--transport", choices=("auto", "shm", "pickle"), default="auto",
        help="how parallel runs hand the table/index to workers: 'shm' "
        "publishes one shared-memory segment (zero-copy attach), "
        "'pickle' serializes per worker, 'auto' prefers shm; results "
        "are identical either way",
    )


def _add_substrate_cache_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--substrate-cache", metavar="PATH", default=None,
        help="persistent substrate snapshot: load PATH when it exists "
        "(mmap, milliseconds) instead of re-packing and re-indexing "
        "the trace, otherwise build once and save to PATH; stale or "
        "corrupt snapshots are rebuilt and overwritten; results are "
        "identical either way",
    )


def _add_trace_out_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None, dest="trace_out",
        help="write the run's span tree and metrics as JSON to PATH, "
        "plus a machine-readable run manifest next to it "
        "(<stem>.manifest.json)",
    )


def _add_timings_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timings", action="store_true",
        help="print per-phase pipeline timings (and, when collectors "
        "are installed, the span tree and histogram summaries)",
    )


def _add_journal_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--journal", metavar="DIR", nargs="?", const=".repro-journal",
        default=None, dest="journal",
        help="record this run in the append-only run journal at DIR "
        "(bare flag: .repro-journal); the record combines the run "
        "manifest, per-phase span aggregation, critical path, metrics, "
        "config digest and git SHA, and feeds 'obs diff --baseline' "
        "and 'obs journal'",
    )


def _add_profile_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", metavar="HZ", nargs="?", const=97.0, type=float,
        default=None, dest="profile",
        help="sample the run with the SIGPROF statistical profiler at "
        "HZ (bare flag: 97 Hz) and write the collapsed-stack "
        "flamegraph next to --trace-out as <stem>.flame.txt "
        "(requires --trace-out)",
    )


def _add_shard_dir_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shard-dir", metavar="DIR", default=None, dest="shard_dir",
        help="run out-of-core over an epoch-range shard store (built "
        "with 'shard build'): shards are analyzed independently — "
        "mmap-loaded one at a time (or per pool worker) so peak "
        "memory stays bounded by the largest shard — and merged "
        "exactly; results are identical to the in-memory path",
    )


def _add_result_cache_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--result-cache", metavar="DIR", default=None, dest="result_cache",
        help="content-addressed cache of per-(shard, config) analysis "
        "results (requires --shard-dir): hits skip recomputation "
        "entirely, misses are computed and stored, and any change to "
        "shard bytes or result-affecting config misses automatically; "
        "results are identical either way",
    )


def _parse_size(value: str) -> int:
    """Parse a byte size: plain int or with a K/M/G suffix (powers of
    1024)."""
    multipliers = {"K": 1024, "M": 1024**2, "G": 1024**3}
    raw, mult = value.strip(), 1
    if raw and raw[-1].upper() in multipliers:
        mult = multipliers[raw[-1].upper()]
        raw = raw[:-1]
    try:
        size = int(raw) * mult
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a byte size like 1048576, 512K, 256M or 1G, "
            f"got {value!r}"
        ) from None
    if size < 0:
        raise argparse.ArgumentTypeError(
            f"size must be non-negative, got {value!r}"
        )
    return size


def _peak_rss_line() -> str | None:
    """The ``--timings`` peak-RSS read-out (None where unavailable)."""
    from repro.obs import peak_rss_bytes

    peak = peak_rss_bytes()
    if peak is None:  # pragma: no cover - non-POSIX platforms
        return None
    return f"  peak RSS                 : {peak / 1e6:9.1f} MB"


def _print_timings(timings) -> None:
    print()
    print(timings.render())
    line = _peak_rss_line()
    if line is not None:
        print(line)


def _parse_float_list(value: str) -> list[float]:
    try:
        return [float(v) for v in value.split(",") if v.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated list of numbers, got {value!r}"
        ) from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-video-quality",
        description="Reproduction of 'Shedding Light on the Structure of "
        "Internet Video Quality Problems in the Wild' (CoNEXT 2013)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic session trace")
    gen.add_argument("--workload", choices=WORKLOAD_NAMES, default="tiny")
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("-o", "--output", required=True,
                     help="output path (.jsonl, .csv or .npz)")
    gen.add_argument(
        "--no-compress", action="store_true",
        help="write .npz traces uncompressed (faster to write and "
        "re-read; larger files)",
    )
    gen.add_argument(
        "--sim", choices=("auto", "scalar", "batch"), default="auto",
        help="mechanistic-engine execution path: the vectorized batch "
        "kernel ('auto'/'batch') or the reference per-session loop "
        "('scalar'); the paths are bit-identical, so this only matters "
        "for timing comparisons (ignored by statistical workloads)",
    )
    _add_trace_out_arg(gen)
    _add_timings_arg(gen)
    _add_journal_arg(gen)
    _add_profile_arg(gen)

    ana = sub.add_parser("analyze", help="analyze a trace file")
    ana.add_argument("trace", nargs="?", default=None,
                     help="trace path (.jsonl, .csv or .npz); omit when "
                     "--shard-dir is given")
    _add_workers_arg(ana)
    _add_engine_arg(ana)
    _add_transport_arg(ana)
    _add_substrate_cache_arg(ana)
    _add_shard_dir_arg(ana)
    _add_result_cache_arg(ana)
    _add_trace_out_arg(ana)
    _add_timings_arg(ana)
    _add_journal_arg(ana)
    _add_profile_arg(ana)

    swp = sub.add_parser(
        "sweep",
        help="analyze a trace under several config variants, sharing one "
        "substrate build",
    )
    swp.add_argument("trace", nargs="?", default=None,
                     help="trace path (.jsonl, .csv or .npz); omit when "
                     "--shard-dir is given")
    swp.add_argument(
        "--ratio-multipliers", type=_parse_float_list, default=None,
        metavar="X,Y,...",
        help="problem-ratio multipliers to sweep (e.g. 1.25,1.5,2.0)",
    )
    swp.add_argument(
        "--threshold-scales", type=_parse_float_list, default=None,
        metavar="X,Y,...",
        help="metric-threshold scale factors to sweep (e.g. 0.5,1.0,2.0)",
    )
    swp.add_argument(
        "--epoch-seconds", type=_parse_float_list, default=None,
        metavar="S,T,...",
        help="epoch lengths in seconds to sweep (e.g. 1800,3600,7200)",
    )
    _add_workers_arg(swp)
    _add_transport_arg(swp)
    _add_substrate_cache_arg(swp)
    _add_shard_dir_arg(swp)
    _add_result_cache_arg(swp)
    _add_trace_out_arg(swp)
    swp.add_argument("--timings", action="store_true",
                     help="print per-variant pipeline timings")
    _add_journal_arg(swp)
    _add_profile_arg(swp)

    exp = sub.add_parser("experiment", help="run a registered experiment")
    exp.add_argument(
        "experiment_id",
        help=f"experiment id or 'all' (known: {', '.join(sorted(EXPERIMENTS))})",
    )
    exp.add_argument("--workload", choices=WORKLOAD_NAMES, default="small")
    exp.add_argument("--seed", type=int, default=42)
    _add_workers_arg(exp)
    _add_engine_arg(exp)

    val = sub.add_parser("validate", help="score detector vs planted ground truth")
    val.add_argument("--workload", choices=WORKLOAD_NAMES, default="tiny")
    val.add_argument("--seed", type=int, default=42)

    rep = sub.add_parser("report", help="write a full markdown analysis report")
    rep.add_argument("--workload", choices=WORKLOAD_NAMES, default="small")
    rep.add_argument("--seed", type=int, default=42)
    rep.add_argument("-o", "--output", required=True, help="markdown path")
    _add_workers_arg(rep)
    _add_engine_arg(rep)
    _add_substrate_cache_arg(rep)
    _add_shard_dir_arg(rep)
    _add_result_cache_arg(rep)
    _add_trace_out_arg(rep)
    _add_timings_arg(rep)
    _add_journal_arg(rep)

    shard = sub.add_parser(
        "shard", help="build or inspect an epoch-range shard store"
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)
    shb = shard_sub.add_parser(
        "build",
        help="partition a trace into epoch-range substrate shards on disk",
    )
    shb.add_argument("trace", help="trace path (.jsonl, .csv or .npz)")
    shb.add_argument("-o", "--output", required=True,
                     help="shard store directory (created if missing)")
    shb.add_argument(
        "--epochs-per-shard", type=int, default=None, metavar="N",
        help="fixed shard width in epochs (ragged last shard; "
        "default 24 when --shards is not given)",
    )
    shb.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="near-equal split into K shards (alternative to "
        "--epochs-per-shard)",
    )
    shb.add_argument(
        "--epoch-seconds", type=float, default=3600.0,
        help="epoch length in seconds (default 3600)",
    )
    _add_trace_out_arg(shb)
    _add_timings_arg(shb)
    _add_journal_arg(shb)
    shi = shard_sub.add_parser("info", help="print a shard store's manifest")
    shi.add_argument("store", help="shard store directory")

    cache = sub.add_parser(
        "cache", help="inspect or prune a --result-cache directory"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cin = cache_sub.add_parser(
        "info", help="print entry count and total bytes of a result cache"
    )
    cin.add_argument("cache_dir", help="result cache directory")
    cpr = cache_sub.add_parser(
        "prune",
        help="evict least-recently-used entries until the cache fits "
        "--max-bytes",
    )
    cpr.add_argument("cache_dir", help="result cache directory")
    cpr.add_argument(
        "--max-bytes", type=_parse_size, required=True, metavar="SIZE",
        help="target cache size (e.g. 1048576, 512K, 256M, 1G); 0 "
        "empties the cache",
    )
    _add_trace_out_arg(cpr)
    _add_timings_arg(cpr)
    _add_journal_arg(cpr)

    obs = sub.add_parser(
        "obs", help="trace analytics, run journal and regression diffs"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    def _add_obs_journal_dir_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--journal", metavar="DIR", default=".repro-journal",
            dest="journal_dir",
            help="run journal directory (default .repro-journal)",
        )

    ovw = obs_sub.add_parser(
        "view",
        help="render a recorded trace JSON: span tree, hotspots, "
        "critical path",
    )
    ovw.add_argument("trace_json", help="a --trace-out JSON file")
    ovw.add_argument("--depth", type=int, default=6, metavar="N",
                     help="maximum span-tree depth to render (default 6)")
    ovw.add_argument("--top", type=int, default=10, metavar="N",
                     help="hotspot rows to show (default 10)")

    odf = obs_sub.add_parser(
        "diff",
        help="compare two runs (or a run vs its journal baseline) with "
        "typed regressed/improved/neutral verdicts",
    )
    odf.add_argument(
        "before",
        help="trace JSON path or journal run id ('latest' for the most "
        "recent record); with --baseline this is the run under test",
    )
    odf.add_argument(
        "after", nargs="?", default=None,
        help="second run to compare against; omit with --baseline",
    )
    odf.add_argument(
        "--baseline", type=int, default=None, metavar="K",
        help="diff the run against the mean of its last K matching "
        "journal runs (same command and config digest) instead of a "
        "second run",
    )
    _add_obs_journal_dir_arg(odf)
    odf.add_argument(
        "--rel", type=float, default=0.25, metavar="FRAC",
        help="relative-change threshold (default 0.25); a phase only "
        "leaves 'neutral' past both this and the absolute floor",
    )
    odf.add_argument(
        "--abs", type=float, default=0.25, metavar="SECONDS", dest="abs_s",
        help="absolute floor in seconds for time-valued changes "
        "(default 0.25)",
    )
    odf.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 3 when any phase or resource regressed",
    )

    ojo = obs_sub.add_parser("journal", help="browse the run journal")
    ojo_sub = ojo.add_subparsers(dest="journal_command", required=True)
    ojl = ojo_sub.add_parser("list", help="list journal records")
    _add_obs_journal_dir_arg(ojl)
    ojl.add_argument("--command", default=None, dest="filter_command",
                     metavar="CMD", help="only records of this command")
    ojl.add_argument("--last", type=int, default=20, metavar="N",
                     help="show only the most recent N records (default 20)")
    ojs = ojo_sub.add_parser("show", help="print one record as JSON")
    ojs.add_argument("run_id", help="run id, unique prefix, or 'latest'")
    _add_obs_journal_dir_arg(ojs)
    ojt = ojo_sub.add_parser(
        "trend",
        help="duration trend across matching records (with per-phase "
        "drill-down via --phase)",
    )
    _add_obs_journal_dir_arg(ojt)
    ojt.add_argument("--command", default=None, dest="filter_command",
                     metavar="CMD", help="only records of this command")
    ojt.add_argument("--phase", default=None, metavar="NAME",
                     help="also track one span name's total time")
    ojt.add_argument("--last", type=int, default=20, metavar="N",
                     help="most recent N records (default 20)")

    ofl = obs_sub.add_parser(
        "flame", help="summarize a collapsed-stack profile (<stem>.flame.txt)"
    )
    ofl.add_argument("flame_file", help="collapsed-stack file")
    ofl.add_argument("--top", type=int, default=10, metavar="N",
                     help="stacks/spans to show (default 10)")

    opr = obs_sub.add_parser(
        "export-prom",
        help="export a trace JSON's metrics snapshot in Prometheus "
        "text format",
    )
    opr.add_argument("trace_json", help="a --trace-out JSON file")

    rem = sub.add_parser(
        "remedies", help="suggest and evaluate remedies for a workload"
    )
    rem.add_argument("--workload", choices=WORKLOAD_NAMES, default="tiny")
    rem.add_argument("--seed", type=int, default=42)
    rem.add_argument("--evaluate", action="store_true",
                     help="re-generate with remedies applied and compare")

    sub.add_parser("list", help="list registered experiments")
    return parser


def _resolve_substrate(args: argparse.Namespace, table=None):
    """Load-or-build for ``--substrate-cache``: returns ``(table, substrate)``.

    Cache hit: the snapshot is mmapped in milliseconds and — when no
    ``table`` was supplied — the trace file is not read at all. Before
    loading, the snapshot's recorded source provenance (trace path,
    size, mtime) is checked against the trace on disk; a stale,
    corrupt, or mismatched snapshot is rebuilt and overwritten rather
    than trusted or fatal. Without ``--substrate-cache`` this reduces
    to ``(_read_trace(args.trace), None)``.
    """
    import os

    path = getattr(args, "substrate_cache", None)
    if path is None:
        return (table if table is not None else _read_trace(args.trace)), None
    from repro.core.substrate import AnalysisSubstrate
    from repro.io.snapshot import (
        load_substrate,
        save_substrate,
        snapshot_staleness,
    )
    from repro.obs import record_degradation

    source = getattr(args, "trace", None)
    if os.path.exists(path):
        reason = snapshot_staleness(path, source)
        substrate = None
        if reason is None:
            try:
                substrate = load_substrate(path)
            except (ValueError, OSError) as exc:
                reason = f"snapshot failed to load ({exc})"
        if substrate is not None:
            if table is None or (
                len(substrate.table) == len(table)
                and np.array_equal(substrate.table.start_time, table.start_time)
            ):
                print(
                    f"substrate cache: loaded {path} "
                    f"({len(substrate.table)} sessions; delete the file to "
                    "rebuild)"
                )
                return substrate.table, substrate
            reason = "snapshot does not match this trace"
        record_degradation("snapshot_rebuild", f"substrate cache {path}: {reason}")
        print(f"substrate cache: {path}: {reason}; rebuilding")
    if table is None:
        table = _read_trace(args.trace)
    substrate = AnalysisSubstrate.build(table)
    save_substrate(substrate, path, source=source)
    print(f"substrate cache: built and saved {path}")
    return table, substrate


def _read_trace(path: str):
    # Chunked column-wise decode: bit-identical to the row-wise reader,
    # much faster on week-scale traces.
    if path.endswith(".jsonl"):
        return read_sessions_jsonl(path, chunked=True)
    if path.endswith(".csv"):
        return read_sessions_csv(path, chunked=True)
    if path.endswith(".npz"):
        return read_sessions_npz(path)
    raise ValueError(
        f"unsupported trace extension: {path} (use .jsonl, .csv or .npz)"
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    import dataclasses

    spec = StandardWorkloads.by_name(args.workload, seed=args.seed)
    if args.sim != spec.sim:
        spec = dataclasses.replace(spec, sim=args.sim)
    trace = generate_trace(spec)
    if args.output.endswith(".jsonl"):
        n = write_sessions_jsonl(trace.table, args.output)
    elif args.output.endswith(".csv"):
        n = write_sessions_csv(trace.table, args.output)
    elif args.output.endswith(".npz"):
        n = write_sessions_npz(
            trace.table, args.output, compress=not args.no_compress
        )
    else:
        raise ValueError("output must end in .jsonl, .csv or .npz")
    print(
        f"wrote {n} sessions ({spec.n_epochs} epochs, "
        f"{len(trace.catalog)} planted events) to {args.output}"
    )
    return 0


def _open_shard_store(args: argparse.Namespace):
    """Validate ``--shard-dir`` flag combinations and open the store."""
    if getattr(args, "substrate_cache", None) is not None:
        raise ValueError(
            "--shard-dir and --substrate-cache are mutually exclusive "
            "(a shard store already persists its substrates)"
        )
    if getattr(args, "trace", None) is not None:
        raise ValueError(
            "give either a trace path or --shard-dir, not both"
        )
    from repro.core.shards import ShardStore

    return ShardStore.open(args.shard_dir)


def _open_result_cache(args: argparse.Namespace):
    """``--result-cache`` flag: a ResultCache, or None when not given.

    The cache memoizes per-shard partials, so it only applies to
    sharded runs; requiring ``--shard-dir`` keeps a silently-ignored
    flag from masquerading as a warm cache.
    """
    path = getattr(args, "result_cache", None)
    if path is None:
        return None
    if getattr(args, "shard_dir", None) is None:
        raise ValueError(
            "--result-cache requires --shard-dir (it memoizes per-shard "
            "results; in-memory runs have no shards to key on)"
        )
    from repro.core.resultcache import ResultCache

    return ResultCache(path)


def _cmd_analyze(args: argparse.Namespace) -> int:
    result_cache = _open_result_cache(args)
    if args.shard_dir is not None:
        from repro.core.shards import analyze_shards

        store = _open_shard_store(args)
        analysis = analyze_shards(
            store, workers=args.workers, result_cache=result_cache,
        )
        n_sessions, source = store.total_sessions, args.shard_dir
    else:
        if args.trace is None:
            raise ValueError("a trace path or --shard-dir is required")
        table, substrate = _resolve_substrate(args)
        analysis = analyze_trace(
            table, workers=args.workers, engine=args.engine,
            transport=args.transport, substrate=substrate,
        )
        n_sessions, source = len(table), args.trace
    rows = []
    for name, ma in analysis.metrics.items():
        rows.append(
            [
                name,
                float(ma.problem_ratio_series.mean()),
                ma.mean_problem_clusters,
                ma.mean_critical_clusters,
                ma.mean_critical_cluster_coverage,
            ]
        )
    print(
        render_table(
            ["Metric", "Problem ratio", "Problem clusters", "Critical clusters",
             "Critical coverage"],
            rows,
            title=f"Analysis of {source} "
            f"({n_sessions} sessions, {analysis.grid.n_epochs} epochs)",
        )
    )
    if args.timings:
        _print_timings(analysis.timings)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import dataclasses

    result_cache = _open_result_cache(args)

    from repro.core.metrics import MetricThresholds
    from repro.core.pipeline import AnalysisConfig
    from repro.core.problems import ProblemClusterConfig
    from repro.core.substrate import analyze_sweep

    base = AnalysisConfig()
    variants: list[tuple[str, AnalysisConfig]] = []
    for mult in args.ratio_multipliers or ():
        variants.append((
            f"ratio x{mult:g}",
            dataclasses.replace(
                base,
                problem_config=ProblemClusterConfig(ratio_multiplier=mult),
            ),
        ))
    for scale in args.threshold_scales or ():
        variants.append((
            f"thresholds x{scale:g}",
            dataclasses.replace(
                base, thresholds=MetricThresholds().scaled(scale)
            ),
        ))
    for seconds in args.epoch_seconds or ():
        variants.append((
            f"epoch {seconds:g}s",
            dataclasses.replace(base, epoch_seconds=seconds),
        ))
    if not variants:
        variants = [("baseline", base)]

    if args.shard_dir is not None:
        from repro.core.shards import sweep_shards

        store = _open_shard_store(args)
        analyses = sweep_shards(
            store, [config for _, config in variants], workers=args.workers,
            result_cache=result_cache,
        )
        n_sessions, source = store.total_sessions, args.shard_dir
    else:
        if args.trace is None:
            raise ValueError("a trace path or --shard-dir is required")
        table, substrate = _resolve_substrate(args)
        analyses = analyze_sweep(
            table,
            [config for _, config in variants],
            substrate=substrate,
            workers=args.workers,
            transport=args.transport,
        )
        n_sessions, source = len(table), args.trace
    rows = []
    for (label, _), analysis in zip(variants, analyses):
        for name, ma in analysis.metrics.items():
            rows.append(
                [
                    label,
                    name,
                    analysis.grid.n_epochs,
                    ma.mean_problem_clusters,
                    ma.mean_critical_clusters,
                    ma.mean_critical_cluster_coverage,
                ]
            )
    print(
        render_table(
            ["Variant", "Metric", "Epochs", "Problem clusters",
             "Critical clusters", "Critical coverage"],
            rows,
            title=f"Config sweep over {source} ({n_sessions} sessions, "
            f"{len(variants)} variants, one substrate build)",
        )
    )
    if args.timings:
        for (label, _), analysis in zip(variants, analyses):
            print()
            print(f"-- {label} --")
            print(analysis.timings.render())
        line = _peak_rss_line()
        if line is not None:
            print(line)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    ctx = ExperimentContext.generate(
        workload=args.workload, seed=args.seed, workers=args.workers,
        engine=args.engine,
    )
    ids = sorted(EXPERIMENTS) if args.experiment_id == "all" else [args.experiment_id]
    for experiment_id in ids:
        experiment = get_experiment(experiment_id)
        result = experiment.run(ctx)
        print(f"== {experiment.paper_ref}: {experiment.title} ==")
        print(result.text)
        print()
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.runners import run_validation

    ctx = ExperimentContext.generate(workload=args.workload, seed=args.seed)
    print(run_validation(ctx).text)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import write_report
    from repro.core.pipeline import analyze_trace as _analyze

    spec = StandardWorkloads.by_name(args.workload, seed=args.seed)
    trace = generate_trace(spec)
    result_cache = _open_result_cache(args)
    if args.shard_dir is not None:
        analysis = _report_analyze_sharded(args, trace, result_cache)
    else:
        _, substrate = _resolve_substrate(args, table=trace.table)
        analysis = _analyze(
            trace.table, grid=trace.grid, workers=args.workers,
            engine=args.engine, substrate=substrate,
        )
    path = write_report(
        args.output, trace.table, analysis, catalog=trace.catalog,
        title=f"Problem-structure report — workload {args.workload}, "
        f"seed {args.seed}",
    )
    print(f"wrote report to {path}")
    if args.timings:
        _print_timings(analysis.timings)
    return 0


def _report_analyze_sharded(args: argparse.Namespace, trace, result_cache=None):
    """``report --shard-dir``: reuse a matching store or (re)build one.

    The report workload is generated, not read from disk, so the store
    acts as a cache for the generated trace: an existing store is only
    trusted when its grid matches the workload's.
    """
    import os

    from repro.core.shards import ShardStore, analyze_shards, build_shard_store

    if getattr(args, "substrate_cache", None) is not None:
        raise ValueError(
            "--shard-dir and --substrate-cache are mutually exclusive "
            "(a shard store already persists its substrates)"
        )
    store = None
    if os.path.exists(os.path.join(args.shard_dir, "manifest.json")):
        store = ShardStore.open(args.shard_dir)
        if store.grid != trace.grid or store.total_sessions != len(trace.table):
            print(
                f"shard store: {args.shard_dir} does not match this "
                "workload; rebuilding"
            )
            store = None
    if store is None:
        store = build_shard_store(
            trace.table, args.shard_dir, epochs_per_shard=24, grid=trace.grid
        )
        print(
            f"shard store: built {args.shard_dir} "
            f"({len(store.shards)} shards, {store.total_sessions} sessions)"
        )
    return analyze_shards(
        store, workers=args.workers, result_cache=result_cache
    )


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.core.shards import ShardStore, build_shard_store

    if args.shard_command == "build":
        epochs_per_shard, n_shards = args.epochs_per_shard, args.shards
        if epochs_per_shard is None and n_shards is None:
            epochs_per_shard = 24
        table = _read_trace(args.trace)
        store = build_shard_store(
            table,
            args.output,
            epochs_per_shard=epochs_per_shard,
            n_shards=n_shards,
            epoch_seconds=args.epoch_seconds,
        )
        widths = [s.n_epochs for s in store.shards]
        print(
            f"wrote {len(store.shards)} shards "
            f"({store.total_sessions} sessions, {store.grid.n_epochs} "
            f"epochs, {min(widths)}-{max(widths)} epochs/shard) "
            f"to {args.output}"
        )
        return 0

    store = ShardStore.open(args.store)
    sizes = [store.shard_path(i).stat().st_size for i in range(len(store.shards))]
    print(
        f"shard store {args.store}: {len(store.shards)} shards, "
        f"{store.total_sessions} sessions, {store.grid.n_epochs} epochs "
        f"of {store.grid.epoch_seconds:g}s, {_format_bytes(sum(sizes))} "
        f"on disk, schema {store.schema_digest[:12]}"
    )
    print(
        render_table(
            ["Shard", "File", "Epochs", "Sessions", "Bytes"],
            [
                [i, s.file, f"[{s.epoch_lo}, {s.epoch_hi})", s.sessions,
                 _format_bytes(size)]
                for i, (s, size) in enumerate(zip(store.shards, sizes))
            ],
        )
    )
    return 0


def _format_bytes(n: int) -> str:
    """Human byte count (powers of 1024, one decimal above KiB)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            return f"{int(value)} {unit}" if unit == "B" else f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.core.resultcache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "prune":
        evicted = cache.evict_to(args.max_bytes)
        stats = cache.stats()
        print(
            f"evicted {len(evicted)} entr{'y' if len(evicted) == 1 else 'ies'}; "
            f"{stats.entries} left, {_format_bytes(stats.total_bytes)} "
            f"(cap {_format_bytes(args.max_bytes)})"
        )
        return 0
    stats = cache.stats()
    print(
        f"result cache {args.cache_dir}: {stats.entries} entries, "
        f"{_format_bytes(stats.total_bytes)}"
    )
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    handlers = {
        "view": _cmd_obs_view,
        "diff": _cmd_obs_diff,
        "journal": _cmd_obs_journal,
        "flame": _cmd_obs_flame,
        "export-prom": _cmd_obs_export_prom,
    }
    return handlers[args.obs_command](args)


def _cmd_obs_view(args: argparse.Namespace) -> int:
    from repro.obs.analyze import (
        critical_path,
        load_trace_json,
        render_critical_path,
        render_tree,
        top_spans,
    )

    payload = load_trace_json(args.trace_json)
    tree = payload["trace"]
    print(
        f"trace {args.trace_json}: {tree['name']} "
        f"({float(tree.get('duration_s', 0.0)):.4f} s)"
    )
    print()
    print(render_tree(tree, max_depth=args.depth))
    top = top_spans(tree, n=args.top)
    if top:
        print()
        print(
            render_table(
                ["Span", "Count", "Total s", "Self s", "Max s"],
                [[s.name, s.count, s.total_s, s.self_s, s.max_s]
                 for s in top],
                title=f"Top {len(top)} spans by self time",
            )
        )
    print()
    print("critical path:")
    print(render_critical_path(critical_path(tree)))
    return 0


def _resolve_run(ref: str, journal) -> dict:
    """A diffable record from a trace-JSON path or a journal run id."""
    import os

    from repro.obs.diff import record_from_trace

    if os.path.isfile(ref):
        return record_from_trace(ref)
    if ref == "latest":
        record = journal.latest()
        if record is None:
            raise ValueError(
                f"journal {journal.file} is empty ('latest' resolves "
                "nothing)"
            )
        return record
    record = journal.get(ref)
    if record is None:
        raise ValueError(
            f"{ref!r} is neither a trace JSON file nor a run id in "
            f"{journal.file}"
        )
    return record


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs.diff import DiffThresholds, diff_records
    from repro.obs.journal import RunJournal

    thresholds = DiffThresholds(rel=args.rel, abs_s=args.abs_s)
    journal = RunJournal(args.journal_dir)
    record = _resolve_run(args.before, journal)
    if args.baseline is not None:
        if args.after is not None:
            raise ValueError(
                "--baseline compares one run against journal history; "
                "drop the second argument"
            )
        baseline = journal.baseline(record, k=args.baseline)
        if baseline is None:
            raise ValueError(
                f"journal {journal.file} has no other runs matching "
                f"{record.get('run_id')} (command + config digest) to "
                "build a baseline from"
            )
        result = diff_records(baseline, record, thresholds)
    else:
        if args.after is None:
            raise ValueError(
                "obs diff needs two runs, or one run with --baseline K"
            )
        result = diff_records(
            record, _resolve_run(args.after, journal), thresholds
        )
    print(result.render())
    if args.fail_on_regression and result.has_regressions:
        return 3
    return 0


def _format_unix(ts) -> str:
    import datetime

    if ts is None:
        return "-"
    return datetime.datetime.fromtimestamp(
        float(ts), tz=datetime.timezone.utc
    ).strftime("%Y-%m-%d %H:%M:%S")


def _cmd_obs_journal(args: argparse.Namespace) -> int:
    import json

    from repro.obs.journal import RunJournal

    journal = RunJournal(args.journal_dir)
    if args.journal_command == "show":
        if args.run_id == "latest":
            record = journal.latest()
            if record is None:
                raise ValueError(f"journal {journal.file} is empty")
        else:
            record = journal.get(args.run_id)
            if record is None:
                raise ValueError(
                    f"no record {args.run_id!r} in {journal.file}"
                )
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0

    records = journal.records(command=args.filter_command, last=args.last)
    if not records:
        print(f"journal {journal.file}: no matching records")
        return 0
    if args.journal_command == "list":
        print(
            render_table(
                ["Run", "Recorded (UTC)", "Command", "Duration s", "Exit",
                 "Git", "Degraded"],
                [
                    [
                        r.get("run_id", "-"),
                        _format_unix(r.get("recorded_unix")),
                        r.get("command", "-"),
                        f"{float(r.get('duration_s') or 0.0):.4f}",
                        r.get("exit_code"),
                        (r.get("git_sha") or "-")[:10],
                        len(r.get("degradations") or []),
                    ]
                    for r in records
                ],
                title=f"journal {journal.file}: {len(records)} records",
            )
        )
        return 0

    # trend: duration (and optionally one phase) across the records,
    # each with its change relative to the previous matching run.
    headers = ["Run", "Recorded (UTC)", "Command", "Duration s", "Change"]
    if args.phase:
        headers.append(f"{args.phase} s")
    rows = []
    prev = None
    for r in records:
        duration = float(r.get("duration_s") or 0.0)
        change = (
            "-" if not prev else f"{100.0 * (duration - prev) / prev:+.1f}%"
        )
        row = [
            r.get("run_id", "-"),
            _format_unix(r.get("recorded_unix")),
            r.get("command", "-"),
            f"{duration:.4f}",
            change,
        ]
        if args.phase:
            stats = (r.get("phases") or {}).get(args.phase)
            row.append(
                "-" if stats is None
                else f"{float(stats.get('total_s', 0.0)):.4f}"
            )
        rows.append(row)
        if duration > 0:
            prev = duration
    print(
        render_table(
            headers, rows,
            title=f"journal {journal.file}: duration trend "
            f"({len(records)} records)",
        )
    )
    return 0


def _cmd_obs_flame(args: argparse.Namespace) -> int:
    from repro.obs.profile import read_collapsed

    stacks = read_collapsed(args.flame_file)
    if not stacks:
        print(f"{args.flame_file}: no samples")
        return 0
    total = sum(count for _, count in stacks)
    top_n = max(0, args.top)
    ranked = sorted(stacks, key=lambda item: (-item[1], item[0]))[:top_n]
    print(
        render_table(
            ["Stack", "Samples", "Share"],
            [
                [";".join(path), count, f"{100.0 * count / total:.1f}%"]
                for path, count in ranked
            ],
            title=f"{args.flame_file}: {total} samples, "
            f"{len(stacks)} unique stacks",
        )
    )
    leaves: dict[str, int] = {}
    for path, count in stacks:
        leaves[path[-1]] = leaves.get(path[-1], 0) + count
    print()
    print(
        render_table(
            ["Innermost span", "Samples", "Share"],
            [
                [name, count, f"{100.0 * count / total:.1f}%"]
                for name, count in sorted(
                    leaves.items(), key=lambda item: (-item[1], item[0])
                )[:top_n]
            ],
        )
    )
    return 0


def _cmd_obs_export_prom(args: argparse.Namespace) -> int:
    from repro.obs.analyze import load_trace_json
    from repro.obs.prom import render_prometheus

    payload = load_trace_json(args.trace_json)
    metrics = payload.get("metrics")
    if not metrics:
        raise ValueError(
            f"{args.trace_json} carries no metrics snapshot to export "
            "(was the run instrumented?)"
        )
    sys.stdout.write(render_prometheus(metrics))
    return 0


def _cmd_remedies(args: argparse.Namespace) -> int:
    from repro.core.pipeline import analyze_trace as _analyze
    from repro.remedies import evaluate_remedies, suggest_remedies

    spec = StandardWorkloads.by_name(args.workload, seed=args.seed)
    trace = generate_trace(spec)
    analysis = _analyze(trace.table, grid=trace.grid)
    suggestions = {}
    for name, ma in analysis.metrics.items():
        for s in suggest_remedies(trace.world, ma, top_k=4):
            suggestions.setdefault(s.remedy.name, s)
    if not suggestions:
        print("no remedies suggested (no actionable critical clusters)")
        return 0
    print(render_table(
        ["Remedy", "Triggered by", "Rationale"],
        [[s.remedy.name, f"{s.metric} {s.cluster.label()}", s.rationale]
         for s in suggestions.values()],
        title="Suggested remedies",
    ))
    if args.evaluate:
        evaluation = evaluate_remedies(
            spec, [s.remedy for s in suggestions.values()], baseline=trace
        )
        print()
        print(evaluation.render())
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    rows = [
        [e.experiment_id, e.paper_ref, e.title, e.workload]
        for e in EXPERIMENTS.values()
    ]
    print(render_table(["Id", "Paper ref", "Title", "Workload"], rows))
    return 0


def _run_command(args: argparse.Namespace) -> int:
    """Dispatch to the subcommand handler, mapping expected failures
    (bad inputs, unreadable files) to exit code 2 with a one-line
    stderr message. Programming errors still raise."""
    handlers = {
        "generate": _cmd_generate,
        "analyze": _cmd_analyze,
        "sweep": _cmd_sweep,
        "experiment": _cmd_experiment,
        "validate": _cmd_validate,
        "report": _cmd_report,
        "shard": _cmd_shard,
        "cache": _cmd_cache,
        "obs": _cmd_obs,
        "remedies": _cmd_remedies,
        "list": _cmd_list,
    }
    try:
        return handlers[args.command](args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    journal_dir = getattr(args, "journal", None)
    profile_hz = getattr(args, "profile", None)
    wants_timings = getattr(args, "timings", False)
    instrumented = (
        trace_out is not None
        or journal_dir is not None
        or profile_hz is not None
        or wants_timings
    )
    if not instrumented:
        return _run_command(args)
    if profile_hz is not None and trace_out is None:
        print(
            "error: --profile requires --trace-out (the collapsed-stack "
            "flamegraph is written next to it)",
            file=sys.stderr,
        )
        return 2
    if profile_hz is not None and profile_hz <= 0:
        print(
            f"error: --profile frequency must be positive, got "
            f"{profile_hz:g}",
            file=sys.stderr,
        )
        return 2

    from repro.obs import (
        MetricsRegistry,
        Tracer,
        build_run_manifest,
        manifest_path_for,
        render_histograms,
        use_metrics,
        use_tracer,
        write_run_manifest,
        write_trace_json,
    )

    tracer = Tracer(name=args.command)
    metrics = MetricsRegistry()
    profiler = None
    with use_tracer(tracer), use_metrics(metrics):
        if profile_hz is not None:
            from repro.obs.profile import SamplingProfiler, profiler_available

            if profiler_available():
                profiler = SamplingProfiler(tracer, hz=profile_hz)
                profiler.start()
            else:  # pragma: no cover - non-POSIX platforms
                from repro.obs import record_degradation

                record_degradation(
                    "profiler_unavailable",
                    "no SIGPROF/setitimer on this platform; "
                    "--profile ignored",
                )
        try:
            code = _run_command(args)
        finally:
            if profiler is not None:
                profiler.stop()
    tracer.finish()
    if profiler is not None:
        metrics.inc("profile.samples", profiler.n_samples)
        metrics.gauge("profile.hz", profiler.hz)
    if wants_timings and code == 0:
        print()
        print(tracer.render())
        histograms = render_histograms(metrics)
        if histograms:
            print()
            print(histograms)
    manifest = build_run_manifest(
        args.command,
        list(argv) if argv is not None else None,
        tracer,
        metrics=metrics,
        args={k: v for k, v in vars(args).items() if k != "command"},
        outputs=[str(trace_out)] if trace_out is not None else [],
        exit_code=code,
    )
    if trace_out is not None:
        write_trace_json(trace_out, tracer, metrics)
        manifest_path = write_run_manifest(
            manifest_path_for(trace_out),
            command=args.command,
            argv=None,
            tracer=tracer,
            manifest=manifest,
        )
        print(f"wrote trace to {trace_out} (run manifest: {manifest_path})")
        if profiler is not None:
            from repro.obs.profile import flame_path_for

            flame_path = profiler.write_collapsed(flame_path_for(trace_out))
            print(
                f"wrote profile to {flame_path} "
                f"({profiler.n_samples} samples at {profiler.hz:g} Hz)"
            )
    if journal_dir is not None:
        from repro.obs.journal import RunJournal

        try:
            record = RunJournal(journal_dir).ingest(
                manifest, trace=tracer.as_dict()
            )
            print(f"journal: recorded {record['run_id']} in {journal_dir}")
        except (OSError, ValueError) as exc:
            print(f"error: journal ingestion failed: {exc}", file=sys.stderr)
            if code == 0:
                code = 2
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
