"""Session-trace persistence.

Two row-oriented formats:

* CSV — one header row, one session per line; interoperable with
  spreadsheet/pandas workflows.
* JSONL — one JSON object per line; self-describing and append-safe.

Both round-trip exactly through :class:`SessionTable` (attribute
labels, metric values including NaN for failed joins, and timestamps).

Both readers have a ``chunked=True`` fast path that decodes the file
column-wise in fixed-size chunks and streams them into one table via
:meth:`SessionTable.extend` — no per-row :class:`Session` objects, no
per-row encoder lookups. The result is bit-identical to the row-wise
path (vocabularies grow in first-appearance order either way); the
row-wise path remains the default for small inputs and as the
reference implementation.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.core.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.core.sessions import Session, SessionTable
from repro.obs import current_metrics, current_tracer


def _ingest_span(path, fmt: str):
    """An ``ingest`` span for one trace read (bytes from the file size)."""
    try:
        nbytes = Path(path).stat().st_size
    except OSError:
        nbytes = 0
    return current_tracer().span(
        "ingest", path=str(path), format=fmt, bytes=int(nbytes)
    )


def _note_ingest(rows: int) -> None:
    current_metrics().inc("ingest.reads")
    current_metrics().inc("ingest.rows", rows)

#: Metric column order in files.
_METRIC_COLUMNS = (
    "start_time",
    "duration_s",
    "buffering_s",
    "join_time_s",
    "bitrate_kbps",
    "join_failed",
)


def _session_record(session: Session, schema: AttributeSchema) -> dict:
    record = {name: session.attrs[name] for name in schema.names}
    record.update(
        start_time=session.start_time,
        duration_s=session.duration_s,
        buffering_s=session.buffering_s,
        join_time_s=session.join_time_s,
        bitrate_kbps=session.bitrate_kbps,
        join_failed=session.join_failed,
    )
    return record


def _record_session(record: dict, schema: AttributeSchema) -> Session:
    missing = [n for n in schema.names if n not in record]
    if missing:
        raise ValueError(f"record missing attributes {missing}")
    return Session(
        attrs={name: str(record[name]) for name in schema.names},
        start_time=float(record["start_time"]),
        duration_s=float(record["duration_s"]),
        buffering_s=float(record["buffering_s"]),
        join_time_s=float(record["join_time_s"]),
        bitrate_kbps=float(record["bitrate_kbps"]),
        join_failed=_parse_bool(record["join_failed"]),
    )


#: Rows decoded per chunk on the ``chunked=True`` fast paths. Small
#: enough that a chunk's row buffers stay cache-resident (larger chunks
#: measure slower, not faster); appends amortize via ``extend``.
_CHUNK_ROWS = 4096


def _encode_labels(labels) -> tuple[list[str], np.ndarray]:
    """Vectorized first-appearance encoding of one attribute column.

    Returns ``(vocab, codes)`` with the vocabulary ordered by first
    appearance — exactly what the per-row encoder in
    :meth:`SessionTable.from_sessions` produces — in one pass over the
    column instead of a dict probe per attribute per row.
    """
    encoder: dict[str, int] = {}
    setdefault = encoder.setdefault
    codes = np.fromiter(
        (setdefault(str(label), len(encoder)) for label in labels),
        dtype=np.int32,
        count=len(labels),
    )
    return list(encoder), codes


def _bool_column(values: list) -> np.ndarray:
    """Vectorized :func:`_parse_bool` over a column."""
    if all(isinstance(v, bool) for v in values):
        return np.array(values, dtype=bool)
    text = np.char.strip(
        np.char.lower(np.asarray([str(v) for v in values], dtype="U"))
    )
    out = np.isin(text, ("true", "1", "yes"))
    bad = ~(out | np.isin(text, ("false", "0", "no")))
    if bad.any():
        raise ValueError(
            f"cannot parse boolean from {values[int(np.argmax(bad))]!r}"
        )
    return out


def _float_column(values) -> np.ndarray:
    """One metric column to float64 (strings parsed, ``None`` -> NaN)."""
    try:
        return np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError):
        return np.asarray(
            [float("nan") if v is None else float(v) for v in values],
            dtype=np.float64,
        )


def _chunk_table(columns: dict, schema: AttributeSchema, path) -> SessionTable:
    """Decode one chunk of raw columns into a table."""
    n = len(next(iter(columns.values()))) if columns else 0
    vocabs: list[list[str]] = []
    codes = np.empty((n, len(schema)), dtype=np.int32)
    metrics = {}
    try:
        for i, name in enumerate(schema.names):
            vocab, chunk_codes = _encode_labels(columns[name])
            vocabs.append(vocab)
            codes[:, i] = chunk_codes
        for name in _METRIC_COLUMNS:
            if name == "join_failed":
                metrics[name] = _bool_column(columns[name])
            else:
                metrics[name] = _float_column(columns[name])
    except KeyError as exc:
        raise ValueError(f"{path}: records missing column {exc}") from None
    return SessionTable(schema=schema, vocabs=vocabs, codes=codes, **metrics)


def _read_chunked(
    column_chunks: Iterator[dict], schema: AttributeSchema, path
) -> SessionTable:
    """Stream decoded column chunks into one table via ``extend``."""
    table = SessionTable.empty(schema)
    for columns in column_chunks:
        table.extend(_chunk_table(columns, schema, path))
    return table


def _parse_bool(value) -> bool:
    if isinstance(value, bool):
        return value
    text = str(value).strip().lower()
    if text in ("true", "1", "yes"):
        return True
    if text in ("false", "0", "no"):
        return False
    raise ValueError(f"cannot parse boolean from {value!r}")


def write_sessions_jsonl(table: SessionTable, path: str | Path) -> int:
    """Write a table as JSONL; returns the number of rows written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for session in table.rows():
            record = _session_record(session, table.schema)
            # JSON has no NaN; encode as null and restore on read.
            for key in ("join_time_s", "bitrate_kbps"):
                if isinstance(record[key], float) and math.isnan(record[key]):
                    record[key] = None
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def read_sessions_jsonl(
    path: str | Path,
    schema: AttributeSchema = DEFAULT_SCHEMA,
    chunked: bool = False,
    chunk_rows: int = _CHUNK_ROWS,
) -> SessionTable:
    """Read a JSONL trace back into a table.

    ``chunked=True`` decodes ``chunk_rows`` lines at a time column-wise
    and streams chunks into the table (bit-identical result, no per-row
    ``Session`` objects); use it for large traces.
    """
    with _ingest_span(path, "jsonl") as span:
        table = _read_jsonl(path, schema, chunked, chunk_rows)
        span.set(rows=len(table))
    _note_ingest(len(table))
    return table


def _read_jsonl(
    path: str | Path,
    schema: AttributeSchema,
    chunked: bool,
    chunk_rows: int,
) -> SessionTable:
    if chunked:
        return _read_chunked(
            _jsonl_record_chunks(Path(path), chunk_rows), schema, path
        )

    def records() -> Iterator[Session]:
        with Path(path).open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(f"{path}:{line_no}: invalid JSON") from exc
                for key in ("join_time_s", "bitrate_kbps"):
                    if record.get(key) is None:
                        record[key] = float("nan")
                yield _record_session(record, schema)

    return SessionTable.from_sessions(records(), schema=schema)


def _jsonl_record_chunks(path: Path, chunk_rows: int) -> Iterator[dict]:
    loads = json.loads
    with path.open("r", encoding="utf-8") as handle:
        chunk: list[dict] = []
        for line_no, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                chunk.append(loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: invalid JSON") from exc
            if len(chunk) >= chunk_rows:
                yield _records_to_columns(chunk, path)
                chunk = []
        if chunk:
            yield _records_to_columns(chunk, path)


def _records_to_columns(records: list[dict], path) -> dict:
    try:
        return {
            name: [record[name] for record in records]
            for name in records[0]
        }
    except KeyError as exc:
        raise ValueError(f"{path}: record missing field {exc}") from None


def write_sessions_csv(table: SessionTable, path: str | Path) -> int:
    """Write a table as CSV; returns the number of rows written."""
    path = Path(path)
    fieldnames = list(table.schema.names) + list(_METRIC_COLUMNS)
    count = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for session in table.rows():
            writer.writerow(_session_record(session, table.schema))
            count += 1
    return count


def read_sessions_csv(
    path: str | Path,
    schema: AttributeSchema = DEFAULT_SCHEMA,
    chunked: bool = False,
    chunk_rows: int = _CHUNK_ROWS,
) -> SessionTable:
    """Read a CSV trace back into a table.

    ``chunked=True`` decodes ``chunk_rows`` rows at a time column-wise
    and streams chunks into the table (bit-identical result, no per-row
    ``Session`` objects or dicts); use it for large traces.
    """
    with _ingest_span(path, "csv") as span:
        table = _read_csv(path, schema, chunked, chunk_rows)
        span.set(rows=len(table))
    _note_ingest(len(table))
    return table


def _read_csv(
    path: str | Path,
    schema: AttributeSchema,
    chunked: bool,
    chunk_rows: int,
) -> SessionTable:
    if chunked:
        return _read_chunked(
            _csv_record_chunks(Path(path), chunk_rows), schema, path
        )

    def records() -> Iterable[Session]:
        with Path(path).open("r", encoding="utf-8", newline="") as handle:
            for record in csv.DictReader(handle):
                yield _record_session(record, schema)

    return SessionTable.from_sessions(records(), schema=schema)


def _csv_record_chunks(path: Path, chunk_rows: int) -> Iterator[dict]:
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            fields = next(reader)
        except StopIteration:
            return
        n_fields = len(fields)
        chunk: list[list[str]] = []
        for row in reader:
            if len(row) != n_fields:
                raise ValueError(
                    f"{path}:{reader.line_num}: expected {n_fields} fields, "
                    f"got {len(row)}"
                )
            chunk.append(row)
            if len(chunk) >= chunk_rows:
                yield dict(zip(fields, zip(*chunk)))
                chunk = []
        if chunk:
            yield dict(zip(fields, zip(*chunk)))
