"""Session-trace persistence.

Two row-oriented formats:

* CSV — one header row, one session per line; interoperable with
  spreadsheet/pandas workflows.
* JSONL — one JSON object per line; self-describing and append-safe.

Both round-trip exactly through :class:`SessionTable` (attribute
labels, metric values including NaN for failed joins, and timestamps).
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.core.sessions import Session, SessionTable

#: Metric column order in files.
_METRIC_COLUMNS = (
    "start_time",
    "duration_s",
    "buffering_s",
    "join_time_s",
    "bitrate_kbps",
    "join_failed",
)


def _session_record(session: Session, schema: AttributeSchema) -> dict:
    record = {name: session.attrs[name] for name in schema.names}
    record.update(
        start_time=session.start_time,
        duration_s=session.duration_s,
        buffering_s=session.buffering_s,
        join_time_s=session.join_time_s,
        bitrate_kbps=session.bitrate_kbps,
        join_failed=session.join_failed,
    )
    return record


def _record_session(record: dict, schema: AttributeSchema) -> Session:
    missing = [n for n in schema.names if n not in record]
    if missing:
        raise ValueError(f"record missing attributes {missing}")
    return Session(
        attrs={name: str(record[name]) for name in schema.names},
        start_time=float(record["start_time"]),
        duration_s=float(record["duration_s"]),
        buffering_s=float(record["buffering_s"]),
        join_time_s=float(record["join_time_s"]),
        bitrate_kbps=float(record["bitrate_kbps"]),
        join_failed=_parse_bool(record["join_failed"]),
    )


def _parse_bool(value) -> bool:
    if isinstance(value, bool):
        return value
    text = str(value).strip().lower()
    if text in ("true", "1", "yes"):
        return True
    if text in ("false", "0", "no"):
        return False
    raise ValueError(f"cannot parse boolean from {value!r}")


def write_sessions_jsonl(table: SessionTable, path: str | Path) -> int:
    """Write a table as JSONL; returns the number of rows written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for session in table.rows():
            record = _session_record(session, table.schema)
            # JSON has no NaN; encode as null and restore on read.
            for key in ("join_time_s", "bitrate_kbps"):
                if isinstance(record[key], float) and math.isnan(record[key]):
                    record[key] = None
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def read_sessions_jsonl(
    path: str | Path, schema: AttributeSchema = DEFAULT_SCHEMA
) -> SessionTable:
    """Read a JSONL trace back into a table."""

    def records() -> Iterator[Session]:
        with Path(path).open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(f"{path}:{line_no}: invalid JSON") from exc
                for key in ("join_time_s", "bitrate_kbps"):
                    if record.get(key) is None:
                        record[key] = float("nan")
                yield _record_session(record, schema)

    return SessionTable.from_sessions(records(), schema=schema)


def write_sessions_csv(table: SessionTable, path: str | Path) -> int:
    """Write a table as CSV; returns the number of rows written."""
    path = Path(path)
    fieldnames = list(table.schema.names) + list(_METRIC_COLUMNS)
    count = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for session in table.rows():
            writer.writerow(_session_record(session, table.schema))
            count += 1
    return count


def read_sessions_csv(
    path: str | Path, schema: AttributeSchema = DEFAULT_SCHEMA
) -> SessionTable:
    """Read a CSV trace back into a table."""

    def records() -> Iterable[Session]:
        with Path(path).open("r", encoding="utf-8", newline="") as handle:
            for record in csv.DictReader(handle):
                yield _record_session(record, schema)

    return SessionTable.from_sessions(records(), schema=schema)
