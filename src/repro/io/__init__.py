"""Trace and result persistence (CSV / JSONL)."""

from repro.io.traceio import (
    read_sessions_csv,
    read_sessions_jsonl,
    write_sessions_csv,
    write_sessions_jsonl,
)
from repro.io.binary import read_sessions_npz, write_sessions_npz
from repro.io.results import write_series_csv, write_table_csv
from repro.io.snapshot import load_substrate, save_substrate

__all__ = [
    "read_sessions_csv",
    "read_sessions_jsonl",
    "write_sessions_csv",
    "write_sessions_jsonl",
    "read_sessions_npz",
    "write_sessions_npz",
    "load_substrate",
    "save_substrate",
    "write_series_csv",
    "write_table_csv",
]
