"""CSV export of experiment outputs (tables and figure series)."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence


def write_table_csv(
    path: str | Path, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    """Write a table (e.g. Table 1 rows) as CSV."""
    with Path(path).open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ValueError(
                    f"row has {len(row)} cells, expected {len(headers)}"
                )
            writer.writerow(row)


def write_series_csv(
    path: str | Path,
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
) -> None:
    """Write one or more aligned series (a figure's data) as CSV."""
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length mismatch")
    with Path(path).open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label, *series.keys()])
        for i, xv in enumerate(x):
            writer.writerow([xv, *(series[name][i] for name in series)])
