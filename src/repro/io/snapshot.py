"""Persistent substrate snapshots: load a trace's index in milliseconds.

Packing a :class:`~repro.core.sessions.SessionTable` and building its
:class:`~repro.core.index.TraceClusterIndex` is config-independent work
that every CLI invocation over the same trace used to re-pay — roughly
40% of indexed-engine wall time. A snapshot persists the whole substrate
(packed columns, leaf universe, per-mask cluster tables, inverses,
prewarmed lattice projections, validity masks) in an mmap-friendly
single file so repeated ``analyze``/``sweep``/``report`` runs deserialize
a few hundred bytes of JSON and map the arrays zero-copy.

File layout (all integers little-endian)::

    offset 0   MAGIC = b"RPROSUB1"         (8 bytes; version in magic)
    offset 8   uint64 manifest byte length
    offset 16  JSON manifest (utf-8)
    ...        zero padding to a 64-byte boundary
    data       raw array bytes, each array at a 64-byte-aligned offset

The manifest reuses the :mod:`repro.core.shm` layout — one
``(key, dtype, shape, offset)`` record per array, with the same
structured keys ``("table", column)`` / ``("index", kind, *detail)``
that the shared-memory transport ships — plus the small non-array state
(schema, vocabularies, codec widths/offsets, fold tables). Array
offsets are relative to the data section, which starts at the first
64-byte boundary after the manifest.

Cached problem masks are *not* persisted: their cache keys embed
:class:`~repro.core.metrics.MetricThresholds` instances (config state),
and they are cheap to recompute per run. Cached validity masks (keyed
by metric name only) are persisted and restored.

Every manifest is stamped with ``content_sha256`` — the SHA-256 of the
raw data section (array bytes plus alignment padding) exactly as
written. ``load_substrate`` re-hashes and compares by default, turning
silent snapshot bit-rot into a :class:`ValueError` (pass
``verify=False`` to skip the pass over the bytes, e.g. on trusted local
re-loads); the stamp is also the content-address the per-shard result
cache (:mod:`repro.core.resultcache`) keys on, so cache keys never
re-hash payloads at lookup time.

``load_substrate`` maps the file read-only; restored arrays are views
into the mapping (like shm-attached worker views). An appended-to
substrate allocates fresh buffers on first growth, so
``StreamingSubstrate(index=loaded.index)`` works on a loaded snapshot.
"""

from __future__ import annotations

import hashlib
import json
import mmap as _mmap
import struct
from pathlib import Path

import numpy as np

from repro.core.aggregation import KeyCodec
from repro.core.attributes import AttributeSchema
from repro.core.shm import (
    _ALIGN,
    export_arrays,
    index_from_arrays,
    table_from_arrays,
)
from repro.core.substrate import AnalysisSubstrate
from repro.obs import current_metrics, current_tracer

#: Snapshot file magic; bump the trailing digit on format changes.
MAGIC = b"RPROSUB1"

_HEADER = struct.Struct("<8sQ")  # magic + manifest length


def _align(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


def _persistable(key) -> bool:
    """Whether an exported array belongs in a snapshot.

    Problem-mask cache keys embed ``MetricThresholds`` objects — config
    state that neither serializes to JSON nor belongs in a
    config-independent snapshot.
    """
    return not (key[0] == "index" and key[1] == "problem")


def _little_endian(arr: np.ndarray) -> np.ndarray:
    if arr.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts
        return arr.astype(arr.dtype.newbyteorder("<"))
    return np.ascontiguousarray(arr)


def schema_sha256(schema: AttributeSchema) -> str:
    """Stable digest of the attribute schema a snapshot was built under.

    Shared by substrate snapshots and shard-store manifests
    (:mod:`repro.core.shards`) so both layers agree on schema identity.
    """
    return hashlib.sha256("\x00".join(schema.names).encode("utf-8")).hexdigest()


def source_record(source_path: str | Path) -> dict:
    """The identity of a source trace file as recorded in snapshots.

    ``path`` (resolved), ``size`` and ``mtime_ns`` together decide
    staleness: any drift means the snapshot was built from different
    bytes (or a different file) than the trace now on disk.
    """
    p = Path(source_path)
    st = p.stat()
    return {
        "path": str(p.resolve()),
        "size": int(st.st_size),
        "mtime_ns": int(st.st_mtime_ns),
    }


def save_substrate(
    substrate,
    path: str | Path,
    source: str | Path | None = None,
    extra: dict | None = None,
) -> Path:
    """Write a substrate (or anything with ``.table`` and ``.index``)
    to ``path``. Returns the path.

    ``source`` (optional) is the trace file the substrate was built
    from; its identity (path, size, mtime) is recorded in the manifest
    so :func:`snapshot_staleness` can detect a snapshot that no longer
    matches the trace on disk. ``extra`` (optional) is a JSON-encodable
    dict stored verbatim under the manifest's ``"extra"`` key — callers
    like the shard store use it to stamp shard boundaries onto each
    snapshot; the load path ignores it.
    """
    path = Path(path)
    table, index = substrate.table, substrate.index
    arrays = {
        key: _little_endian(arr)
        for key, arr in export_arrays(table, index).items()
        if _persistable(key)
    }

    entries = []
    offset = 0
    content_hash = hashlib.sha256()
    for key, arr in arrays.items():
        aligned = _align(offset)
        content_hash.update(b"\0" * (aligned - offset))
        content_hash.update(arr.tobytes())
        entries.append(
            {
                "key": list(key),
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": aligned,
            }
        )
        offset = aligned + arr.nbytes

    codec = index.codec
    manifest = {
        "version": 1,
        "schema": list(table.schema.names),
        "schema_sha256": schema_sha256(table.schema),
        "vocabs": [list(v) for v in table.vocabs],
        "n_rows": len(table),
        "widths": [int(w) for w in codec.widths],
        "codec_offsets": [int(o) for o in codec.offsets],
        "fold_source": [[int(m), int(s)] for m, s in index.fold_source.items()],
        "fold_order": [int(m) for m in index.fold_order],
        "content_sha256": content_hash.hexdigest(),
        "content_bytes": offset,
        "arrays": entries,
    }
    if source is not None:
        manifest["source"] = source_record(source)
    if extra is not None:
        manifest["extra"] = extra
    payload = json.dumps(manifest, separators=(",", ":")).encode("utf-8")

    data_start = _align(_HEADER.size + len(payload))
    total = data_start + (offset if entries else 0)
    with current_tracer().span(
        "snapshot.save", path=str(path), arrays=len(entries)
    ) as span:
        with open(path, "wb") as f:
            f.write(_HEADER.pack(MAGIC, len(payload)))
            f.write(payload)
            f.write(b"\0" * (data_start - _HEADER.size - len(payload)))
            pos = 0
            for entry, arr in zip(entries, arrays.values()):
                f.write(b"\0" * (entry["offset"] - pos))
                f.write(arr.tobytes())
                pos = entry["offset"] + arr.nbytes
        span.set(bytes=total)
    current_metrics().inc("snapshot.saves")
    current_metrics().inc("snapshot.saved_bytes", total)
    return path


def _read_manifest(path: Path, buf) -> tuple[dict, int]:
    """Parse and validate the header; returns (manifest, data_start)."""
    if len(buf) < _HEADER.size:
        raise ValueError(f"{path}: not a substrate snapshot (file too short)")
    magic, length = _HEADER.unpack(buf[: _HEADER.size])
    if magic != MAGIC:
        raise ValueError(
            f"{path}: not a substrate snapshot (bad magic {magic!r}; "
            f"expected {MAGIC!r} — version-mismatched snapshots must be "
            "rebuilt, not migrated)"
        )
    if _HEADER.size + length > len(buf):
        raise ValueError(f"{path}: truncated snapshot manifest")
    try:
        manifest = json.loads(bytes(buf[_HEADER.size : _HEADER.size + length]))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: corrupted snapshot manifest: {exc}") from exc
    if manifest.get("version") != 1:
        raise ValueError(
            f"{path}: unsupported snapshot version {manifest.get('version')!r}"
        )
    return manifest, _align(_HEADER.size + length)


def read_snapshot_manifest(path: str | Path) -> dict:
    """Read and validate only the header + JSON manifest of a snapshot.

    Never touches the array data, so it stays cheap on week-scale
    snapshots. Raises :class:`ValueError` on anything that is not a
    well-formed version-1 snapshot and :class:`OSError` when the file
    cannot be read.
    """
    path = Path(path)
    with open(path, "rb") as f:
        head = f.read(_HEADER.size)
        if len(head) == _HEADER.size:
            _, length = _HEADER.unpack(head)
            # Cap the read: a corrupted length field must not balloon
            # into an attempted multi-GB allocation.
            head += f.read(min(int(length), 1 << 30))
    manifest, _ = _read_manifest(path, head)
    return manifest


def snapshot_staleness(
    path: str | Path, source_path: str | Path | None = None
) -> str | None:
    """Why ``path`` cannot be trusted for ``source_path``, or ``None``.

    Returns a human-readable reason when the snapshot is unreadable or
    corrupt, records no source provenance, or records a source whose
    resolved path, size, or mtime does not match the trace now on disk.
    Returns ``None`` when the snapshot is safe to load (staleness
    vs. ``source_path`` is only checked when one is given).
    """
    try:
        manifest = read_snapshot_manifest(path)
    except (ValueError, OSError) as exc:
        return f"snapshot is unreadable: {exc}"
    if source_path is None:
        return None
    recorded = manifest.get("source")
    if recorded is None:
        return (
            "snapshot records no source trace, so it does not match "
            "any provenance check; rebuild to adopt source tracking"
        )
    try:
        current = source_record(source_path)
    except OSError as exc:
        return f"source trace is unreadable: {exc}"
    for field, label in (
        ("path", "path"),
        ("size", "size"),
        ("mtime_ns", "mtime"),
    ):
        if recorded.get(field) != current[field]:
            return (
                f"source trace {label} does not match the snapshot's "
                f"recorded source ({current[field]!r} != "
                f"{recorded.get(field)!r})"
            )
    return None


def _verify_content(path: Path, buf, manifest: dict, data_start: int) -> None:
    """Re-hash the data section against the manifest's content stamp.

    Snapshots written before the stamp existed carry no
    ``content_sha256`` and are accepted unverified (there is nothing to
    verify against). A mismatch means the array bytes on disk are not
    the bytes that were saved — bit-rot, truncation past the manifest,
    or a partial overwrite — and raises :class:`ValueError` like every
    other corruption.
    """
    recorded = manifest.get("content_sha256")
    if recorded is None:
        return
    length = int(manifest.get("content_bytes", len(buf) - data_start))
    if data_start + length > len(buf):
        raise ValueError(
            f"{path}: truncated snapshot (data section ends past EOF)"
        )
    digest = hashlib.sha256(
        memoryview(buf)[data_start : data_start + length]
    ).hexdigest()
    if digest != recorded:
        raise ValueError(
            f"{path}: corrupted snapshot (content sha256 mismatch: "
            f"{digest[:12]} != recorded {recorded[:12]}); rebuild it"
        )


def snapshot_content_sha256(path: str | Path) -> str:
    """The content-address of a snapshot's array payload.

    Returns the ``content_sha256`` stamped into the manifest at save
    time — a manifest-only read, never touching the array bytes. For
    pre-stamp snapshots the data section is hashed on the fly (one
    sequential pass), so every readable snapshot has a content address.
    Raises :class:`ValueError`/:class:`OSError` on unreadable or
    malformed snapshots.
    """
    path = Path(path)
    manifest = read_snapshot_manifest(path)
    stamped = manifest.get("content_sha256")
    if stamped is not None:
        return str(stamped)
    with open(path, "rb") as f:
        buf = f.read()
    _, data_start = _read_manifest(path, buf)
    return hashlib.sha256(memoryview(buf)[data_start:]).hexdigest()


def load_substrate(
    path: str | Path, mmap: bool = True, verify: bool = True
) -> AnalysisSubstrate:
    """Load a substrate saved by :func:`save_substrate`.

    ``mmap=True`` (default) maps the file read-only and restores every
    array as a zero-copy view — milliseconds regardless of trace size,
    with pages faulted in on first touch. ``mmap=False`` reads the file
    into memory instead (use when the file may be replaced while the
    substrate is alive). ``verify=True`` (default) re-hashes the data
    section against the manifest's ``content_sha256`` stamp, so silent
    bit-rot surfaces as an error instead of corrupt analysis results;
    pass ``verify=False`` to keep the load lazy (one manifest read, no
    page faults) when the bytes are trusted. Raises
    :class:`ValueError` on corrupted, truncated, or version-mismatched
    snapshots; on any failure the mapping (and file handle) is closed
    before the error propagates.
    """
    path = Path(path)
    tracer = current_tracer()
    with open(path, "rb") as f:
        if mmap:
            buf = _mmap.mmap(f.fileno(), 0, access=_mmap.ACCESS_READ)
        else:
            buf = f.read()
    try:
        with tracer.span(
            "snapshot.load", path=str(path), bytes=len(buf), mmap=mmap,
            verify=verify,
        ):
            if verify:
                manifest, data_start = _read_manifest(path, buf)
                _verify_content(path, buf, manifest, data_start)
            substrate = _restore_from_buffer(path, buf)
    except Exception:
        if isinstance(buf, _mmap.mmap):
            try:
                buf.close()
            except BufferError:  # pragma: no cover - traceback-held views
                pass
        raise
    current_metrics().inc("snapshot.loads")
    current_metrics().inc("snapshot.loaded_bytes", len(buf))
    return substrate


def _restore_from_buffer(path: Path, buf) -> AnalysisSubstrate:
    """Rebuild the substrate from a snapshot's raw bytes/mapping."""
    manifest, data_start = _read_manifest(path, buf)

    arrays = {}
    for entry in manifest["arrays"]:
        key = tuple(entry["key"])
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        count = int(np.prod(shape, dtype=np.int64))
        offset = data_start + entry["offset"]
        if offset + count * dtype.itemsize > len(buf):
            raise ValueError(
                f"{path}: truncated snapshot (array {key} extends past EOF)"
            )
        arrays[key] = np.frombuffer(
            buf, dtype=dtype, count=count, offset=offset
        ).reshape(shape)

    schema = AttributeSchema(names=tuple(manifest["schema"]))
    table = table_from_arrays(schema, manifest["vocabs"], arrays)
    if len(table) != manifest["n_rows"]:
        raise ValueError(
            f"{path}: corrupted snapshot (row count mismatch: "
            f"{len(table)} != {manifest['n_rows']})"
        )
    codec = KeyCodec(
        schema=schema,
        vocabs=table.vocabs,
        widths=np.asarray(manifest["widths"], dtype=np.int64),
        offsets=np.asarray(manifest["codec_offsets"], dtype=np.int64),
    )
    index = index_from_arrays(
        table,
        codec,
        fold_source={int(m): int(s) for m, s in manifest["fold_source"]},
        fold_order=[int(m) for m in manifest["fold_order"]],
        arrays=arrays,
    )
    return AnalysisSubstrate(table=table, index=index, build_seconds=0.0)
