"""Fast binary persistence for session tables (``.npz``).

JSONL/CSV round-trip row by row — fine for interoperability, slow for
week-scale traces (~440k sessions). The ``.npz`` format stores the
columnar arrays and vocabularies directly, loading in milliseconds and
preserving codes exactly.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from repro.core.attributes import AttributeSchema
from repro.core.sessions import SessionTable
from repro.io.traceio import _ingest_span, _note_ingest

#: Format version written into every file.
FORMAT_VERSION = 1


def write_sessions_npz(
    table: SessionTable, path: str | Path, compress: bool = True
) -> int:
    """Write a table to ``path`` (.npz); returns the row count.

    ``compress=False`` skips the deflate pass — several times faster to
    write and read, at roughly 2-3x the file size. Use it for local
    scratch traces that are written once and re-read many times;
    :func:`read_sessions_npz` handles both variants transparently.
    """
    path = Path(path)
    meta = {
        "format_version": FORMAT_VERSION,
        "schema": list(table.schema.names),
        "vocabs": [list(v) for v in table.vocabs],
    }
    savez = np.savez_compressed if compress else np.savez
    savez(
        path,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        codes=table.codes,
        start_time=table.start_time,
        duration_s=table.duration_s,
        buffering_s=table.buffering_s,
        join_time_s=table.join_time_s,
        bitrate_kbps=table.bitrate_kbps,
        join_failed=table.join_failed,
    )
    return len(table)


def read_sessions_npz(path: str | Path) -> SessionTable:
    """Read a table written by :func:`write_sessions_npz`.

    Raises :class:`ValueError` (never a bare ``zipfile`` error) when the
    file is not a well-formed repro npz trace.
    """
    path = Path(path)
    with _ingest_span(path, "npz") as span:
        try:
            data = np.load(path)
        except (zipfile.BadZipFile, OSError) as exc:
            if isinstance(exc, FileNotFoundError):
                raise
            raise ValueError(f"{path}: not a repro npz trace ({exc})") from exc
        with data:
            try:
                meta = json.loads(bytes(data["meta"]).decode("utf-8"))
            except (KeyError, json.JSONDecodeError) as exc:
                raise ValueError(f"{path}: not a repro npz trace") from exc
            version = meta.get("format_version")
            if version != FORMAT_VERSION:
                raise ValueError(
                    f"{path}: unsupported trace format version {version!r}"
                )
            schema = AttributeSchema(names=tuple(meta["schema"]))
            table = SessionTable(
                schema=schema,
                vocabs=meta["vocabs"],
                codes=data["codes"],
                start_time=data["start_time"],
                duration_s=data["duration_s"],
                buffering_s=data["buffering_s"],
                join_time_s=data["join_time_s"],
                bitrate_kbps=data["bitrate_kbps"],
                join_failed=data["join_failed"],
            )
        span.set(rows=len(table))
    _note_ingest(len(table))
    return table
