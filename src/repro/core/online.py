"""Streaming critical-cluster monitoring.

The paper's reactive strategy (Section 5.3) is an offline simulation:
detect a critical cluster after its first hour, fix it for the rest of
its streak. This module packages that loop as an *online* component —
the piece a "coordinated video control plane" (the paper's reference
[21]) would actually run:

* feed :class:`OnlineDetector` one epoch of sessions at a time;
* it runs the per-epoch pipeline (aggregate -> problem clusters ->
  critical clusters) incrementally and maintains alert lifecycles:
  an alert is **raised** when a cluster first turns critical,
  **confirmed** once it has persisted for ``confirm_after`` consecutive
  epochs (the paper's one-hour detection delay corresponds to
  ``confirm_after=2``: seen, then still there an hour later), and
  **cleared** when it stops being critical;
* every confirmed epoch accrues the alert's *actionable alleviation* —
  the problem sessions that acting on the alert would have saved,
  matching the Section 5 accounting.

Identities are decoded :class:`ClusterKey` values, so the detector does
not require a shared vocabulary across epochs — slices from different
collectors interoperate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.core.aggregation import aggregate_epoch
from repro.core.clusters import ClusterKey
from repro.core.critical import find_critical_clusters
from repro.core.index import TraceClusterIndex
from repro.core.metrics import MetricThresholds, QualityMetric
from repro.core.problems import ProblemClusterConfig, find_problem_clusters
from repro.core.sessions import SessionTable
from repro.core.substrate import StreamingSubstrate
from repro.obs import current_metrics, current_tracer


@dataclass
class ClusterAlert:
    """Lifecycle of one critical cluster streak."""

    key: ClusterKey
    metric: str
    raised_epoch: int
    confirmed_epoch: int | None = None
    cleared_epoch: int | None = None
    consecutive_epochs: int = 0
    total_active_epochs: int = 0
    absent_epochs: int = 0
    total_attributed_problems: float = 0.0
    actionable_alleviation: float = 0.0

    @property
    def is_open(self) -> bool:
        return self.cleared_epoch is None

    @property
    def is_confirmed(self) -> bool:
        return self.confirmed_epoch is not None

    @property
    def duration_epochs(self) -> int:
        """Epochs the cluster was actually critical over the alert."""
        return self.total_active_epochs


@dataclass(frozen=True)
class AlertEvent:
    """One lifecycle transition emitted by ``observe_epoch``."""

    kind: Literal["raised", "confirmed", "cleared"]
    epoch: int
    alert: ClusterAlert


@dataclass
class EpochObservation:
    """Summary of one observed epoch."""

    epoch: int
    total_sessions: int
    total_problems: int
    n_problem_clusters: int
    n_critical_clusters: int
    events: list[AlertEvent] = field(default_factory=list)


class OnlineDetector:
    """Incremental critical-cluster monitor for one quality metric."""

    def __init__(
        self,
        metric: QualityMetric,
        problem_config: ProblemClusterConfig | None = None,
        thresholds: MetricThresholds | None = None,
        confirm_after: int = 2,
        clear_after: int = 1,
        use_cluster_index: bool = True,
    ) -> None:
        """``clear_after`` adds hysteresis: an alert clears only after
        its cluster has been absent for that many consecutive epochs.
        Structural causes hover around the significance threshold and
        would otherwise flap raise/clear every other hour.

        ``use_cluster_index`` enables the streamed fast path: every
        observed epoch is appended to an internal
        :class:`~repro.core.substrate.StreamingSubstrate` — the table
        and the :class:`TraceClusterIndex` grow incrementally — and the
        epoch is reduced through the same
        :class:`~repro.core.index.EpochClusterView` path the batch
        indexed engine uses. Any schema-compatible table keeps the fast
        path (equivalent tables from the same collector, a fresh table
        object per epoch, per-epoch slices of one big table — all
        stream); only a schema change falls back to the legacy
        per-epoch path for that observation. Detection output is
        identical either way."""
        if confirm_after < 1:
            raise ValueError("confirm_after must be >= 1")
        if clear_after < 1:
            raise ValueError("clear_after must be >= 1")
        self.metric = metric
        self.problem_config = problem_config or ProblemClusterConfig()
        self.thresholds = thresholds or MetricThresholds()
        self.confirm_after = confirm_after
        self.clear_after = clear_after
        self.use_cluster_index = use_cluster_index
        self.epochs_observed = 0
        self.open_alerts: dict[ClusterKey, ClusterAlert] = {}
        self.closed_alerts: list[ClusterAlert] = []
        self.history: list[EpochObservation] = []
        self._stream: StreamingSubstrate | None = None

    @property
    def substrate(self) -> StreamingSubstrate | None:
        """The incrementally maintained substrate behind the fast path
        (``None`` until the first streamed observation). Exposes the
        full batch path — ``detector.substrate.analyze(...)`` re-runs
        any config over everything observed so far."""
        return self._stream

    def _resolve_stream(self, table: SessionTable) -> StreamingSubstrate | None:
        """Streamed fast path: schema-compatible tables feed one
        incrementally maintained index.

        Compatibility is structural — same attribute schema — not
        object identity: a fresh but equivalent table every epoch (the
        case a real collector produces) streams through the same index,
        with vocabularies merged on append. A table with a different
        schema falls back to the legacy per-epoch path (decoded
        identities still interoperate).
        """
        if not self.use_cluster_index:
            return None
        if self._stream is None:
            self._stream = StreamingSubstrate(schema=table.schema)
            self._stream.index.warm_metric_masks([self.metric], self.thresholds)
        elif self._stream.table.schema.names != table.schema.names:
            return None
        return self._stream

    def observe_epoch(
        self,
        table: SessionTable,
        rows: np.ndarray | None = None,
        cluster_index: TraceClusterIndex | None = None,
    ) -> EpochObservation:
        """Consume one epoch of sessions; returns the epoch summary
        with any alert transitions. ``cluster_index`` (optional) is a
        prebuilt index over ``table`` to reduce through."""
        epoch = self.epochs_observed
        if rows is None:
            rows = np.arange(len(table))
        with current_tracer().span(
            "online.observe_epoch", epoch=epoch, rows=int(rows.size)
        ) as obs_span:
            observation = self._observe_epoch(table, rows, cluster_index, epoch)
            obs_span.set(
                problem_clusters=observation.n_problem_clusters,
                critical_clusters=observation.n_critical_clusters,
            )
        self._export_metrics(observation)
        return observation

    def _export_metrics(self, observation: EpochObservation) -> None:
        """Keep the metrics registry current after each epoch.

        Gauges carry the *latest* detector state so a long-running
        detector is a ready Prometheus scrape target
        (:func:`repro.obs.render_prometheus`); counters accumulate
        lifecycle transitions; histograms catch per-epoch load tails.
        All no-ops unless a registry is installed.
        """
        metrics = current_metrics()
        metrics.inc("online.epochs")
        for event in observation.events:
            metrics.inc(f"online.alerts_{event.kind}")
        metrics.gauge("online.last_epoch", observation.epoch)
        metrics.gauge("online.problem_clusters", observation.n_problem_clusters)
        metrics.gauge(
            "online.critical_clusters", observation.n_critical_clusters
        )
        metrics.gauge("online.open_alerts", len(self.open_alerts))
        metrics.gauge(
            "online.confirmed_open_alerts",
            sum(1 for a in self.open_alerts.values() if a.is_confirmed),
        )
        metrics.gauge(
            "online.actionable_alleviation", self.total_actionable_alleviation
        )
        metrics.observe("online.epoch_sessions", observation.total_sessions)
        metrics.observe("online.epoch_problems", observation.total_problems)

    def _observe_epoch(
        self,
        table: SessionTable,
        rows: np.ndarray,
        cluster_index: TraceClusterIndex | None,
        epoch: int,
    ) -> EpochObservation:
        stream = None if cluster_index is not None else self._resolve_stream(table)
        if cluster_index is not None:
            agg = aggregate_epoch(
                table,
                rows,
                self.metric,
                epoch=epoch,
                thresholds=self.thresholds,
                cluster_index=cluster_index,
            )
        elif stream is not None:
            new_rows = stream.append(table.select(rows))
            view = stream.epoch_view(new_rows, epoch=epoch)
            agg = view.aggregate(self.metric, thresholds=self.thresholds)
        else:
            agg = aggregate_epoch(
                table, rows, self.metric, epoch=epoch, thresholds=self.thresholds
            )
        problems = find_problem_clusters(agg, self.problem_config)
        critical = find_critical_clusters(problems)
        decoded = critical.decoded()

        observation = EpochObservation(
            epoch=epoch,
            total_sessions=agg.total_sessions,
            total_problems=agg.total_problems,
            n_problem_clusters=problems.n_clusters,
            n_critical_clusters=critical.n_clusters,
        )
        global_ratio = agg.global_ratio

        # Update or raise alerts for the clusters critical this epoch.
        for key, attribution in decoded.items():
            alert = self.open_alerts.get(key)
            if alert is None:
                alert = ClusterAlert(
                    key=key, metric=self.metric.name, raised_epoch=epoch
                )
                self.open_alerts[key] = alert
                observation.events.append(AlertEvent("raised", epoch, alert))
            alert.consecutive_epochs += 1
            alert.total_active_epochs += 1
            alert.absent_epochs = 0
            alert.total_attributed_problems += attribution.attributed_problems
            if (
                not alert.is_confirmed
                and alert.consecutive_epochs >= self.confirm_after
            ):
                alert.confirmed_epoch = epoch
                observation.events.append(AlertEvent("confirmed", epoch, alert))
            if alert.is_confirmed:
                # What acting on the (already confirmed) alert saves
                # this epoch — the paper's Section 5 accounting.
                baseline = global_ratio * attribution.attributed_sessions
                alert.actionable_alleviation += max(
                    attribution.attributed_problems - baseline, 0.0
                )

        # Clear alerts whose clusters have been absent long enough
        # (hysteresis against threshold flapping).
        for key in list(self.open_alerts):
            if key in decoded:
                continue
            alert = self.open_alerts[key]
            alert.absent_epochs += 1
            alert.consecutive_epochs = 0
            if alert.absent_epochs >= self.clear_after:
                self.open_alerts.pop(key)
                alert.cleared_epoch = epoch - alert.absent_epochs + 1
                self.closed_alerts.append(alert)
                observation.events.append(AlertEvent("cleared", epoch, alert))

        self.epochs_observed += 1
        self.history.append(observation)
        return observation

    # -- reporting ---------------------------------------------------------
    @property
    def all_alerts(self) -> list[ClusterAlert]:
        return self.closed_alerts + list(self.open_alerts.values())

    @property
    def confirmed_alerts(self) -> list[ClusterAlert]:
        return [a for a in self.all_alerts if a.is_confirmed]

    @property
    def total_actionable_alleviation(self) -> float:
        """Problem sessions that acting on confirmed alerts would have
        saved so far."""
        return float(sum(a.actionable_alleviation for a in self.all_alerts))

    def critical_keys_at(self, epoch: int) -> set[ClusterKey]:
        """Critical identities observed at ``epoch`` (from lifecycles)."""
        keys = set()
        for alert in self.all_alerts:
            end = (
                alert.cleared_epoch
                if alert.cleared_epoch is not None
                else self.epochs_observed
            )
            if alert.raised_epoch <= epoch < end:
                keys.add(alert.key)
        return keys
