"""Partitioning a trace into discrete one-hour epochs.

The paper divides its dataset into one-hour epochs (Section 3.1,
footnote: one hour is the finest granularity of the dataset) and runs
all cluster analysis per epoch. :class:`EpochGrid` owns the mapping
between timestamps and epoch indices; :func:`split_into_epochs` yields
per-epoch row index arrays for a :class:`SessionTable`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.sessions import SessionTable

#: Seconds per epoch — one hour, the paper's granularity.
DEFAULT_EPOCH_SECONDS = 3600.0


@dataclass(frozen=True)
class EpochGrid:
    """A uniform epoch grid starting at ``origin`` (trace seconds)."""

    origin: float = 0.0
    epoch_seconds: float = DEFAULT_EPOCH_SECONDS
    n_epochs: int = 0

    def __post_init__(self) -> None:
        if self.epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if self.n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")

    @classmethod
    def covering(
        cls,
        table: SessionTable,
        origin: float | None = None,
        epoch_seconds: float = DEFAULT_EPOCH_SECONDS,
    ) -> "EpochGrid":
        """The smallest grid covering every session start time."""
        if len(table) == 0:
            return cls(origin=origin or 0.0, epoch_seconds=epoch_seconds, n_epochs=0)
        start = float(table.start_time.min()) if origin is None else origin
        origin_val = np.floor(start / epoch_seconds) * epoch_seconds
        last = float(table.start_time.max())
        if last < origin_val:
            raise ValueError(
                f"origin {origin_val} is after the last session at {last}"
            )
        n = int(np.floor((last - origin_val) / epoch_seconds)) + 1
        return cls(origin=origin_val, epoch_seconds=epoch_seconds, n_epochs=n)

    def epoch_of(self, timestamps: np.ndarray) -> np.ndarray:
        """Epoch index of each timestamp (may be out of [0, n_epochs))."""
        ts = np.asarray(timestamps, dtype=np.float64)
        return np.floor((ts - self.origin) / self.epoch_seconds).astype(np.int64)

    def epoch_start(self, epoch: int) -> float:
        """Start timestamp of epoch ``epoch``."""
        return self.origin + epoch * self.epoch_seconds

    def hours(self) -> np.ndarray:
        """Start times of all epochs, in hours since the origin."""
        return np.arange(self.n_epochs) * (self.epoch_seconds / 3600.0)

    def __len__(self) -> int:
        return self.n_epochs


def split_into_epochs(
    table: SessionTable, grid: EpochGrid | None = None
) -> tuple[EpochGrid, list[np.ndarray]]:
    """Split ``table`` rows by epoch.

    Returns the grid and a list of row-index arrays, one per epoch, in
    epoch order. Sessions outside the grid are dropped (only possible
    with an explicitly narrower grid).
    """
    if grid is None:  # NOT `or`: a zero-epoch grid is falsy but valid
        grid = EpochGrid.covering(table)
    epoch_ids = grid.epoch_of(table.start_time)
    in_range = (epoch_ids >= 0) & (epoch_ids < grid.n_epochs)
    rows = np.nonzero(in_range)[0]
    order = np.argsort(epoch_ids[rows], kind="stable")
    rows = rows[order]
    sorted_ids = epoch_ids[rows]
    boundaries = np.searchsorted(sorted_ids, np.arange(grid.n_epochs + 1))
    per_epoch = [
        rows[boundaries[e] : boundaries[e + 1]] for e in range(grid.n_epochs)
    ]
    return grid, per_epoch


def iter_epoch_tables(
    table: SessionTable, grid: EpochGrid | None = None
) -> Iterator[tuple[int, SessionTable]]:
    """Yield ``(epoch_index, epoch_subtable)`` pairs for non-empty epochs."""
    grid, per_epoch = split_into_epochs(table, grid)
    for epoch, rows in enumerate(per_epoch):
        if rows.size:
            yield epoch, table.select(rows)
