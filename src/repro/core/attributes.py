"""Attribute schema for video sessions.

The paper (Section 2) annotates every session with seven attributes:
ASN, CDN, content provider ("Site"), VoD-or-Live, player type, browser,
and connection type. The clustering machinery is generic over the
schema: clusters are combinations of attribute values, so the schema
only needs to know attribute *names* and their position order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

#: The paper's seven session attributes, in canonical order.
DEFAULT_ATTRIBUTES: tuple[str, ...] = (
    "asn",
    "cdn",
    "site",
    "content_type",  # VoD or Live
    "player",
    "browser",
    "connection_type",
)


@dataclass(frozen=True)
class AttributeSchema:
    """An ordered set of session attribute names.

    The schema fixes the order in which attribute values appear in
    session records and cluster keys. All core algorithms are generic
    over the number of attributes (the paper uses seven).
    """

    names: tuple[str, ...] = DEFAULT_ATTRIBUTES
    _index: Mapping[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.names:
            raise ValueError("schema must have at least one attribute")
        if len(set(self.names)) != len(self.names):
            raise ValueError(f"duplicate attribute names: {self.names}")
        if len(self.names) > 16:
            # Masks are packed into small ints; 16 is far beyond the
            # paper's seven and keeps 2**n lattices tractable.
            raise ValueError("schema supports at most 16 attributes")
        object.__setattr__(self, "_index", {n: i for i, n in enumerate(self.names)})

    def __len__(self) -> int:
        return len(self.names)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def index(self, name: str) -> int:
        """Position of attribute ``name`` in the canonical order."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                f"unknown attribute {name!r}; schema has {self.names}"
            ) from None

    def mask_of(self, names: Iterable[str]) -> int:
        """Bitmask with a bit set for each attribute in ``names``."""
        mask = 0
        for name in names:
            mask |= 1 << self.index(name)
        return mask

    def names_of(self, mask: int) -> tuple[str, ...]:
        """Attribute names selected by bitmask ``mask`` in schema order."""
        self.validate_mask(mask)
        return tuple(n for i, n in enumerate(self.names) if mask & (1 << i))

    def validate_mask(self, mask: int) -> None:
        """Raise ``ValueError`` if ``mask`` selects unknown positions."""
        if mask < 0 or mask >= (1 << len(self.names)):
            raise ValueError(
                f"mask {mask:#x} out of range for {len(self.names)} attributes"
            )

    @property
    def full_mask(self) -> int:
        """Mask selecting every attribute (the leaf level of the lattice)."""
        return (1 << len(self.names)) - 1


#: Schema instance used throughout the library unless overridden.
DEFAULT_SCHEMA = AttributeSchema()


def iter_submasks(mask: int) -> Iterator[int]:
    """Yield every non-empty proper submask of ``mask``.

    Uses the standard ``(s - 1) & mask`` enumeration, descending. The
    full ``mask`` itself and the empty mask are excluded: callers deal
    with cluster *ancestors*, which are strict subsets, and the root is
    never a problem cluster (its ratio is the global ratio).
    """
    sub = (mask - 1) & mask
    while sub:
        yield sub
        sub = (sub - 1) & mask


def iter_supermasks(mask: int, full_mask: int) -> Iterator[int]:
    """Yield every strict supermask of ``mask`` within ``full_mask``."""
    missing = full_mask & ~mask
    sup = missing
    while sup:
        yield mask | sup
        sup = (sup - 1) & missing


def popcount(mask: int) -> int:
    """Number of set bits (attributes) in ``mask``."""
    return bin(mask).count("1")
