"""Config-independent analysis substrate and amortized config sweeps.

The paper's robustness story re-runs the whole pipeline under varied
knobs — the 1.5x ratio multiplier, metric thresholds, epoch lengths
(Section 2, Section 3.1 footnote 2). Almost everything ``analyze_trace``
computes is the *same* across those variants:

**Config-independent** (the substrate — built once per trace):

* the packed :class:`~repro.core.sessions.SessionTable` and its
  :class:`~repro.core.aggregation.KeyCodec`,
* the :class:`~repro.core.index.TraceClusterIndex` — leaf universe,
  per-mask cluster tables, lattice projections,
* per-epoch :class:`~repro.core.index.EpochClusterView`\\ s (active
  cluster subsets; depend on the epoch grid, not on thresholds),
* raw per-leaf validity/session folds (cached per metric on each view).

**Config-dependent** (cheap, re-run per variant):

* whole-table problem masks per (metric, thresholds) — cached on the
  index,
* the problem-cluster predicate (``min_sessions`` resolution, ratio
  multiplier, significance test),
* the critical-cluster phase-transition DP.

:class:`AnalysisSubstrate` materializes the first list once;
:func:`analyze_sweep` runs N :class:`~repro.core.pipeline.AnalysisConfig`
variants over it, sharing one epoch view (and one session-count fold
per metric, and one aggregate per distinct (metric, thresholds)) across
all configs of each epoch. Outputs are bit-identical to N independent
``analyze_trace`` calls (pinned by
``tests/property/test_sweep_equivalence.py``); only the wall time
changes.

Parallel sweeps fan epochs out over a process pool exactly like
``analyze_trace`` does, shipping the substrate through the same
shared-memory transport (:mod:`repro.core.shm`).
"""

from __future__ import annotations

import math
import time
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.aggregation import KeyCodec
from repro.core.critical import find_critical_clusters
from repro.core.epoching import (
    DEFAULT_EPOCH_SECONDS,
    EpochGrid,
    split_into_epochs,
)
from repro.core.index import TraceClusterIndex
from repro.core.pipeline import (
    AnalysisConfig,
    EpochAnalysis,
    PipelineTimings,
    TraceAnalysis,
    _epoch_summary,
    _fold_worker_stats,
    _record_worker_spans,
    analyze_trace,
    assemble_trace_analysis,
    resolve_transport,
    resolve_worker_count,
)
from repro.core.attributes import DEFAULT_SCHEMA, AttributeSchema
from repro.core.problems import find_problem_clusters
from repro.core.sessions import Session, SessionTable, grow_append
from repro.core.shm import arrays_nbytes, export_arrays, make_worker_payload
from repro.obs import current_tracer, record_degradation


class AnalysisSubstrate:
    """Everything about a trace that no :class:`AnalysisConfig` changes.

    Build once with :meth:`build`, then run any number of configs over
    it — :meth:`analyze` for one, :meth:`sweep` for many — without
    re-packing sessions or rebuilding the cluster lattice. Epoch splits
    are cached per grid, so sweeping thresholds variants at the same
    epoch length re-uses the row partition too.
    """

    __slots__ = ("table", "index", "build_seconds", "_splits")

    def __init__(
        self, table: SessionTable, index: TraceClusterIndex, build_seconds: float = 0.0
    ) -> None:
        self.table = table
        self.index = index
        self.build_seconds = build_seconds
        self._splits: dict[EpochGrid, list[np.ndarray]] = {}

    @classmethod
    def build(
        cls, table: SessionTable, codec: KeyCodec | None = None
    ) -> "AnalysisSubstrate":
        """Pack the table and build the trace-global cluster index."""
        with current_tracer().span("substrate.build", sessions=len(table)):
            t0 = time.perf_counter()
            index = TraceClusterIndex.build(table, codec=codec)
            return cls(
                table=table, index=index, build_seconds=time.perf_counter() - t0
            )

    @property
    def codec(self) -> KeyCodec:
        return self.index.codec

    def grid_covering(self, epoch_seconds: float) -> EpochGrid:
        """The grid ``analyze_trace`` would derive at this epoch length."""
        return EpochGrid.covering(self.table, epoch_seconds=epoch_seconds)

    def epoch_rows(self, grid: EpochGrid) -> list[np.ndarray]:
        """Per-epoch row index arrays for ``grid`` (cached per grid)."""
        rows = self._splits.get(grid)
        if rows is None:
            _, rows = split_into_epochs(self.table, grid)
            self._splits[grid] = rows
        return rows

    def memory_bytes(self) -> int:
        """Bytes held by the whole substrate: packed session-table
        columns, index arrays (incl. caches) and cached per-grid
        epoch-row splits — the true footprint shard-size budgeting
        needs, not just the index."""
        total = arrays_nbytes(export_arrays(self.table, None))
        total += self.index.memory_bytes()
        total += sum(
            int(rows.nbytes)
            for split in self._splits.values()
            for rows in split
        )
        return int(total)

    def analyze(
        self,
        config: AnalysisConfig | None = None,
        grid: EpochGrid | None = None,
        workers: int | str | None = None,
        transport: str | None = None,
    ) -> TraceAnalysis:
        """Run one config through :func:`analyze_trace`, reusing the index."""
        return analyze_trace(
            self.table,
            config=config,
            grid=grid,
            workers=workers,
            transport=transport,
            substrate=self,
        )

    def sweep(
        self,
        configs: Sequence[AnalysisConfig],
        grid: EpochGrid | None = None,
        workers: int | str | None = None,
        transport: str | None = None,
        progress: Callable[[int, int], None] | None = None,
    ) -> list[TraceAnalysis]:
        """Run many configs, amortizing this substrate across all of them."""
        return analyze_sweep(
            self.table,
            configs,
            grid=grid,
            substrate=self,
            workers=workers,
            transport=transport,
            progress=progress,
        )


class StreamingSubstrate:
    """An :class:`AnalysisSubstrate` maintained online over arriving data.

    Feed it chunks of sessions (epoch-sized or otherwise, in any
    arrival order) with :meth:`append`; it extends the packed table and
    the :class:`~repro.core.index.TraceClusterIndex` incrementally and
    keeps per-epoch row splits up to date, so at any moment the full
    batch analysis path is available without re-packing or re-indexing:
    :meth:`analyze`/:meth:`sweep` run over exactly the state a batch
    ``analyze_trace`` would build from the concatenated chunks, with
    bit-identical output (pinned by
    ``tests/property/test_streaming_equivalence.py``).

    Epoch bookkeeping uses *absolute* epoch ids
    (``floor(start_time / epoch_seconds)``), so the grid grows to cover
    whatever has arrived and :attr:`grid` always equals
    ``EpochGrid.covering`` over the accumulated table. Per-epoch row
    arrays grow by doubling; appends are amortized O(chunk rows) once
    the trace's leaf universe has saturated.

    Per-epoch streamed detection goes through the same
    :class:`~repro.core.index.EpochClusterView` path the batch engine
    uses: ``substrate.epoch_view(rows)`` on the rows :meth:`append`
    returned (this is what :class:`~repro.core.online.OnlineDetector`
    does).
    """

    __slots__ = ("index", "epoch_seconds", "_epoch_rows", "_grow")

    def __init__(
        self,
        schema: AttributeSchema = DEFAULT_SCHEMA,
        epoch_seconds: float = DEFAULT_EPOCH_SECONDS,
        index: TraceClusterIndex | None = None,
    ) -> None:
        """Start empty, or wrap an existing ``index`` (e.g. restored by
        :func:`~repro.io.snapshot.load_substrate`) and keep appending."""
        if index is None:
            index = TraceClusterIndex.build(SessionTable.empty(schema))
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        self.index = index
        self.epoch_seconds = float(epoch_seconds)
        self._epoch_rows: dict[int, np.ndarray] = {}
        self._grow: dict = {}
        if len(index.table):
            self._ingest_rows(np.arange(len(index.table), dtype=np.int64))

    @property
    def table(self) -> SessionTable:
        return self.index.table

    @property
    def codec(self) -> KeyCodec:
        return self.index.codec

    def __len__(self) -> int:
        return len(self.index.table)

    @property
    def n_epochs(self) -> int:
        return self.grid.n_epochs

    def append(self, chunk: "SessionTable | Iterable[Session]") -> np.ndarray:
        """Fold a chunk into the table, index and epoch splits.

        Returns the appended row indices — pass them straight to
        :meth:`epoch_view` for streamed per-chunk detection.
        """
        rows = self.index.append(chunk)
        if rows.size:
            self._ingest_rows(rows)
        return rows

    def _ingest_rows(self, rows: np.ndarray) -> None:
        """File new rows under their absolute epoch ids.

        Row indices only ever grow, so appending each chunk's rows (in
        ascending order) keeps every epoch's array ascending — exactly
        the order ``split_into_epochs``'s stable sort produces, even
        when chunks arrive out of time order.
        """
        keys = np.floor(
            self.table.start_time[rows] / self.epoch_seconds
        ).astype(np.int64)
        order = np.argsort(keys, kind="stable")
        rows, keys = rows[order], keys[order]
        uniq, starts = np.unique(keys, return_index=True)
        bounds = np.append(starts, keys.size)
        for i, key in enumerate(uniq):
            key = int(key)
            part = rows[bounds[i] : bounds[i + 1]]
            cur = self._epoch_rows.get(key)
            if cur is None:
                cur = np.empty(0, dtype=np.int64)
            self._epoch_rows[key] = grow_append(self._grow, key, cur, part)

    @property
    def grid(self) -> EpochGrid:
        """The covering grid of everything appended so far."""
        if not self._epoch_rows:
            return EpochGrid(
                origin=0.0, epoch_seconds=self.epoch_seconds, n_epochs=0
            )
        lo, hi = min(self._epoch_rows), max(self._epoch_rows)
        return EpochGrid(
            origin=lo * self.epoch_seconds,
            epoch_seconds=self.epoch_seconds,
            n_epochs=hi - lo + 1,
        )

    def epoch_rows(self) -> list[np.ndarray]:
        """Per-epoch row arrays for :attr:`grid` (empty epochs included)."""
        if not self._epoch_rows:
            return []
        lo = min(self._epoch_rows)
        empty = np.empty(0, dtype=np.int64)
        return [
            self._epoch_rows.get(lo + e, empty)
            for e in range(self.grid.n_epochs)
        ]

    def epoch_view(self, rows: np.ndarray, epoch: int = 0):
        """Per-epoch cluster view over ``rows`` — the same reduction
        path the batch indexed engine uses."""
        return self.index.epoch_view(rows, epoch=epoch)

    def as_substrate(self) -> AnalysisSubstrate:
        """Snapshot the current state as a batch substrate (shared
        arrays, pre-seeded epoch splits — nothing is copied)."""
        substrate = AnalysisSubstrate(table=self.table, index=self.index)
        substrate._splits[self.grid] = self.epoch_rows()
        return substrate

    def analyze(
        self,
        config: AnalysisConfig | None = None,
        workers: int | str | None = None,
        transport: str | None = None,
    ) -> TraceAnalysis:
        """Batch-analyze everything appended so far (on :attr:`grid`)."""
        return self.as_substrate().analyze(
            config=config, grid=self.grid, workers=workers, transport=transport
        )

    def sweep(
        self,
        configs: Sequence[AnalysisConfig],
        workers: int | str | None = None,
        transport: str | None = None,
        progress: Callable[[int, int], None] | None = None,
    ) -> list[TraceAnalysis]:
        """Sweep configs over everything appended so far (on :attr:`grid`)."""
        return self.as_substrate().sweep(
            configs,
            grid=self.grid,
            workers=workers,
            transport=transport,
            progress=progress,
        )

    def memory_bytes(self) -> int:
        """Bytes held by the whole substrate: packed session-table
        columns, index arrays (incl. caches) and per-epoch row splits.
        Doubling growth buffers can transiently hold up to 2x the
        column/split bytes beyond this logical figure."""
        total = arrays_nbytes(export_arrays(self.table, None))
        total += self.index.memory_bytes()
        total += sum(int(a.nbytes) for a in self._epoch_rows.values())
        return int(total)


def _sweep_epoch(
    index: TraceClusterIndex,
    configs: Sequence[AnalysisConfig],
    rows: np.ndarray,
    epoch: int,
) -> list[tuple[list[EpochAnalysis], PipelineTimings]]:
    """All configs x metrics of one epoch, sharing one epoch view.

    The unit of work both the serial sweep loop and the process pool
    execute — the single code path is what guarantees serial/parallel
    equality. One :class:`EpochClusterView` serves every config; the
    view caches session folds per metric, and distinct (metric,
    thresholds) pairs share one aggregate through ``agg_cache``, so a
    thresholds variant pays only its problem-count bincounts and the
    problem/critical detectors.
    """
    t0 = time.perf_counter()
    view = index.epoch_view(rows, epoch=epoch)
    view_share = (time.perf_counter() - t0) / len(configs)

    agg_cache: dict = {}
    out: list[tuple[list[EpochAnalysis], PipelineTimings]] = []
    for config in configs:
        timings = PipelineTimings(pack_s=view_share, n_epochs=1)
        summaries: list[EpochAnalysis] = []
        for metric in config.metrics:
            key = (metric.name, config.thresholds)
            t1 = time.perf_counter()
            agg = agg_cache.get(key)
            if agg is None:
                agg = view.aggregate(metric, thresholds=config.thresholds)
                agg_cache[key] = agg
            t2 = time.perf_counter()
            problems = find_problem_clusters(agg, config.problem_config)
            t3 = time.perf_counter()
            critical = find_critical_clusters(problems)
            t4 = time.perf_counter()
            timings.aggregate_s += t2 - t1
            timings.problems_s += t3 - t2
            timings.critical_s += t4 - t3
            timings.n_units += 1
            summaries.append(_epoch_summary(agg, problems, critical, epoch))
        out.append((summaries, timings))
    return out


# Worker-process state for parallel sweeps, installed once per worker
# by the pool initializer (mirrors pipeline._WORKER_STATE).
_SWEEP_STATE: dict = {}


def _sweep_worker_init(payload, groups: list[list[AnalysisConfig]]) -> None:
    table, index = payload.restore()
    if index is None:  # pragma: no cover - sweeps always ship the index
        index = TraceClusterIndex.build(table)
    _SWEEP_STATE["payload"] = payload
    _SWEEP_STATE["index"] = index
    _SWEEP_STATE["groups"] = groups


def _sweep_worker_run_batch(batch: list[tuple[int, int, np.ndarray]]) -> dict:
    """One batch of sweep units in a worker; results plus timing stats
    (the sweep twin of ``pipeline._worker_run_batch``)."""
    import os

    started_unix = time.time()
    t0 = time.perf_counter()
    index = _SWEEP_STATE["index"]
    groups = _SWEEP_STATE["groups"]
    results = [
        (gi, epoch, _sweep_epoch(index, groups[gi], rows, epoch))
        for gi, epoch, rows in batch
    ]
    return {
        "results": results,
        "pid": os.getpid(),
        "started_unix": started_unix,
        "busy_s": time.perf_counter() - t0,
        "epochs": len(batch),
        "rows": int(sum(rows.size for _, _, rows in batch)),
    }


def analyze_sweep(
    table: SessionTable,
    configs: Iterable[AnalysisConfig],
    grid: EpochGrid | None = None,
    substrate: AnalysisSubstrate | None = None,
    workers: int | str | None = None,
    transport: str | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> list[TraceAnalysis]:
    """Analyse one trace under many configs, building the substrate once.

    Returns one :class:`TraceAnalysis` per config, in input order, each
    bit-identical to ``analyze_trace(table, config=c)`` — same problem
    clusters, same critical attribution, same grid. The sweep groups
    configs by epoch grid (``grid`` applies to all when given,
    otherwise each config's ``epoch_seconds`` derives its covering
    grid) and, per epoch, shares one cluster view across every config:
    session-count folds are computed once per metric, aggregates once
    per distinct (metric, thresholds), and only the problem predicate
    and the critical DP run per config.

    ``workers`` fans epochs out over a process pool (default serial);
    ``transport`` picks how the substrate reaches workers (see
    :func:`~repro.core.pipeline.analyze_trace`). The per-config
    ``workers``/``engine``/``transport`` fields are ignored by the
    sweep executor — the sweep always reduces through the trace index,
    which is output-identical to every engine. ``progress`` is called
    with ``(done_units, total_units)`` where units are (config, epoch,
    metric) triples, after each epoch completes across all configs.

    Timing attribution: phases measured per config where possible
    (aggregate/problems/critical); shared costs — substrate build,
    epoch-view construction, the parent's wall clock — are divided
    evenly across configs, so summing ``timings`` over the returned
    analyses reproduces the sweep's true totals.
    """
    configs = list(configs)
    if not configs:
        return []
    n_workers = resolve_worker_count(0 if workers is None else workers)
    transport_name = resolve_transport(transport)
    wall_start = time.perf_counter()

    # Group configs by epoch grid; one epoch split (and one set of
    # views) serves every config of a group.
    grouped: dict[EpochGrid, list[tuple[int, AnalysisConfig]]] = {}
    for i, config in enumerate(configs):
        g = (
            grid
            if grid is not None
            else EpochGrid.covering(table, epoch_seconds=config.epoch_seconds)
        )
        grouped.setdefault(g, []).append((i, config))

    group_grids = list(grouped)
    group_members = [grouped[g] for g in group_grids]
    group_rows: list[list[np.ndarray]] = []
    need_index = False
    for g in group_grids:
        if substrate is not None:
            rows_list = substrate.epoch_rows(g)
        else:
            _, rows_list = split_into_epochs(table, g)
        group_rows.append(rows_list)
        if g.n_epochs > 0:
            need_index = True

    build_share = 0.0
    if need_index:
        if substrate is None:
            substrate = AnalysisSubstrate.build(table)
        build_share = substrate.build_seconds / len(configs)
        for config in configs:
            substrate.index.warm_metric_masks(config.metrics, config.thresholds)

    units_per_epoch = [
        sum(len(c.metrics) for _, c in members) for members in group_members
    ]
    total_units = sum(
        n * g.n_epochs for n, g in zip(units_per_epoch, group_grids)
    )
    done = 0

    # results[gi][epoch] -> per-config-in-group (summaries, timings)
    results: list[list] = [
        [None] * g.n_epochs for g in group_grids
    ]
    flat_units = [
        (gi, epoch, rows)
        for gi, rows_list in enumerate(group_rows)
        for epoch, rows in enumerate(rows_list)
    ]

    tracer = current_tracer()
    index = substrate.index if substrate is not None else None

    def run_serial(missing_only: bool) -> None:
        nonlocal done
        for gi, epoch, rows in flat_units:
            if missing_only and results[gi][epoch] is not None:
                continue
            results[gi][epoch] = _sweep_epoch(
                index, [c for _, c in group_members[gi]], rows, epoch
            )
            done += units_per_epoch[gi]
            if progress is not None:
                progress(done, total_units)

    with tracer.span(
        "analyze_sweep",
        configs=len(configs),
        sessions=len(table),
        workers=n_workers,
        transport=transport_name,
        total_units=total_units,
    ):
        if n_workers <= 1 or len(flat_units) <= 1:
            with tracer.span("epochs", mode="serial", units=len(flat_units)):
                run_serial(missing_only=False)
        else:
            from concurrent.futures import ProcessPoolExecutor, as_completed

            failure: Exception | None = None
            with tracer.span("worker_payload") as pspan:
                payload = make_worker_payload(
                    table, substrate.index, transport=transport
                )
                pspan.set(transport=payload.transport)
                if payload.transport == "shm":
                    pspan.set(segment_bytes=payload.manifest.nbytes)
            chunk = max(1, math.ceil(len(flat_units) / (n_workers * 4)))
            batches = [
                flat_units[i : i + chunk]
                for i in range(0, len(flat_units), chunk)
            ]
            groups_cfg = [[c for _, c in members] for members in group_members]
            # ``with payload`` guarantees the owner's shared-memory
            # segment is released however the pool ends (see
            # pipeline.analyze_trace for the same pattern).
            with payload:
                with tracer.span(
                    "fanout", workers=min(n_workers, len(batches)),
                    batches=len(batches),
                ) as fanout:
                    worker_stats: dict[int, dict] = {}
                    try:
                        with ProcessPoolExecutor(
                            max_workers=min(n_workers, len(batches)),
                            initializer=_sweep_worker_init,
                            initargs=(payload, groups_cfg),
                        ) as pool:
                            submitted: dict = {}
                            futures = []
                            for batch in batches:
                                future = pool.submit(
                                    _sweep_worker_run_batch, batch
                                )
                                submitted[future] = time.time()
                                futures.append(future)
                            for future in as_completed(futures):
                                out = future.result()
                                _fold_worker_stats(
                                    worker_stats, out, submitted[future]
                                )
                                for gi, epoch, epoch_out in out["results"]:
                                    results[gi][epoch] = epoch_out
                                    done += units_per_epoch[gi]
                                    if progress is not None:
                                        progress(done, total_units)
                    except Exception as exc:
                        # Degrade to the serial reference path instead of
                        # aborting; genuine per-unit bugs resurface there
                        # with a clean traceback.
                        failure = exc
                    _record_worker_spans(tracer, worker_stats)
                    fanout.set(completed_units=done)
            if failure is not None:
                missing = sum(
                    1 for per_group in results for r in per_group if r is None
                )
                record_degradation(
                    "parallel_to_serial",
                    "sweep worker pool failed "
                    f"({type(failure).__name__}: {failure}); completing "
                    f"{missing} remaining unit(s) serially",
                )
                with tracer.span("epochs", mode="serial-fallback"):
                    run_serial(missing_only=True)

    wall_share = (time.perf_counter() - wall_start) / len(configs)
    analyses: list[TraceAnalysis | None] = [None] * len(configs)
    for gi, (g, members) in enumerate(zip(group_grids, group_members)):
        for ci, (orig_i, config) in enumerate(members):
            timings = PipelineTimings(index_build_s=build_share)
            per_epoch: list[list[EpochAnalysis]] = []
            for epoch in range(g.n_epochs):
                summaries, epoch_timings = results[gi][epoch][ci]
                per_epoch.append(summaries)
                timings.merge(epoch_timings)
            timings.wall_s = wall_share
            analyses[orig_i] = assemble_trace_analysis(
                g, config, per_epoch, timings
            )
    return analyses
