"""Zero-copy shared-memory transport for analysis worker fan-out.

``analyze_trace(workers=N)`` ships the packed :class:`SessionTable` and
the prebuilt :class:`~repro.core.index.TraceClusterIndex` to every
worker process. Serializing them through the pool initializer costs one
full pickle round-trip of every numpy array per worker — hundreds of MB
of copying on week-scale traces, which is exactly the overhead
BENCH_pipeline.json exposed (parallel "speedup" below 1x once the
compute itself got fast).

This module replaces that copy with POSIX shared memory
(:mod:`multiprocessing.shared_memory`):

* :class:`SharedArrayPack` packs any number of named numpy arrays into
  **one** shared-memory segment (64-byte aligned) and hands out a
  picklable :class:`ArrayManifest` — segment name plus per-array
  ``(key, dtype, shape, offset)`` records, a few hundred bytes total.
* :meth:`ArrayManifest.attach` maps the segment in a worker and
  reconstructs every array as a zero-copy, read-only view.
* :func:`make_worker_payload` wraps a table (+ optional index) in a
  transport payload: the shared-memory payload when the platform
  supports it, or a plain pickle payload as fallback. Both restore to
  objects that behave identically — transport never changes results.

Lifecycle contract: the *parent* owns the segment. It creates the pack
before starting the pool, ships only the manifest through the
initializer, and must call :meth:`WorkerPayload.release` (close +
unlink) after the pool has shut down — ``analyze_trace`` does this in a
``finally`` block. Workers attach in the pool initializer and keep the
mapping open for their lifetime; their handles close when the process
exits. Pool workers share the parent's ``resource_tracker``, so
attach-side registrations collapse into the owner's single entry and
the owner's unlink cleans the segment up exactly once.

Memory footprint: the segment holds exactly one copy of every array
(``SharedArrayPack.nbytes`` reports the total); each worker maps the
same physical pages, so N workers cost one table+index, not N.

Failure semantics (DESIGN.md §6): every live pack is tracked in a
process-wide registry backed by an ``atexit`` safety net — if the owner
exits (exception before the ``finally``, ``KeyboardInterrupt`` mid-run)
with segments still linked, the net unlinks them, logs a warning and
counts ``degraded.shm_leak``; ``/dev/shm`` never accumulates residue.
Payloads are also context managers, so owners can scope the segment's
lifetime with ``with``. :func:`make_worker_payload` degrades from shm
to pickle (with a recorded reason) when the platform lacks shared
memory or the segment cannot be allocated, unless ``transport="shm"``
was explicitly requested.
"""

from __future__ import annotations

import atexit
import pickle
import weakref
from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro.core.aggregation import KeyCodec
from repro.core.index import TraceClusterIndex
from repro.core.sessions import METRIC_COLUMNS, SessionTable
from repro.obs import current_metrics, current_tracer, record_degradation

try:  # pragma: no cover - import guard exercised implicitly
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - all supported platforms have it
    _shared_memory = None


#: Valid values of the ``transport`` knob.
TRANSPORTS = ("auto", "shm", "pickle")

#: Byte alignment of each array within a shared segment.
_ALIGN = 64


def shared_memory_available() -> bool:
    """Whether POSIX shared memory can actually be allocated here."""
    if _shared_memory is None:
        return False
    try:
        probe = _shared_memory.SharedMemory(create=True, size=_ALIGN)
    except (OSError, ValueError):  # pragma: no cover - platform specific
        return False
    probe.close()
    probe.unlink()
    return True


def resolve_transport(transport: str | None) -> str:
    """Resolve the ``transport`` knob to ``"shm"`` or ``"pickle"``.

    ``None``/``"auto"`` pick shared memory when the platform supports
    it and fall back to pickle otherwise; ``"shm"`` insists (raising if
    unsupported); ``"pickle"`` forces the serialization path. Transport
    never changes results, only worker-startup cost.
    """
    if transport is None or transport == "auto":
        return "shm" if shared_memory_available() else "pickle"
    if transport not in TRANSPORTS:
        raise ValueError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    if transport == "shm" and not shared_memory_available():
        raise ValueError(
            "transport='shm' requested but multiprocessing.shared_memory "
            "is unavailable on this platform"
        )
    return transport


# Leak-on-exit safety net: every linked SharedArrayPack registers here
# and deregisters on unlink. The atexit hook releases stragglers so an
# owner dying between segment creation and its ``finally`` (or a
# KeyboardInterrupt that skips a release call site) cannot strand a
# segment in /dev/shm. Forked pool workers exit via os._exit and never
# run atexit hooks, so only the owning process ever unlinks.
_LIVE_PACKS: "weakref.WeakSet[SharedArrayPack]" = weakref.WeakSet()


def _release_stray_packs() -> None:
    """Unlink any still-linked segments (the atexit leak detector)."""
    for pack in list(_LIVE_PACKS):
        if pack._unlinked:
            continue
        record_degradation(
            "shm_leak",
            f"shared-memory segment {pack.manifest.segment} still linked "
            "at exit; releasing it now",
        )
        try:
            pack.release()
        except (OSError, FileNotFoundError):  # pragma: no cover - racy double free
            pass


atexit.register(_release_stray_packs)


# Note on the resource tracker: attaching re-registers the segment
# name, but pool workers (forked or spawned by this process) share the
# parent's tracker, whose cache is a per-name set — the re-register is
# a no-op and the owner's ``unlink`` clears the single entry. Workers
# must NOT explicitly unregister on attach: with the shared tracker
# that would remove the owner's registration and make the final unlink
# report a spurious KeyError.


@dataclass(frozen=True)
class ArrayEntry:
    """Location of one array inside a shared segment."""

    key: Hashable
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape)))


@dataclass(frozen=True)
class ArrayManifest:
    """Picklable description of a :class:`SharedArrayPack`.

    This — not the arrays — is what crosses the process boundary:
    segment name, total size, and one :class:`ArrayEntry` per array.
    """

    segment: str
    nbytes: int
    entries: tuple[ArrayEntry, ...]

    def attach(self) -> "AttachedArrays":
        """Map the segment and rebuild every array as a zero-copy view."""
        if _shared_memory is None:  # pragma: no cover - guarded upstream
            raise RuntimeError("shared memory unavailable")
        shm = _shared_memory.SharedMemory(name=self.segment)
        metrics = current_metrics()
        metrics.inc("shm.attach")
        metrics.inc("shm.attach_bytes", self.nbytes)
        arrays: dict[Hashable, np.ndarray] = {}
        for entry in self.entries:
            arr = np.ndarray(
                entry.shape,
                dtype=np.dtype(entry.dtype),
                buffer=shm.buf,
                offset=entry.offset,
            )
            arr.flags.writeable = False
            arrays[entry.key] = arr
        return AttachedArrays(shm=shm, arrays=arrays)


class AttachedArrays:
    """A worker-side view of a pack: arrays + the mapping keeping them alive."""

    __slots__ = ("shm", "arrays")

    def __init__(self, shm, arrays: dict[Hashable, np.ndarray]) -> None:
        self.shm = shm
        self.arrays = arrays

    def __getitem__(self, key: Hashable) -> np.ndarray:
        return self.arrays[key]

    def close(self) -> None:
        """Drop the array views and unmap the segment (no unlink)."""
        self.arrays = {}
        self.shm.close()


class SharedArrayPack:
    """Owner-side handle: one shared segment holding many named arrays."""

    __slots__ = ("shm", "manifest", "_unlinked", "__weakref__")

    def __init__(self, shm, manifest: ArrayManifest) -> None:
        self.shm = shm
        self.manifest = manifest
        self._unlinked = False

    @classmethod
    def create(cls, arrays: Mapping[Hashable, np.ndarray]) -> "SharedArrayPack":
        """Copy ``arrays`` into one fresh shared segment (the only copy)."""
        if _shared_memory is None:
            raise RuntimeError("shared memory unavailable")
        normalized: dict[Hashable, np.ndarray] = {
            key: np.ascontiguousarray(arr) for key, arr in arrays.items()
        }
        entries: list[ArrayEntry] = []
        offset = 0
        for key, arr in normalized.items():
            offset = -(-offset // _ALIGN) * _ALIGN  # round up
            entries.append(
                ArrayEntry(
                    key=key,
                    dtype=arr.dtype.str,
                    shape=tuple(arr.shape),
                    offset=offset,
                )
            )
            offset += arr.nbytes
        total = max(offset, 1)  # zero-size segments are invalid
        with current_tracer().span("shm.pack", n_arrays=len(entries)) as span:
            shm = _shared_memory.SharedMemory(create=True, size=total)
            for entry, arr in zip(entries, normalized.values()):
                dest = np.ndarray(
                    entry.shape, dtype=arr.dtype, buffer=shm.buf, offset=entry.offset
                )
                dest[...] = arr
            span.set(segment=shm.name, bytes=total)
        metrics = current_metrics()
        metrics.inc("shm.segments_created")
        metrics.inc("shm.packed_bytes", total)
        manifest = ArrayManifest(
            segment=shm.name, nbytes=total, entries=tuple(entries)
        )
        pack = cls(shm=shm, manifest=manifest)
        _LIVE_PACKS.add(pack)
        return pack

    @property
    def nbytes(self) -> int:
        return self.manifest.nbytes

    def close(self) -> None:
        self.shm.close()

    def unlink(self) -> None:
        """Destroy the segment (idempotent). Close first if still mapped."""
        if not self._unlinked:
            self._unlinked = True
            _LIVE_PACKS.discard(self)
            self.shm.unlink()
            current_tracer().event(
                "shm.release", segment=self.manifest.segment
            )
            current_metrics().inc("shm.segments_released")

    def release(self) -> None:
        """Close and unlink — the owner's end-of-pool teardown."""
        self.close()
        self.unlink()


# ---------------------------------------------------------------------------
# Table / index array flattening
# ---------------------------------------------------------------------------
#: Structured array keys: ("table", column) and ("index", kind, *detail).
_TABLE_COLUMNS = ("codes",) + METRIC_COLUMNS


def export_arrays(
    table: SessionTable, index: TraceClusterIndex | None
) -> dict[Hashable, np.ndarray]:
    """Flatten every numpy array of a table (+ index) under stable keys."""
    arrays: dict[Hashable, np.ndarray] = {
        ("table", col): getattr(table, col) for col in _TABLE_COLUMNS
    }
    if index is not None:
        arrays[("index", "leaf_keys")] = index.leaf_keys
        arrays[("index", "row_to_leaf")] = index.row_to_leaf
        for m, keys in index.mask_keys.items():
            arrays[("index", "mask_keys", m)] = keys
        for m, inverse in index.leaf_to_cluster.items():
            arrays[("index", "leaf_to_cluster", m)] = inverse
        for (fine, coarse), idx in index._project_index.items():
            arrays[("index", "project", fine, coarse)] = idx
        for name, valid in index._valid_masks.items():
            arrays[("index", "valid", name)] = valid
        for (name, thresholds), problem in index._problem_masks.items():
            arrays[("index", "problem", name, thresholds)] = problem
    return arrays


def arrays_nbytes(arrays: Mapping[Hashable, np.ndarray]) -> int:
    """Total logical bytes of a flattened array mapping.

    The accounting twin of :func:`export_arrays`: what a shared segment
    or snapshot of these arrays would hold, and what
    ``AnalysisSubstrate.memory_bytes`` uses to report the true substrate
    footprint for shard-size budgeting.
    """
    return int(sum(arr.nbytes for arr in arrays.values()))


def table_from_arrays(
    schema, vocabs, arrays: Mapping[Hashable, np.ndarray]
) -> SessionTable:
    """Rebuild a :class:`SessionTable` around attached arrays.

    Bypasses ``__init__`` deliberately: the arrays were validated when
    the parent built the original table, and re-running the O(n·attrs)
    code-range scans per worker would defeat the zero-copy attach.
    """
    table = SessionTable.__new__(SessionTable)
    table.schema = schema
    table.vocabs = [list(v) for v in vocabs]
    for col in _TABLE_COLUMNS:
        setattr(table, col, arrays[("table", col)])
    table._decoders = None
    table._encoders = None
    table._buffers = None
    return table


def index_from_arrays(
    table: SessionTable,
    codec: KeyCodec,
    fold_source: dict[int, int],
    fold_order: list[int],
    arrays: Mapping[Hashable, np.ndarray],
) -> TraceClusterIndex:
    """Rebuild a :class:`TraceClusterIndex` around attached arrays,
    including the prewarmed projection and metric-mask caches."""
    mask_keys: dict[int, np.ndarray] = {}
    leaf_to_cluster: dict[int, np.ndarray] = {}
    project: dict[tuple[int, int], np.ndarray] = {}
    valid: dict[str, np.ndarray] = {}
    problem: dict[tuple, np.ndarray] = {}
    for key, arr in arrays.items():
        if key[0] != "index":
            continue
        kind = key[1]
        if kind == "mask_keys":
            mask_keys[key[2]] = arr
        elif kind == "leaf_to_cluster":
            leaf_to_cluster[key[2]] = arr
        elif kind == "project":
            project[(key[2], key[3])] = arr
        elif kind == "valid":
            valid[key[2]] = arr
        elif kind == "problem":
            problem[(key[2], key[3])] = arr
    index = TraceClusterIndex(
        table=table,
        codec=codec,
        leaf_keys=arrays[("index", "leaf_keys")],
        row_to_leaf=arrays[("index", "row_to_leaf")],
        mask_keys=mask_keys,
        leaf_to_cluster=leaf_to_cluster,
        fold_source=fold_source,
        fold_order=fold_order,
    )
    index._project_index.update(project)
    index._valid_masks.update(valid)
    index._problem_masks.update(problem)
    return index


# ---------------------------------------------------------------------------
# Worker payloads
# ---------------------------------------------------------------------------
class PickleWorkerPayload:
    """Fallback transport: the table and index pickle with the payload.

    ``restore`` is the identity — every worker deserializes (and
    therefore copies) the full arrays, which is exactly the cost the
    shm transport avoids.
    """

    __slots__ = ("table", "index")

    transport = "pickle"

    def __init__(
        self, table: SessionTable, index: TraceClusterIndex | None
    ) -> None:
        self.table = table
        self.index = index

    def restore(self) -> tuple[SessionTable, TraceClusterIndex | None]:
        return self.table, self.index

    def release(self) -> None:  # symmetry with the shm payload
        pass

    def __enter__(self) -> "PickleWorkerPayload":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False


class ShmWorkerPayload:
    """Shared-memory transport: pickles metadata, attaches arrays.

    What actually pickles: the manifest (segment name + dtypes/shapes/
    offsets), the schema and vocabularies, the codec's small arrays and
    the index's fold tables — no session or cluster arrays. ``restore``
    maps the segment and rebuilds zero-copy table/index objects.
    """

    __slots__ = (
        "manifest",
        "schema",
        "vocabs",
        "widths",
        "offsets",
        "fold_source",
        "fold_order",
        "has_index",
        "_pack",
        "_attached",
    )

    def __init__(self, table: SessionTable, index: TraceClusterIndex | None) -> None:
        pack = SharedArrayPack.create(export_arrays(table, index))
        codec = index.codec if index is not None else KeyCodec.from_table(table)
        self.manifest = pack.manifest
        self.schema = table.schema
        self.vocabs = [list(v) for v in table.vocabs]
        self.widths = codec.widths
        self.offsets = codec.offsets
        self.fold_source = dict(index.fold_source) if index is not None else None
        self.fold_order = list(index.fold_order) if index is not None else None
        self.has_index = index is not None
        self._pack = pack
        self._attached = None

    transport = "shm"

    def __getstate__(self):
        # The owner-side pack handle must not cross the process
        # boundary: workers re-attach from the manifest alone.
        return {
            "manifest": self.manifest,
            "schema": self.schema,
            "vocabs": self.vocabs,
            "widths": self.widths,
            "offsets": self.offsets,
            "fold_source": self.fold_source,
            "fold_order": self.fold_order,
            "has_index": self.has_index,
        }

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._pack = None
        self._attached = None

    def restore(self) -> tuple[SessionTable, TraceClusterIndex | None]:
        """Attach the segment and rebuild table (+ index) around it.

        The attached mapping is kept on the payload (which worker state
        retains) so the views stay valid for the worker's lifetime.
        """
        if self._attached is None:
            self._attached = self.manifest.attach()
        arrays = self._attached.arrays
        table = table_from_arrays(self.schema, self.vocabs, arrays)
        codec = KeyCodec(
            schema=self.schema,
            vocabs=table.vocabs,
            widths=self.widths,
            offsets=self.offsets,
        )
        if not self.has_index:
            return table, None
        index = index_from_arrays(
            table, codec, self.fold_source, self.fold_order, arrays
        )
        return table, index

    def release(self) -> None:
        """Owner-side teardown: unmap and destroy the segment.

        Call only after the worker pool has shut down (workers keep
        their own mappings; the segment vanishes once the last mapping
        closes). Harmless no-op on the worker side.
        """
        if self._attached is not None:
            self._attached.close()
            self._attached = None
        if self._pack is not None:
            self._pack.release()
            self._pack = None

    def __enter__(self) -> "ShmWorkerPayload":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False


def make_worker_payload(
    table: SessionTable,
    index: TraceClusterIndex | None = None,
    transport: str | None = None,
):
    """Build the transport payload for a worker pool's initializer.

    Degradation ladder: under ``transport="auto"`` (or ``None``) a
    missing shared-memory facility, or a segment allocation failure
    (``/dev/shm`` full, rlimit), falls back to the pickle transport
    with a recorded reason instead of raising — transport never changes
    results, only hand-off cost. An explicit ``transport="shm"`` still
    raises, because the caller asked for exactly that.
    """
    requested = transport
    resolved = resolve_transport(transport)
    if resolved == "shm":
        try:
            return ShmWorkerPayload(table, index)
        except (OSError, MemoryError) as exc:
            if requested == "shm":
                raise
            record_degradation(
                "shm_to_pickle",
                f"shared-memory pack failed ({type(exc).__name__}: {exc}); "
                "falling back to pickle transport",
            )
    elif requested in (None, "auto"):
        record_degradation(
            "shm_to_pickle",
            "shared memory unavailable on this platform; "
            "using pickle transport",
        )
    return PickleWorkerPayload(table, index)


def payload_pickled_bytes(payload) -> int:
    """Size of what actually crosses the process boundary per worker."""
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
