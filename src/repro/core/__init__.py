"""Core clustering library — the paper's primary contribution.

This package implements the analysis pipeline of Jiang et al. (CoNEXT
2013): quality-metric classification of video sessions, the cluster
lattice over client/session attributes, problem-cluster detection
(Section 3.1), the critical-cluster phase-transition algorithm
(Section 3.2), and the temporal prevalence/persistence machinery
(Section 4.1).
"""

from repro.core.attributes import (
    AttributeSchema,
    DEFAULT_SCHEMA,
    DEFAULT_ATTRIBUTES,
)
from repro.core.sessions import Session, SessionTable
from repro.core.metrics import (
    QualityMetric,
    MetricThresholds,
    BUFFERING_RATIO,
    JOIN_TIME,
    BITRATE,
    JOIN_FAILURE,
    ALL_METRICS,
    metric_by_name,
    register_metric,
    unregister_metric,
)
from repro.core.clusters import ClusterKey, ClusterLattice
from repro.core.epoching import EpochGrid, split_into_epochs
from repro.core.aggregation import (
    ClusterStats,
    EpochAggregate,
    EpochLeafIndex,
    KeyCodec,
    aggregate_epoch,
)
from repro.core.index import TraceClusterIndex
from repro.core.problems import (
    ProblemClusterConfig,
    ProblemClusters,
    cluster_problem_flags,
    find_problem_clusters,
)
from repro.core.critical import CriticalClusters, find_critical_clusters
from repro.core.streaks import (
    ClusterTimeline,
    Streak,
    build_timelines,
    coalesce_streaks,
    merge_timelines,
    prevalence,
    persistence_streaks,
    shift_streaks,
)
from repro.core.pipeline import (
    AnalysisConfig,
    EpochAnalysis,
    MetricAnalysis,
    PipelineTimings,
    TraceAnalysis,
    analyze_trace,
    resolve_engine,
    resolve_worker_count,
)
from repro.core.shm import (
    SharedArrayPack,
    make_worker_payload,
    resolve_transport,
    shared_memory_available,
)
from repro.core.substrate import (
    AnalysisSubstrate,
    StreamingSubstrate,
    analyze_sweep,
)
from repro.core.shards import (
    ShardInfo,
    ShardStore,
    ShardStoreBuilder,
    analyze_shards,
    build_shard_store,
    merge_shard_analyses,
    shard_boundaries,
    sweep_shards,
)
from repro.core.online import AlertEvent, ClusterAlert, OnlineDetector
from repro.core.overlap import jaccard_similarity, top_k_critical_overlap
from repro.core.hhh import HHHConfig, find_hierarchical_heavy_hitters

__all__ = [
    "AttributeSchema",
    "DEFAULT_SCHEMA",
    "DEFAULT_ATTRIBUTES",
    "Session",
    "SessionTable",
    "QualityMetric",
    "MetricThresholds",
    "BUFFERING_RATIO",
    "JOIN_TIME",
    "BITRATE",
    "JOIN_FAILURE",
    "ALL_METRICS",
    "metric_by_name",
    "register_metric",
    "unregister_metric",
    "ClusterKey",
    "ClusterLattice",
    "EpochGrid",
    "split_into_epochs",
    "ClusterStats",
    "EpochAggregate",
    "EpochLeafIndex",
    "KeyCodec",
    "TraceClusterIndex",
    "aggregate_epoch",
    "ProblemClusterConfig",
    "ProblemClusters",
    "cluster_problem_flags",
    "find_problem_clusters",
    "CriticalClusters",
    "find_critical_clusters",
    "ClusterTimeline",
    "Streak",
    "build_timelines",
    "coalesce_streaks",
    "merge_timelines",
    "prevalence",
    "persistence_streaks",
    "shift_streaks",
    "AnalysisConfig",
    "EpochAnalysis",
    "MetricAnalysis",
    "PipelineTimings",
    "TraceAnalysis",
    "analyze_trace",
    "resolve_engine",
    "resolve_worker_count",
    "AnalysisSubstrate",
    "StreamingSubstrate",
    "analyze_sweep",
    "ShardInfo",
    "ShardStore",
    "ShardStoreBuilder",
    "analyze_shards",
    "build_shard_store",
    "merge_shard_analyses",
    "shard_boundaries",
    "sweep_shards",
    "SharedArrayPack",
    "make_worker_payload",
    "resolve_transport",
    "shared_memory_available",
    "AlertEvent",
    "ClusterAlert",
    "OnlineDetector",
    "jaccard_similarity",
    "top_k_critical_overlap",
    "HHHConfig",
    "find_hierarchical_heavy_hitters",
]
