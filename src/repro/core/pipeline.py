"""End-to-end analysis pipeline: trace -> per-epoch, per-metric structure.

``analyze_trace`` runs the paper's full methodology over a
:class:`~repro.core.sessions.SessionTable`:

1. split sessions into one-hour epochs (Section 3.1),
2. per epoch: build one shared leaf index (pack + ``np.unique`` once),
   then per metric aggregate cluster counts, flag problem clusters and
   run the critical-cluster phase-transition search,
3. summarise each epoch compactly (decoded cluster identities with
   stats/attribution) so week-scale traces stay memory-friendly.

Two orthogonal execution knobs shape how step 2 runs:

* ``engine`` selects the per-epoch reduction strategy. ``"epoch"`` is
  the legacy path (rebuild a leaf index per epoch); ``"indexed"``
  (what ``"auto"`` resolves to) builds one
  :class:`~repro.core.index.TraceClusterIndex` for the whole trace and
  reduces each (epoch, metric) unit to a handful of ``bincount``
  calls. Both engines produce bit-identical problem and critical
  clusters (pinned by ``tests/property/test_parallel_equivalence.py``).
* ``workers`` fans epochs out over a process pool: ``0``/``1`` run
  serially in-process, ``"auto"`` uses every CPU, and any worker count
  produces results identical to the serial path (same cluster
  identities, same stats, same attribution). With the indexed engine
  the trace index is built once in the parent and shipped to each
  worker through the pool initializer.

Per-phase wall-time counters (pack/index-build/aggregate/problems/
critical) are accumulated on :class:`PipelineTimings` and surfaced via
``TraceAnalysis.timings``.

The result object exposes the per-metric timelines and series that all
figures and tables of the evaluation are computed from.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.aggregation import (
    ClusterStats,
    EpochLeafIndex,
    KeyCodec,
    aggregate_epoch,
)
from repro.core.clusters import ClusterKey
from repro.core.critical import CriticalAttribution, find_critical_clusters
from repro.core.epoching import EpochGrid, split_into_epochs
from repro.core.index import TraceClusterIndex
from repro.core.metrics import (
    ALL_METRICS,
    MetricThresholds,
    QualityMetric,
    metric_by_name,
)
from repro.core.problems import ProblemClusterConfig, find_problem_clusters
from repro.core.sessions import SessionTable
from repro.core.shm import TRANSPORTS, make_worker_payload, resolve_transport
from repro.core.streaks import ClusterTimeline, build_timelines
from repro.obs import current_metrics, current_tracer, record_degradation


def resolve_worker_count(workers: int | str | None) -> int:
    """Resolve the ``workers`` knob to a concrete process count.

    ``None``/``0``/``1`` mean serial in-process analysis, ``"auto"``
    means one worker per CPU, and any other non-negative int is taken
    literally. Worker count never changes results, only wall time.
    """
    if workers is None:
        return 0
    if workers == "auto":
        return os.cpu_count() or 1
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(
            f"workers must be a non-negative int or 'auto', got {workers!r}"
        )
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    return workers


#: Valid values of the ``engine`` knob.
ENGINES = ("auto", "epoch", "indexed")


def resolve_engine(engine: str | None) -> str:
    """Resolve the ``engine`` knob to a concrete engine name.

    ``None``/``"auto"`` pick the trace-global indexed engine (the fast
    default); ``"epoch"`` forces the legacy per-epoch leaf-index path;
    ``"indexed"`` is explicit. Engine choice never changes results,
    only wall time and memory.
    """
    if engine is None or engine == "auto":
        return "indexed"
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {ENGINES}, got {engine!r}"
        )
    return engine


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs for the full pipeline (paper defaults).

    ``workers`` selects the epoch-parallel executor: ``0`` (default)
    and ``1`` run serially in-process, ``"auto"`` uses every CPU, any
    other int that many worker processes. ``engine`` selects the
    reduction strategy: ``"auto"`` (default, resolves to
    ``"indexed"``), ``"indexed"`` (one trace-global
    :class:`~repro.core.index.TraceClusterIndex`, per-epoch bincounts)
    or ``"epoch"`` (legacy per-epoch leaf index). ``transport``
    selects how parallel runs ship the table/index to workers:
    ``"auto"`` (default) uses POSIX shared memory when available,
    ``"shm"`` insists on it, ``"pickle"`` forces per-worker
    serialization. Results are identical for every combination of the
    three knobs.
    """

    metrics: tuple[QualityMetric, ...] = ALL_METRICS
    thresholds: MetricThresholds = field(default_factory=MetricThresholds)
    problem_config: ProblemClusterConfig = field(default_factory=ProblemClusterConfig)
    epoch_seconds: float = 3600.0
    workers: int | str = 0
    engine: str = "auto"
    transport: str = "auto"

    def __post_init__(self) -> None:
        resolve_worker_count(self.workers)  # validate eagerly
        resolve_engine(self.engine)
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {self.transport!r}"
            )

    def config_digest(self) -> str:
        """Canonical SHA-256 of everything that can change results.

        The digest covers the metric tuple (by registry name), the
        thresholds, the problem-cluster config and the epoch length —
        and deliberately **excludes** the execution knobs ``workers``,
        ``engine`` and ``transport``, which are property-tested to
        never change output. Two configs with equal digests therefore
        produce bit-identical analyses of the same data, which is what
        lets the per-shard result cache
        (:mod:`repro.core.resultcache`) share entries across execution
        strategies and across sweeps whose variants overlap.

        Metrics are identified by registry name (custom metrics must be
        registered via
        :func:`~repro.core.metrics.register_metric` — the name is the
        identity, so re-registering different behavior under an old
        name stales any cache keyed on it). Raises :class:`ValueError`
        for unregistered metrics, which have no stable identity to
        address results by.
        """
        for metric in self.metrics:
            try:
                registered = metric_by_name(metric.name)
            except KeyError:
                registered = None
            if registered is not metric:
                raise ValueError(
                    f"metric {metric.name!r} is not registered and has no "
                    "content-addressable identity; call register_metric() "
                    "on it first"
                )
        spec = {
            "digest_version": 1,
            "metrics": [m.name for m in self.metrics],
            "thresholds": asdict(self.thresholds),
            "problem_config": asdict(self.problem_config),
            "epoch_seconds": float(self.epoch_seconds),
        }
        payload = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class PipelineTimings:
    """Per-phase wall-time counters for one ``analyze_trace`` run.

    ``pack_s`` counts per-epoch shared-structure construction — the
    legacy engine's leaf index or the indexed engine's epoch view —
    once per epoch; ``index_build_s`` counts trace-global index
    construction (once per run, indexed engine only);
    ``aggregate_s``/``problems_s``/``critical_s`` accumulate per
    (epoch, metric) unit. Sharded runs additionally count ``load_s``
    (mmap-loading shard snapshots) and ``merge_s`` (folding per-shard
    results into the whole-trace analysis). In parallel runs the phase
    counters sum time spent inside worker processes while ``wall_s``
    is the parent's wall clock, so ``phase_seconds > wall_s``
    indicates real parallel speedup.
    """

    pack_s: float = 0.0
    index_build_s: float = 0.0
    aggregate_s: float = 0.0
    problems_s: float = 0.0
    critical_s: float = 0.0
    load_s: float = 0.0
    merge_s: float = 0.0
    wall_s: float = 0.0
    n_epochs: int = 0
    n_units: int = 0

    @property
    def phase_seconds(self) -> float:
        """Total time attributed to the instrumented phases."""
        return (
            self.pack_s
            + self.index_build_s
            + self.aggregate_s
            + self.problems_s
            + self.critical_s
            + self.load_s
            + self.merge_s
        )

    def merge(self, other: "PipelineTimings") -> None:
        """Accumulate another run's (or epoch's) counters into this one."""
        self.pack_s += other.pack_s
        self.index_build_s += other.index_build_s
        self.aggregate_s += other.aggregate_s
        self.problems_s += other.problems_s
        self.critical_s += other.critical_s
        self.load_s += other.load_s
        self.merge_s += other.merge_s
        self.n_epochs += other.n_epochs
        self.n_units += other.n_units

    def as_dict(self) -> dict[str, float]:
        return {
            "pack_s": self.pack_s,
            "index_build_s": self.index_build_s,
            "aggregate_s": self.aggregate_s,
            "problems_s": self.problems_s,
            "critical_s": self.critical_s,
            "load_s": self.load_s,
            "merge_s": self.merge_s,
            "phase_s": self.phase_seconds,
            "wall_s": self.wall_s,
            "n_epochs": float(self.n_epochs),
            "n_units": float(self.n_units),
        }

    def render(self) -> str:
        """Human-readable timing block (printed by ``--timings``)."""
        lines = [
            "Pipeline timings "
            f"({self.n_epochs} epochs, {self.n_units} epoch-metric units):",
            f"  pack (per-epoch shared)  : {self.pack_s:9.4f} s",
            f"  index build (trace)      : {self.index_build_s:9.4f} s",
            f"  aggregate (per metric)   : {self.aggregate_s:9.4f} s",
            f"  problem clusters         : {self.problems_s:9.4f} s",
            f"  critical clusters        : {self.critical_s:9.4f} s",
        ]
        if self.load_s > 0:
            lines.append(f"  shard snapshot load      : {self.load_s:9.4f} s")
        if self.merge_s > 0:
            lines.append(f"  shard merge              : {self.merge_s:9.4f} s")
        lines += [
            f"  phase total              : {self.phase_seconds:9.4f} s",
            f"  wall clock               : {self.wall_s:9.4f} s",
        ]
        if self.wall_s > 0:
            lines.append(
                f"  parallel efficiency      : {self.phase_seconds / self.wall_s:9.2f}x"
            )
        return "\n".join(lines)


@dataclass
class EpochAnalysis:
    """Compact summary of one (epoch, metric) analysis."""

    epoch: int
    total_sessions: int
    total_problems: int
    min_sessions: int
    problem_cluster_coverage: float
    problem_clusters: dict[ClusterKey, ClusterStats]
    critical_clusters: dict[ClusterKey, CriticalAttribution]

    @property
    def global_ratio(self) -> float:
        if self.total_sessions == 0:
            return 0.0
        return self.total_problems / self.total_sessions

    @property
    def n_problem_clusters(self) -> int:
        return len(self.problem_clusters)

    @property
    def n_critical_clusters(self) -> int:
        return len(self.critical_clusters)

    @property
    def attributed_problem_sessions(self) -> float:
        return float(
            sum(c.attributed_problems for c in self.critical_clusters.values())
        )

    @property
    def critical_cluster_coverage(self) -> float:
        """Fraction of problem sessions attributed to critical clusters."""
        if self.total_problems == 0:
            return 0.0
        return self.attributed_problem_sessions / self.total_problems


@dataclass
class MetricAnalysis:
    """All epochs of one metric, plus derived temporal structure."""

    metric: QualityMetric
    grid: EpochGrid
    epochs: list[EpochAnalysis]

    def __post_init__(self) -> None:
        self._problem_timelines: dict[ClusterKey, ClusterTimeline] | None = None
        self._critical_timelines: dict[ClusterKey, ClusterTimeline] | None = None

    # -- per-epoch series ------------------------------------------------
    def series(self, accessor: Callable[[EpochAnalysis], float]) -> np.ndarray:
        return np.array([accessor(e) for e in self.epochs], dtype=np.float64)

    @property
    def problem_ratio_series(self) -> np.ndarray:
        """Fraction of problem sessions per epoch (paper Figure 2)."""
        return self.series(lambda e: e.global_ratio)

    @property
    def problem_cluster_counts(self) -> np.ndarray:
        return self.series(lambda e: e.n_problem_clusters)

    @property
    def critical_cluster_counts(self) -> np.ndarray:
        return self.series(lambda e: e.n_critical_clusters)

    @property
    def total_problem_sessions(self) -> int:
        return int(sum(e.total_problems for e in self.epochs))

    @property
    def mean_problem_clusters(self) -> float:
        counts = self.problem_cluster_counts
        return float(counts.mean()) if counts.size else 0.0

    @property
    def mean_critical_clusters(self) -> float:
        counts = self.critical_cluster_counts
        return float(counts.mean()) if counts.size else 0.0

    @property
    def mean_problem_cluster_coverage(self) -> float:
        vals = self.series(lambda e: e.problem_cluster_coverage)
        return float(vals.mean()) if vals.size else 0.0

    @property
    def mean_critical_cluster_coverage(self) -> float:
        vals = self.series(lambda e: e.critical_cluster_coverage)
        return float(vals.mean()) if vals.size else 0.0

    # -- temporal structure ----------------------------------------------
    def problem_timelines(self) -> dict[ClusterKey, ClusterTimeline]:
        if self._problem_timelines is None:
            per_epoch = [set(e.problem_clusters) for e in self.epochs]
            self._problem_timelines = build_timelines(
                per_epoch, n_epochs=len(self.epochs)
            )
        return self._problem_timelines

    def critical_timelines(self) -> dict[ClusterKey, ClusterTimeline]:
        if self._critical_timelines is None:
            per_epoch = [set(e.critical_clusters) for e in self.epochs]
            self._critical_timelines = build_timelines(
                per_epoch, n_epochs=len(self.epochs)
            )
        return self._critical_timelines

    def critical_attribution_totals(self) -> dict[ClusterKey, float]:
        """Total attributed problem sessions per critical identity.

        This is the "coverage" ranking used by the what-if analyses
        (Section 5.1): clusters that account for the most problem
        sessions over the whole trace come first.
        """
        totals: dict[ClusterKey, float] = {}
        for epoch in self.epochs:
            for key, attribution in epoch.critical_clusters.items():
                totals[key] = totals.get(key, 0.0) + attribution.attributed_problems
        return totals


@dataclass
class TraceAnalysis:
    """Full analysis of one trace across all configured metrics."""

    grid: EpochGrid
    config: AnalysisConfig
    metrics: dict[str, MetricAnalysis]
    timings: PipelineTimings = field(default_factory=PipelineTimings)

    def __getitem__(self, metric_name: str) -> MetricAnalysis:
        return self.metrics[metric_name]

    @property
    def metric_names(self) -> list[str]:
        return list(self.metrics)


def assemble_trace_analysis(
    grid: EpochGrid,
    config: AnalysisConfig,
    per_epoch: Sequence[Sequence[EpochAnalysis]],
    timings: PipelineTimings,
) -> TraceAnalysis:
    """Fold per-epoch summaries into the final :class:`TraceAnalysis`.

    ``per_epoch[e][j]`` is the summary of epoch ``e`` for the ``j``-th
    metric of ``config.metrics``. Shared by :func:`analyze_trace`,
    :func:`~repro.core.substrate.analyze_sweep` and the shard merge
    layer (:mod:`repro.core.shards`), so every execution strategy
    assembles results identically.
    """
    metric_analyses: dict[str, MetricAnalysis] = {}
    for j, metric in enumerate(config.metrics):
        metric_analyses[metric.name] = MetricAnalysis(
            metric=metric,
            grid=grid,
            epochs=[per_epoch[e][j] for e in range(grid.n_epochs)],
        )
    return TraceAnalysis(
        grid=grid, config=config, metrics=metric_analyses, timings=timings
    )


def _epoch_summary(agg, problems, critical, epoch: int) -> EpochAnalysis:
    """Compact, pickle-friendly summary of one (epoch, metric) result."""
    problem_clusters = {
        agg.decode(mask, packed): stats
        for mask, packed, stats in problems.iter_clusters()
    }
    return EpochAnalysis(
        epoch=epoch,
        total_sessions=agg.total_sessions,
        total_problems=agg.total_problems,
        min_sessions=problems.min_sessions,
        problem_cluster_coverage=problems.coverage,
        problem_clusters=problem_clusters,
        critical_clusters=critical.decoded(),
    )


def analyze_epoch(
    table: SessionTable,
    rows: np.ndarray,
    metric: QualityMetric,
    epoch: int,
    config: AnalysisConfig,
    codec: KeyCodec | None = None,
    leaf_index: EpochLeafIndex | None = None,
) -> EpochAnalysis:
    """Run the full per-epoch methodology for one metric."""
    agg = aggregate_epoch(
        table,
        rows,
        metric,
        epoch=epoch,
        thresholds=config.thresholds,
        codec=codec,
        leaf_index=leaf_index,
    )
    problems = find_problem_clusters(agg, config.problem_config)
    critical = find_critical_clusters(problems)
    return _epoch_summary(agg, problems, critical, epoch)


def _analyze_epoch_metrics(
    table: SessionTable,
    rows: np.ndarray,
    epoch: int,
    config: AnalysisConfig,
    codec: KeyCodec,
    cluster_index: TraceClusterIndex | None = None,
) -> tuple[list[EpochAnalysis], PipelineTimings]:
    """All metrics of one epoch, sharing a single per-epoch structure.

    This is the unit of work both the serial loop and the process pool
    execute, which is what guarantees serial/parallel equality. The
    legacy engine shares an :class:`EpochLeafIndex` (pack + unique once
    per epoch); the indexed engine shares an epoch view of the
    trace-global ``cluster_index`` instead — both are timed as
    ``pack_s``, the per-epoch shared-structure phase.
    """
    timings = PipelineTimings(n_epochs=1)
    leaf_index = None
    view = None
    t0 = time.perf_counter()
    if cluster_index is None:
        leaf_index = EpochLeafIndex.build(table, rows, codec=codec)
    else:
        view = cluster_index.epoch_view(rows, epoch=epoch)
    timings.pack_s += time.perf_counter() - t0

    summaries: list[EpochAnalysis] = []
    for metric in config.metrics:
        t1 = time.perf_counter()
        if view is not None:
            agg = view.aggregate(metric, thresholds=config.thresholds)
        else:
            agg = aggregate_epoch(
                table,
                rows,
                metric,
                epoch=epoch,
                thresholds=config.thresholds,
                leaf_index=leaf_index,
            )
        t2 = time.perf_counter()
        problems = find_problem_clusters(agg, config.problem_config)
        t3 = time.perf_counter()
        critical = find_critical_clusters(problems)
        t4 = time.perf_counter()
        timings.aggregate_s += t2 - t1
        timings.problems_s += t3 - t2
        timings.critical_s += t4 - t3
        timings.n_units += 1
        summaries.append(_epoch_summary(agg, problems, critical, epoch))
    return summaries, timings


# Worker-process state, installed once per worker by the pool
# initializer so each epoch batch avoids re-pickling the session table.
_WORKER_STATE: dict = {}


def _worker_init(payload, config: AnalysisConfig) -> None:
    # The payload carries the table (+ prebuilt trace index with the
    # indexed engine) across the process boundary. On the shm transport
    # only segment names/dtypes/shapes pickle and ``restore`` attaches
    # zero-copy views; on the pickle transport restore is the identity.
    # The payload stays in worker state so the attached mapping (and
    # thus every view) lives for the worker's lifetime.
    table, cluster_index = payload.restore()
    codec = cluster_index.codec if cluster_index is not None else KeyCodec.from_table(table)
    codec.field_masks()  # warm the per-codec cache once per worker
    _WORKER_STATE["payload"] = payload
    _WORKER_STATE["table"] = table
    _WORKER_STATE["config"] = config
    _WORKER_STATE["codec"] = codec
    _WORKER_STATE["cluster_index"] = cluster_index


def _worker_run_batch(batch: list[tuple[int, np.ndarray]]) -> dict:
    """One batch of epochs in a worker; results plus self-timing stats.

    The stats travel back with the results so the parent can attach
    per-worker spans (busy time, queue wait, row counts) to its trace —
    the worker's own tracer is the no-op default.
    """
    started_unix = time.time()
    t0 = time.perf_counter()
    table = _WORKER_STATE["table"]
    config = _WORKER_STATE["config"]
    codec = _WORKER_STATE["codec"]
    cluster_index = _WORKER_STATE.get("cluster_index")
    results = [
        (
            epoch,
            _analyze_epoch_metrics(
                table, rows, epoch, config, codec, cluster_index=cluster_index
            ),
        )
        for epoch, rows in batch
    ]
    return {
        "results": results,
        "pid": os.getpid(),
        "started_unix": started_unix,
        "busy_s": time.perf_counter() - t0,
        "epochs": len(batch),
        "rows": int(sum(rows.size for _, rows in batch)),
    }


def _chunk_epochs(
    per_epoch_rows: list[np.ndarray], n_workers: int
) -> list[list[tuple[int, np.ndarray]]]:
    """Contiguous epoch batches, ~4 per worker for load balance."""
    n = len(per_epoch_rows)
    chunk = max(1, math.ceil(n / (n_workers * 4)))
    pairs = list(enumerate(per_epoch_rows))
    return [pairs[i : i + chunk] for i in range(0, n, chunk)]


def _fold_worker_stats(
    agg: dict[int, dict], out: dict, submitted_unix: float
) -> None:
    """Fold one batch's worker-side stats into a per-pid summary."""
    stats = agg.setdefault(
        out["pid"],
        {"batches": 0, "epochs": 0, "rows": 0, "busy_s": 0.0,
         "queue_wait_s": 0.0},
    )
    stats["batches"] += 1
    stats["epochs"] += out["epochs"]
    stats["rows"] += out["rows"]
    stats["busy_s"] += out["busy_s"]
    # Wall-clock delta between parent-side submit and worker-side start:
    # same host, so the clocks agree to well under scheduling noise.
    stats["queue_wait_s"] += max(0.0, out["started_unix"] - submitted_unix)


def _record_worker_spans(tracer, worker_stats: dict[int, dict]) -> None:
    """Attach one ``worker`` span per pool process to the current span."""
    for pid, stats in sorted(worker_stats.items()):
        tracer.record(
            "worker",
            duration_s=stats["busy_s"],
            pid=pid,
            batches=stats["batches"],
            epochs=stats["epochs"],
            rows=stats["rows"],
            queue_wait_s=round(stats["queue_wait_s"], 6),
        )


def analyze_trace(
    table: SessionTable,
    config: AnalysisConfig | None = None,
    grid: EpochGrid | None = None,
    progress: Callable[[int, int], None] | None = None,
    workers: int | str | None = None,
    engine: str | None = None,
    transport: str | None = None,
    substrate=None,
) -> TraceAnalysis:
    """Analyse a whole trace for every configured metric.

    ``workers`` overrides ``config.workers`` when given: ``0``/``1``
    run serially in-process, ``"auto"`` uses every CPU, ``n`` uses
    ``n`` worker processes. ``engine`` overrides ``config.engine``:
    ``"indexed"`` (what ``"auto"`` resolves to) builds one trace-global
    cluster index and reduces every epoch through it, ``"epoch"`` is
    the legacy per-epoch path. ``transport`` overrides
    ``config.transport`` for parallel runs: ``"shm"`` publishes the
    table/index arrays through one shared-memory segment (workers
    attach zero-copy), ``"pickle"`` serializes them per worker,
    ``"auto"`` prefers shm when available. Every combination of the
    three knobs returns identical results. ``substrate`` (optional) is
    a prebuilt :class:`~repro.core.substrate.AnalysisSubstrate` over
    the same table; the indexed engine then reuses its trace index
    instead of building one. ``progress`` (optional) is called with
    ``(done_units, total_units)`` — units are (epoch, metric) pairs —
    after each epoch completes across all its metrics.
    """
    config = config or AnalysisConfig()
    n_workers = resolve_worker_count(
        config.workers if workers is None else workers
    )
    engine_name = resolve_engine(
        config.engine if engine is None else engine
    )
    transport_requested = config.transport if transport is None else transport
    transport_name = resolve_transport(transport_requested)
    tracer = current_tracer()
    run_span_cm = tracer.span(
        "analyze_trace",
        sessions=len(table),
        engine=engine_name,
        workers=n_workers,
        transport=transport_name,
    )
    with run_span_cm as run_span:
        if grid is None:
            grid = EpochGrid.covering(table, epoch_seconds=config.epoch_seconds)
        grid, per_epoch_rows = split_into_epochs(table, grid)
        run_span.set(epochs=grid.n_epochs)

        n_metrics = len(config.metrics)
        total_units = grid.n_epochs * n_metrics
        timings = PipelineTimings()
        per_epoch: list[list[EpochAnalysis] | None] = [None] * grid.n_epochs
        done = 0
        wall_start = time.perf_counter()

        cluster_index = None
        if engine_name == "indexed" and grid.n_epochs > 0:
            with tracer.span("index_build", reused=substrate is not None) as span:
                t0 = time.perf_counter()
                if substrate is not None:
                    cluster_index = substrate.index
                else:
                    cluster_index = TraceClusterIndex.build(table)
                cluster_index.warm_metric_masks(config.metrics, config.thresholds)
                timings.index_build_s += time.perf_counter() - t0
                span.set(leaves=int(cluster_index.leaf_keys.size))
            codec = cluster_index.codec
        else:
            codec = KeyCodec.from_table(table)

        def run_serial(missing_only: bool) -> None:
            nonlocal done
            for epoch, rows in enumerate(per_epoch_rows):
                if missing_only and per_epoch[epoch] is not None:
                    continue
                summaries, epoch_timings = _analyze_epoch_metrics(
                    table, rows, epoch, config, codec, cluster_index=cluster_index
                )
                per_epoch[epoch] = summaries
                timings.merge(epoch_timings)
                done += n_metrics
                if progress is not None:
                    progress(done, total_units)

        if n_workers <= 1 or grid.n_epochs <= 1:
            with tracer.span("epochs", mode="serial", epochs=grid.n_epochs):
                run_serial(missing_only=False)
        else:
            batches = _chunk_epochs(per_epoch_rows, n_workers)
            failure: Exception | None = None
            # Pass the *requested* transport through: make_worker_payload
            # owns the auto-resolution and records the degradation when
            # shm is requested implicitly but unavailable.
            with tracer.span("worker_payload") as pspan:
                payload = make_worker_payload(
                    table, cluster_index, transport=transport_requested
                )
                pspan.set(transport=payload.transport)
                if payload.transport == "shm":
                    pspan.set(segment_bytes=payload.manifest.nbytes)
            # The ``with payload`` guarantees the owner's shared-memory
            # segment is released however the pool ends — clean shutdown,
            # worker crash, or KeyboardInterrupt (the atexit net in
            # core/shm covers even harder exits).
            with payload:
                with tracer.span(
                    "fanout", workers=min(n_workers, len(batches)),
                    batches=len(batches),
                ) as fanout:
                    worker_stats: dict[int, dict] = {}
                    try:
                        with ProcessPoolExecutor(
                            max_workers=min(n_workers, len(batches)),
                            initializer=_worker_init,
                            initargs=(payload, config),
                        ) as pool:
                            submitted: dict = {}
                            futures = []
                            for batch in batches:
                                future = pool.submit(_worker_run_batch, batch)
                                submitted[future] = time.time()
                                futures.append(future)
                            for future in as_completed(futures):
                                out = future.result()
                                _fold_worker_stats(
                                    worker_stats, out, submitted[future]
                                )
                                for epoch, (summaries, epoch_timings) in out[
                                    "results"
                                ]:
                                    per_epoch[epoch] = summaries
                                    timings.merge(epoch_timings)
                                    done += n_metrics
                                    if progress is not None:
                                        progress(done, total_units)
                    except Exception as exc:
                        # A worker crash (BrokenProcessPool, a raise
                        # inside a batch, a pickling failure) degrades
                        # to the serial path below instead of aborting:
                        # the serial loop is the reference
                        # implementation, so any genuine per-epoch bug
                        # resurfaces there with a clean traceback.
                        failure = exc
                    _record_worker_spans(tracer, worker_stats)
                    fanout.set(completed_epochs=sum(
                        1 for s in per_epoch if s is not None
                    ))
            if failure is not None:
                record_degradation(
                    "parallel_to_serial",
                    "worker pool failed "
                    f"({type(failure).__name__}: {failure}); completing "
                    f"{sum(1 for s in per_epoch if s is None)} remaining "
                    "epoch(s) serially",
                )
                with tracer.span("epochs", mode="serial-fallback"):
                    run_serial(missing_only=True)
        timings.wall_s = time.perf_counter() - wall_start
        tracer.record(
            "aggregate", duration_s=timings.aggregate_s, units=timings.n_units
        )
        tracer.record("problems", duration_s=timings.problems_s)
        tracer.record("critical", duration_s=timings.critical_s)
        current_metrics().inc("pipeline.runs")
        current_metrics().inc("pipeline.epochs", grid.n_epochs)

    return assemble_trace_analysis(grid, config, per_epoch, timings)


def restrict_epochs(analysis: MetricAnalysis, epochs: Sequence[int]) -> MetricAnalysis:
    """A view of a metric analysis over a subset of epoch indices.

    Used by the proactive what-if simulation to form train/test splits
    (paper Section 5.2). Epoch indices are renumbered 0..len-1 so
    streak semantics remain contiguous within the subset; the view's
    grid is re-anchored at the first chosen epoch's true start time so
    ``epoch_start()`` keeps reporting trace timestamps (for
    non-contiguous subsets only the first epoch's timestamp is exact —
    a uniform grid cannot represent gaps).
    """
    epochs = list(epochs)
    chosen = [analysis.epochs[e] for e in epochs]
    renumbered = [
        EpochAnalysis(
            epoch=i,
            total_sessions=e.total_sessions,
            total_problems=e.total_problems,
            min_sessions=e.min_sessions,
            problem_cluster_coverage=e.problem_cluster_coverage,
            problem_clusters=e.problem_clusters,
            critical_clusters=e.critical_clusters,
        )
        for i, e in enumerate(chosen)
    ]
    origin = (
        analysis.grid.epoch_start(epochs[0]) if epochs else analysis.grid.origin
    )
    grid = EpochGrid(
        origin=origin,
        epoch_seconds=analysis.grid.epoch_seconds,
        n_epochs=len(renumbered),
    )
    return MetricAnalysis(metric=analysis.metric, grid=grid, epochs=renumbered)
