"""End-to-end analysis pipeline: trace -> per-epoch, per-metric structure.

``analyze_trace`` runs the paper's full methodology over a
:class:`~repro.core.sessions.SessionTable`:

1. split sessions into one-hour epochs (Section 3.1),
2. per (epoch, metric): aggregate cluster counts, flag problem
   clusters, run the critical-cluster phase-transition search,
3. summarise each epoch compactly (decoded cluster identities with
   stats/attribution) so week-scale traces stay memory-friendly.

The result object exposes the per-metric timelines and series that all
figures and tables of the evaluation are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.aggregation import ClusterStats, KeyCodec, aggregate_epoch
from repro.core.clusters import ClusterKey
from repro.core.critical import CriticalAttribution, find_critical_clusters
from repro.core.epoching import EpochGrid, split_into_epochs
from repro.core.metrics import ALL_METRICS, MetricThresholds, QualityMetric
from repro.core.problems import ProblemClusterConfig, find_problem_clusters
from repro.core.sessions import SessionTable
from repro.core.streaks import ClusterTimeline, build_timelines


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs for the full pipeline (paper defaults)."""

    metrics: tuple[QualityMetric, ...] = ALL_METRICS
    thresholds: MetricThresholds = field(default_factory=MetricThresholds)
    problem_config: ProblemClusterConfig = field(default_factory=ProblemClusterConfig)
    epoch_seconds: float = 3600.0


@dataclass
class EpochAnalysis:
    """Compact summary of one (epoch, metric) analysis."""

    epoch: int
    total_sessions: int
    total_problems: int
    min_sessions: int
    problem_cluster_coverage: float
    problem_clusters: dict[ClusterKey, ClusterStats]
    critical_clusters: dict[ClusterKey, CriticalAttribution]

    @property
    def global_ratio(self) -> float:
        if self.total_sessions == 0:
            return 0.0
        return self.total_problems / self.total_sessions

    @property
    def n_problem_clusters(self) -> int:
        return len(self.problem_clusters)

    @property
    def n_critical_clusters(self) -> int:
        return len(self.critical_clusters)

    @property
    def attributed_problem_sessions(self) -> float:
        return float(
            sum(c.attributed_problems for c in self.critical_clusters.values())
        )

    @property
    def critical_cluster_coverage(self) -> float:
        """Fraction of problem sessions attributed to critical clusters."""
        if self.total_problems == 0:
            return 0.0
        return self.attributed_problem_sessions / self.total_problems


@dataclass
class MetricAnalysis:
    """All epochs of one metric, plus derived temporal structure."""

    metric: QualityMetric
    grid: EpochGrid
    epochs: list[EpochAnalysis]

    def __post_init__(self) -> None:
        self._problem_timelines: dict[ClusterKey, ClusterTimeline] | None = None
        self._critical_timelines: dict[ClusterKey, ClusterTimeline] | None = None

    # -- per-epoch series ------------------------------------------------
    def series(self, accessor: Callable[[EpochAnalysis], float]) -> np.ndarray:
        return np.array([accessor(e) for e in self.epochs], dtype=np.float64)

    @property
    def problem_ratio_series(self) -> np.ndarray:
        """Fraction of problem sessions per epoch (paper Figure 2)."""
        return self.series(lambda e: e.global_ratio)

    @property
    def problem_cluster_counts(self) -> np.ndarray:
        return self.series(lambda e: e.n_problem_clusters)

    @property
    def critical_cluster_counts(self) -> np.ndarray:
        return self.series(lambda e: e.n_critical_clusters)

    @property
    def total_problem_sessions(self) -> int:
        return int(sum(e.total_problems for e in self.epochs))

    @property
    def mean_problem_clusters(self) -> float:
        counts = self.problem_cluster_counts
        return float(counts.mean()) if counts.size else 0.0

    @property
    def mean_critical_clusters(self) -> float:
        counts = self.critical_cluster_counts
        return float(counts.mean()) if counts.size else 0.0

    @property
    def mean_problem_cluster_coverage(self) -> float:
        vals = self.series(lambda e: e.problem_cluster_coverage)
        return float(vals.mean()) if vals.size else 0.0

    @property
    def mean_critical_cluster_coverage(self) -> float:
        vals = self.series(lambda e: e.critical_cluster_coverage)
        return float(vals.mean()) if vals.size else 0.0

    # -- temporal structure ----------------------------------------------
    def problem_timelines(self) -> dict[ClusterKey, ClusterTimeline]:
        if self._problem_timelines is None:
            per_epoch = [set(e.problem_clusters) for e in self.epochs]
            self._problem_timelines = build_timelines(
                per_epoch, n_epochs=len(self.epochs)
            )
        return self._problem_timelines

    def critical_timelines(self) -> dict[ClusterKey, ClusterTimeline]:
        if self._critical_timelines is None:
            per_epoch = [set(e.critical_clusters) for e in self.epochs]
            self._critical_timelines = build_timelines(
                per_epoch, n_epochs=len(self.epochs)
            )
        return self._critical_timelines

    def critical_attribution_totals(self) -> dict[ClusterKey, float]:
        """Total attributed problem sessions per critical identity.

        This is the "coverage" ranking used by the what-if analyses
        (Section 5.1): clusters that account for the most problem
        sessions over the whole trace come first.
        """
        totals: dict[ClusterKey, float] = {}
        for epoch in self.epochs:
            for key, attribution in epoch.critical_clusters.items():
                totals[key] = totals.get(key, 0.0) + attribution.attributed_problems
        return totals


@dataclass
class TraceAnalysis:
    """Full analysis of one trace across all configured metrics."""

    grid: EpochGrid
    config: AnalysisConfig
    metrics: dict[str, MetricAnalysis]

    def __getitem__(self, metric_name: str) -> MetricAnalysis:
        return self.metrics[metric_name]

    @property
    def metric_names(self) -> list[str]:
        return list(self.metrics)


def analyze_epoch(
    table: SessionTable,
    rows: np.ndarray,
    metric: QualityMetric,
    epoch: int,
    config: AnalysisConfig,
    codec: KeyCodec | None = None,
) -> EpochAnalysis:
    """Run the full per-epoch methodology for one metric."""
    agg = aggregate_epoch(
        table,
        rows,
        metric,
        epoch=epoch,
        thresholds=config.thresholds,
        codec=codec,
    )
    problems = find_problem_clusters(agg, config.problem_config)
    critical = find_critical_clusters(problems)
    problem_clusters = {
        agg.decode(mask, packed): stats
        for mask, packed, stats in problems.iter_clusters()
    }
    return EpochAnalysis(
        epoch=epoch,
        total_sessions=agg.total_sessions,
        total_problems=agg.total_problems,
        min_sessions=problems.min_sessions,
        problem_cluster_coverage=problems.coverage,
        problem_clusters=problem_clusters,
        critical_clusters=critical.decoded(),
    )


def analyze_trace(
    table: SessionTable,
    config: AnalysisConfig | None = None,
    grid: EpochGrid | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> TraceAnalysis:
    """Analyse a whole trace for every configured metric.

    ``progress`` (optional) is called with ``(done_epochs,
    total_epochs)`` after each epoch completes, across all metrics.
    """
    config = config or AnalysisConfig()
    if grid is None:
        grid = EpochGrid.covering(table, epoch_seconds=config.epoch_seconds)
    grid, per_epoch_rows = split_into_epochs(table, grid)
    codec = KeyCodec.from_table(table)

    metric_analyses: dict[str, MetricAnalysis] = {}
    total_units = grid.n_epochs * len(config.metrics)
    done = 0
    for metric in config.metrics:
        epochs: list[EpochAnalysis] = []
        for epoch, rows in enumerate(per_epoch_rows):
            epochs.append(
                analyze_epoch(table, rows, metric, epoch, config, codec=codec)
            )
            done += 1
            if progress is not None:
                progress(done, total_units)
        metric_analyses[metric.name] = MetricAnalysis(
            metric=metric, grid=grid, epochs=epochs
        )
    return TraceAnalysis(grid=grid, config=config, metrics=metric_analyses)


def restrict_epochs(analysis: MetricAnalysis, epochs: Sequence[int]) -> MetricAnalysis:
    """A view of a metric analysis over a subset of epoch indices.

    Used by the proactive what-if simulation to form train/test splits
    (paper Section 5.2). Epoch indices are renumbered 0..len-1 so
    streak semantics remain contiguous within the subset.
    """
    chosen = [analysis.epochs[e] for e in epochs]
    renumbered = [
        EpochAnalysis(
            epoch=i,
            total_sessions=e.total_sessions,
            total_problems=e.total_problems,
            min_sessions=e.min_sessions,
            problem_cluster_coverage=e.problem_cluster_coverage,
            problem_clusters=e.problem_clusters,
            critical_clusters=e.critical_clusters,
        )
        for i, e in enumerate(chosen)
    ]
    grid = EpochGrid(
        origin=analysis.grid.origin,
        epoch_seconds=analysis.grid.epoch_seconds,
        n_epochs=len(renumbered),
    )
    return MetricAnalysis(metric=analysis.metric, grid=grid, epochs=renumbered)
