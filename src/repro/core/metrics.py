"""The four quality metrics and their problem-session thresholds.

Section 2 of the paper defines the metrics and the thresholds used to
mark a session as a *problem session*:

* buffering ratio > 5% (sharp engagement drop beyond this point),
* join time > 10 s (conservative upper bound on user tolerance),
* average bitrate < 700 kbps (roughly the "360p" recommendation),
* join failure — binary, no threshold.

The thresholds are explicitly illustrative; they are configurable here
(:class:`MetricThresholds`) and an ablation bench sweeps them.

Each metric also defines *validity*: join time and bitrate are undefined
for sessions that never joined, so those sessions are excluded from the
corresponding per-metric population (the paper studies each metric
independently).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.core.sessions import SessionTable


@dataclass(frozen=True)
class MetricThresholds:
    """Problem-session thresholds (paper defaults)."""

    buffering_ratio: float = 0.05
    join_time_s: float = 10.0
    bitrate_kbps: float = 700.0

    def scaled(self, factor: float) -> "MetricThresholds":
        """Thresholds scaled by ``factor`` (for sensitivity ablations).

        Buffering-ratio and join-time thresholds scale up with the
        factor (more tolerant when > 1); the bitrate threshold scales
        the same way, meaning a *stricter* bitrate requirement — the
        ablation asks how the structure shifts as all knobs move
        together.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            buffering_ratio=self.buffering_ratio * factor,
            join_time_s=self.join_time_s * factor,
            bitrate_kbps=self.bitrate_kbps * factor,
        )


@dataclass(frozen=True)
class QualityMetric:
    """One quality metric: how to read it, and what counts as a problem.

    ``values`` returns the per-session metric value (``nan`` where the
    metric is undefined); ``valid_mask`` selects sessions the metric is
    defined for; ``problem_mask`` flags problem sessions among the valid
    ones (False where invalid).
    """

    name: str
    paper_name: str
    higher_is_worse: bool
    _values: Callable[[SessionTable], np.ndarray]
    _valid: Callable[[SessionTable], np.ndarray]
    _problem: Callable[[SessionTable, MetricThresholds], np.ndarray]

    def values(self, table: SessionTable) -> np.ndarray:
        return self._values(table)

    def valid_mask(self, table: SessionTable) -> np.ndarray:
        return self._valid(table)

    def problem_mask(
        self, table: SessionTable, thresholds: MetricThresholds | None = None
    ) -> np.ndarray:
        thresholds = thresholds or MetricThresholds()
        problems = self._problem(table, thresholds)
        return problems & self._valid(table)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __reduce__(self):
        # The callables are lambdas, which pickle cannot serialize;
        # registered metrics reconstruct from the registry instead —
        # pickling ships only the name and the worker process
        # re-hydrates through ``metric_by_name`` — so analysis configs
        # ship to worker processes (``analyze_trace(workers=N)``).
        # Custom metrics become picklable by calling
        # ``register_metric`` first; truly unregistered metrics must
        # run with ``workers=0``.
        if _BY_NAME.get(self.name) is self:
            return (metric_by_name, (self.name,))
        raise TypeError(
            f"metric {self.name!r} is not registered and cannot be "
            "pickled; call register_metric() on it to enable "
            "workers=N, or run with workers=0"
        )


def _all_valid(table: SessionTable) -> np.ndarray:
    return np.ones(len(table), dtype=bool)


def _joined_only(table: SessionTable) -> np.ndarray:
    return ~table.join_failed


BUFFERING_RATIO = QualityMetric(
    name="buffering_ratio",
    paper_name="BufRatio",
    higher_is_worse=True,
    _values=lambda t: np.where(~t.join_failed, t.buffering_ratio, np.nan),
    _valid=_joined_only,
    _problem=lambda t, th: t.buffering_ratio > th.buffering_ratio,
)

JOIN_TIME = QualityMetric(
    name="join_time",
    paper_name="JoinTime",
    higher_is_worse=True,
    _values=lambda t: t.join_time_s,
    _valid=_joined_only,
    _problem=lambda t, th: np.nan_to_num(t.join_time_s, nan=0.0) > th.join_time_s,
)

BITRATE = QualityMetric(
    name="bitrate",
    paper_name="Bitrate",
    higher_is_worse=False,
    _values=lambda t: t.bitrate_kbps,
    _valid=_joined_only,
    _problem=lambda t, th: np.nan_to_num(t.bitrate_kbps, nan=np.inf) < th.bitrate_kbps,
)

JOIN_FAILURE = QualityMetric(
    name="join_failure",
    paper_name="JoinFailure",
    higher_is_worse=True,
    _values=lambda t: t.join_failed.astype(np.float64),
    _valid=_all_valid,
    _problem=lambda t, th: t.join_failed.copy(),
)

#: The paper's four metrics, in its reporting order.
ALL_METRICS: tuple[QualityMetric, ...] = (
    BUFFERING_RATIO,
    BITRATE,
    JOIN_TIME,
    JOIN_FAILURE,
)

_BY_NAME = {m.name: m for m in ALL_METRICS}
_BY_NAME.update({m.paper_name: m for m in ALL_METRICS})


def metric_by_name(name: str) -> QualityMetric:
    """Look up a metric by library name or paper name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown metric {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def register_metric(metric: QualityMetric, overwrite: bool = False) -> QualityMetric:
    """Register a custom metric under its ``name`` and ``paper_name``.

    Registration makes the metric picklable (``__reduce__`` ships only
    the name; worker processes re-hydrate it through
    :func:`metric_by_name`), so configs using it work with
    ``analyze_trace(workers=N)``. Worker pools fork from (or are
    spawned by) the registering process, so the registry entry is
    present on the worker side by the time re-hydration runs.

    Refuses to shadow an existing registration unless ``overwrite``;
    the four paper metrics can never be overwritten. Returns the
    metric, so it can be used as a decorator-style one-liner.
    """
    reserved = {m.name for m in ALL_METRICS} | {m.paper_name for m in ALL_METRICS}
    names = [metric.name]
    if metric.paper_name and metric.paper_name != metric.name:
        names.append(metric.paper_name)
    for name in names:
        if name in reserved and _BY_NAME[name] is not metric:
            raise ValueError(f"cannot overwrite built-in metric {name!r}")
        if not overwrite and _BY_NAME.get(name) not in (None, metric):
            raise ValueError(
                f"metric name {name!r} is already registered; pass "
                "overwrite=True to replace it"
            )
    for name in names:
        _BY_NAME[name] = metric
    return metric


def unregister_metric(name: str) -> None:
    """Remove a custom metric's registration (both of its names).

    The four paper metrics cannot be unregistered.
    """
    metric = _BY_NAME.get(name)
    if metric is None:
        return
    if metric in ALL_METRICS:
        raise ValueError(f"cannot unregister built-in metric {name!r}")
    for alias in (metric.name, metric.paper_name):
        if _BY_NAME.get(alias) is metric:
            del _BY_NAME[alias]
