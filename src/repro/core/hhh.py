"""Hierarchical heavy hitters — the baseline the paper contrasts with.

Section 7 ("Clustering algorithms") notes that critical-cluster
detection is *conceptually similar* to hierarchical heavy hitters
(HHH, Zhang et al., IMC 2004) but differs in a key way: HHH finds
clusters whose *volume* (here, problem-session count) remains above a
threshold after discounting descendants already reported, whereas the
critical-cluster algorithm attributes problems to one specific cluster
via the phase-transition test.

This module implements the classic bottom-up HHH detector over the same
per-epoch aggregates so the ablation bench (`abl-hhh`) can compare both
detectors against planted ground-truth events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.aggregation import EpochAggregate
from repro.core.attributes import popcount
from repro.core.clusters import ClusterKey


@dataclass(frozen=True)
class HHHConfig:
    """Threshold for HHH detection.

    ``phi`` is the heavy-hitter fraction: a cluster is reported when its
    *discounted* problem-session count is at least ``phi *
    total_problem_sessions`` of the epoch.
    """

    phi: float = 0.02

    def __post_init__(self) -> None:
        if not 0 < self.phi <= 1:
            raise ValueError("phi must be in (0, 1]")


@dataclass(frozen=True)
class HeavyHitter:
    """One reported HHH cluster."""

    key: ClusterKey
    discounted_problems: float
    raw_problems: int


def find_hierarchical_heavy_hitters(
    agg: EpochAggregate, config: HHHConfig | None = None
) -> list[HeavyHitter]:
    """Bottom-up HHH over one epoch's problem-session counts.

    Processes masks from the leaf level upward. For each cluster, the
    discounted count subtracts the raw problem counts of all *reported*
    descendants (each descendant discounted once via leaf-level
    bookkeeping: a leaf's problems are claimed by the deepest reported
    cluster containing it).
    """
    config = config or HHHConfig()
    total = agg.total_problems
    if total == 0:
        return []
    threshold = config.phi * total

    codec = agg.codec
    full = codec.full_mask
    field_masks = codec.field_masks()
    leaf = agg.leaf
    # Unclaimed problem mass per leaf; claimed mass is removed as soon
    # as a descendant cluster is reported.
    unclaimed = leaf.problems.astype(np.float64).copy()

    hitters: list[HeavyHitter] = []
    masks_by_depth = sorted(range(1, full + 1), key=popcount, reverse=True)
    current_depth = None
    pending_claims: list[np.ndarray] = []

    def apply_claims() -> None:
        for rows in pending_claims:
            unclaimed[rows] = 0.0
        pending_claims.clear()

    for m in masks_by_depth:
        depth = popcount(m)
        if depth != current_depth:
            # Entering a new (shallower) level: descendants reported at
            # deeper levels now discount their leaves.
            apply_claims()
            current_depth = depth
        mask_agg = agg.per_mask[m]
        proj = leaf.keys & field_masks[m] if m != full else leaf.keys
        idx = np.searchsorted(mask_agg.keys, proj)
        discounted = np.zeros(mask_agg.keys.size, dtype=np.float64)
        np.add.at(discounted, idx, unclaimed)
        hits = np.nonzero(discounted >= threshold)[0]
        for j in hits:
            key = agg.decode(m, int(mask_agg.keys[j]))
            hitters.append(
                HeavyHitter(
                    key=key,
                    discounted_problems=float(discounted[j]),
                    raw_problems=int(mask_agg.problems[j]),
                )
            )
            pending_claims.append(np.nonzero(idx == j)[0])
    apply_claims()
    return hitters
