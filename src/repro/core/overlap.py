"""Cross-metric overlap of critical clusters (paper Table 2).

The paper asks whether the *same* ISPs/CDNs/Sites cause problems across
quality metrics, and answers with the Jaccard similarity of the top-100
critical clusters (ranked by total attributed problem sessions) between
every metric pair — finding at most ~23% overlap.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Iterable, Mapping

from repro.core.pipeline import MetricAnalysis


def jaccard_similarity(a: Iterable[Hashable], b: Iterable[Hashable]) -> float:
    """``|A ∩ B| / |A ∪ B|`` — 0 when both sets are empty."""
    set_a, set_b = set(a), set(b)
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def top_critical_clusters(
    analysis: MetricAnalysis, k: int = 100
) -> list[Hashable]:
    """Top-``k`` critical identities by total attributed problem sessions."""
    if k < 1:
        raise ValueError("k must be >= 1")
    totals = analysis.critical_attribution_totals()
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    return [key for key, _ in ranked[:k]]


def top_k_critical_overlap(
    analyses: Mapping[str, MetricAnalysis], k: int = 100
) -> dict[tuple[str, str], float]:
    """Pairwise Jaccard of top-``k`` critical clusters across metrics."""
    tops = {name: top_critical_clusters(a, k) for name, a in analyses.items()}
    return {
        (m1, m2): jaccard_similarity(tops[m1], tops[m2])
        for m1, m2 in combinations(analyses.keys(), 2)
    }
