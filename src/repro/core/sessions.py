"""Session records and the columnar session store.

The unit of the paper's dataset is a *video session*: one user viewing
one video, annotated with seven attributes and four quality
measurements (Section 2). Two representations are provided:

* :class:`Session` — a plain record, convenient for construction and
  row-oriented IO.
* :class:`SessionTable` — a columnar store (numpy arrays + per-attribute
  vocabularies) that the analysis pipeline operates on. Attribute
  values are integer-coded; the codes of one session pack into a single
  ``int64`` so per-epoch aggregation can run as vectorised passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.attributes import DEFAULT_SCHEMA, AttributeSchema


@dataclass(frozen=True, slots=True)
class Session:
    """One video viewing session.

    ``attrs`` maps attribute name to value label, e.g.
    ``{"asn": "AS7922", "cdn": "cdn_akamai", ...}``. Every attribute of
    the schema must be present.

    Quality fields follow the paper's Section 2 definitions:

    * ``start_time`` — session start, seconds since trace origin.
    * ``duration_s`` — total session duration ``T``.
    * ``buffering_s`` — seconds spent rebuffering midstream (``B``);
      buffering ratio is ``B/T``.
    * ``join_time_s`` — play-button-to-first-frame delay; ``nan`` for
      sessions that failed to join.
    * ``bitrate_kbps`` — time-weighted average playback bitrate; ``nan``
      for sessions that failed to join.
    * ``join_failed`` — True if no content was ever played.
    """

    attrs: Mapping[str, str]
    start_time: float
    duration_s: float
    buffering_s: float
    join_time_s: float
    bitrate_kbps: float
    join_failed: bool

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError(f"negative duration {self.duration_s}")
        if self.buffering_s < 0:
            raise ValueError(f"negative buffering time {self.buffering_s}")
        if self.duration_s > 0 and self.buffering_s > self.duration_s:
            raise ValueError(
                f"buffering {self.buffering_s}s exceeds duration {self.duration_s}s"
            )

    @property
    def buffering_ratio(self) -> float:
        """Fraction of the session spent rebuffering (0 if zero-length)."""
        if self.duration_s <= 0:
            return 0.0
        return self.buffering_s / self.duration_s


#: Quality-measurement columns, in storage order (codes is separate
#: because it is two-dimensional).
METRIC_COLUMNS = (
    "start_time",
    "duration_s",
    "buffering_s",
    "join_time_s",
    "bitrate_kbps",
    "join_failed",
)


def _grow_capacity(needed: int) -> int:
    """Next power-of-two capacity covering ``needed`` rows."""
    cap = 8
    while cap < needed:
        cap <<= 1
    return cap


def grow_append(
    buffers: dict, key: "Hashable", current: np.ndarray, part: np.ndarray
) -> np.ndarray:
    """Append ``part`` behind ``current`` with an amortized doubling buffer.

    ``buffers[key]`` holds the over-allocated backing array; the return
    value is the exact-length view to publish. When ``current`` already
    fronts the buffer (the steady-state append pattern) only ``part``
    is copied; when it does not — first append, dtype change, or the
    caller rewrote the prefix (e.g. a leaf-id remap) — the prefix is
    (re)copied into the buffer. Works for read-only inputs (shm or
    mmap-backed views): the buffer is always freshly owned storage.
    """
    n, m = current.shape[0], part.shape[0]
    buf = buffers.get(key)
    if (
        buf is None
        or buf.shape[0] < n + m
        or buf.dtype != current.dtype
        or buf.shape[1:] != current.shape[1:]
    ):
        buf = np.empty(
            (_grow_capacity(n + m),) + current.shape[1:], dtype=current.dtype
        )
        buffers[key] = buf
        buf[:n] = current
    elif current.base is not buf:
        buf[:n] = current
    buf[n : n + m] = part
    return buf[: n + m]


class SessionTable:
    """Columnar store of sessions.

    Attributes are stored as ``int32`` codes into per-attribute
    vocabularies (code -> label). Quality measurements are stored as
    flat numpy columns. The table is append-only: rows arrive through
    the constructors or :meth:`extend`; existing rows and codes never
    change, so analysis code may treat any prefix it has seen as
    immutable.

    :meth:`extend` appends rows in place with grow-by-doubling backing
    buffers: the public column attributes are exact-length views of
    over-allocated arrays, so N single-chunk appends cost O(total
    rows) copying overall, not O(N * total rows).
    """

    __slots__ = (
        "schema",
        "vocabs",
        "codes",
        "start_time",
        "duration_s",
        "buffering_s",
        "join_time_s",
        "bitrate_kbps",
        "join_failed",
        "_decoders",
        "_encoders",
        "_buffers",
    )

    def __init__(
        self,
        schema: AttributeSchema,
        vocabs: Sequence[Sequence[str]],
        codes: np.ndarray,
        start_time: np.ndarray,
        duration_s: np.ndarray,
        buffering_s: np.ndarray,
        join_time_s: np.ndarray,
        bitrate_kbps: np.ndarray,
        join_failed: np.ndarray,
    ) -> None:
        n_attrs = len(schema)
        if len(vocabs) != n_attrs:
            raise ValueError(f"need {n_attrs} vocabularies, got {len(vocabs)}")
        codes = np.asarray(codes, dtype=np.int32)
        if codes.ndim != 2 or codes.shape[1] != n_attrs:
            raise ValueError(f"codes must be (n, {n_attrs}), got {codes.shape}")
        n = codes.shape[0]
        columns = {
            "start_time": np.asarray(start_time, dtype=np.float64),
            "duration_s": np.asarray(duration_s, dtype=np.float64),
            "buffering_s": np.asarray(buffering_s, dtype=np.float64),
            "join_time_s": np.asarray(join_time_s, dtype=np.float64),
            "bitrate_kbps": np.asarray(bitrate_kbps, dtype=np.float64),
            "join_failed": np.asarray(join_failed, dtype=bool),
        }
        for name, col in columns.items():
            if col.shape != (n,):
                raise ValueError(f"column {name} has shape {col.shape}, expected ({n},)")
        for i, vocab in enumerate(vocabs):
            if n and codes[:, i].size and codes[:, i].max(initial=-1) >= len(vocab):
                raise ValueError(
                    f"attribute {schema.names[i]!r} has codes beyond vocab size {len(vocab)}"
                )
        self.schema = schema
        self.vocabs = [list(v) for v in vocabs]
        self.codes = codes
        self.start_time = columns["start_time"]
        self.duration_s = columns["duration_s"]
        self.buffering_s = columns["buffering_s"]
        self.join_time_s = columns["join_time_s"]
        self.bitrate_kbps = columns["bitrate_kbps"]
        self.join_failed = columns["join_failed"]
        self._decoders = None
        self._encoders: list[dict[str, int]] | None = None
        self._buffers: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sessions(
        cls,
        sessions: Iterable[Session],
        schema: AttributeSchema = DEFAULT_SCHEMA,
    ) -> "SessionTable":
        """Build a table from row records, deriving vocabularies."""
        sessions = list(sessions)
        n = len(sessions)
        n_attrs = len(schema)
        vocabs: list[list[str]] = [[] for _ in range(n_attrs)]
        encoders: list[dict[str, int]] = [{} for _ in range(n_attrs)]
        codes = np.empty((n, n_attrs), dtype=np.int32)
        for row, s in enumerate(sessions):
            for i, name in enumerate(schema.names):
                try:
                    label = s.attrs[name]
                except KeyError:
                    raise ValueError(
                        f"session {row} missing attribute {name!r}"
                    ) from None
                code = encoders[i].get(label)
                if code is None:
                    code = len(vocabs[i])
                    encoders[i][label] = code
                    vocabs[i].append(label)
                codes[row, i] = code
        return cls(
            schema=schema,
            vocabs=vocabs,
            codes=codes,
            start_time=np.array([s.start_time for s in sessions]),
            duration_s=np.array([s.duration_s for s in sessions]),
            buffering_s=np.array([s.buffering_s for s in sessions]),
            join_time_s=np.array([s.join_time_s for s in sessions]),
            bitrate_kbps=np.array([s.bitrate_kbps for s in sessions]),
            join_failed=np.array([s.join_failed for s in sessions], dtype=bool),
        )

    @classmethod
    def empty(cls, schema: AttributeSchema = DEFAULT_SCHEMA) -> "SessionTable":
        """An empty table with empty vocabularies."""
        n_attrs = len(schema)
        zero = np.zeros(0)
        return cls(
            schema=schema,
            vocabs=[[] for _ in range(n_attrs)],
            codes=np.zeros((0, n_attrs), dtype=np.int32),
            start_time=zero,
            duration_s=zero,
            buffering_s=zero,
            join_time_s=zero,
            bitrate_kbps=zero,
            join_failed=np.zeros(0, dtype=bool),
        )

    @classmethod
    def concat(cls, tables: Sequence["SessionTable"]) -> "SessionTable":
        """Concatenate tables sharing a schema, merging vocabularies."""
        if not tables:
            raise ValueError("need at least one table")
        schema = tables[0].schema
        for t in tables[1:]:
            if t.schema.names != schema.names:
                raise ValueError("cannot concat tables with different schemas")
        n_attrs = len(schema)
        vocabs: list[list[str]] = [[] for _ in range(n_attrs)]
        encoders: list[dict[str, int]] = [{} for _ in range(n_attrs)]
        recoded = []
        for t in tables:
            remap = np.empty((n_attrs,), dtype=object)
            new_codes = t.codes.copy()
            for i in range(n_attrs):
                mapping = np.empty(max(len(t.vocabs[i]), 1), dtype=np.int32)
                for old_code, label in enumerate(t.vocabs[i]):
                    code = encoders[i].get(label)
                    if code is None:
                        code = len(vocabs[i])
                        encoders[i][label] = code
                        vocabs[i].append(label)
                    mapping[old_code] = code
                if len(t.vocabs[i]):
                    new_codes[:, i] = mapping[t.codes[:, i]]
                remap[i] = mapping
            recoded.append(new_codes)
        return cls(
            schema=schema,
            vocabs=vocabs,
            codes=np.concatenate(recoded, axis=0) if recoded else tables[0].codes,
            start_time=np.concatenate([t.start_time for t in tables]),
            duration_s=np.concatenate([t.duration_s for t in tables]),
            buffering_s=np.concatenate([t.buffering_s for t in tables]),
            join_time_s=np.concatenate([t.join_time_s for t in tables]),
            bitrate_kbps=np.concatenate([t.bitrate_kbps for t in tables]),
            join_failed=np.concatenate([t.join_failed for t in tables]),
        )

    # ------------------------------------------------------------------
    # In-place append
    # ------------------------------------------------------------------
    def merge_codes(self, chunk: "SessionTable") -> np.ndarray:
        """Recode a chunk's attribute codes into this table's vocabularies.

        New labels are appended to this table's vocabularies in the
        chunk's code order (first appearance), exactly as
        :meth:`concat` would assign them — so ``extend`` stays
        bit-identical to building the concatenated table from scratch.
        Returns the chunk's ``(n, n_attrs)`` code matrix in this
        table's code space.
        """
        if chunk.schema.names != self.schema.names:
            raise ValueError(
                f"cannot merge schema {chunk.schema.names} into "
                f"{self.schema.names}"
            )
        if self._encoders is None:
            self._encoders = [
                {lab: code for code, lab in enumerate(vocab)}
                for vocab in self.vocabs
            ]
        new_codes = chunk.codes.copy()
        for i in range(self.n_attrs):
            vocab, encoder = self.vocabs[i], self._encoders[i]
            mapping = np.empty(max(len(chunk.vocabs[i]), 1), dtype=np.int32)
            for old_code, label in enumerate(chunk.vocabs[i]):
                code = encoder.get(label)
                if code is None:
                    code = len(vocab)
                    encoder[label] = code
                    vocab.append(label)
                mapping[old_code] = code
            if len(chunk.vocabs[i]):
                new_codes[:, i] = mapping[chunk.codes[:, i]]
        return new_codes

    def _append_column(self, name: str, current: np.ndarray, part: np.ndarray) -> np.ndarray:
        """Append ``part`` behind ``current`` using a doubling buffer."""
        if self._buffers is None:
            self._buffers = {}
        return grow_append(self._buffers, name, current, part)

    def extend(self, chunk: "SessionTable | Iterable[Session]") -> np.ndarray:
        """Append a chunk of sessions in place; returns the new row indices.

        Vocabularies are merged exactly as :meth:`concat` merges them,
        so after ``t.extend(chunk)`` the table equals
        ``SessionTable.concat([t_before, chunk])`` bit for bit (codes,
        vocabularies and columns). Column storage grows by doubling, so
        repeated epoch-sized appends are amortized O(appended rows).

        Existing rows never move and codes never change — readers
        holding row indices (epoch splits, a
        :class:`~repro.core.index.TraceClusterIndex`) stay valid, but
        column *array objects* are replaced; always re-read columns
        through the table attribute after an extend.
        """
        if not isinstance(chunk, SessionTable):
            chunk = SessionTable.from_sessions(chunk, schema=self.schema)
        old_n = len(self)
        new_codes = self.merge_codes(chunk)
        self.codes = self._append_column("codes", self.codes, new_codes)
        for name in METRIC_COLUMNS:
            setattr(
                self,
                name,
                self._append_column(name, getattr(self, name), getattr(chunk, name)),
            )
        return np.arange(old_n, old_n + len(chunk))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.codes.shape[0]

    @property
    def n_attrs(self) -> int:
        return len(self.schema)

    @property
    def buffering_ratio(self) -> np.ndarray:
        """Per-session buffering ratio ``B/T`` (0 where duration is 0)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(
                self.duration_s > 0, self.buffering_s / self.duration_s, 0.0
            )
        return ratio

    def select(self, mask: np.ndarray) -> "SessionTable":
        """Row subset by boolean mask or index array (vocabs shared)."""
        return SessionTable(
            schema=self.schema,
            vocabs=self.vocabs,
            codes=self.codes[mask],
            start_time=self.start_time[mask],
            duration_s=self.duration_s[mask],
            buffering_s=self.buffering_s[mask],
            join_time_s=self.join_time_s[mask],
            bitrate_kbps=self.bitrate_kbps[mask],
            join_failed=self.join_failed[mask],
        )

    def decode(self, attr_index: int, code: int) -> str:
        """Label for ``code`` of the attribute at ``attr_index``."""
        return self.vocabs[attr_index][code]

    def code_of(self, name: str, label: str) -> int | None:
        """Integer code of ``label`` for attribute ``name``.

        Returns ``None`` when the label is absent from the vocabulary.
        Reverse maps are built lazily and cached (vocabularies are
        immutable once analysis starts), replacing the O(V)
        ``list.index`` scans query layers used to pay per lookup.
        """
        if self._encoders is None:
            self._encoders = [
                {lab: code for code, lab in enumerate(vocab)}
                for vocab in self.vocabs
            ]
        return self._encoders[self.schema.index(name)].get(label)

    def attr_labels(self, name: str) -> list[str]:
        """Vocabulary (code-ordered labels) of attribute ``name``."""
        return list(self.vocabs[self.schema.index(name)])

    def rows(self) -> Iterator[Session]:
        """Iterate row records (slow; intended for IO and tests)."""
        for i in range(len(self)):
            attrs = {
                name: self.vocabs[j][self.codes[i, j]]
                for j, name in enumerate(self.schema.names)
            }
            yield Session(
                attrs=attrs,
                start_time=float(self.start_time[i]),
                duration_s=float(self.duration_s[i]),
                buffering_s=float(self.buffering_s[i]),
                join_time_s=float(self.join_time_s[i]),
                bitrate_kbps=float(self.bitrate_kbps[i]),
                join_failed=bool(self.join_failed[i]),
            )

    # ------------------------------------------------------------------
    # Key packing — the representation aggregation operates on
    # ------------------------------------------------------------------
    def bit_widths(self) -> np.ndarray:
        """Bits needed per attribute to encode its vocabulary."""
        widths = np.empty(self.n_attrs, dtype=np.int64)
        for i, vocab in enumerate(self.vocabs):
            size = max(len(vocab), 1)
            widths[i] = max(int(size - 1).bit_length(), 1)
        if widths.sum() > 62:
            raise ValueError(
                f"attribute vocabularies need {widths.sum()} bits; packing "
                "supports at most 62"
            )
        return widths

    def bit_offsets(self) -> np.ndarray:
        """Bit offset of each attribute field within a packed key."""
        widths = self.bit_widths()
        offsets = np.zeros_like(widths)
        offsets[1:] = np.cumsum(widths)[:-1]
        return offsets

    def packed_keys(self, rows: np.ndarray | slice | None = None) -> np.ndarray:
        """Pack each session's attribute codes into one ``int64``.

        The packed key concatenates per-attribute code fields; masking a
        subset of attributes is a bitwise AND with a field mask, which is
        what makes per-mask aggregation a vectorised operation.
        """
        offsets = self.bit_offsets()
        codes = self.codes if rows is None else self.codes[rows]
        packed = np.zeros(codes.shape[0], dtype=np.int64)
        for i in range(self.n_attrs):
            packed |= codes[:, i].astype(np.int64) << int(offsets[i])
        return packed

    def field_masks(self) -> np.ndarray:
        """For every attribute-subset mask, the packed-key AND mask.

        Entry ``m`` zeroes the fields of attributes *not* in subset
        ``m``, so ``packed & field_masks[m]`` is the packed key of the
        session's projection onto ``m``.
        """
        widths = self.bit_widths()
        offsets = self.bit_offsets()
        per_attr = np.array(
            [((1 << int(widths[i])) - 1) << int(offsets[i]) for i in range(self.n_attrs)],
            dtype=np.int64,
        )
        n_masks = 1 << self.n_attrs
        out = np.zeros(n_masks, dtype=np.int64)
        for m in range(1, n_masks):
            acc = np.int64(0)
            for i in range(self.n_attrs):
                if m & (1 << i):
                    acc |= per_attr[i]
            out[m] = acc
        return out

    def unpack_key(self, mask: int, packed: int) -> tuple[tuple[str, str], ...]:
        """Decode a ``(mask, packed)`` cluster id to (attr, label) pairs."""
        widths = self.bit_widths()
        offsets = self.bit_offsets()
        pairs = []
        for i, name in enumerate(self.schema.names):
            if mask & (1 << i):
                code = (packed >> int(offsets[i])) & ((1 << int(widths[i])) - 1)
                pairs.append((name, self.vocabs[i][int(code)]))
        return tuple(pairs)
