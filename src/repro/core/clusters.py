"""Cluster keys and the attribute-combination lattice.

A *cluster* (paper Section 3.1) is the set of sessions sharing specific
values on a subset of attributes, e.g. ``ASN=ASN1, CDN=CDN1``. The set
of all clusters for a fixed leaf combination forms a subset lattice;
across combinations the clusters form a DAG with natural parent/child
relationships (paper Figure 4): ``C1`` is a parent of ``C2`` when its
attribute set is a strict subset of ``C2``'s and they agree on shared
values.

:class:`ClusterKey` is the human-facing identity of a cluster — a
mapping of attribute names to value labels — stable across epochs and
traces. The aggregation layer uses a packed integer representation
internally (:mod:`repro.core.aggregation`); keys decode to
``ClusterKey`` for reporting and cross-epoch identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.core.attributes import (
    AttributeSchema,
    DEFAULT_SCHEMA,
    iter_submasks,
    iter_supermasks,
    popcount,
)


@dataclass(frozen=True)
class ClusterKey:
    """Identity of a cluster: sorted (attribute, value) pairs.

    Pairs are stored in schema order so equality and hashing are
    canonical. The empty key is the DAG root (all sessions).
    """

    pairs: tuple[tuple[str, str], ...]

    @classmethod
    def from_mapping(
        cls, mapping: Mapping[str, str], schema: AttributeSchema = DEFAULT_SCHEMA
    ) -> "ClusterKey":
        ordered = tuple(
            (name, mapping[name]) for name in schema.names if name in mapping
        )
        if len(ordered) != len(mapping):
            unknown = set(mapping) - set(schema.names)
            raise KeyError(f"attributes not in schema: {sorted(unknown)}")
        return cls(ordered)

    @classmethod
    def root(cls) -> "ClusterKey":
        return cls(())

    def __post_init__(self) -> None:
        names = [name for name, _ in self.pairs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attributes in key: {names}")

    def as_dict(self) -> dict[str, str]:
        return dict(self.pairs)

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attribute names this key constrains."""
        return tuple(name for name, _ in self.pairs)

    @property
    def depth(self) -> int:
        """Number of constrained attributes (0 for the root)."""
        return len(self.pairs)

    def mask(self, schema: AttributeSchema = DEFAULT_SCHEMA) -> int:
        """Bitmask of constrained attribute positions under ``schema``."""
        return schema.mask_of(self.attributes)

    def value_of(self, attribute: str) -> str:
        for name, value in self.pairs:
            if name == attribute:
                return value
        raise KeyError(f"key does not constrain {attribute!r}")

    def is_ancestor_of(self, other: "ClusterKey") -> bool:
        """True if ``self`` is a strict ancestor (subset, agreeing values)."""
        if len(self.pairs) >= len(other.pairs):
            return False
        other_map = other.as_dict()
        return all(other_map.get(n) == v for n, v in self.pairs)

    def is_descendant_of(self, other: "ClusterKey") -> bool:
        return other.is_ancestor_of(self)

    def project(self, attributes: Iterable[str]) -> "ClusterKey":
        """Sub-key keeping only the given attributes."""
        keep = set(attributes)
        return ClusterKey(tuple(p for p in self.pairs if p[0] in keep))

    def parents(self) -> Iterator["ClusterKey"]:
        """Immediate parents: drop one constrained attribute."""
        for i in range(len(self.pairs)):
            yield ClusterKey(self.pairs[:i] + self.pairs[i + 1 :])

    def ancestors(self) -> Iterator["ClusterKey"]:
        """All strict ancestors (excluding the root)."""
        n = len(self.pairs)
        for sub in iter_submasks((1 << n) - 1):
            yield ClusterKey(
                tuple(self.pairs[i] for i in range(n) if sub & (1 << i))
            )

    def label(self) -> str:
        """Compact human-readable form, e.g. ``[cdn=cdn_a, asn=AS1]``."""
        if not self.pairs:
            return "[root]"
        return "[" + ", ".join(f"{n}={v}" for n, v in self.pairs) + "]"

    def paper_signature(self, schema: AttributeSchema = DEFAULT_SCHEMA) -> str:
        """The paper's Figure 10 style signature with ``*`` wildcards.

        Example: ``[Site, *, ASN, *, *, *, *]`` — names the constrained
        attribute *types*, not the values.
        """
        constrained = set(self.attributes)
        parts = [
            name if name in constrained else "*" for name in schema.names
        ]
        return "[" + ", ".join(parts) + "]"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label()


def attribute_signature(key: ClusterKey) -> tuple[str, ...]:
    """The attribute *types* a key constrains — Figure 10's grouping."""
    return key.attributes


class ClusterLattice:
    """Subset lattice over attribute positions of a schema.

    Exposes mask-level structure (submask/supermask enumeration, levels)
    and can materialise the cluster DAG for a concrete set of keys as a
    :class:`networkx.DiGraph` (edges parent -> child), mirroring the
    paper's Figure 4 visualisation.
    """

    def __init__(self, schema: AttributeSchema = DEFAULT_SCHEMA) -> None:
        self.schema = schema
        self.n_attrs = len(schema)
        self.full_mask = schema.full_mask

    def masks(self) -> Iterator[int]:
        """All non-empty attribute-subset masks."""
        return iter(range(1, self.full_mask + 1))

    def masks_by_depth(self) -> list[list[int]]:
        """Masks grouped by popcount; index 0 holds the root mask."""
        levels: list[list[int]] = [[] for _ in range(self.n_attrs + 1)]
        for m in range(self.full_mask + 1):
            levels[popcount(m)].append(m)
        return levels

    def parents_of_mask(self, mask: int) -> Iterator[int]:
        """Immediate parent masks (one attribute removed)."""
        self.schema.validate_mask(mask)
        for i in range(self.n_attrs):
            bit = 1 << i
            if mask & bit:
                yield mask & ~bit

    def children_of_mask(self, mask: int) -> Iterator[int]:
        """Immediate child masks (one attribute added)."""
        self.schema.validate_mask(mask)
        for i in range(self.n_attrs):
            bit = 1 << i
            if not mask & bit:
                yield mask | bit

    def ancestors_of_mask(self, mask: int) -> Iterator[int]:
        return iter_submasks(mask)

    def descendants_of_mask(self, mask: int) -> Iterator[int]:
        return iter_supermasks(mask, self.full_mask)

    def interval_masks(self, lower: int, upper: int) -> Iterator[int]:
        """Masks ``m`` with ``lower ⊆ m ⊆ upper`` (inclusive)."""
        if lower & ~upper:
            raise ValueError(f"{lower:#x} is not a subset of {upper:#x}")
        free = upper & ~lower
        sub = free
        while True:
            yield lower | sub
            if sub == 0:
                break
            sub = (sub - 1) & free

    def build_dag(self, keys: Iterable[ClusterKey]) -> nx.DiGraph:
        """Materialise the parent/child DAG over concrete cluster keys.

        Nodes are :class:`ClusterKey`; an edge runs from each key to
        every present key directly below it (one more constrained
        attribute, agreeing values). A root node is included and linked
        to the shallowest present keys that have no present parent.
        """
        key_set = set(keys)
        graph = nx.DiGraph()
        root = ClusterKey.root()
        graph.add_node(root)
        for key in key_set:
            graph.add_node(key)
        for key in key_set:
            has_parent = False
            for parent in key.parents():
                if parent.depth == 0:
                    continue
                if parent in key_set:
                    graph.add_edge(parent, key)
                    has_parent = True
            if not has_parent and key.depth > 0:
                graph.add_edge(root, key)
        return graph
