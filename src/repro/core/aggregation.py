"""Vectorised per-epoch aggregation of session/problem counts.

For one epoch and one quality metric, every cluster (attribute-subset
mask + concrete values) needs a session count and a problem-session
count. Doing this per session in Python would be hopeless at trace
scale; instead:

1. Pack each session's attribute codes into one ``int64``
   (:class:`KeyCodec`).
2. Reduce sessions to distinct *leaf* combinations via ``np.unique``
   (typically thousands of leaves for tens of thousands of sessions).
3. For each of the ``2^n - 1`` non-empty attribute masks, project leaf
   keys with a bitwise AND and re-aggregate with
   ``np.unique``/``np.bincount``.

The result, :class:`EpochAggregate`, answers ``stats(mask, packed)``
lookups in O(log L) and exposes the per-mask arrays the problem- and
critical-cluster detectors consume directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.attributes import AttributeSchema
from repro.core.clusters import ClusterKey
from repro.core.metrics import MetricThresholds, QualityMetric
from repro.core.sessions import SessionTable


@dataclass(frozen=True)
class ClusterStats:
    """Session and problem-session counts for one cluster."""

    sessions: int
    problems: int

    def __post_init__(self) -> None:
        if self.sessions < 0 or self.problems < 0:
            raise ValueError("counts must be non-negative")
        if self.problems > self.sessions:
            raise ValueError(
                f"problems ({self.problems}) exceed sessions ({self.sessions})"
            )

    @property
    def ratio(self) -> float:
        """Problem ratio — # problem sessions / # sessions (0 if empty)."""
        if self.sessions == 0:
            return 0.0
        return self.problems / self.sessions


class KeyCodec:
    """Packs attribute-code rows into int64 keys and decodes them back.

    The codec snapshots a table's vocabularies, so decoded
    :class:`ClusterKey` identities are stable across epochs of the same
    trace (vocabularies are global to the table).
    """

    __slots__ = ("schema", "vocabs", "widths", "offsets", "_field_masks", "_code_maps")

    def __init__(
        self,
        schema: AttributeSchema,
        vocabs: Sequence[Sequence[str]],
        widths: np.ndarray,
        offsets: np.ndarray,
    ) -> None:
        self.schema = schema
        self.vocabs = vocabs
        self.widths = widths
        self.offsets = offsets
        self._field_masks: np.ndarray | None = None
        self._code_maps: list[dict[str, int]] | None = None

    @classmethod
    def from_table(cls, table: SessionTable) -> "KeyCodec":
        return cls(
            schema=table.schema,
            vocabs=table.vocabs,
            widths=table.bit_widths(),
            offsets=table.bit_offsets(),
        )

    @property
    def n_attrs(self) -> int:
        return len(self.schema)

    @property
    def full_mask(self) -> int:
        return self.schema.full_mask

    def pack(self, codes: np.ndarray) -> np.ndarray:
        """Pack an (n, n_attrs) code matrix into (n,) int64 keys."""
        packed = np.zeros(codes.shape[0], dtype=np.int64)
        for i in range(self.n_attrs):
            packed |= codes[:, i].astype(np.int64) << int(self.offsets[i])
        return packed

    def field_masks(self) -> np.ndarray:
        """AND-masks per attribute-subset mask (see SessionTable)."""
        if self._field_masks is None:
            per_attr = [
                ((1 << int(self.widths[i])) - 1) << int(self.offsets[i])
                for i in range(self.n_attrs)
            ]
            n_masks = 1 << self.n_attrs
            out = np.zeros(n_masks, dtype=np.int64)
            for m in range(1, n_masks):
                acc = 0
                for i in range(self.n_attrs):
                    if m & (1 << i):
                        acc |= per_attr[i]
                out[m] = acc
            self._field_masks = out
        return self._field_masks

    def code_maps(self) -> list[dict[str, int]]:
        """Per-attribute label -> code reverse maps (built once, cached).

        Vocabularies are append-only lists, so looking a label up with
        ``list.index`` costs O(V) per call; lookups on hot paths
        (``stats_of_key`` and the what-if query layers) use these maps
        instead.
        """
        if self._code_maps is None:
            self._code_maps = [
                {label: code for code, label in enumerate(vocab)}
                for vocab in self.vocabs
            ]
        return self._code_maps

    def note_vocab_growth(self) -> None:
        """Invalidate label caches after the shared vocabularies grew.

        ``vocabs`` is shared by reference with the source table, so a
        :meth:`SessionTable.extend` that introduces new labels is
        visible here automatically — but the cached reverse maps must
        be rebuilt. Field masks depend only on bit widths; a width
        change invalidates the codec entirely (the index rebuilds).
        """
        self._code_maps = None

    def encode_key(self, key: ClusterKey) -> tuple[int, int] | None:
        """Encode a :class:`ClusterKey` to its ``(mask, packed)`` pair.

        Returns ``None`` when any label is absent from the codec's
        vocabularies (the cluster cannot exist in this trace).
        """
        maps = self.code_maps()
        mask = 0
        packed = 0
        for name, value in key.pairs:
            i = self.schema.index(name)
            code = maps[i].get(value)
            if code is None:
                return None
            mask |= 1 << i
            packed |= code << int(self.offsets[i])
        return mask, packed

    def decode(self, mask: int, packed: int) -> ClusterKey:
        """Decode a ``(mask, packed)`` pair to a :class:`ClusterKey`."""
        pairs = []
        for i, name in enumerate(self.schema.names):
            if mask & (1 << i):
                code = (int(packed) >> int(self.offsets[i])) & (
                    (1 << int(self.widths[i])) - 1
                )
                pairs.append((name, self.vocabs[i][code]))
        return ClusterKey(tuple(pairs))


class EpochLeafIndex:
    """Shared leaf index for one epoch's rows, reused across metrics.

    Packing the session code matrix and reducing it with ``np.unique``
    is the dominant per-epoch aggregation cost, and it is
    metric-independent: every metric sees the same attribute
    combinations and only weighs them with its own validity and problem
    flags. Building the index once per epoch and restricting it per
    metric (:meth:`restrict`) removes the redundant per-metric packing
    the serial pipeline used to pay (4x with the paper's four metrics).

    ``restrict`` is exact: it returns the same leaf keys/counts as
    packing the metric's valid rows directly, including dropping leaf
    combinations with no valid session.
    """

    __slots__ = ("codec", "n_rows", "leaf_keys", "inverse")

    def __init__(
        self,
        codec: KeyCodec,
        n_rows: int,
        leaf_keys: np.ndarray,
        inverse: np.ndarray,
    ) -> None:
        self.codec = codec
        self.n_rows = n_rows
        self.leaf_keys = leaf_keys
        self.inverse = inverse

    @classmethod
    def build(
        cls,
        table: SessionTable,
        rows: np.ndarray,
        codec: KeyCodec | None = None,
    ) -> "EpochLeafIndex":
        """Pack ``table.codes[rows]`` once and reduce to distinct leaves."""
        codec = codec or KeyCodec.from_table(table)
        packed = codec.pack(table.codes[np.asarray(rows)])
        leaf_keys, inverse = np.unique(packed, return_inverse=True)
        return cls(
            codec=codec,
            n_rows=packed.size,
            leaf_keys=leaf_keys,
            inverse=inverse,
        )

    def restrict(
        self, valid: np.ndarray, problem: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Leaf keys/session counts/problem counts over the valid rows.

        ``valid`` and ``problem`` are boolean arrays aligned with the
        rows the index was built from; leaves with no valid session are
        dropped so the result matches a direct pack of the valid rows.
        """
        valid = np.asarray(valid, dtype=bool)
        if valid.shape != (self.n_rows,):
            raise ValueError(
                f"valid mask shape {valid.shape} != rows {(self.n_rows,)}"
            )
        inv = self.inverse[valid]
        sessions = np.bincount(inv, minlength=self.leaf_keys.size).astype(np.int64)
        problems = np.bincount(
            inv,
            weights=np.asarray(problem, dtype=np.float64)[valid],
            minlength=self.leaf_keys.size,
        ).astype(np.int64)
        keep = sessions > 0
        if keep.all():
            return self.leaf_keys, sessions, problems
        return self.leaf_keys[keep], sessions[keep], problems[keep]


@dataclass
class MaskAggregate:
    """Aggregated counts for all clusters of one attribute mask.

    ``keys`` is sorted ascending; ``sessions[i]``/``problems[i]`` belong
    to ``keys[i]``.
    """

    mask: int
    keys: np.ndarray
    sessions: np.ndarray
    problems: np.ndarray

    def __len__(self) -> int:
        return self.keys.size

    def index_of(self, packed: np.ndarray | int) -> np.ndarray | int:
        """Index of packed key(s) in this aggregate; -1 where absent."""
        scalar = np.isscalar(packed) or np.ndim(packed) == 0
        query = np.atleast_1d(np.asarray(packed, dtype=np.int64))
        pos = np.searchsorted(self.keys, query)
        pos_clipped = np.minimum(pos, max(self.keys.size - 1, 0))
        if self.keys.size:
            found = self.keys[pos_clipped] == query
        else:
            found = np.zeros(query.shape, dtype=bool)
        result = np.where(found, pos_clipped, -1)
        return int(result[0]) if scalar else result

    def stats_of(self, packed: int) -> ClusterStats | None:
        idx = self.index_of(packed)
        if idx < 0:
            return None
        return ClusterStats(int(self.sessions[idx]), int(self.problems[idx]))


class EpochAggregate:
    """All cluster counts for one (epoch, metric) pair.

    ``index`` is set when the aggregate was produced through a
    :class:`~repro.core.index.TraceClusterIndex` — it then holds the
    :class:`~repro.core.index.EpochClusterView` the aggregate came
    from, and downstream detectors reuse the view's precomputed
    leaf/cluster projections instead of per-epoch ``searchsorted``.
    """

    __slots__ = (
        "epoch",
        "metric_name",
        "codec",
        "per_mask",
        "total_sessions",
        "total_problems",
        "index",
    )

    def __init__(
        self,
        epoch: int,
        metric_name: str,
        codec: KeyCodec,
        per_mask: dict[int, MaskAggregate],
        total_sessions: int,
        total_problems: int,
        index=None,
    ) -> None:
        self.epoch = epoch
        self.metric_name = metric_name
        self.codec = codec
        self.per_mask = per_mask
        self.total_sessions = total_sessions
        self.total_problems = total_problems
        self.index = index

    @property
    def global_stats(self) -> ClusterStats:
        """Root-level counts: every valid session in the epoch."""
        return ClusterStats(self.total_sessions, self.total_problems)

    @property
    def global_ratio(self) -> float:
        return self.global_stats.ratio

    @property
    def leaf(self) -> MaskAggregate:
        """The full-mask aggregate — one entry per distinct combination."""
        return self.per_mask[self.codec.full_mask]

    def masks(self) -> Iterator[int]:
        return iter(self.per_mask)

    def stats(self, mask: int, packed: int) -> ClusterStats | None:
        agg = self.per_mask.get(mask)
        if agg is None:
            return None
        return agg.stats_of(packed)

    def stats_of_key(self, key: ClusterKey) -> ClusterStats | None:
        """Lookup by human-facing key (encodes labels to packed form)."""
        encoded = self.codec.encode_key(key)
        if encoded is None:
            return None
        mask, packed = encoded
        if mask == 0:
            return self.global_stats
        return self.stats(mask, packed)

    def decode(self, mask: int, packed: int) -> ClusterKey:
        return self.codec.decode(mask, packed)


def aggregate_epoch(
    table: SessionTable,
    rows: np.ndarray,
    metric: QualityMetric,
    epoch: int = 0,
    thresholds: MetricThresholds | None = None,
    codec: KeyCodec | None = None,
    problem_flags: np.ndarray | None = None,
    leaf_index: EpochLeafIndex | None = None,
    cluster_index=None,
) -> EpochAggregate:
    """Aggregate one epoch's sessions for one metric.

    ``rows`` indexes the epoch's sessions within ``table``. Sessions
    for which the metric is undefined (e.g. join time of a failed join)
    are excluded — the paper studies each metric over its own valid
    population. ``problem_flags``, when given, overrides the metric's
    problem classification for the selected rows (used by what-if
    simulations); it must align with ``rows``.

    ``leaf_index``, when given, must have been built from the same
    ``rows`` (see :class:`EpochLeafIndex`); the expensive pack/unique
    pass is then shared instead of recomputed, with identical results.

    ``cluster_index``, when given, must be a
    :class:`~repro.core.index.TraceClusterIndex` built from the same
    ``table``; aggregation then reduces to bincounts over the index's
    precomputed inverses (see that class for the exact-equivalence
    argument) and ``leaf_index``/``codec`` are ignored.
    """
    if cluster_index is not None:
        return cluster_index.aggregate(
            rows,
            metric,
            epoch=epoch,
            thresholds=thresholds,
            problem_flags=problem_flags,
        )
    if leaf_index is not None:
        codec = leaf_index.codec
    else:
        codec = codec or KeyCodec.from_table(table)
    valid = metric.valid_mask(table)[rows]
    if problem_flags is None:
        problems_all = metric.problem_mask(table, thresholds)[rows]
    else:
        problem_flags = np.asarray(problem_flags, dtype=bool)
        if problem_flags.shape != (len(rows),):
            raise ValueError(
                f"problem_flags shape {problem_flags.shape} != rows {(len(rows),)}"
            )
        problems_all = problem_flags & valid

    if leaf_index is not None:
        leaf_keys, leaf_sessions, leaf_problems = leaf_index.restrict(
            valid, problems_all
        )
    else:
        use = np.asarray(rows)[valid]
        problem = problems_all[valid].astype(np.int64)
        packed = codec.pack(table.codes[use])

        leaf_keys, inverse = np.unique(packed, return_inverse=True)
        leaf_sessions = np.bincount(inverse, minlength=leaf_keys.size).astype(
            np.int64
        )
        leaf_problems = np.bincount(
            inverse, weights=problem, minlength=leaf_keys.size
        ).astype(np.int64)

    field_masks = codec.field_masks()
    per_mask: dict[int, MaskAggregate] = {}
    full = codec.full_mask
    for m in range(1, full + 1):
        if m == full:
            keys, sessions, problems = leaf_keys, leaf_sessions, leaf_problems
        else:
            proj = leaf_keys & field_masks[m]
            keys, inv = np.unique(proj, return_inverse=True)
            sessions = np.bincount(
                inv, weights=leaf_sessions, minlength=keys.size
            ).astype(np.int64)
            problems = np.bincount(
                inv, weights=leaf_problems, minlength=keys.size
            ).astype(np.int64)
        per_mask[m] = MaskAggregate(
            mask=m, keys=keys, sessions=sessions, problems=problems
        )

    return EpochAggregate(
        epoch=epoch,
        metric_name=metric.name,
        codec=codec,
        per_mask=per_mask,
        total_sessions=int(leaf_sessions.sum()),
        total_problems=int(leaf_problems.sum()),
    )
