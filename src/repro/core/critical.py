"""Critical-cluster identification — the phase-transition algorithm.

Section 3.2 of the paper: a *critical cluster* is the minimal attribute
combination that explains problem clusters. It is a cluster ``C`` such
that

* ``C`` is itself a problem cluster,
* every **descendant** of ``C`` in the cluster DAG — every cluster that
  refines ``C`` with more attributes — is a problem cluster, among the
  statistically significant ones (clusters below the session floor are
  culled from the universe per Section 3.1 and are vacuously fine), and
* removing the sessions of ``C`` makes every **ancestor** of ``C``
  cease to be a problem cluster (the paper's Figure 5: ``CDN1`` and
  ``ASN1`` are only problem clusters because of ``CDN1, ASN1``).

"Closest to the root along each root-to-leaf path" becomes minimality
under set inclusion among a leaf's candidate projections; when a leaf
has several minimal candidates (the paper's corner case with correlated
attributes), its problem sessions are attributed in equal shares.

The descendant condition is evaluated **cluster-globally**: a candidate
``ASN1`` is disqualified if any significant ``(ASN1, CDN_k)`` sub-slice
is healthy — that pattern means the real cause lives in a specific
combination, not in the ASN. The implementation runs a bottom-up
dynamic program over the per-mask cluster tables (one boolean per
cluster, failing children folded onto parents with one ``bincount``
per lattice edge), so the cost stays near-linear in the number of
distinct clusters. When the aggregate carries a
:class:`~repro.core.index.TraceClusterIndex`, the child -> parent fold
indices are the index's trace-global cached projections — computed
once, reused across every epoch and metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.aggregation import ClusterStats
from repro.core.attributes import iter_submasks, popcount
from repro.core.clusters import ClusterKey
from repro.core.problems import ProblemClusters


@dataclass
class CriticalAttribution:
    """What one critical cluster is held responsible for in an epoch.

    ``attributed_problems``/``attributed_sessions`` are the problem and
    total session counts of the leaf combinations attributed to this
    critical cluster (fractional when a leaf splits between several
    minimal candidates). ``own_stats`` are the critical cluster's own
    counts — it is itself a problem cluster by construction.
    """

    attributed_problems: float
    attributed_sessions: float
    own_stats: ClusterStats


class CriticalClusters:
    """Critical clusters of one (epoch, metric) pair with attribution."""

    __slots__ = ("problems", "clusters", "unattributed_problem_sessions")

    def __init__(
        self,
        problems: ProblemClusters,
        clusters: dict[tuple[int, int], CriticalAttribution],
        unattributed_problem_sessions: float,
    ) -> None:
        self.problems = problems
        self.clusters = clusters
        self.unattributed_problem_sessions = unattributed_problem_sessions

    @property
    def agg(self):
        return self.problems.agg

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def attributed_problem_sessions(self) -> float:
        return float(
            sum(c.attributed_problems for c in self.clusters.values())
        )

    @property
    def coverage(self) -> float:
        """Fraction of the epoch's problem sessions attributed to some
        critical cluster (paper Table 1, "critical cluster coverage")."""
        total = self.agg.total_problems
        if total == 0:
            return 0.0
        return self.attributed_problem_sessions / total

    def iter_clusters(
        self,
    ) -> Iterator[tuple[int, int, CriticalAttribution]]:
        for (mask, packed), attribution in self.clusters.items():
            yield mask, packed, attribution

    def cluster_keys(self) -> list[ClusterKey]:
        return [self.agg.decode(m, p) for (m, p) in self.clusters]

    def decoded(self) -> dict[ClusterKey, CriticalAttribution]:
        """Attribution keyed by stable, human-facing cluster identity."""
        return {
            self.agg.decode(m, p): attribution
            for (m, p), attribution in self.clusters.items()
        }


def _project_index(agg, fine: int, coarse: int) -> np.ndarray:
    """Positions of mask ``fine``'s clusters within mask ``coarse``'s keys.

    Reuses the trace-global cache when the aggregate carries a
    :class:`~repro.core.index.TraceClusterIndex` (one ``searchsorted``
    per (fine, coarse) pair for the whole trace, all epochs and
    metrics); falls back to a per-epoch ``searchsorted`` otherwise.
    """
    if agg.index is not None:
        return agg.index.project_index(fine, coarse)
    proj = agg.per_mask[fine].keys & agg.codec.field_masks()[coarse]
    return np.searchsorted(agg.per_mask[coarse].keys, proj)


def _descendants_ok(problems: ProblemClusters) -> dict[int, np.ndarray]:
    """Per cluster: itself and every significant descendant is a
    problem cluster (insignificant clusters are vacuously fine)."""
    agg = problems.agg
    codec = agg.codec
    full = codec.full_mask
    min_sessions = problems.min_sessions

    desc_ok: dict[int, np.ndarray] = {}
    for m in sorted(range(1, full + 1), key=popcount, reverse=True):
        mask_agg = agg.per_mask[m]
        acc = problems.is_problem[m] | (mask_agg.sessions < min_sessions)
        for i in range(codec.n_attrs):
            bit = 1 << i
            child_mask = m | bit
            if child_mask == m or child_mask > full:
                continue
            bad = ~desc_ok[child_mask]
            if not bad.any():
                continue
            # Fold failing children onto their parent clusters: a
            # parent is disqualified iff at least one of its children
            # is (equivalent to logical_and.at, but one bincount).
            idx = _project_index(agg, child_mask, m)
            hits = np.bincount(idx[bad], minlength=mask_agg.keys.size)
            acc &= hits == 0
        desc_ok[m] = acc
    return desc_ok


def _removal_ok(
    problems: ProblemClusters, needed: dict[int, np.ndarray]
) -> dict[int, np.ndarray]:
    """Ancestor-removal test for clusters flagged in ``needed``.

    For each candidate cluster ``C`` and each problem-cluster ancestor
    ``A`` of ``C``: after subtracting ``C``'s counts, ``A`` must no
    longer satisfy the problem-cluster predicate.
    """
    agg = problems.agg
    out: dict[int, np.ndarray] = {}
    for m, need in needed.items():
        mask_agg = agg.per_mask[m]
        ok = need.copy()
        for a in iter_submasks(m):
            if not ok.any():
                break
            anc_agg = agg.per_mask[a]
            idx = _project_index(agg, m, a)
            rem_sessions = anc_agg.sessions[idx] - mask_agg.sessions
            rem_problems = anc_agg.problems[idx] - mask_agg.problems
            still_problem = problems.is_problem[a][idx] & problems.counts_are_problem(
                rem_sessions, rem_problems
            )
            ok &= ~still_problem
        out[m] = ok
    return out


def find_critical_clusters(problems: ProblemClusters) -> CriticalClusters:
    """Run the phase-transition search over one epoch's problem clusters."""
    agg = problems.agg
    codec = agg.codec
    full = codec.full_mask
    n_masks = full + 1
    leaf = agg.leaf
    n_leaves = leaf.keys.size

    if n_leaves == 0 or agg.total_problems == 0:
        return CriticalClusters(problems, {}, 0.0)
    if problems.n_clusters == 0:
        # No problem clusters means no candidates: every problem
        # session is unattributed. Skipping the DP entirely is output-
        # identical (the candidate matrix would be all-False).
        return CriticalClusters(problems, {}, float(agg.total_problems))

    # Cluster-level candidacy: problem cluster + all descendants fine.
    desc_ok = _descendants_ok(problems)
    pre: dict[int, np.ndarray] = {}
    for m in range(1, n_masks):
        flags = problems.is_problem[m] & desc_ok[m]
        if flags.any():
            pre[m] = flags
    removal = _removal_ok(problems, pre)

    candidate_at_leaf = np.zeros((n_leaves, n_masks), dtype=bool)
    for m, flags in removal.items():
        candidate_at_leaf[:, m] = flags[problems.leaf_proj_index[m]]

    # Minimality under set inclusion ("closest to the root") per leaf.
    minimal = candidate_at_leaf.copy()
    for m in range(1, n_masks):
        if not minimal[:, m].any():
            continue
        for a in iter_submasks(m):
            minimal[:, m] &= ~candidate_at_leaf[:, a]
            if not minimal[:, m].any():
                break

    # Attribute each leaf's problem sessions to its minimal candidates,
    # splitting equally on ties.
    n_min = minimal[:, 1:].sum(axis=1)
    leaf_problems = leaf.problems.astype(np.float64)
    leaf_sessions = leaf.sessions.astype(np.float64)
    clusters: dict[tuple[int, int], CriticalAttribution] = {}
    share = np.where(n_min > 0, 1.0 / np.maximum(n_min, 1), 0.0)

    for m in range(1, n_masks):
        rows = np.nonzero(minimal[:, m])[0]
        if rows.size == 0:
            continue
        mask_agg = agg.per_mask[m]
        idx = problems.leaf_proj_index[m][rows]
        prob_acc = np.zeros(mask_agg.keys.size, dtype=np.float64)
        sess_acc = np.zeros(mask_agg.keys.size, dtype=np.float64)
        np.add.at(prob_acc, idx, leaf_problems[rows] * share[rows])
        np.add.at(sess_acc, idx, leaf_sessions[rows] * share[rows])
        for j in np.unique(idx):
            key = (m, int(mask_agg.keys[j]))
            clusters[key] = CriticalAttribution(
                attributed_problems=float(prob_acc[j]),
                attributed_sessions=float(sess_acc[j]),
                own_stats=ClusterStats(
                    int(mask_agg.sessions[j]), int(mask_agg.problems[j])
                ),
            )

    attributed = float(leaf_problems[n_min > 0].sum())
    unattributed = float(agg.total_problems) - attributed
    return CriticalClusters(problems, clusters, unattributed)
