"""Critical-cluster identification — the phase-transition algorithm.

Section 3.2 of the paper: a *critical cluster* is the minimal attribute
combination that explains problem clusters. It is a cluster ``C`` such
that

* ``C`` is itself a problem cluster,
* every **descendant** of ``C`` in the cluster DAG — every cluster that
  refines ``C`` with more attributes — is a problem cluster, among the
  statistically significant ones (clusters below the session floor are
  culled from the universe per Section 3.1 and are vacuously fine), and
* removing the sessions of ``C`` makes every **ancestor** of ``C``
  cease to be a problem cluster (the paper's Figure 5: ``CDN1`` and
  ``ASN1`` are only problem clusters because of ``CDN1, ASN1``).

"Closest to the root along each root-to-leaf path" becomes minimality
under set inclusion among a leaf's candidate projections; when a leaf
has several minimal candidates (the paper's corner case with correlated
attributes), its problem sessions are attributed in equal shares.

The descendant condition is evaluated **cluster-globally**: a candidate
``ASN1`` is disqualified if any significant ``(ASN1, CDN_k)`` sub-slice
is healthy — that pattern means the real cause lives in a specific
combination, not in the ASN. The implementation runs a bottom-up
dynamic program over the per-mask cluster tables (one boolean per
cluster, failing children folded onto parents with one ``bincount``
per lattice edge), so the cost stays near-linear in the number of
distinct clusters. When the aggregate carries a
:class:`~repro.core.index.TraceClusterIndex`, the child -> parent fold
indices are the index's trace-global cached projections — computed
once, reused across every epoch and metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.aggregation import ClusterStats
from repro.core.attributes import iter_submasks, popcount
from repro.core.clusters import ClusterKey
from repro.core.problems import ProblemClusters


@dataclass
class CriticalAttribution:
    """What one critical cluster is held responsible for in an epoch.

    ``attributed_problems``/``attributed_sessions`` are the problem and
    total session counts of the leaf combinations attributed to this
    critical cluster (fractional when a leaf splits between several
    minimal candidates). ``own_stats`` are the critical cluster's own
    counts — it is itself a problem cluster by construction.
    """

    attributed_problems: float
    attributed_sessions: float
    own_stats: ClusterStats


class CriticalClusters:
    """Critical clusters of one (epoch, metric) pair with attribution."""

    __slots__ = ("problems", "clusters", "unattributed_problem_sessions")

    def __init__(
        self,
        problems: ProblemClusters,
        clusters: dict[tuple[int, int], CriticalAttribution],
        unattributed_problem_sessions: float,
    ) -> None:
        self.problems = problems
        self.clusters = clusters
        self.unattributed_problem_sessions = unattributed_problem_sessions

    @property
    def agg(self):
        return self.problems.agg

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def attributed_problem_sessions(self) -> float:
        return float(
            sum(c.attributed_problems for c in self.clusters.values())
        )

    @property
    def coverage(self) -> float:
        """Fraction of the epoch's problem sessions attributed to some
        critical cluster (paper Table 1, "critical cluster coverage")."""
        total = self.agg.total_problems
        if total == 0:
            return 0.0
        return self.attributed_problem_sessions / total

    def iter_clusters(
        self,
    ) -> Iterator[tuple[int, int, CriticalAttribution]]:
        for (mask, packed), attribution in self.clusters.items():
            yield mask, packed, attribution

    def cluster_keys(self) -> list[ClusterKey]:
        return [self.agg.decode(m, p) for (m, p) in self.clusters]

    def decoded(self) -> dict[ClusterKey, CriticalAttribution]:
        """Attribution keyed by stable, human-facing cluster identity."""
        return {
            self.agg.decode(m, p): attribution
            for (m, p), attribution in self.clusters.items()
        }


def _project_index(agg, fine: int, coarse: int) -> np.ndarray:
    """Positions of mask ``fine``'s clusters within mask ``coarse``'s keys.

    Reuses the trace-global cache when the aggregate carries a
    :class:`~repro.core.index.TraceClusterIndex` (one ``searchsorted``
    per (fine, coarse) pair for the whole trace, all epochs and
    metrics); falls back to a per-epoch ``searchsorted`` otherwise.
    """
    if agg.index is not None:
        return agg.index.project_index(fine, coarse)
    proj = agg.per_mask[fine].keys & agg.codec.field_masks()[coarse]
    return np.searchsorted(agg.per_mask[coarse].keys, proj)


def _tainted_clusters(problems: ProblemClusters) -> dict[int, np.ndarray]:
    """Per mask: sorted indices of clusters with a *bad* descendant.

    A cluster is bad when it is significant (at/above the session
    floor) but not a problem cluster; a candidate critical cluster must
    have no bad descendant (and not be bad itself — it is a problem
    cluster by construction). Equivalent to the old full-table
    descendants DP (``desc_ok[m] == cluster not in tainted[m]``), but
    runs entirely on the sparse bad set: seeds are the significant
    non-problem clusters of each mask, folded up the lattice one
    attribute at a time through the cached projection indices. Cost
    scales with the number of significant clusters — typically a small
    fraction of the distinct-cluster universe — instead of with the
    universe itself.
    """
    agg = problems.agg
    codec = agg.codec
    full = codec.full_mask

    tainted: dict[int, np.ndarray] = {}
    for m in sorted(range(1, full + 1), key=popcount, reverse=True):
        sig = problems.significant_rows[m]
        parts = []
        if sig.size:
            bad = sig[~problems.is_problem[m][sig]]
            if bad.size:
                parts.append(bad)
        for i in range(codec.n_attrs):
            bit = 1 << i
            child_mask = m | bit
            if child_mask == m or child_mask > full:
                continue
            child_tainted = tainted[child_mask]
            if child_tainted.size:
                parts.append(_project_index(agg, child_mask, m)[child_tainted])
        if parts:
            tainted[m] = np.unique(np.concatenate(parts))
        else:
            tainted[m] = np.empty(0, dtype=np.int64)
    return tainted


def _sorted_exclude(rows: np.ndarray, exclude: np.ndarray) -> np.ndarray:
    """``rows`` minus ``exclude`` (both sorted ascending)."""
    if rows.size == 0 or exclude.size == 0:
        return rows
    pos = np.minimum(np.searchsorted(exclude, rows), exclude.size - 1)
    return rows[exclude[pos] != rows]


def _removal_ok(
    problems: ProblemClusters, needed: dict[int, np.ndarray]
) -> dict[int, np.ndarray]:
    """Ancestor-removal test for the candidate rows in ``needed``.

    For each candidate cluster ``C`` and each problem-cluster ancestor
    ``A`` of ``C``: after subtracting ``C``'s counts, ``A`` must no
    longer satisfy the problem-cluster predicate. Candidates are a
    handful of rows per mask, so everything is gathered down to them
    before the predicate runs.
    """
    agg = problems.agg
    out: dict[int, np.ndarray] = {}
    for m, rows in needed.items():
        mask_agg = agg.per_mask[m]
        ok = np.ones(rows.size, dtype=bool)
        for a in iter_submasks(m):
            live = np.nonzero(ok)[0]
            if live.size == 0:
                break
            anc_agg = agg.per_mask[a]
            idx = _project_index(agg, m, a)[rows[live]]
            rem_sessions = anc_agg.sessions[idx] - mask_agg.sessions[rows[live]]
            rem_problems = anc_agg.problems[idx] - mask_agg.problems[rows[live]]
            still_problem = problems.is_problem[a][idx] & problems.counts_are_problem(
                rem_sessions, rem_problems
            )
            ok[live[still_problem]] = False
        out[m] = rows[ok]
    return out


def find_critical_clusters(problems: ProblemClusters) -> CriticalClusters:
    """Run the phase-transition search over one epoch's problem clusters."""
    agg = problems.agg
    codec = agg.codec
    full = codec.full_mask
    n_masks = full + 1
    leaf = agg.leaf
    n_leaves = leaf.keys.size

    if n_leaves == 0 or agg.total_problems == 0:
        return CriticalClusters(problems, {}, 0.0)
    if problems.n_clusters == 0:
        # No problem clusters means no candidates: every problem
        # session is unattributed. Skipping the DP entirely is output-
        # identical (the candidate matrix would be all-False).
        return CriticalClusters(problems, {}, float(agg.total_problems))

    # Cluster-level candidacy: problem cluster + all descendants fine.
    tainted = _tainted_clusters(problems)
    pre: dict[int, np.ndarray] = {}
    for m in range(1, n_masks):
        rows = _sorted_exclude(problems.problem_rows[m], tainted[m])
        if rows.size:
            pre[m] = rows
    removal = _removal_ok(problems, pre)

    # Per candidate mask, a boolean over leaves: "this leaf's projection
    # onto the mask is a candidate". Only candidate masks get a column —
    # all other masks would be all-False.
    candidate_at_leaf: dict[int, np.ndarray] = {}
    for m, rows in removal.items():
        if rows.size == 0:
            continue
        flags = np.zeros(agg.per_mask[m].keys.size, dtype=bool)
        flags[rows] = True
        candidate_at_leaf[m] = flags[problems.leaf_proj_index[m]]

    # Minimality under set inclusion ("closest to the root") per leaf;
    # only candidate masks can disqualify.
    minimal: dict[int, np.ndarray] = {}
    for m, at_leaf in candidate_at_leaf.items():
        keep = at_leaf.copy()
        for a in iter_submasks(m):
            anc = candidate_at_leaf.get(a)
            if anc is None:
                continue
            keep &= ~anc
            if not keep.any():
                break
        minimal[m] = keep

    # Attribute each leaf's problem sessions to its minimal candidates,
    # splitting equally on ties.
    n_min = np.zeros(n_leaves, dtype=np.int64)
    for keep in minimal.values():
        n_min += keep
    leaf_problems = leaf.problems.astype(np.float64)
    leaf_sessions = leaf.sessions.astype(np.float64)
    clusters: dict[tuple[int, int], CriticalAttribution] = {}
    share = np.where(n_min > 0, 1.0 / np.maximum(n_min, 1), 0.0)

    for m in sorted(minimal):
        rows = np.nonzero(minimal[m])[0]
        if rows.size == 0:
            continue
        mask_agg = agg.per_mask[m]
        idx = problems.leaf_proj_index[m][rows]
        prob_acc = np.zeros(mask_agg.keys.size, dtype=np.float64)
        sess_acc = np.zeros(mask_agg.keys.size, dtype=np.float64)
        np.add.at(prob_acc, idx, leaf_problems[rows] * share[rows])
        np.add.at(sess_acc, idx, leaf_sessions[rows] * share[rows])
        for j in np.unique(idx):
            key = (m, int(mask_agg.keys[j]))
            clusters[key] = CriticalAttribution(
                attributed_problems=float(prob_acc[j]),
                attributed_sessions=float(sess_acc[j]),
                own_stats=ClusterStats(
                    int(mask_agg.sessions[j]), int(mask_agg.problems[j])
                ),
            )

    attributed = float(leaf_problems[n_min > 0].sum())
    unattributed = float(agg.total_problems) - attributed
    return CriticalClusters(problems, clusters, unattributed)
