"""Epoch-range shard store and bounded-memory map/merge analysis.

The paper's dataset is ~300M sessions over two weeks (Section 2); the
monolithic engine assumes the packed table, the
:class:`~repro.core.index.TraceClusterIndex` and the per-epoch row
splits all fit in one process. This module removes that assumption by
partitioning a trace into **epoch-range shards**:

* :func:`build_shard_store` (batch) and :class:`ShardStoreBuilder`
  (streaming chunks, any arrival order) write each shard as an ordinary
  RPROSUB1 substrate snapshot (:mod:`repro.io.snapshot`) plus one
  store-level JSON manifest (``manifest.json``: epoch grid, shard
  boundaries, schema hash, per-shard session counts).
* :func:`analyze_shards` / :func:`sweep_shards` map shards across a
  process pool — each worker mmap-loads only its shard's snapshot
  (the zero-copy load path), so the parent's peak memory stays
  O(largest shard), not O(trace) — then fold the per-shard results
  through the exact **merge layer**:

  - epoch series concatenate by manifest offsets
    (``EpochAnalysis.epoch`` is renumbered ``shard.epoch_lo + local``),
  - :class:`~repro.core.streaks.ClusterTimeline`\\ s union per cluster
    key (:func:`~repro.core.streaks.merge_timelines`),
  - persistence streaks coalesce across shard boundaries — a problem
    run ending at one shard's last epoch and resuming at the next
    shard's first epoch becomes one logical event, exactly as the
    monolithic engine would report it.

Output is bit-identical to ``analyze_trace`` over the unsharded table —
same problem/critical cluster sets, series, prevalence and
boundary-spanning streaks — pinned across shard counts and ragged last
shards by ``tests/property/test_shard_equivalence.py``. Shard
boundaries are analysis-invariant because every per-epoch quantity
(aggregation, ``min_sessions`` resolution, the problem predicate, the
critical DP) depends only on that epoch's sessions, and the merge layer
restores all cross-epoch structure exactly (DESIGN.md §7).
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.core.epoching import (
    DEFAULT_EPOCH_SECONDS,
    EpochGrid,
    split_into_epochs,
)
from repro.core.pipeline import (
    AnalysisConfig,
    PipelineTimings,
    TraceAnalysis,
    assemble_trace_analysis,
    resolve_worker_count,
)
from repro.core.resultcache import ResultCache, shard_result_key
from repro.core.sessions import Session, SessionTable
from repro.core.streaks import merge_timelines
from repro.core.substrate import (
    AnalysisSubstrate,
    StreamingSubstrate,
    analyze_sweep,
)
from repro.io.snapshot import (
    load_substrate,
    save_substrate,
    schema_sha256,
    snapshot_content_sha256,
)
from repro.obs import (
    current_metrics,
    current_tracer,
    peak_rss_bytes,
    record_degradation,
)

#: Store-level manifest file name inside a shard-store directory.
STORE_MANIFEST = "manifest.json"

#: Store manifest format marker and version; version-mismatched stores
#: must be rebuilt, not migrated.
STORE_KIND = "repro-shard-store"
STORE_VERSION = 1


@dataclass(frozen=True)
class ShardInfo:
    """One shard's entry in the store manifest.

    ``epoch_lo``/``epoch_hi`` are store-grid epoch indices bounding the
    shard's half-open range ``[epoch_lo, epoch_hi)``; ranges of
    consecutive shards abut exactly and together cover the whole grid.
    """

    file: str
    epoch_lo: int
    epoch_hi: int
    sessions: int

    def __post_init__(self) -> None:
        if self.epoch_hi <= self.epoch_lo:
            raise ValueError(
                f"shard epoch range must be non-empty, got "
                f"[{self.epoch_lo}, {self.epoch_hi})"
            )

    @property
    def n_epochs(self) -> int:
        return self.epoch_hi - self.epoch_lo


def shard_boundaries(
    n_epochs: int,
    epochs_per_shard: int | None = None,
    n_shards: int | None = None,
) -> list[tuple[int, int]]:
    """Half-open ``(lo, hi)`` epoch ranges covering ``[0, n_epochs)``.

    Exactly one of ``epochs_per_shard`` (fixed-width shards, ragged
    last) and ``n_shards`` (near-equal split; clamped to ``n_epochs``)
    must be given. Boundaries never change analysis results — only the
    unit of out-of-core work.
    """
    if (epochs_per_shard is None) == (n_shards is None):
        raise ValueError(
            "exactly one of epochs_per_shard and n_shards must be given"
        )
    if n_epochs == 0:
        return []
    if epochs_per_shard is not None:
        if epochs_per_shard < 1:
            raise ValueError(
                f"epochs_per_shard must be >= 1, got {epochs_per_shard}"
            )
        edges = list(range(0, n_epochs, int(epochs_per_shard))) + [n_epochs]
    else:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        k = min(int(n_shards), n_epochs)
        # Integer split: strictly increasing because n_epochs / k >= 1.
        edges = [(i * n_epochs) // k for i in range(k + 1)]
    return list(zip(edges[:-1], edges[1:]))


def _shard_filename(i: int) -> str:
    return f"shard-{i:04d}.sub"


class ShardStore:
    """A directory of epoch-range substrate snapshots plus a manifest.

    Open an existing store with :meth:`open`; create one with
    :func:`build_shard_store` or :class:`ShardStoreBuilder`. The store
    is the unit :func:`analyze_shards` maps over — shards load lazily
    (:meth:`load_shard` mmaps one snapshot), never all at once.
    """

    def __init__(
        self,
        path: str | Path,
        grid: EpochGrid,
        schema: AttributeSchema,
        shards: Sequence[ShardInfo],
        total_sessions: int,
        schema_digest: str | None = None,
    ) -> None:
        self.path = Path(path)
        self.grid = grid
        self.schema = schema
        self.shards = tuple(shards)
        self.total_sessions = int(total_sessions)
        self.schema_digest = schema_digest or schema_sha256(schema)
        self._content_sha: dict[int, str] = {}
        self._validate()

    def _validate(self) -> None:
        expected_lo = 0
        for i, shard in enumerate(self.shards):
            if shard.epoch_lo != expected_lo:
                raise ValueError(
                    f"{self.path}: shard {i} starts at epoch "
                    f"{shard.epoch_lo}, expected {expected_lo} (shard "
                    "ranges must abut and cover the grid)"
                )
            expected_lo = shard.epoch_hi
        if expected_lo != self.grid.n_epochs:
            raise ValueError(
                f"{self.path}: shards cover epochs [0, {expected_lo}) but "
                f"the grid has {self.grid.n_epochs} epochs"
            )

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def epoch_seconds(self) -> float:
        return self.grid.epoch_seconds

    def shard_path(self, shard_index: int) -> Path:
        return self.path / self.shards[shard_index].file

    def shard_grid(self, shard_index: int) -> EpochGrid:
        """The epoch grid a shard's local analysis runs on: the store
        grid restricted to the shard's epoch range."""
        shard = self.shards[shard_index]
        return EpochGrid(
            origin=self.grid.epoch_start(shard.epoch_lo),
            epoch_seconds=self.grid.epoch_seconds,
            n_epochs=shard.n_epochs,
        )

    def load_shard(self, shard_index: int, mmap: bool = True) -> AnalysisSubstrate:
        """mmap-load one shard's substrate snapshot (zero-copy views)."""
        return load_substrate(self.shard_path(shard_index), mmap=mmap)

    def shard_content_sha256(self, shard_index: int) -> str:
        """Content address of one shard's array payload.

        A manifest-only read for snapshots stamped at save time
        (:func:`~repro.io.snapshot.snapshot_content_sha256`); memoized
        per open store, since the bytes on disk cannot change under a
        validated store (appends rewrite shard files and the manifest).
        """
        cached = self._content_sha.get(shard_index)
        if cached is None:
            cached = snapshot_content_sha256(self.shard_path(shard_index))
            self._content_sha[shard_index] = cached
        return cached

    def manifest_dict(self) -> dict:
        return {
            "kind": STORE_KIND,
            "version": STORE_VERSION,
            "grid": {
                "origin": self.grid.origin,
                "epoch_seconds": self.grid.epoch_seconds,
                "n_epochs": self.grid.n_epochs,
            },
            "schema": list(self.schema.names),
            "schema_sha256": self.schema_digest,
            "total_sessions": self.total_sessions,
            "shards": [
                {
                    "file": s.file,
                    "epoch_lo": s.epoch_lo,
                    "epoch_hi": s.epoch_hi,
                    "sessions": s.sessions,
                }
                for s in self.shards
            ],
        }

    def write_manifest(self) -> Path:
        """Write ``manifest.json`` atomically (write-then-rename)."""
        path = self.path / STORE_MANIFEST
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(self.manifest_dict(), indent=2) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
        return path

    @classmethod
    def open(cls, path: str | Path) -> "ShardStore":
        """Open and validate an existing store directory.

        Raises :class:`ValueError` on anything that is not a
        well-formed version-1 shard store (missing/corrupt manifest,
        unknown kind or version, non-contiguous shard ranges, missing
        shard files).
        """
        path = Path(path)
        manifest_path = path / STORE_MANIFEST
        if not manifest_path.is_file():
            raise ValueError(
                f"{path}: not a shard store (no {STORE_MANIFEST}); build "
                "one with 'repro-video-quality shard build'"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(
                f"{manifest_path}: corrupted shard-store manifest: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or manifest.get("kind") != STORE_KIND:
            kind = manifest.get("kind") if isinstance(manifest, dict) else None
            raise ValueError(
                f"{manifest_path}: not a shard-store manifest "
                f"(kind={kind!r}, expected {STORE_KIND!r})"
            )
        if manifest.get("version") != STORE_VERSION:
            raise ValueError(
                f"{manifest_path}: unsupported shard-store version "
                f"{manifest.get('version')!r} (rebuild the store)"
            )
        try:
            grid_spec = manifest["grid"]
            grid = EpochGrid(
                origin=float(grid_spec["origin"]),
                epoch_seconds=float(grid_spec["epoch_seconds"]),
                n_epochs=int(grid_spec["n_epochs"]),
            )
            schema = AttributeSchema(names=tuple(manifest["schema"]))
            shards = [
                ShardInfo(
                    file=str(s["file"]),
                    epoch_lo=int(s["epoch_lo"]),
                    epoch_hi=int(s["epoch_hi"]),
                    sessions=int(s["sessions"]),
                )
                for s in manifest["shards"]
            ]
            total = int(manifest["total_sessions"])
            digest = str(manifest["schema_sha256"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"{manifest_path}: malformed shard-store manifest: {exc}"
            ) from exc
        store = cls(
            path=path,
            grid=grid,
            schema=schema,
            shards=shards,
            total_sessions=total,
            schema_digest=digest,
        )
        missing = [s.file for s in store.shards if not (path / s.file).is_file()]
        if missing:
            raise ValueError(
                f"{path}: manifest lists missing shard file(s): "
                f"{', '.join(missing)}"
            )
        return store


def build_shard_store(
    table: SessionTable,
    path: str | Path,
    epochs_per_shard: int | None = None,
    n_shards: int | None = None,
    epoch_seconds: float = DEFAULT_EPOCH_SECONDS,
    grid: EpochGrid | None = None,
) -> ShardStore:
    """Partition a whole in-memory trace into an on-disk shard store.

    Each shard's rows keep their original relative order, its substrate
    (packed columns + cluster index) is built independently and saved
    as a snapshot stamped with the shard's epoch range, and the store
    manifest is written last (atomically), so a crashed build never
    leaves a store that :meth:`ShardStore.open` would accept.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    if grid is None:
        grid = EpochGrid.covering(table, epoch_seconds=epoch_seconds)
    grid, per_epoch_rows = split_into_epochs(table, grid)
    bounds = shard_boundaries(
        grid.n_epochs, epochs_per_shard=epochs_per_shard, n_shards=n_shards
    )
    tracer = current_tracer()
    shards: list[ShardInfo] = []
    total = 0
    with tracer.span(
        "shards.build",
        sessions=len(table),
        epochs=grid.n_epochs,
        shards=len(bounds),
    ):
        for k, (lo, hi) in enumerate(bounds):
            rows = (
                np.sort(np.concatenate(per_epoch_rows[lo:hi]))
                if hi > lo
                else np.empty(0, dtype=np.int64)
            )
            shard_table = table.select(rows)
            substrate = AnalysisSubstrate.build(shard_table)
            filename = _shard_filename(k)
            save_substrate(
                substrate,
                path / filename,
                extra=_shard_extra(grid, lo, hi),
            )
            tracer.record(
                "shard.write", shard=k, sessions=len(shard_table), epochs=hi - lo
            )
            shards.append(
                ShardInfo(
                    file=filename, epoch_lo=lo, epoch_hi=hi,
                    sessions=len(shard_table),
                )
            )
            total += len(shard_table)
    store = ShardStore(
        path=path,
        grid=grid,
        schema=table.schema,
        shards=shards,
        total_sessions=total,
    )
    store.write_manifest()
    current_metrics().inc("shards.stores_built")
    current_metrics().inc("shards.shards_written", len(shards))
    return store


def _shard_extra(grid: EpochGrid, lo: int, hi: int) -> dict:
    """Per-snapshot provenance stamped into the RPROSUB1 manifest."""
    return {
        "shard": {
            "epoch_lo": lo,
            "epoch_hi": hi,
            "store_origin": grid.origin,
            "epoch_seconds": grid.epoch_seconds,
        }
    }


class ShardStoreBuilder:
    """Streaming shard-store construction from chunks of sessions.

    The out-of-core ingest twin of :func:`build_shard_store`: chunks
    arrive in any time order and are bucketed by absolute epoch block
    (``floor(floor(start / epoch_seconds) / epochs_per_shard)``) into
    per-shard :class:`~repro.core.substrate.StreamingSubstrate`\\ s, so
    at no point does the builder hold more state than the shards the
    data actually spans. :meth:`finalize` writes one snapshot per block
    (plus empty shards for any gap blocks, keeping the store's epoch
    coverage contiguous) and the store manifest.

    Shard substrates built this way grow their vocabularies in arrival
    order — different codes than a batch build, but identical decoded
    cluster identities, so analysis output is still bit-identical
    (cluster keys are label-based; pinned by the shard property suite).
    """

    def __init__(
        self,
        path: str | Path,
        schema: AttributeSchema = DEFAULT_SCHEMA,
        epoch_seconds: float = DEFAULT_EPOCH_SECONDS,
        epochs_per_shard: int = 24,
    ) -> None:
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if epochs_per_shard < 1:
            raise ValueError(
                f"epochs_per_shard must be >= 1, got {epochs_per_shard}"
            )
        self.path = Path(path)
        self.schema = schema
        self.epoch_seconds = float(epoch_seconds)
        self.epochs_per_shard = int(epochs_per_shard)
        self._blocks: dict[int, StreamingSubstrate] = {}
        self._finalized = False

    def append(self, chunk: "SessionTable | Iterable[Session]") -> int:
        """Bucket one chunk of sessions into its epoch-block substrates.

        Returns the number of sessions appended.
        """
        if self._finalized:
            raise ValueError("ShardStoreBuilder is already finalized")
        if not isinstance(chunk, SessionTable):
            chunk = SessionTable.from_sessions(chunk, schema=self.schema)
        if len(chunk) == 0:
            return 0
        abs_epochs = np.floor(
            chunk.start_time / self.epoch_seconds
        ).astype(np.int64)
        blocks = abs_epochs // self.epochs_per_shard
        order = np.argsort(blocks, kind="stable")
        sorted_blocks = blocks[order]
        uniq, starts = np.unique(sorted_blocks, return_index=True)
        bounds = np.append(starts, sorted_blocks.size)
        for i, block in enumerate(uniq):
            block = int(block)
            rows = order[bounds[i] : bounds[i + 1]]
            substrate = self._blocks.get(block)
            if substrate is None:
                substrate = StreamingSubstrate(
                    schema=self.schema, epoch_seconds=self.epoch_seconds
                )
                self._blocks[block] = substrate
            substrate.append(chunk.select(np.sort(rows)))
        return len(chunk)

    def finalize(self) -> ShardStore:
        """Write every shard snapshot plus the store manifest."""
        if self._finalized:
            raise ValueError("ShardStoreBuilder is already finalized")
        self._finalized = True
        self.path.mkdir(parents=True, exist_ok=True)
        es = self.epoch_seconds
        if not self._blocks:
            store = ShardStore(
                path=self.path,
                grid=EpochGrid(origin=0.0, epoch_seconds=es, n_epochs=0),
                schema=self.schema,
                shards=(),
                total_sessions=0,
            )
            store.write_manifest()
            return store
        # Covering-grid math identical to EpochGrid.covering over the
        # concatenated table, so the store grid matches the monolithic
        # analysis grid exactly.
        start = min(
            float(s.table.start_time.min()) for s in self._blocks.values()
        )
        last = max(
            float(s.table.start_time.max()) for s in self._blocks.values()
        )
        origin = float(np.floor(start / es) * es)
        n_epochs = int(np.floor((last - origin) / es)) + 1
        grid = EpochGrid(origin=origin, epoch_seconds=es, n_epochs=n_epochs)
        first_epoch = int(np.floor(start / es))
        tracer = current_tracer()
        shards: list[ShardInfo] = []
        total = 0
        blocks = sorted(self._blocks)
        with tracer.span(
            "shards.finalize",
            epochs=n_epochs,
            shards=blocks[-1] - blocks[0] + 1,
        ):
            for k, block in enumerate(range(blocks[0], blocks[-1] + 1)):
                lo = max(block * self.epochs_per_shard, first_epoch) - first_epoch
                hi = (
                    min((block + 1) * self.epochs_per_shard,
                        first_epoch + n_epochs)
                    - first_epoch
                )
                substrate = self._blocks.get(block)
                if substrate is None:
                    # Gap block: an empty shard keeps epoch coverage
                    # contiguous so merge offsets stay exact.
                    substrate = StreamingSubstrate(
                        schema=self.schema, epoch_seconds=es
                    )
                filename = _shard_filename(k)
                save_substrate(
                    substrate,
                    self.path / filename,
                    extra=_shard_extra(grid, lo, hi),
                )
                tracer.record(
                    "shard.write", shard=k, sessions=len(substrate.table),
                    epochs=hi - lo,
                )
                shards.append(
                    ShardInfo(
                        file=filename, epoch_lo=lo, epoch_hi=hi,
                        sessions=len(substrate.table),
                    )
                )
                total += len(substrate.table)
        store = ShardStore(
            path=self.path,
            grid=grid,
            schema=self.schema,
            shards=shards,
            total_sessions=total,
        )
        store.write_manifest()
        current_metrics().inc("shards.stores_built")
        current_metrics().inc("shards.shards_written", len(shards))
        return store


# ---------------------------------------------------------------------------
# Map phase
# ---------------------------------------------------------------------------
def _analyze_shard_configs(
    store: ShardStore, shard_index: int, configs: Sequence[AnalysisConfig]
) -> list[TraceAnalysis]:
    """Map step: mmap-load one shard, run every config over it.

    Runs inside a pool worker (or inline on the serial path). The
    substrate is dropped on return, so resident memory per process
    stays bounded by one shard. Timelines are materialized here — on
    the shard's own compact summaries — so the parent's merge never
    re-derives them.
    """
    t0 = time.perf_counter()
    substrate = store.load_shard(shard_index)
    load_s = time.perf_counter() - t0
    analyses = analyze_sweep(
        substrate.table,
        configs,
        grid=store.shard_grid(shard_index),
        substrate=substrate,
        workers=0,
    )
    for analysis in analyses:
        analysis.timings.load_s += load_s / len(configs)
        for metric_analysis in analysis.metrics.values():
            metric_analysis.problem_timelines()
            metric_analysis.critical_timelines()
    return analyses


def _shard_result(
    store: ShardStore,
    shard_index: int,
    configs: Sequence[AnalysisConfig],
    config_indices: Sequence[int] | None = None,
) -> dict:
    """One shard's analyses plus self-timing stats (serial and worker
    paths return the same shape, like ``pipeline._worker_run_batch``).

    ``config_indices`` selects which of ``configs`` to actually run —
    the result cache dispatches only a shard's missing configs, so a
    sweep with partial hits computes exactly the missing
    (shard, config) pairs. ``analyses[j]`` corresponds to
    ``configs[config_indices[j]]``.
    """
    started_unix = time.time()
    t0 = time.perf_counter()
    if config_indices is None:
        config_indices = range(len(configs))
    config_indices = tuple(int(ci) for ci in config_indices)
    subset = [configs[ci] for ci in config_indices]
    analyses = _analyze_shard_configs(store, shard_index, subset)
    info = store.shards[shard_index]
    return {
        "shard": shard_index,
        "config_indices": config_indices,
        "analyses": analyses,
        "pid": os.getpid(),
        "started_unix": started_unix,
        "busy_s": time.perf_counter() - t0,
        "epochs": info.n_epochs,
        "rows": info.sessions,
        "peak_rss_bytes": peak_rss_bytes(),
    }


# Worker-process state, installed once per worker by the pool
# initializer: each worker re-opens the store from its manifest (cheap
# JSON) and loads only the shards it is handed.
_SHARD_WORKER_STATE: dict = {}


def _shard_worker_init(store_path: str, configs: tuple) -> None:
    _SHARD_WORKER_STATE["store"] = ShardStore.open(store_path)
    _SHARD_WORKER_STATE["configs"] = list(configs)


def _shard_worker_run(task: tuple[int, tuple[int, ...] | None]) -> dict:
    shard_index, config_indices = task
    return _shard_result(
        _SHARD_WORKER_STATE["store"],
        shard_index,
        _SHARD_WORKER_STATE["configs"],
        config_indices,
    )


# ---------------------------------------------------------------------------
# Merge phase
# ---------------------------------------------------------------------------
def merge_shard_analyses(
    store: ShardStore,
    config: AnalysisConfig,
    shard_analyses: Sequence[TraceAnalysis],
) -> TraceAnalysis:
    """Exact fold of per-shard analyses into one whole-trace analysis.

    ``shard_analyses[i]`` must be the analysis of ``store.shards[i]``
    under ``config`` on :meth:`ShardStore.shard_grid`. Epoch summaries
    concatenate with indices renumbered by each shard's manifest
    offset; problem/critical timelines union per cluster key with the
    same offsets, which is what makes streaks that span shard
    boundaries coalesce into single events (see
    :func:`~repro.core.streaks.merge_timelines`).
    """
    if len(shard_analyses) != len(store.shards):
        raise ValueError(
            f"expected {len(store.shards)} shard analyses, "
            f"got {len(shard_analyses)}"
        )
    grid = store.grid
    timings = PipelineTimings()
    for analysis in shard_analyses:
        timings.merge(analysis.timings)

    per_epoch: list[list] = [[] for _ in range(grid.n_epochs)]
    timeline_caches: dict[str, tuple[dict, dict]] = {}
    for metric in config.metrics:
        problem_parts = []
        critical_parts = []
        for info, analysis in zip(store.shards, shard_analyses):
            shard_metric = analysis.metrics[metric.name]
            for summary in shard_metric.epochs:
                per_epoch[info.epoch_lo + summary.epoch].append(
                    replace(summary, epoch=info.epoch_lo + summary.epoch)
                )
            problem_parts.append(
                (info.epoch_lo, shard_metric.problem_timelines())
            )
            critical_parts.append(
                (info.epoch_lo, shard_metric.critical_timelines())
            )
        timeline_caches[metric.name] = (
            merge_timelines(problem_parts, n_epochs_total=grid.n_epochs),
            merge_timelines(critical_parts, n_epochs_total=grid.n_epochs),
        )

    merged = assemble_trace_analysis(grid, config, per_epoch, timings)
    for name, (problem_tls, critical_tls) in timeline_caches.items():
        merged.metrics[name]._problem_timelines = problem_tls
        merged.metrics[name]._critical_timelines = critical_tls
    return merged


# ---------------------------------------------------------------------------
# Result cache integration
# ---------------------------------------------------------------------------
def _shard_cache_keys(
    store: ShardStore, configs: Sequence[AnalysisConfig]
) -> list[list[str]] | None:
    """Per-(shard, config) cache keys, or ``None`` to bypass caching.

    Keys bind the shard snapshot's payload content address, the store
    schema digest, the config's result-determining digest and the
    shard's epoch grid (see :func:`~repro.core.resultcache.shard_result_key`).
    When any component is unavailable — an unregistered custom metric
    has no content-addressable identity, or a shard snapshot cannot be
    content-addressed — the whole run degrades to uncached execution
    rather than risking a wrong key.
    """
    try:
        digests = [config.config_digest() for config in configs]
    except ValueError as exc:
        record_degradation("cache_bypass", f"result cache disabled: {exc}")
        return None
    keys: list[list[str]] = []
    for i in range(len(store.shards)):
        try:
            payload_sha = store.shard_content_sha256(i)
        except (OSError, ValueError) as exc:
            record_degradation(
                "cache_bypass",
                f"result cache disabled: shard {i} has no content "
                f"address ({exc})",
            )
            return None
        grid = store.shard_grid(i)
        keys.append(
            [
                shard_result_key(
                    payload_sha256=payload_sha,
                    schema_sha256=store.schema_digest,
                    config_digest=digest,
                    epoch_origin=grid.origin,
                    n_epochs=grid.n_epochs,
                )
                for digest in digests
            ]
        )
    return keys


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------
def sweep_shards(
    store: ShardStore,
    configs: Iterable[AnalysisConfig],
    workers: int | str | None = None,
    progress: Callable[[int, int], None] | None = None,
    result_cache: ResultCache | None = None,
) -> list[TraceAnalysis]:
    """Analyse a shard store under many configs, out of core.

    Maps shards across a process pool (``workers``; default serial —
    still bounded-memory, shards load one at a time) and merges exactly.
    Every config's ``epoch_seconds`` must equal the store's: shard
    boundaries are fixed at build time, so re-gridding requires
    rebuilding the store. Per-config ``workers``/``engine``/
    ``transport`` fields are ignored here — sharded execution is
    output-identical to every engine. ``progress`` is called with
    ``(done_units, total_units)`` where units are (shard, config)
    pairs.

    With ``result_cache``, every (shard, config) pair is looked up by
    content address before the map phase; hits skip computation
    entirely and only the missing config subset of each shard is
    dispatched. Fresh results are written back by the parent (a single
    writer), so a warm re-run is pure load + merge and appending a day
    via :class:`ShardStoreBuilder` recomputes only the new or changed
    shards. Cached and uncached runs are bit-identical (pinned by
    ``tests/property/test_cache_equivalence.py``); a corrupt or
    unusable cache degrades to uncached execution, never to a wrong
    answer.
    """
    configs = list(configs)
    if not configs:
        return []
    for config in configs:
        if config.epoch_seconds != store.grid.epoch_seconds:
            raise ValueError(
                f"config epoch_seconds ({config.epoch_seconds}) does not "
                f"match the shard store's ({store.grid.epoch_seconds}); "
                "rebuild the store at the desired epoch length"
            )
    n_workers = resolve_worker_count(0 if workers is None else workers)
    n_shards = len(store.shards)
    n_configs = len(configs)
    total_units = n_shards * n_configs
    per_shard: list[list[TraceAnalysis | None]] = [
        [None] * n_configs for _ in range(n_shards)
    ]
    worker_peaks: list[int] = []
    done = 0
    tracer = current_tracer()
    wall_start = time.perf_counter()

    with tracer.span(
        "analyze_shards",
        shards=n_shards,
        configs=n_configs,
        sessions=store.total_sessions,
        epochs=store.grid.n_epochs,
        workers=n_workers,
        cache="on" if result_cache is not None else "off",
    ) as run_span:
        cache_keys: list[list[str]] | None = None
        if result_cache is not None and n_shards:
            cache_keys = _shard_cache_keys(store, configs)
        if cache_keys is not None:
            hits = 0
            with tracer.span("cache.probe", units=total_units):
                for i in range(n_shards):
                    for ci in range(n_configs):
                        value = result_cache.get(cache_keys[i][ci])
                        if isinstance(value, TraceAnalysis):
                            per_shard[i][ci] = value
                            hits += 1
                        elif value is not None:
                            record_degradation(
                                "cache_corrupt",
                                f"cache entry {cache_keys[i][ci][:16]}… "
                                f"holds {type(value).__name__}, not a "
                                "TraceAnalysis; recomputing",
                            )
            run_span.set(cache_hits=hits, cache_misses=total_units - hits)
            done = hits
            if progress is not None and hits:
                progress(done, total_units)

        # Shards with at least one missing (shard, config) pair; each
        # is dispatched with only its missing config subset.
        def missing_configs(i: int) -> tuple[int, ...]:
            return tuple(
                ci for ci in range(n_configs) if per_shard[i][ci] is None
            )

        pending = {
            i: cis
            for i in range(n_shards)
            if (cis := missing_configs(i))
        }

        def fold(out: dict) -> None:
            nonlocal done
            i = out["shard"]
            for ci, analysis in zip(out["config_indices"], out["analyses"]):
                per_shard[i][ci] = analysis
                if cache_keys is not None:
                    result_cache.put(cache_keys[i][ci], analysis)
            if out["peak_rss_bytes"] is not None:
                worker_peaks.append(out["peak_rss_bytes"])
            tracer.record(
                "shard",
                duration_s=out["busy_s"],
                shard=i,
                pid=out["pid"],
                epochs=out["epochs"],
                sessions=out["rows"],
                configs=len(out["config_indices"]),
                peak_rss_bytes=out["peak_rss_bytes"],
            )
            done += len(out["config_indices"])
            if progress is not None:
                progress(done, total_units)

        def run_serial(missing_only: bool) -> None:
            for i, cis in pending.items():
                if missing_only:
                    cis = missing_configs(i)
                    if not cis:
                        continue
                fold(_shard_result(store, i, configs, cis))

        if not pending:
            pass  # fully warm: nothing to map
        elif n_workers <= 1 or len(pending) <= 1:
            with tracer.span("shards", mode="serial", shards=len(pending)):
                run_serial(missing_only=False)
        else:
            failure: Exception | None = None
            with tracer.span(
                "fanout",
                workers=min(n_workers, len(pending)),
                shards=len(pending),
            ):
                try:
                    with ProcessPoolExecutor(
                        max_workers=min(n_workers, len(pending)),
                        initializer=_shard_worker_init,
                        initargs=(str(store.path), tuple(configs)),
                    ) as pool:
                        futures = [
                            pool.submit(_shard_worker_run, (i, cis))
                            for i, cis in pending.items()
                        ]
                        for future in as_completed(futures):
                            fold(future.result())
                except Exception as exc:
                    # Same ladder as analyze_trace: a worker crash
                    # degrades to the serial map (the reference path)
                    # instead of aborting the run.
                    failure = exc
            if failure is not None:
                remaining = sum(
                    1 for i in pending if missing_configs(i)
                )
                record_degradation(
                    "parallel_to_serial",
                    "shard worker pool failed "
                    f"({type(failure).__name__}: {failure}); analyzing "
                    f"{remaining} remaining shard(s) serially",
                )
                with tracer.span("shards", mode="serial-fallback"):
                    run_serial(missing_only=True)

        t_merge = time.perf_counter()
        merged = [
            merge_shard_analyses(
                store, config, [per_shard[i][ci] for i in range(n_shards)]
            )
            for ci, config in enumerate(configs)
        ]
        merge_s = time.perf_counter() - t_merge
        wall = time.perf_counter() - wall_start
        for analysis in merged:
            analysis.timings.merge_s += merge_s / len(configs)
            analysis.timings.wall_s = wall / len(configs)
        run_span.set(merge_s=round(merge_s, 6))

        metrics = current_metrics()
        parent_peak = peak_rss_bytes()
        if parent_peak is not None:
            metrics.gauge("shards.parent_peak_rss_bytes", parent_peak)
        if worker_peaks:
            metrics.gauge("shards.max_shard_peak_rss_bytes", max(worker_peaks))
        metrics.inc("shards.analyses")
        metrics.inc("shards.shards_analyzed", n_shards)
    return merged


def analyze_shards(
    store: ShardStore,
    config: AnalysisConfig | None = None,
    workers: int | str | None = None,
    progress: Callable[[int, int], None] | None = None,
    result_cache: ResultCache | None = None,
) -> TraceAnalysis:
    """Out-of-core ``analyze_trace`` over a shard store.

    Bit-identical to ``analyze_trace`` on the unsharded table at the
    store's epoch length, with parent peak memory O(largest shard):
    each shard's snapshot is mmap-loaded (by a pool worker when
    ``workers`` > 1, else inline, one at a time), analyzed on its own
    epoch range, and the compact per-shard results are merged exactly
    (:func:`merge_shard_analyses`). ``result_cache`` memoizes the
    per-shard partials by content address (see :func:`sweep_shards`).
    """
    config = config or AnalysisConfig()
    return sweep_shards(
        store,
        [config],
        workers=workers,
        progress=progress,
        result_cache=result_cache,
    )[0]
