"""Temporal structure: prevalence and persistence (paper Section 4.1).

* **Prevalence** of a cluster is the fraction of epochs in which it
  appears as a problem cluster (paper Figure 6/7).
* **Persistence** coalesces consecutive problem epochs into logical
  events ("streaks") and studies the streak-length distribution per
  cluster — the paper reports the median and maximum streak length
  (Figure 8).

These functions are agnostic to whether the per-epoch sets hold problem
clusters or critical clusters; the paper applies them to both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence, TypeVar

import numpy as np

K = TypeVar("K", bound=Hashable)


@dataclass(frozen=True)
class Streak:
    """A maximal run of consecutive epochs: ``[start, start + length)``."""

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("streak length must be >= 1")

    @property
    def end(self) -> int:
        """First epoch after the streak."""
        return self.start + self.length


@dataclass
class ClusterTimeline:
    """Epochs in which one cluster identity was flagged."""

    key: Hashable
    epochs: np.ndarray  # sorted, unique epoch indices
    n_epochs_total: int

    def __post_init__(self) -> None:
        epochs = np.unique(np.asarray(self.epochs, dtype=np.int64))
        if epochs.size and (epochs[0] < 0 or epochs[-1] >= self.n_epochs_total):
            raise ValueError(
                f"epochs out of range [0, {self.n_epochs_total}): "
                f"{epochs[0]}..{epochs[-1]}"
            )
        self.epochs = epochs

    @property
    def n_occurrences(self) -> int:
        return int(self.epochs.size)

    @property
    def prevalence(self) -> float:
        """Fraction of all epochs in which the cluster was flagged."""
        if self.n_epochs_total == 0:
            return 0.0
        return self.n_occurrences / self.n_epochs_total

    def streaks(self) -> list[Streak]:
        """Coalesce consecutive occurrences into logical events."""
        if self.epochs.size == 0:
            return []
        breaks = np.nonzero(np.diff(self.epochs) > 1)[0]
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [self.epochs.size - 1]))
        return [
            Streak(start=int(self.epochs[s]), length=int(self.epochs[e] - self.epochs[s] + 1))
            for s, e in zip(starts, ends)
        ]

    @property
    def median_persistence(self) -> float:
        """Median streak length in epochs (0 if never flagged)."""
        lengths = [s.length for s in self.streaks()]
        if not lengths:
            return 0.0
        return float(np.median(lengths))

    @property
    def max_persistence(self) -> int:
        """Longest streak length in epochs (0 if never flagged)."""
        lengths = [s.length for s in self.streaks()]
        return max(lengths) if lengths else 0


def build_timelines(
    per_epoch_keys: Sequence[Iterable[K]], n_epochs: int | None = None
) -> dict[K, ClusterTimeline]:
    """Invert per-epoch cluster sets into per-cluster timelines.

    ``per_epoch_keys[e]`` holds the identities flagged in epoch ``e``.
    """
    n_epochs = len(per_epoch_keys) if n_epochs is None else n_epochs
    if n_epochs < len(per_epoch_keys):
        raise ValueError(
            f"n_epochs ({n_epochs}) smaller than provided epochs "
            f"({len(per_epoch_keys)})"
        )
    occurrences: dict[K, list[int]] = {}
    for epoch, keys in enumerate(per_epoch_keys):
        for key in keys:
            occurrences.setdefault(key, []).append(epoch)
    return {
        key: ClusterTimeline(
            key=key, epochs=np.array(epochs, dtype=np.int64), n_epochs_total=n_epochs
        )
        for key, epochs in occurrences.items()
    }


def shift_streaks(streaks: Iterable[Streak], offset: int) -> list[Streak]:
    """Translate streaks by ``offset`` epochs (shard-local -> global)."""
    return [Streak(start=s.start + offset, length=s.length) for s in streaks]


def coalesce_streaks(parts: Iterable[Iterable[Streak]]) -> list[Streak]:
    """Merge per-range streak lists into whole-range maximal streaks.

    This is the shard-merge algebra for persistence (DESIGN.md §7):
    each part holds the streaks of one epoch range, already translated
    to global epoch indices (:func:`shift_streaks`). A run that spans a
    range boundary arrives as two abutting streaks — one ending exactly
    where the next starts — and is joined into a single logical event,
    which is what makes sharded persistence bit-identical to the
    monolithic computation. Overlapping streaks mean the input ranges
    were not disjoint and raise :class:`ValueError`.
    """
    merged: list[Streak] = []
    ordered = sorted(
        (s for part in parts for s in part), key=lambda s: (s.start, s.length)
    )
    for streak in ordered:
        if merged and streak.start < merged[-1].end:
            raise ValueError(
                f"overlapping streaks: {merged[-1]} and {streak} "
                "(input ranges must be disjoint)"
            )
        if merged and streak.start == merged[-1].end:
            merged[-1] = Streak(
                start=merged[-1].start, length=merged[-1].length + streak.length
            )
        else:
            merged.append(streak)
    return merged


def merge_timelines(
    parts: Iterable[tuple[int, Mapping[K, ClusterTimeline]]],
    n_epochs_total: int,
) -> dict[K, ClusterTimeline]:
    """Union per-range timelines into whole-range timelines.

    ``parts`` holds ``(epoch_offset, timelines)`` pairs — each mapping's
    epoch indices are local to its range and are shifted by the offset.
    Occurrence sets union per cluster key; :meth:`ClusterTimeline.streaks`
    on the merged timeline then coalesces runs spanning range
    boundaries, so ``merge_timelines`` + ``streaks()`` equals
    :func:`coalesce_streaks` over the shifted per-range streaks (pinned
    by ``tests/property/test_shard_equivalence.py``).
    """
    occurrences: dict[K, list[np.ndarray]] = {}
    for offset, timelines in parts:
        for key, timeline in timelines.items():
            occurrences.setdefault(key, []).append(
                timeline.epochs + np.int64(offset)
            )
    return {
        key: ClusterTimeline(
            key=key,
            epochs=np.concatenate(chunks),
            n_epochs_total=n_epochs_total,
        )
        for key, chunks in occurrences.items()
    }


def prevalence(timelines: Mapping[K, ClusterTimeline]) -> dict[K, float]:
    """Prevalence per cluster identity."""
    return {key: tl.prevalence for key, tl in timelines.items()}


def persistence_streaks(
    timelines: Mapping[K, ClusterTimeline],
) -> dict[K, list[Streak]]:
    """Streak list per cluster identity."""
    return {key: tl.streaks() for key, tl in timelines.items()}


def prevalence_values(timelines: Mapping[K, ClusterTimeline]) -> np.ndarray:
    """Prevalence values across clusters (input to the Fig. 7 CDF)."""
    return np.array([tl.prevalence for tl in timelines.values()])


def median_persistence_values(
    timelines: Mapping[K, ClusterTimeline],
) -> np.ndarray:
    """Median streak lengths across clusters (Fig. 8(a))."""
    return np.array([tl.median_persistence for tl in timelines.values()])


def max_persistence_values(
    timelines: Mapping[K, ClusterTimeline],
) -> np.ndarray:
    """Max streak lengths across clusters (Fig. 8(b))."""
    return np.array(
        [tl.max_persistence for tl in timelines.values()], dtype=np.float64
    )
