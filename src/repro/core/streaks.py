"""Temporal structure: prevalence and persistence (paper Section 4.1).

* **Prevalence** of a cluster is the fraction of epochs in which it
  appears as a problem cluster (paper Figure 6/7).
* **Persistence** coalesces consecutive problem epochs into logical
  events ("streaks") and studies the streak-length distribution per
  cluster — the paper reports the median and maximum streak length
  (Figure 8).

These functions are agnostic to whether the per-epoch sets hold problem
clusters or critical clusters; the paper applies them to both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence, TypeVar

import numpy as np

K = TypeVar("K", bound=Hashable)


@dataclass(frozen=True)
class Streak:
    """A maximal run of consecutive epochs: ``[start, start + length)``."""

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("streak length must be >= 1")

    @property
    def end(self) -> int:
        """First epoch after the streak."""
        return self.start + self.length


@dataclass
class ClusterTimeline:
    """Epochs in which one cluster identity was flagged."""

    key: Hashable
    epochs: np.ndarray  # sorted, unique epoch indices
    n_epochs_total: int

    def __post_init__(self) -> None:
        epochs = np.unique(np.asarray(self.epochs, dtype=np.int64))
        if epochs.size and (epochs[0] < 0 or epochs[-1] >= self.n_epochs_total):
            raise ValueError(
                f"epochs out of range [0, {self.n_epochs_total}): "
                f"{epochs[0]}..{epochs[-1]}"
            )
        self.epochs = epochs

    @property
    def n_occurrences(self) -> int:
        return int(self.epochs.size)

    @property
    def prevalence(self) -> float:
        """Fraction of all epochs in which the cluster was flagged."""
        if self.n_epochs_total == 0:
            return 0.0
        return self.n_occurrences / self.n_epochs_total

    def streaks(self) -> list[Streak]:
        """Coalesce consecutive occurrences into logical events."""
        if self.epochs.size == 0:
            return []
        breaks = np.nonzero(np.diff(self.epochs) > 1)[0]
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [self.epochs.size - 1]))
        return [
            Streak(start=int(self.epochs[s]), length=int(self.epochs[e] - self.epochs[s] + 1))
            for s, e in zip(starts, ends)
        ]

    @property
    def median_persistence(self) -> float:
        """Median streak length in epochs (0 if never flagged)."""
        lengths = [s.length for s in self.streaks()]
        if not lengths:
            return 0.0
        return float(np.median(lengths))

    @property
    def max_persistence(self) -> int:
        """Longest streak length in epochs (0 if never flagged)."""
        lengths = [s.length for s in self.streaks()]
        return max(lengths) if lengths else 0


def build_timelines(
    per_epoch_keys: Sequence[Iterable[K]], n_epochs: int | None = None
) -> dict[K, ClusterTimeline]:
    """Invert per-epoch cluster sets into per-cluster timelines.

    ``per_epoch_keys[e]`` holds the identities flagged in epoch ``e``.
    """
    n_epochs = len(per_epoch_keys) if n_epochs is None else n_epochs
    if n_epochs < len(per_epoch_keys):
        raise ValueError(
            f"n_epochs ({n_epochs}) smaller than provided epochs "
            f"({len(per_epoch_keys)})"
        )
    occurrences: dict[K, list[int]] = {}
    for epoch, keys in enumerate(per_epoch_keys):
        for key in keys:
            occurrences.setdefault(key, []).append(epoch)
    return {
        key: ClusterTimeline(
            key=key, epochs=np.array(epochs, dtype=np.int64), n_epochs_total=n_epochs
        )
        for key, epochs in occurrences.items()
    }


def prevalence(timelines: Mapping[K, ClusterTimeline]) -> dict[K, float]:
    """Prevalence per cluster identity."""
    return {key: tl.prevalence for key, tl in timelines.items()}


def persistence_streaks(
    timelines: Mapping[K, ClusterTimeline],
) -> dict[K, list[Streak]]:
    """Streak list per cluster identity."""
    return {key: tl.streaks() for key, tl in timelines.items()}


def prevalence_values(timelines: Mapping[K, ClusterTimeline]) -> np.ndarray:
    """Prevalence values across clusters (input to the Fig. 7 CDF)."""
    return np.array([tl.prevalence for tl in timelines.values()])


def median_persistence_values(
    timelines: Mapping[K, ClusterTimeline],
) -> np.ndarray:
    """Median streak lengths across clusters (Fig. 8(a))."""
    return np.array([tl.median_persistence for tl in timelines.values()])


def max_persistence_values(
    timelines: Mapping[K, ClusterTimeline],
) -> np.ndarray:
    """Max streak lengths across clusters (Fig. 8(b))."""
    return np.array(
        [tl.max_persistence for tl in timelines.values()], dtype=np.float64
    )
