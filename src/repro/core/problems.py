"""Problem-cluster identification (paper Section 3.1).

A *problem cluster* in an epoch is a cluster whose problem ratio is at
least ``1.5x`` the epoch's global problem ratio (roughly two standard
deviations of the per-cluster ratio distribution, per the paper) and
which contains at least ``min_sessions`` sessions (the paper uses 1000
out of ~900k sessions/epoch; ``"auto"`` scales that proportion to the
trace at hand).

:class:`ProblemClusters` holds per-mask boolean flags aligned with the
:class:`~repro.core.aggregation.EpochAggregate` arrays, plus the
leaf-projection index matrix that the critical-cluster detector reuses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.aggregation import ClusterStats, EpochAggregate
from repro.core.clusters import ClusterKey

#: The paper's min cluster size (1000) as a fraction of its ~900k
#: sessions per epoch — used by ``min_sessions="auto"``.
PAPER_MIN_SESSION_FRACTION = 1000.0 / 900_000.0


def cluster_problem_flags(
    sessions: np.ndarray,
    problems: np.ndarray,
    *,
    global_ratio: float,
    ratio_threshold: float,
    min_sessions: int,
    min_problems: int,
    significance_sigmas: float,
) -> np.ndarray:
    """The problem-cluster predicate on raw count arrays (vectorised).

    This is the single authority both detection
    (:func:`find_problem_clusters`) and the critical-cluster
    ancestor-removal test (:meth:`ProblemClusters.counts_are_problem`)
    evaluate, so the two can never disagree through float rounding —
    the ratio condition is ``problems / sessions >= ratio_threshold``
    in both, never the algebraically-equal-but-not-float-equal
    ``problems >= ratio_threshold * sessions``.
    """
    sessions = np.asarray(sessions)
    problems = np.asarray(problems)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(sessions > 0, problems / sessions, 0.0)
    expected = global_ratio * sessions
    sigma = np.sqrt(
        np.maximum(global_ratio * (1.0 - global_ratio) * sessions, 0.0)
    )
    return (
        (sessions >= min_sessions)
        & (problems >= min_problems)
        & (ratio >= ratio_threshold)
        & (problems >= expected + significance_sigmas * sigma)
    )


@dataclass(frozen=True)
class ProblemClusterConfig:
    """Thresholds for statistical significance of problem clusters.

    The paper's two conditions — ratio >= 1.5x global and >= 1000
    sessions — rely on its enormous per-epoch volume (expected ~100
    problem sessions per borderline cluster). At synthetic scale the
    same *relative* thresholds would admit clusters whose excess is one
    or two problem sessions of pure noise, so two extra
    significance guards are applied: a minimum absolute problem count
    (``min_problems``) and a normal-approximation binomial test
    (``significance_sigmas`` standard deviations above the expected
    problem count under the global ratio). Both are no-ops at
    paper scale.
    """

    ratio_multiplier: float = 1.5
    min_sessions: int | str = "auto"
    auto_fraction: float = PAPER_MIN_SESSION_FRACTION
    auto_floor: int = 60
    min_problems: int = 5
    significance_sigmas: float = 2.0

    def __post_init__(self) -> None:
        if self.ratio_multiplier <= 0:
            raise ValueError("ratio_multiplier must be positive")
        if self.min_problems < 1:
            raise ValueError("min_problems must be >= 1")
        if self.significance_sigmas < 0:
            raise ValueError("significance_sigmas must be non-negative")
        if isinstance(self.min_sessions, bool):
            # bool is a subclass of int: min_sessions=True would
            # silently mean a floor of 1 session.
            raise ValueError(
                f"min_sessions must be an int or 'auto', got {self.min_sessions!r}"
            )
        if isinstance(self.min_sessions, str):
            if self.min_sessions != "auto":
                raise ValueError(
                    f"min_sessions must be an int or 'auto', got {self.min_sessions!r}"
                )
        elif self.min_sessions < 1:
            raise ValueError("min_sessions must be >= 1")
        if self.auto_fraction <= 0 or self.auto_fraction >= 1:
            raise ValueError("auto_fraction must be in (0, 1)")
        if self.auto_floor < 1:
            raise ValueError("auto_floor must be >= 1")

    def resolve_min_sessions(self, total_sessions: int) -> int:
        """Concrete session floor for an epoch with ``total_sessions``."""
        if isinstance(self.min_sessions, int):
            return self.min_sessions
        return max(self.auto_floor, int(round(self.auto_fraction * total_sessions)))


class ProblemClusters:
    """Problem-cluster flags for one (epoch, metric) aggregate."""

    __slots__ = (
        "agg",
        "config",
        "min_sessions",
        "ratio_threshold",
        "is_problem",
        "leaf_proj_index",
        "_covered_leaves",
        "_leaf_problem_matrix",
        "_significant_rows",
        "_problem_rows",
        "_n_clusters",
    )

    def __init__(
        self,
        agg: EpochAggregate,
        config: ProblemClusterConfig,
        min_sessions: int,
        ratio_threshold: float,
        is_problem: dict[int, np.ndarray],
        leaf_proj_index: dict[int, np.ndarray],
    ) -> None:
        self.agg = agg
        self.config = config
        self.min_sessions = min_sessions
        self.ratio_threshold = ratio_threshold
        self.is_problem = is_problem
        self.leaf_proj_index = leaf_proj_index
        self._covered_leaves: np.ndarray | None = None
        self._leaf_problem_matrix: np.ndarray | None = None
        self._significant_rows: dict[int, np.ndarray] | None = None
        self._problem_rows: dict[int, np.ndarray] | None = None
        self._n_clusters: int | None = None

    @property
    def significant_rows(self) -> dict[int, np.ndarray]:
        """Per mask: sorted indices of clusters at/above the session floor.

        The only clusters the predicate can flag; the critical-cluster
        descendants test seeds from them. Populated for free by
        :func:`find_problem_clusters` (shared across a config sweep via
        the epoch view); recomputed here only for hand-built instances.
        """
        if self._significant_rows is None:
            self._significant_rows = {
                m: np.nonzero(mask_agg.sessions >= self.min_sessions)[0]
                for m, mask_agg in self.agg.per_mask.items()
            }
        return self._significant_rows

    @property
    def problem_rows(self) -> dict[int, np.ndarray]:
        """Per mask: sorted indices of the problem clusters."""
        if self._problem_rows is None:
            self._problem_rows = {
                m: np.nonzero(flags)[0] for m, flags in self.is_problem.items()
            }
        return self._problem_rows

    @property
    def n_clusters(self) -> int:
        """Total number of problem clusters in the epoch."""
        if self._n_clusters is None:
            self._n_clusters = int(
                sum(int(flags.sum()) for flags in self.is_problem.values())
            )
        return self._n_clusters

    def counts_are_problem(
        self, sessions: np.ndarray, problems: np.ndarray
    ) -> np.ndarray:
        """The problem-cluster predicate on raw count arrays.

        Used by the critical-cluster ancestor-removal test, which must
        re-evaluate clusters after subtracting a candidate's sessions
        under exactly the same significance rules.
        """
        return cluster_problem_flags(
            sessions,
            problems,
            global_ratio=self.agg.global_ratio,
            ratio_threshold=self.ratio_threshold,
            min_sessions=self.min_sessions,
            min_problems=self.config.min_problems,
            significance_sigmas=self.config.significance_sigmas,
        )

    def iter_clusters(self) -> Iterator[tuple[int, int, ClusterStats]]:
        """Yield ``(mask, packed_key, stats)`` for every problem cluster."""
        for mask, rows in self.problem_rows.items():
            agg = self.agg.per_mask[mask]
            for i in rows:
                yield (
                    mask,
                    int(agg.keys[i]),
                    ClusterStats(int(agg.sessions[i]), int(agg.problems[i])),
                )

    def cluster_keys(self) -> list[ClusterKey]:
        """Decoded identities of every problem cluster."""
        return [
            self.agg.decode(mask, packed)
            for mask, packed, _ in self.iter_clusters()
        ]

    def contains(self, mask: int, packed: int) -> bool:
        agg = self.agg.per_mask.get(mask)
        if agg is None:
            return False
        idx = agg.index_of(packed)
        return bool(idx >= 0 and self.is_problem[mask][idx])

    def leaf_problem_matrix(self) -> np.ndarray:
        """(n_leaves, n_masks+1) bool: leaf's projection is a problem cluster.

        Column ``m`` (for non-empty masks) tells, for each distinct leaf
        combination, whether its projection onto mask ``m`` is a problem
        cluster. Column 0 (the root) is always False — the root's ratio
        *is* the global ratio. Computed once and cached; masks with no
        problem cluster are skipped (their columns stay False).
        """
        if self._leaf_problem_matrix is None:
            full = self.agg.codec.full_mask
            n_leaves = len(self.agg.leaf)
            matrix = np.zeros((n_leaves, full + 1), dtype=bool)
            for m in range(1, full + 1):
                if self.problem_rows[m].size == 0:
                    continue
                matrix[:, m] = self.is_problem[m][self.leaf_proj_index[m]]
            self._leaf_problem_matrix = matrix
        return self._leaf_problem_matrix

    @property
    def covered_leaves(self) -> np.ndarray:
        """Boolean per leaf: belongs to at least one problem cluster.

        Computed once and cached (``coverage`` and the critical-cluster
        summary both read it); masks with no problem cluster contribute
        nothing and are skipped.
        """
        if self._covered_leaves is None:
            n_leaves = len(self.agg.leaf)
            covered = np.zeros(n_leaves, dtype=bool)
            for m in range(1, self.agg.codec.full_mask + 1):
                if self.problem_rows[m].size:
                    covered |= self.is_problem[m][self.leaf_proj_index[m]]
            self._covered_leaves = covered
        return self._covered_leaves

    @property
    def covered_problem_sessions(self) -> int:
        """Problem sessions belonging to at least one problem cluster."""
        return int(self.agg.leaf.problems[self.covered_leaves].sum())

    @property
    def coverage(self) -> float:
        """Fraction of the epoch's problem sessions in problem clusters."""
        total = self.agg.total_problems
        if total == 0:
            return 0.0
        return self.covered_problem_sessions / total


def find_problem_clusters(
    agg: EpochAggregate, config: ProblemClusterConfig | None = None
) -> ProblemClusters:
    """Flag the problem clusters of one epoch aggregate.

    Only clusters at or above the session floor can pass the predicate,
    and they are typically a small fraction of the epoch's distinct
    clusters — so the predicate is evaluated once over the *significant*
    clusters of all masks concatenated flat, and the results scattered
    back into full-size per-mask flag arrays. Session counts are
    threshold-independent, so when the aggregate came from a
    :class:`~repro.core.index.TraceClusterIndex` the significant subset
    is cached on the epoch view and shared by every thresholds variant
    of a config sweep (the leaf-projection index matrix likewise comes
    precomputed from the view — no per-epoch ``searchsorted`` at all).
    """
    config = config or ProblemClusterConfig()
    min_sessions = config.resolve_min_sessions(agg.total_sessions)
    ratio_threshold = config.ratio_multiplier * agg.global_ratio
    full = agg.codec.full_mask
    masks = range(1, full + 1)

    significant = None
    if agg.index is not None:
        significant = agg.index.significant_clusters(agg.metric_name, min_sessions)
    if significant is None:
        significant = {
            m: np.nonzero(agg.per_mask[m].sessions >= min_sessions)[0]
            for m in masks
        }

    ok_flat = cluster_problem_flags(
        np.concatenate([agg.per_mask[m].sessions[significant[m]] for m in masks]),
        np.concatenate([agg.per_mask[m].problems[significant[m]] for m in masks]),
        global_ratio=agg.global_ratio,
        ratio_threshold=ratio_threshold,
        min_sessions=min_sessions,
        min_problems=config.min_problems,
        significance_sigmas=config.significance_sigmas,
    )
    is_problem: dict[int, np.ndarray] = {}
    problem_rows: dict[int, np.ndarray] = {}
    start = 0
    for m in masks:
        sig = significant[m]
        ok = ok_flat[start : start + sig.size]
        start += sig.size
        flags = np.zeros(agg.per_mask[m].keys.size, dtype=bool)
        flags[sig] = ok
        is_problem[m] = flags
        problem_rows[m] = sig[ok]

    if agg.index is not None:
        # Indexed aggregate: the leaf -> cluster inverses were computed
        # once per epoch (shared by every metric) through the
        # trace-global index.
        leaf_proj_index = agg.index.leaf_to_cluster
    else:
        leaf_proj_index = {}
        field_masks = agg.codec.field_masks()
        leaf_keys = agg.leaf.keys
        for m in masks:
            if m == full:
                leaf_proj_index[m] = np.arange(leaf_keys.size)
            else:
                proj = leaf_keys & field_masks[m]
                # projections always exist by construction
                leaf_proj_index[m] = np.searchsorted(agg.per_mask[m].keys, proj)

    out = ProblemClusters(
        agg=agg,
        config=config,
        min_sessions=min_sessions,
        ratio_threshold=ratio_threshold,
        is_problem=is_problem,
        leaf_proj_index=leaf_proj_index,
    )
    out._significant_rows = significant
    out._problem_rows = problem_rows
    out._n_clusters = int(ok_flat.sum())
    return out
