"""Content-addressed cache of per-(shard, config) analysis results.

The paper's diagnosis workflow is repetitive by design: the same
mostly-unchanged session history is re-analyzed daily, and threshold
sweeps run many configs over identical shard bytes (PAPER.md §4–5).
PR 7's exact merge algebra makes the per-shard
:class:`~repro.core.pipeline.TraceAnalysis` the natural memoization
unit — this module persists those partials so warm runs are pure
load + merge.

**Keys are content addresses, never paths or mtimes.** A cache entry's
key (:func:`shard_result_key`) is the SHA-256 of a canonical record
binding everything that determines the result:

* the shard snapshot's payload ``content_sha256`` (stamped at
  ``save_substrate`` time, so keying never re-hashes array bytes),
* the store's attribute-schema digest,
* :meth:`~repro.core.pipeline.AnalysisConfig.config_digest` — which
  deliberately excludes the execution knobs ``workers`` / ``engine`` /
  ``transport``, since results are identical across them,
* the shard's epoch grid (origin + epoch count): identical payload
  bytes analyzed over different epoch ranges (e.g. empty gap shards)
  produce different results,
* :data:`RESULT_FORMAT_VERSION`, bumped whenever the pickled result
  shape changes.

Anything that would change the analysis changes the key, so
invalidation is automatic: appending a day via ``ShardStoreBuilder``
rewrites only the affected shard snapshots, and only those shards
miss.

**Entries are self-verifying files.** Each entry is
``magic + version + payload length + payload sha256 + pickle``,
written to a unique temp file and :func:`os.replace`\\ d into place, so
readers never observe a partial entry. On read, truncation, a bad
digest, or a version mismatch degrades to a logged miss
(:func:`~repro.obs.record_degradation`) — a corrupt cache can slow a
run down but never corrupt its output.

**Eviction is LRU over a byte cap.** Hits bump the entry's mtime;
:meth:`ResultCache.evict_to` removes oldest-first (name-ordered on
ties for determinism) until the store fits. The cache emits
``cache.hit`` / ``cache.miss`` / ``cache.evict`` counters and byte
gauges through :mod:`repro.obs`, so run manifests record exactly how
warm a run was.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.obs import current_metrics, current_tracer, record_degradation

#: Bumped whenever the pickled result payload shape changes; old
#: entries then miss (and age out via LRU) instead of being migrated.
RESULT_FORMAT_VERSION = 1

#: Entry file magic ("repro result cache", format 1).
ENTRY_MAGIC = b"RPRORC1\0"

#: Cache entry file suffix.
ENTRY_SUFFIX = ".rce"

# magic + uint32 format version + uint64 payload length + 32-byte
# payload sha256, followed by the pickled payload.
_ENTRY_HEADER = struct.Struct("<8sIQ32s")


def shard_result_key(
    payload_sha256: str,
    schema_sha256: str,
    config_digest: str,
    epoch_origin: float,
    n_epochs: int,
) -> str:
    """Content address of one (shard, config) analysis result.

    See the module docstring for why each component is present. The
    record is canonical JSON (sorted keys, fixed separators), so the
    same inputs always produce the same key across processes and runs.
    """
    spec = {
        "format": RESULT_FORMAT_VERSION,
        "payload_sha256": str(payload_sha256),
        "schema_sha256": str(schema_sha256),
        "config_digest": str(config_digest),
        "epoch_origin": float(epoch_origin),
        "n_epochs": int(n_epochs),
    }
    payload = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time shape of a cache directory."""

    entries: int
    total_bytes: int
    max_bytes: int | None


class ResultCache:
    """A directory of self-verifying, content-addressed result entries.

    ``max_bytes`` caps the total size of entry files; ``None`` means
    unbounded (``cache prune`` can still shrink it later). The
    directory is created on first use; a cache directory is always
    safe to delete wholesale — it holds only derived data.
    """

    def __init__(self, path: str | Path, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.path = Path(path)
        self.max_bytes = max_bytes

    def entry_path(self, key: str) -> Path:
        return self.path / f"{key}{ENTRY_SUFFIX}"

    # -- read path ---------------------------------------------------
    def get(self, key: str) -> object | None:
        """Load and verify one entry; ``None`` on any kind of miss.

        An absent entry is a plain miss. A present-but-unreadable one
        (truncated, bad magic, version-mismatched, digest mismatch,
        unpicklable) is a *degraded* miss: it is reported through
        :func:`record_degradation` and the entry is removed so it
        cannot fail again, but the caller just recomputes.
        """
        path = self.entry_path(key)
        tracer = current_tracer()
        with tracer.span("cache.load", key=key[:16]) as span:
            try:
                blob = path.read_bytes()
            except FileNotFoundError:
                current_metrics().inc("cache.miss")
                span.set(outcome="miss")
                return None
            except OSError as exc:
                self._degraded_miss(path, f"unreadable entry: {exc}")
                span.set(outcome="degraded_miss")
                return None
            try:
                value = self._decode(path, blob)
            except ValueError as exc:
                self._degraded_miss(path, str(exc))
                span.set(outcome="degraded_miss")
                return None
            # LRU recency: hits move the entry to the back of the
            # eviction queue.
            try:
                os.utime(path)
            except OSError:
                pass
            current_metrics().inc("cache.hit")
            span.set(outcome="hit", bytes=len(blob))
            return value

    @staticmethod
    def _decode(path: Path, blob: bytes) -> object:
        if len(blob) < _ENTRY_HEADER.size:
            raise ValueError(f"{path}: truncated cache entry header")
        magic, version, length, digest = _ENTRY_HEADER.unpack(
            blob[: _ENTRY_HEADER.size]
        )
        if magic != ENTRY_MAGIC:
            raise ValueError(
                f"{path}: bad cache-entry magic {magic!r} "
                f"(expected {ENTRY_MAGIC!r})"
            )
        if version != RESULT_FORMAT_VERSION:
            raise ValueError(
                f"{path}: cache-entry format v{version} != "
                f"v{RESULT_FORMAT_VERSION}"
            )
        payload = blob[_ENTRY_HEADER.size :]
        if len(payload) != length:
            raise ValueError(
                f"{path}: truncated cache entry "
                f"({len(payload)} of {length} payload bytes)"
            )
        if hashlib.sha256(payload).digest() != digest:
            raise ValueError(f"{path}: cache-entry payload digest mismatch")
        try:
            return pickle.loads(payload)
        except Exception as exc:
            raise ValueError(
                f"{path}: cache-entry payload does not unpickle: {exc}"
            ) from exc

    def _degraded_miss(self, path: Path, reason: str) -> None:
        record_degradation(
            "cache_corrupt", f"{reason}; treating as a miss"
        )
        try:
            path.unlink()
        except OSError:
            pass
        current_metrics().inc("cache.miss")

    # -- write path --------------------------------------------------
    def put(self, key: str, value: object) -> bool:
        """Store one entry atomically; returns whether it was written.

        A failed store (disk full, permissions, unpicklable value) is
        reported through :func:`record_degradation` and returns
        ``False`` — caching is an optimization, never a reason to fail
        the analysis that just succeeded. Writing may evict older
        entries to respect ``max_bytes``.
        """
        path = self.entry_path(key)
        tracer = current_tracer()
        with tracer.span("cache.store", key=key[:16]) as span:
            try:
                # pickle signals unpicklable values inconsistently
                # (PicklingError, AttributeError, TypeError, ...), so
                # treat any serialization failure as "not cacheable".
                try:
                    payload = pickle.dumps(
                        value, protocol=pickle.HIGHEST_PROTOCOL
                    )
                except Exception as exc:
                    raise pickle.PicklingError(str(exc)) from exc
                header = _ENTRY_HEADER.pack(
                    ENTRY_MAGIC,
                    RESULT_FORMAT_VERSION,
                    len(payload),
                    hashlib.sha256(payload).digest(),
                )
                self.path.mkdir(parents=True, exist_ok=True)
                tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
                try:
                    tmp.write_bytes(header + payload)
                    os.replace(tmp, path)
                finally:
                    tmp.unlink(missing_ok=True)
            except (OSError, pickle.PicklingError) as exc:
                record_degradation(
                    "cache_store_failed",
                    f"could not store cache entry {key[:16]}…: {exc}",
                )
                span.set(outcome="failed")
                return False
            span.set(outcome="stored", bytes=len(payload))
            current_metrics().inc("cache.store")
            if self.max_bytes is not None:
                self.evict_to(self.max_bytes)
            self._record_size()
            return True

    # -- maintenance -------------------------------------------------
    def _entries(self) -> list[tuple[Path, os.stat_result]]:
        if not self.path.is_dir():
            return []
        out = []
        for p in self.path.iterdir():
            if p.suffix != ENTRY_SUFFIX:
                continue
            try:
                out.append((p, p.stat()))
            except OSError:
                continue
        return out

    def stats(self) -> CacheStats:
        entries = self._entries()
        return CacheStats(
            entries=len(entries),
            total_bytes=sum(st.st_size for _, st in entries),
            max_bytes=self.max_bytes,
        )

    def evict_to(self, max_bytes: int) -> list[str]:
        """Remove least-recently-used entries until the cache fits.

        Recency is file mtime (bumped on every hit); ties break on
        file name so eviction order is deterministic under coarse
        filesystem timestamps. Returns the evicted keys.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = self._entries()
        total = sum(st.st_size for _, st in entries)
        if total <= max_bytes:
            return []
        evicted: list[str] = []
        metrics = current_metrics()
        for path, st in sorted(
            entries, key=lambda e: (e[1].st_mtime_ns, e[0].name)
        ):
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= st.st_size
            evicted.append(path.name[: -len(ENTRY_SUFFIX)])
            metrics.inc("cache.evict")
        self._record_size()
        return evicted

    def _record_size(self) -> None:
        stats = self.stats()
        metrics = current_metrics()
        metrics.gauge("cache.bytes", stats.total_bytes)
        metrics.gauge("cache.entries", stats.entries)


def probe_keys(cache: ResultCache, keys: Sequence[str]) -> list[object | None]:
    """Bulk :meth:`ResultCache.get` preserving order (misses as None)."""
    return [cache.get(key) for key in keys]
